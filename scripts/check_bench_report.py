#!/usr/bin/env python3
"""Schema check for osched_bench --out JSON reports.

Used by CI after the smoke batch; exits non-zero if the report is missing,
unparsable, or structurally off-schema (see src/harness/report.hpp for the
schema definition).

Usage: check_bench_report.py report.json [--require-passed]
"""
import json
import sys

EXPECTED_SCHEMA = "osched.bench.report"
EXPECTED_VERSION = 1
STAT_KEYS = {"mean", "stddev", "min", "max", "count"}


def fail(message: str) -> None:
    print(f"check_bench_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_number(value, where: str) -> None:
    # NaN/Inf are serialized as null by design.
    if value is not None and not isinstance(value, (int, float)):
        fail(f"{where}: expected number or null, got {type(value).__name__}")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_bench_report.py report.json [--require-passed]")
    path = sys.argv[1]
    require_passed = "--require-passed" in sys.argv[2:]

    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {path}: {error}")

    if report.get("schema") != EXPECTED_SCHEMA:
        fail(f"schema is {report.get('schema')!r}, want {EXPECTED_SCHEMA!r}")
    if report.get("schema_version") != EXPECTED_VERSION:
        fail(f"schema_version is {report.get('schema_version')!r}")
    for key in ("root_seed", "scale", "passed", "scenarios"):
        if key not in report:
            fail(f"missing top-level key {key!r}")
    if not isinstance(report["scenarios"], list) or not report["scenarios"]:
        fail("scenarios must be a non-empty list")

    for scenario in report["scenarios"]:
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            fail("scenario without a name")
        where = f"scenario {name!r}"
        if not isinstance(scenario.get("tags"), list):
            fail(f"{where}: tags must be a list")
        if not isinstance(scenario.get("passed"), bool):
            fail(f"{where}: passed must be a bool")
        cases = scenario.get("cases")
        if not isinstance(cases, list) or not cases:
            fail(f"{where}: cases must be a non-empty list")
        for case in cases:
            label = case.get("label")
            if not isinstance(label, str) or not label:
                fail(f"{where}: case without a label")
            for pname, pvalue in case.get("params", {}).items():
                check_number(pvalue, f"{where}/{label}: param {pname}")
            metrics = case.get("metrics")
            if not isinstance(metrics, dict):
                fail(f"{where}/{label}: metrics must be an object")
            for mname, stats in metrics.items():
                if set(stats) != STAT_KEYS:
                    fail(f"{where}/{label}/{mname}: stat keys {set(stats)}")
                for key in STAT_KEYS - {"count"}:
                    check_number(stats[key], f"{where}/{label}/{mname}.{key}")
                if not isinstance(stats["count"], int) or stats["count"] < 1:
                    fail(f"{where}/{label}/{mname}: bad count")

    if require_passed and not report["passed"]:
        failed = [s["name"] for s in report["scenarios"] if not s["passed"]]
        fail(f"report not passed; failing scenarios: {', '.join(failed)}")

    print(
        f"check_bench_report: OK: {len(report['scenarios'])} scenarios, "
        f"schema v{report['schema_version']}, passed={report['passed']}"
    )


if __name__ == "__main__":
    main()
