#!/usr/bin/env python3
"""Diff two osched_bench --out JSON reports with a tolerance band.

Compares a baseline report against a current one, metric by metric:

* Wall-clock metrics ("seconds", "*_per_sec", "peak_rss_*") are compared
  with a relative tolerance band (--tolerance, default 0.30): jobs/sec may
  drop by up to that fraction, seconds/RSS may grow by up to that fraction,
  before the diff counts as a perf regression. Direction matters — getting
  faster or smaller is never a regression.
* Every other metric is treated as a deterministic output of (seed, scale)
  — rejected counts, flow times, dual objectives — and must match exactly
  (mean, min and max). A mismatch means the two binaries scheduled
  differently, which is a correctness failure, not noise.

Scenarios/cases/metrics present on only one side are reported as warnings
(the suite grows over time); --fail-on-missing promotes them to errors.

Exit codes: 0 OK, 1 perf regression beyond tolerance, 2 determinism
mismatch or structural/schema error (including an unreadable or off-schema
report — never conflated with the advisory exit 1).

Usage:
  compare_bench.py baseline.json current.json [--tolerance 0.30]
                   [--fail-on-missing]
"""
import argparse
import json
import sys

EXPECTED_SCHEMA = "osched.bench.report"

PERF_EXACT = {"seconds", "compute_seconds", "wall_seconds"}
PERF_PREFIXES = ("peak_rss",)
PERF_SUFFIXES = ("_per_sec",)


def is_perf_metric(name: str) -> bool:
    return (
        name in PERF_EXACT
        or name.startswith(PERF_PREFIXES)
        or name.endswith(PERF_SUFFIXES)
    )


def higher_is_better(name: str) -> bool:
    return name.endswith(PERF_SUFFIXES)


def load_report(path: str) -> dict:
    # Structural failures exit 2 (the gating code), NOT 1: CI treats exit 1
    # as advisory tolerance drift, and a missing/renamed/off-schema baseline
    # must never pass as a perf warning.
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot load {path}: {error}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != EXPECTED_SCHEMA:
        print(f"compare_bench: {path}: schema {report.get('schema')!r}, "
              f"want {EXPECTED_SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    return report


def index_cases(report: dict) -> dict:
    out = {}
    for scenario in report.get("scenarios", []):
        for case in scenario.get("cases", []):
            out[(scenario["name"], case["label"])] = case.get("metrics", {})
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="relative band for wall-clock metrics "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="treat one-sided scenarios/cases/metrics as "
                             "errors instead of warnings")
    args = parser.parse_args()

    base = index_cases(load_report(args.baseline))
    cur = index_cases(load_report(args.current))

    perf_regressions = []
    determinism_errors = []
    warnings = []
    compared = 0

    for key in sorted(set(base) | set(cur)):
        scenario, label = key
        if key not in base or key not in cur:
            side = "baseline" if key not in cur else "current"
            warnings.append(f"{scenario}/{label}: only in {side}")
            continue
        metrics = sorted(set(base[key]) | set(cur[key]))
        for name in metrics:
            if name not in base[key] or name not in cur[key]:
                side = "baseline" if name not in cur[key] else "current"
                warnings.append(f"{scenario}/{label}/{name}: only in {side}")
                continue
            b, c = base[key][name], cur[key][name]
            compared += 1
            where = f"{scenario}/{label}/{name}"
            if is_perf_metric(name):
                b_mean, c_mean = b.get("mean"), c.get("mean")
                if not b_mean or b_mean <= 0 or c_mean is None:
                    continue  # degenerate timing (zero/null): nothing to band
                ratio = c_mean / b_mean
                if higher_is_better(name):
                    ok = ratio >= 1.0 - args.tolerance
                    direction = "dropped to"
                else:
                    ok = ratio <= 1.0 + args.tolerance
                    direction = "grew to"
                if not ok:
                    perf_regressions.append(
                        f"{where}: {direction} {ratio:.2f}x of baseline "
                        f"({b_mean:.6g} -> {c_mean:.6g}, tolerance "
                        f"{args.tolerance:.0%})")
            else:
                for stat in ("mean", "min", "max"):
                    if b.get(stat) != c.get(stat):
                        determinism_errors.append(
                            f"{where}.{stat}: {b.get(stat)!r} != "
                            f"{c.get(stat)!r} (deterministic metric must "
                            f"match exactly)")
                        break

    for message in warnings:
        print(f"compare_bench: WARN: {message}", file=sys.stderr)
    for message in perf_regressions:
        print(f"compare_bench: PERF REGRESSION: {message}", file=sys.stderr)
    for message in determinism_errors:
        print(f"compare_bench: DETERMINISM MISMATCH: {message}",
              file=sys.stderr)

    print(f"compare_bench: compared {compared} metrics: "
          f"{len(perf_regressions)} perf regression(s), "
          f"{len(determinism_errors)} determinism mismatch(es), "
          f"{len(warnings)} warning(s)")

    if determinism_errors or (warnings and args.fail_on_missing):
        sys.exit(2)
    if perf_regressions:
        sys.exit(1)


if __name__ == "__main__":
    main()
