#!/usr/bin/env python3
"""Diff two osched_bench --out JSON reports with a tolerance band.

Compares a baseline report against a current one, metric by metric:

* Wall-clock metrics ("seconds", "*_per_sec", "peak_rss_*") are compared
  with a relative tolerance band (--tolerance, default 0.30): jobs/sec may
  drop by up to that fraction, seconds/RSS may grow by up to that fraction,
  before the diff counts as a perf regression. Direction matters — getting
  faster or smaller is never a regression.
* Metrics prefixed "tier_" describe WHICH code path produced the numbers
  (e23's dispatch tiers: tier_simd 0/1/2 = scalar/avx2/avx512,
  tier_order_width 0/16/32) — hardware- and env-shaped (cpuid,
  OSCHED_SIMD), not scheduling outputs, and bit-identical across tiers by
  the simd_argmin contract. Differences are reported as informational
  notes, never as regressions or mismatches.
* Metrics prefixed "seeded_" are deterministic ONLY per seed (e20's chaos
  schedule and e22's burst-warped workload move with --seed, and e22's
  per-shard overload counters — seeded_hot_deferred, seeded_total_sheds,
  seeded_shard_shed_spread — derive from them): they are compared exactly,
  like the deterministic class below, but only when both reports carry the
  same top-level root_seed and scale; otherwise they are skipped with an
  informational note (never promoted to an error by --fail-on-missing —
  a rotating-seed CI report is expected to disagree with the committed
  baseline on them).
* Every other metric is treated as a deterministic output of (seed, scale)
  — rejected counts, flow times, dual objectives — and must match exactly
  (mean, min and max). A mismatch means the two binaries scheduled
  differently, which is a correctness failure, not noise.

Scenarios/cases/metrics present only in the CURRENT report are warnings
(the suite grows over time); --fail-on-missing promotes them to errors.
Anything the BASELINE has that the current report lost — a whole case, or
one of the core deterministic metrics (rejected/completed/total_flow) — is
a determinism error (exit 2) outright: losing those columns must never
downgrade the correctness gate to a warning.

For e17's sharded cases the script also prints shard-scaling efficiency
(jobs/s per worker relative to the single-session case) for both reports,
and for e22's multi-tenant cases an informational fairness line (hot-tenant
deferrals and the per-shard shed spread).

Exit codes: 0 OK, 1 perf regression beyond tolerance, 2 determinism
mismatch or structural/schema error (including an unreadable or off-schema
report — never conflated with the advisory exit 1).

Usage:
  compare_bench.py baseline.json current.json [--tolerance 0.30]
                   [--fail-on-missing]
"""
import argparse
import json
import sys

EXPECTED_SCHEMA = "osched.bench.report"

# "workers" is the shard driver's resolved worker count and
# "pinned_workers" how many of them landed on their NUMA node — both shaped
# by the host's core count/topology, not by scheduling decisions, so they
# belong to the wall-clock class (band-compared), not the deterministic one.
PERF_EXACT = {"seconds", "compute_seconds", "wall_seconds", "workers",
              "pinned_workers"}
# Memory metrics are wall-clock-class (banded, never exact-matched) AND get
# their own band (--rss-tolerance): RSS is an OS-level reading (allocator
# retention, page granularity) whose noise profile is unrelated to
# wall-clock jitter, so e.g. CI can band time loosely while gating memory
# tightly — the e18 storage-backend gate. Note store_bytes is deliberately
# NOT here: an instance's exact backend footprint is deterministic and must
# match exactly.
RSS_PREFIXES = ("peak_rss", "rss_")
PERF_PREFIXES = RSS_PREFIXES
PERF_SUFFIXES = ("_per_sec",)


def is_rss_metric(name: str) -> bool:
    return name.startswith(RSS_PREFIXES)

# Metrics that every scheduling case emits and whose absence (on either
# side) is treated as a determinism failure, not a schema warning: a report
# that silently lost its rejected/completed/total_flow columns must never
# pass the cross-binary correctness gate.
CORE_DETERMINISTIC = ("rejected", "completed", "total_flow")

# Deterministic per seed, not per binary: the value is an exact function of
# (root_seed, scale) — e20's chaos schedules are drawn from the root seed —
# so exact comparison is only meaningful between same-seed, same-scale
# reports. Everywhere else these are skipped, not warned about.
SEEDED_PREFIX = "seeded_"

# Code-path attribution, not output: which SIMD tier / order-table width
# served the case (cpuid- and OSCHED_SIMD-shaped). All tiers are
# bit-identical by contract, so a tier change can explain a perf delta but
# can never itself be a regression or a determinism error.
TIER_PREFIX = "tier_"


def is_seeded_metric(name: str) -> bool:
    return name.startswith(SEEDED_PREFIX)


def is_tier_metric(name: str) -> bool:
    return name.startswith(TIER_PREFIX)


def is_perf_metric(name: str) -> bool:
    return (
        name in PERF_EXACT
        or name.startswith(PERF_PREFIXES)
        or name.endswith(PERF_SUFFIXES)
    )


def higher_is_better(name: str) -> bool:
    return name.endswith(PERF_SUFFIXES)


def load_report(path: str) -> dict:
    # Structural failures exit 2 (the gating code), NOT 1: CI treats exit 1
    # as advisory tolerance drift, and a missing/renamed/off-schema baseline
    # must never pass as a perf warning.
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot load {path}: {error}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != EXPECTED_SCHEMA:
        print(f"compare_bench: {path}: schema {report.get('schema')!r}, "
              f"want {EXPECTED_SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    return report


def index_cases(report: dict) -> dict:
    out = {}
    for scenario in report.get("scenarios", []):
        for case in scenario.get("cases", []):
            out[(scenario["name"], case["label"])] = case.get("metrics", {})
    return out


def report_shard_efficiency(side: str, cases: dict) -> None:
    """Prints shard-scaling efficiency for every e17 sharded case.

    Efficiency = sharded jobs/s per worker, relative to the single-session
    case of the same scenario: 1.0 means adding workers costs nothing,
    below 1/workers means sharding is slower than not sharding at all.
    """
    for (scenario, label), metrics in sorted(cases.items()):
        if "sharded" not in label:
            continue
        single = None
        for (other_scenario, other_label), other in cases.items():
            if other_scenario == scenario and "stream t1" in other_label:
                single = other
                break
        if single is None:
            continue
        try:
            sharded_jps = metrics["jobs_per_sec"]["mean"]
            single_jps = single["jobs_per_sec"]["mean"]
            workers = metrics.get("workers", {}).get("mean") or 1.0
        except (KeyError, TypeError):
            continue
        if not single_jps or single_jps <= 0 or not workers:
            continue
        speedup = sharded_jps / single_jps
        print(f"compare_bench: shard-scaling [{side}] {scenario}/{label}: "
              f"{speedup:.2f}x vs single session over {workers:.0f} "
              f"worker(s) = efficiency {speedup / workers:.2f}")


def report_fairness_spread(side: str, cases: dict) -> None:
    """Prints the multi-tenant fairness picture for every e22 DRR case.

    Informational only (the gating comparison of these seeded_* columns
    happens in the main loop when seeds match): how often the hot tenant
    was deferred back to its quantum, and how unevenly the overload sheds
    landed across the shards (0 = perfectly even).
    """
    for (scenario, label), metrics in sorted(cases.items()):
        if "drr" not in label:
            continue
        try:
            deferred = metrics["seeded_hot_deferred"]["mean"]
            spread = metrics["seeded_shard_shed_spread"]["mean"]
            sheds = metrics["seeded_total_sheds"]["mean"]
        except (KeyError, TypeError):
            continue
        print(f"compare_bench: fairness [{side}] {scenario}/{label}: "
              f"hot tenant deferred {deferred:.0f}x; {sheds:.0f} shed(s) "
              f"across shards, spread {spread:.0f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="relative band for wall-clock metrics "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--rss-tolerance", type=float, default=None,
                        help="relative band for memory metrics (peak_rss_*, "
                             "rss_*); defaults to --tolerance")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="treat one-sided scenarios/cases/metrics as "
                             "errors instead of warnings")
    args = parser.parse_args()

    base_report = load_report(args.baseline)
    cur_report = load_report(args.current)
    base = index_cases(base_report)
    cur = index_cases(cur_report)

    # seeded_* metrics are only comparable between reports generated from
    # the same root seed at the same scale (see module docstring).
    seeds_comparable = (
        base_report.get("root_seed") is not None
        and base_report.get("root_seed") == cur_report.get("root_seed")
        and base_report.get("scale") == cur_report.get("scale")
    )

    perf_regressions = []
    determinism_errors = []
    warnings = []
    tier_notes = []
    compared = 0
    seeded_skipped = 0

    for key in sorted(set(base) | set(cur)):
        scenario, label = key
        if key not in cur:
            # A case the BASELINE has but the current report lost takes its
            # deterministic trio with it — that is a correctness failure,
            # not suite growth.
            determinism_errors.append(
                f"{scenario}/{label}: present in baseline but missing from "
                f"current report (its deterministic metrics are gone)")
            continue
        if key not in base:
            warnings.append(f"{scenario}/{label}: only in current")
            continue
        metrics = sorted(set(base[key]) | set(cur[key]))
        for name in metrics:
            if name not in base[key] or name not in cur[key]:
                side = "baseline" if name not in cur[key] else "current"
                if name in CORE_DETERMINISTIC:
                    determinism_errors.append(
                        f"{scenario}/{label}/{name}: deterministic metric "
                        f"only in {side} report")
                else:
                    warnings.append(f"{scenario}/{label}/{name}: only in {side}")
                continue
            b, c = base[key][name], cur[key][name]
            where = f"{scenario}/{label}/{name}"
            if is_tier_metric(name):
                if b.get("mean") != c.get("mean"):
                    tier_notes.append(
                        f"{where}: {b.get('mean')!r} -> {c.get('mean')!r} "
                        f"(code-path attribution only; outputs are "
                        f"bit-identical across tiers)")
                continue
            if is_seeded_metric(name):
                if not seeds_comparable:
                    seeded_skipped += 1
                    continue
                compared += 1
                for stat in ("mean", "min", "max"):
                    if b.get(stat) != c.get(stat):
                        determinism_errors.append(
                            f"{where}.{stat}: {b.get(stat)!r} != "
                            f"{c.get(stat)!r} (seeded metric must match "
                            f"exactly between same-seed reports)")
                        break
                continue
            compared += 1
            if is_perf_metric(name):
                b_mean, c_mean = b.get("mean"), c.get("mean")
                if not b_mean or b_mean <= 0 or c_mean is None:
                    continue  # degenerate timing (zero/null): nothing to band
                tolerance = args.tolerance
                if is_rss_metric(name) and args.rss_tolerance is not None:
                    tolerance = args.rss_tolerance
                ratio = c_mean / b_mean
                if higher_is_better(name):
                    ok = ratio >= 1.0 - tolerance
                    direction = "dropped to"
                else:
                    ok = ratio <= 1.0 + tolerance
                    direction = "grew to"
                if not ok:
                    perf_regressions.append(
                        f"{where}: {direction} {ratio:.2f}x of baseline "
                        f"({b_mean:.6g} -> {c_mean:.6g}, tolerance "
                        f"{tolerance:.0%})")
            else:
                for stat in ("mean", "min", "max"):
                    if b.get(stat) != c.get(stat):
                        determinism_errors.append(
                            f"{where}.{stat}: {b.get(stat)!r} != "
                            f"{c.get(stat)!r} (deterministic metric must "
                            f"match exactly)")
                        break

    report_shard_efficiency("baseline", base)
    report_shard_efficiency("current", cur)
    report_fairness_spread("baseline", base)
    report_fairness_spread("current", cur)

    for message in tier_notes:
        print(f"compare_bench: note: dispatch tier changed: {message}")
    for message in warnings:
        print(f"compare_bench: WARN: {message}", file=sys.stderr)
    for message in perf_regressions:
        print(f"compare_bench: PERF REGRESSION: {message}", file=sys.stderr)
    for message in determinism_errors:
        print(f"compare_bench: DETERMINISM MISMATCH: {message}",
              file=sys.stderr)

    if seeded_skipped:
        print(f"compare_bench: note: skipped {seeded_skipped} seeded_* "
              f"metric(s) — reports differ in root_seed or scale, so "
              f"seed-dependent outputs are not comparable")
    print(f"compare_bench: compared {compared} metrics: "
          f"{len(perf_regressions)} perf regression(s), "
          f"{len(determinism_errors)} determinism mismatch(es), "
          f"{len(warnings)} warning(s)")

    if determinism_errors or (warnings and args.fail_on_missing):
        sys.exit(2)
    if perf_regressions:
        sys.exit(1)


if __name__ == "__main__":
    main()
