#!/usr/bin/env python3
"""Docs lint: every relative markdown link must resolve to a real file.

Scans the repo's markdown (README.md, docs/, per-directory READMEs, the
planning files) for inline links and fails if a relative target does not
exist on disk. External links (http/https/mailto) and pure anchors are
skipped — this is a dead-file check, not a crawler. CI runs it as the
docs-lint job:

    python3 scripts/check_docs_links.py

Exit codes: 0 = all links resolve, 1 = at least one broken link (each is
printed as file:line: target), 2 = usage/IO error.
"""

import argparse
import pathlib
import re
import sys

# Inline markdown links [text](target). Reference-style links and autolinks
# are rare in this repo; inline covers the committed docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

# Directories that hold generated or third-party trees, never doc targets.
SKIP_DIRS = {"build", ".git"}


def iter_markdown(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check_file(path: pathlib.Path, root: pathlib.Path):
    broken = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"check_docs_links: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Drop any #anchor suffix; the file is what must exist.
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            if target_path.startswith("/"):
                resolved = root / target_path.lstrip("/")
            else:
                resolved = path.parent / target_path
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "root",
        nargs="?",
        default=".",
        help="repository root to scan (default: current directory)",
    )
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"check_docs_links: not a directory: {root}", file=sys.stderr)
        return 2

    failures = 0
    files = 0
    for path in iter_markdown(root):
        files += 1
        for lineno, target in check_file(path, root):
            print(f"{path.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"check_docs_links: {failures} broken link(s) in {files} files")
        return 1
    print(f"check_docs_links: OK: {files} markdown files, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
