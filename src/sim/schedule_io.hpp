// Schedule serialization and diffing.
//
// A Schedule is the single source of truth for what an algorithm did, so it
// should be storable and comparable like any other experiment artifact:
//   * write_schedule_csv / read_schedule_csv — lossless round trip of every
//     JobRecord field, for archiving runs next to their workload traces
//     (the trace workbench's --dump flag) and for cross-version regression
//     pinning;
//   * diff_schedules — field-by-field comparison with a time tolerance,
//     returning human-readable discrepancies. Used by determinism tests
//     (same seed => byte-equal decisions) and for comparing two policies'
//     treatment of the same instance.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/schedule.hpp"

namespace osched {

/// CSV columns: job, fate, machine, started, start, speed, end,
/// rejection_time. One row per job, in job-id order, with a header.
void write_schedule_csv(const Schedule& schedule, std::ostream& out);

/// Parses the write_schedule_csv format. Aborts (OSCHED_CHECK) on malformed
/// input — schedules are machine-written artifacts, not user input.
Schedule read_schedule_csv(std::istream& in);

struct ScheduleDiffOptions {
  /// Times within this tolerance compare equal.
  double time_tolerance = 1e-9;
  /// Stop after this many reported differences (0 = unlimited).
  std::size_t max_differences = 0;
};

/// Human-readable differences ("job 3: fate completed vs rejected-running",
/// "job 5: start 2.5 vs 2.75"); empty means the schedules agree on every
/// record.
std::vector<std::string> diff_schedules(const Schedule& a, const Schedule& b,
                                        const ScheduleDiffOptions& options = {});

}  // namespace osched
