#include "sim/schedule.hpp"

#include <algorithm>
#include <map>

namespace osched {

const char* to_string(JobFate fate) {
  switch (fate) {
    case JobFate::kUnscheduled: return "unscheduled";
    case JobFate::kPending: return "pending";
    case JobFate::kCompleted: return "completed";
    case JobFate::kRejectedRunning: return "rejected-running";
    case JobFate::kRejectedPending: return "rejected-pending";
  }
  return "?";
}

void record_dispatched(JobRecord& rec, JobId j, MachineId machine) {
  OSCHED_CHECK(rec.fate == JobFate::kUnscheduled)
      << "job " << j << " dispatched twice";
  rec.fate = JobFate::kPending;
  rec.machine = machine;
}

void record_started(JobRecord& rec, JobId j, Time start, Speed speed) {
  OSCHED_CHECK(rec.fate == JobFate::kPending) << "job " << j << " not pending";
  OSCHED_CHECK(!rec.started) << "job " << j << " started twice";
  OSCHED_CHECK_GT(speed, 0.0);
  rec.started = true;
  rec.start = start;
  rec.speed = speed;
}

void record_completed(JobRecord& rec, JobId j, Time end) {
  OSCHED_CHECK(rec.fate == JobFate::kPending && rec.started)
      << "job " << j << " cannot complete (fate=" << to_string(rec.fate) << ")";
  rec.fate = JobFate::kCompleted;
  rec.end = end;
}

void record_rejected_running(JobRecord& rec, JobId j, Time now) {
  OSCHED_CHECK(rec.fate == JobFate::kPending && rec.started)
      << "job " << j << " is not running";
  rec.fate = JobFate::kRejectedRunning;
  rec.end = now;
  rec.rejection_time = now;
}

void record_requeued(JobRecord& rec, JobId j, MachineId machine) {
  OSCHED_CHECK(rec.fate == JobFate::kPending)
      << "job " << j << " requeued while " << to_string(rec.fate);
  rec.machine = machine;
  rec.started = false;
}

void record_rejected_pending(JobRecord& rec, JobId j, Time now) {
  OSCHED_CHECK((rec.fate == JobFate::kPending && !rec.started) ||
               rec.fate == JobFate::kUnscheduled)
      << "job " << j << " cannot be queue-rejected";
  rec.fate = JobFate::kRejectedPending;
  rec.rejection_time = now;
}

void Schedule::mark_dispatched(JobId j, MachineId machine) {
  record_dispatched(record(j), j, machine);
}

void Schedule::mark_started(JobId j, Time start, Speed speed) {
  record_started(record(j), j, start, speed);
}

void Schedule::mark_completed(JobId j, Time end) {
  record_completed(record(j), j, end);
}

void Schedule::mark_rejected_running(JobId j, Time now) {
  record_rejected_running(record(j), j, now);
}

void Schedule::mark_rejected_pending(JobId j, Time now) {
  record_rejected_pending(record(j), j, now);
}

void Schedule::mark_requeued(JobId j, MachineId machine) {
  record_requeued(record(j), j, machine);
}

Time Schedule::flow_time(JobId j, const Instance& instance) const {
  const JobRecord& rec = record(j);
  const Time release = instance.job(j).release;
  switch (rec.fate) {
    case JobFate::kCompleted:
      return rec.end - release;
    case JobFate::kRejectedRunning:
    case JobFate::kRejectedPending:
      return rec.rejection_time - release;
    default:
      OSCHED_CHECK(false) << "flow_time of unfinished job " << j << " (fate="
                          << to_string(rec.fate) << ")";
      return 0.0;
  }
}

Time Schedule::total_flow(const Instance& instance, bool include_rejected) const {
  Time total = 0.0;
  for (std::size_t j = 0; j < records_.size(); ++j) {
    const JobRecord& rec = records_[j];
    if (rec.completed() || (include_rejected && rec.rejected())) {
      total += flow_time(static_cast<JobId>(j), instance);
    }
  }
  return total;
}

Time Schedule::total_weighted_flow(const Instance& instance,
                                   bool include_rejected) const {
  Time total = 0.0;
  for (std::size_t j = 0; j < records_.size(); ++j) {
    const JobRecord& rec = records_[j];
    if (rec.completed() || (include_rejected && rec.rejected())) {
      total += instance.job(static_cast<JobId>(j)).weight *
               flow_time(static_cast<JobId>(j), instance);
    }
  }
  return total;
}

Time Schedule::max_flow(const Instance& instance, bool include_rejected) const {
  Time worst = 0.0;
  for (std::size_t j = 0; j < records_.size(); ++j) {
    const JobRecord& rec = records_[j];
    if (rec.completed() || (include_rejected && rec.rejected())) {
      worst = std::max(worst, flow_time(static_cast<JobId>(j), instance));
    }
  }
  return worst;
}

std::size_t Schedule::num_completed() const {
  std::size_t count = 0;
  for (const JobRecord& rec : records_) count += rec.completed() ? 1 : 0;
  return count;
}

std::size_t Schedule::num_rejected() const {
  std::size_t count = 0;
  for (const JobRecord& rec : records_) count += rec.rejected() ? 1 : 0;
  return count;
}

Weight Schedule::rejected_weight(const Instance& instance) const {
  Weight total = 0.0;
  for (std::size_t j = 0; j < records_.size(); ++j) {
    if (records_[j].rejected()) {
      total += instance.job(static_cast<JobId>(j)).weight;
    }
  }
  return total;
}

Time Schedule::makespan() const {
  Time latest = 0.0;
  for (const JobRecord& rec : records_) {
    if (rec.started) latest = std::max(latest, rec.end);
  }
  return latest;
}

namespace {

Energy machine_energy(const Schedule& schedule, const Instance& instance,
                      MachineId machine, const PowerFunction& power) {
  // Sweep over speed-change breakpoints. Each started execution on this
  // machine contributes +speed at its start and -speed at its end; the
  // energy is the integral of power(sum of active speeds).
  std::map<Time, Speed> delta;  // time -> speed change
  for (std::size_t j = 0; j < schedule.num_jobs(); ++j) {
    const JobRecord& rec = schedule.record(static_cast<JobId>(j));
    if (rec.machine != machine || !rec.started) continue;
    if (rec.end <= rec.start) continue;  // zero-length (rejected at start)
    delta[rec.start] += rec.speed;
    delta[rec.end] -= rec.speed;
  }
  (void)instance;

  Energy total = 0.0;
  Speed current = 0.0;
  Time prev = 0.0;
  bool first = true;
  for (const auto& [time, change] : delta) {
    if (!first && current > 0.0) {
      total += power.power(current) * (time - prev);
    }
    current += change;
    // Clamp tiny negative drift from float cancellation.
    if (current < 0.0 && current > -1e-9) current = 0.0;
    OSCHED_CHECK_GE(current, 0.0) << "negative speed profile on machine " << machine;
    prev = time;
    first = false;
  }
  return total;
}

}  // namespace

Energy compute_energy(const Schedule& schedule, const Instance& instance,
                      const PowerFunction& power) {
  Energy total = 0.0;
  for (std::size_t i = 0; i < instance.num_machines(); ++i) {
    total += machine_energy(schedule, instance, static_cast<MachineId>(i), power);
  }
  return total;
}

Energy compute_energy(const Schedule& schedule, const Instance& instance,
                      const std::vector<const PowerFunction*>& powers) {
  OSCHED_CHECK_EQ(powers.size(), instance.num_machines());
  Energy total = 0.0;
  for (std::size_t i = 0; i < instance.num_machines(); ++i) {
    OSCHED_CHECK(powers[i] != nullptr);
    total +=
        machine_energy(schedule, instance, static_cast<MachineId>(i), *powers[i]);
  }
  return total;
}

}  // namespace osched
