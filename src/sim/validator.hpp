// Independent feasibility validator for schedules.
//
// The validator re-derives feasibility from the Schedule record and the
// Instance alone; it shares no state with any scheduler. Tests run every
// scheduler's output through it, so an algorithmic bug cannot masquerade as
// a good objective value on an infeasible schedule.
#pragma once

#include <string>
#include <vector>

#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct ValidationOptions {
  /// Theorem 3's model allows several jobs to execute concurrently on one
  /// machine (speeds add). Theorems 1/2 do not.
  bool allow_parallel_execution = false;
  /// Require completed jobs to meet their deadlines (Theorem 3 setting).
  bool require_deadlines = false;
  /// Require every job to be either completed or rejected (end of run).
  bool require_all_decided = true;
  /// In the unit-speed model (Theorem 1) completed jobs must occupy exactly
  /// p_ij time; in speed-scaling, exactly p_ij / speed.
  double tolerance = 1e-6;
};

/// Returns a list of human-readable violations; empty means feasible.
std::vector<std::string> validate_schedule(const Schedule& schedule,
                                           const Instance& instance,
                                           const ValidationOptions& options = {});

/// Convenience for tests: aborts with the first violation.
void check_schedule(const Schedule& schedule, const Instance& instance,
                    const ValidationOptions& options = {});

}  // namespace osched
