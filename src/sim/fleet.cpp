#include "sim/fleet.hpp"

#include <cmath>
#include <sstream>

namespace osched {

const char* to_string(FleetEventKind kind) {
  switch (kind) {
    case FleetEventKind::kJoin: return "join";
    case FleetEventKind::kDrain: return "drain";
    case FleetEventKind::kFail: return "fail";
    case FleetEventKind::kSpeedChange: return "speed";
  }
  return "?";
}

std::string FleetPlan::validate(std::size_t num_machines) const {
  std::ostringstream out;
  auto complain = [&out]() -> std::ostringstream& {
    if (out.tellp() > 0) out << "; ";
    return out;
  };

  // 0 = active, 1 = draining, 2 = down — replay of the plan's transitions.
  std::vector<int> state(num_machines, 0);
  for (std::size_t k = 0; k < initially_down.size(); ++k) {
    const MachineId i = initially_down[k];
    if (i < 0 || static_cast<std::size_t>(i) >= num_machines) {
      complain() << "initially_down[" << k << "]=" << i << " out of range";
      continue;
    }
    if (state[static_cast<std::size_t>(i)] == 2) {
      complain() << "machine " << i << " listed twice in initially_down";
      continue;
    }
    state[static_cast<std::size_t>(i)] = 2;
  }

  Time prev = 0.0;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const FleetEvent& e = events[k];
    if (!std::isfinite(e.time) || e.time < 0.0) {
      complain() << "event[" << k << "] time " << e.time << " invalid";
      continue;
    }
    if (e.time < prev) {
      complain() << "event[" << k << "] time " << e.time
                 << " before predecessor " << prev;
      continue;
    }
    prev = e.time;
    if (e.machine < 0 || static_cast<std::size_t>(e.machine) >= num_machines) {
      complain() << "event[" << k << "] machine " << e.machine
                 << " out of range";
      continue;
    }
    // Two events on one machine at one timestamp have no defined order
    // (delivery is by vector position, which a serializer may not preserve)
    // — reject the ambiguity outright. Events are time-sorted, so only the
    // equal-time window behind k needs scanning.
    bool duplicate = false;
    for (std::size_t b = k; b-- > 0;) {
      if (events[b].time != e.time) break;
      if (events[b].machine == e.machine) {
        complain() << "event[" << k << "] duplicates event[" << b
                   << "] (machine " << e.machine << " at t=" << e.time << ")";
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    int& s = state[static_cast<std::size_t>(e.machine)];
    switch (e.kind) {
      case FleetEventKind::kJoin:
        if (s == 0) {
          complain() << "event[" << k << "] joins active machine " << e.machine;
        }
        s = 0;
        break;
      case FleetEventKind::kDrain:
        if (s != 0) {
          complain() << "event[" << k << "] drains non-active machine "
                     << e.machine;
        }
        s = 1;
        break;
      case FleetEventKind::kFail:
        if (s == 2) {
          complain() << "event[" << k << "] fails down machine " << e.machine;
        }
        s = 2;
        break;
      case FleetEventKind::kSpeedChange:
        // Legal in any membership state (a down machine's multiplier takes
        // effect when it rejoins); only the multiplier itself can be bad.
        if (!std::isfinite(e.speed) || e.speed <= 0.0) {
          complain() << "event[" << k << "] speed multiplier " << e.speed
                     << " invalid (want finite > 0)";
        }
        break;
    }
  }
  return out.str();
}

}  // namespace osched
