// Online simulation driver.
//
// Merges the instance's arrival sequence with the scheduler's own future
// events (completions, wakeups) and delivers them in time order. At equal
// times, scheduled events fire BEFORE arrivals: a job arriving exactly when
// the running job completes sees an idle machine, which matches the paper's
// convention that a job counts as "dispatched during the execution of k"
// only at times strictly inside k's execution window.
//
// The engine is a template over the Store it reads arrivals from — the
// batch Instance façade, or one of the per-backend views of
// instance/processing_store.hpp (only job(j).release and num_jobs() are
// touched, so any Store the policies accept works here too). SimEngine is
// the Instance-typed alias the generic callers use.
#pragma once

#include "instance/instance.hpp"
#include "sim/event_queue.hpp"

namespace osched {

class SimulationHooks {
 public:
  virtual ~SimulationHooks() = default;

  /// A new job is released. The scheduler must dispatch (or reject) it.
  virtual void on_arrival(JobId job, Time now) = 0;

  /// A scheduler-scheduled event (typically a completion) fires.
  virtual void on_event(const SimEvent& event, Time now) = 0;
};

template <class Store>
class SimEngineFor {
 public:
  explicit SimEngineFor(const Store& store) : store_(store) {}

  EventQueue& events() { return events_; }
  Time now() const { return now_; }

  /// Runs to quiescence: all arrivals delivered and the event queue drained.
  /// Statically typed so the policy's handlers inline into the loop (the
  /// batch entry points call this with the concrete policy type); the
  /// virtual-dispatch form below serves type-erased callers.
  template <class Hooks>
  void run(Hooks& hooks) {
    std::size_t next_arrival = 0;
    const std::size_t n = store_.num_jobs();

    for (;;) {
      const Time arrival_time =
          next_arrival < n
              ? store_.job(static_cast<JobId>(next_arrival)).release
              : kTimeInfinity;
      const auto event_time = events_.peek_time();

      if (next_arrival >= n && !event_time.has_value()) break;

      if (event_time.has_value() && *event_time <= arrival_time) {
        const SimEvent event = events_.pop();
        OSCHED_CHECK_GE(event.time, now_ - kTimeEps) << "event in the past";
        now_ = std::max(now_, event.time);
        hooks.on_event(event, now_);
      } else {
        OSCHED_CHECK_GE(arrival_time, now_ - kTimeEps) << "arrival in the past";
        now_ = std::max(now_, arrival_time);
        hooks.on_arrival(static_cast<JobId>(next_arrival), now_);
        ++next_arrival;
      }
    }
  }

  void run(SimulationHooks& hooks) { run<SimulationHooks>(hooks); }

 private:
  const Store& store_;
  EventQueue events_;
  Time now_ = 0.0;
};

using SimEngine = SimEngineFor<Instance>;

}  // namespace osched
