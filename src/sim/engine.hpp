// Online simulation driver.
//
// Merges the instance's arrival sequence with the scheduler's own future
// events (completions, wakeups) and delivers them in time order. At equal
// times, scheduled events fire BEFORE arrivals: a job arriving exactly when
// the running job completes sees an idle machine, which matches the paper's
// convention that a job counts as "dispatched during the execution of k"
// only at times strictly inside k's execution window.
//
// The engine is a template over the Store it reads arrivals from — the
// batch Instance façade, or one of the per-backend views of
// instance/processing_store.hpp (only job(j).release and num_jobs() are
// touched, so any Store the policies accept works here too). SimEngine is
// the Instance-typed alias the generic callers use.
#pragma once

#include "instance/instance.hpp"
#include "sim/event_queue.hpp"
#include "sim/fleet.hpp"

namespace osched {

class SimulationHooks {
 public:
  virtual ~SimulationHooks() = default;

  /// A new job is released. The scheduler must dispatch (or reject) it.
  virtual void on_arrival(JobId job, Time now) = 0;

  /// A scheduler-scheduled event (typically a completion) fires.
  virtual void on_event(const SimEvent& event, Time now) = 0;

  /// A fleet-membership change fires (see sim/fleet.hpp). The default
  /// aborts: hooks only receive these when driven with a non-empty
  /// FleetPlan, and every shipped policy overrides this. A kFail may
  /// re-dispatch or reject orphaned jobs synchronously.
  virtual void on_fleet(const FleetEvent& event, Time now) {
    (void)now;
    OSCHED_CHECK(false) << "policy does not handle fleet event "
                        << to_string(event.kind) << " for machine "
                        << event.machine;
  }

  /// Load-shed request from an overloaded driver (the saturated-window case
  /// of service::SessionOptions — see scheduler_session.hpp): reject the
  /// lowest-value PENDING (dispatched, not yet started) job and return its
  /// id, or kInvalidJob when nothing is pending. Value order is uniform
  /// across policies so shedding stays a deterministic function of the
  /// accepted sequence: smallest weight first, ties to the largest
  /// remaining processing time, then the largest id. The default aborts:
  /// only drivers configured with a live-window cap ever call this.
  virtual JobId on_shed(Time now) {
    (void)now;
    OSCHED_CHECK(false) << "policy does not support load shedding";
    return kInvalidJob;
  }

  /// ε-charged load shed (service::ShedPolicy::kEpsilonCharged): reject one
  /// pending job AND book it into the policy's own rejection accounting as
  /// if the paper's Rule 2 had fired — so the eviction is covered by the
  /// same charging argument as an algorithmic rejection rather than sitting
  /// outside the analysis. Theorem 1 overrides this with the Rule-2-style
  /// victim (globally largest queued effective processing time, ties to
  /// the largest id) and extends its dual accounting; policies without a
  /// rejection analysis inherit this fallback to the fixed on_shed rule
  /// (the derived budget still applies — see SchedulerSession::make_room).
  /// Same contract as on_shed otherwise: returns the victim id, or
  /// kInvalidJob when nothing is pending anywhere.
  virtual JobId on_shed_charged(Time now) { return on_shed(now); }

  /// Rejections the policy has already charged against the paper's 2εn
  /// rejection budget (Rule 1 + Rule 2 for Theorem 1 and the weighted
  /// extension, the ε-budgeted arrivals for Theorem 2 and the immediate-
  /// rejection baseline). Forced fleet rejections and overload sheds are
  /// NOT included — the session accounts sheds itself and fault rejections
  /// sit outside the guarantee. Baselines without rejection machinery
  /// report 0, making the whole derived budget available to sheds.
  virtual std::size_t charged_rejections() const { return 0; }
};

template <class Store>
class SimEngineFor {
 public:
  /// `plan` (optional, not owned, must outlive the engine) adds fleet
  /// membership events to the merge. A null/empty plan compiles down to the
  /// original two-way merge.
  explicit SimEngineFor(const Store& store, const FleetPlan* plan = nullptr)
      : store_(store), plan_(plan) {}

  EventQueue& events() { return events_; }
  Time now() const { return now_; }

  /// Runs to quiescence: all arrivals delivered, fleet plan exhausted, and
  /// the event queue drained. Statically typed so the policy's handlers
  /// inline into the loop (the batch entry points call this with the
  /// concrete policy type); the virtual-dispatch form below serves
  /// type-erased callers.
  ///
  /// Tie order at equal timestamps: scheduler events, then fleet events,
  /// then arrivals. Events-before-arrivals matches the paper's convention
  /// (see the header comment); fleet-before-arrivals means a job arriving
  /// the instant a machine fails is decided against the post-fail fleet,
  /// which is the only order under which "never dispatch to a down
  /// machine" can hold.
  template <class Hooks>
  void run(Hooks& hooks) {
    std::size_t next_arrival = 0;
    std::size_t next_fleet = 0;
    const std::size_t n = store_.num_jobs();
    const std::size_t nf = plan_ ? plan_->events.size() : 0;

    for (;;) {
      const Time arrival_time =
          next_arrival < n
              ? store_.job(static_cast<JobId>(next_arrival)).release
              : kTimeInfinity;
      const Time fleet_time =
          next_fleet < nf ? plan_->events[next_fleet].time : kTimeInfinity;
      const auto event_time = events_.peek_time();

      if (next_arrival >= n && next_fleet >= nf && !event_time.has_value())
        break;

      if (event_time.has_value() && *event_time <= fleet_time &&
          *event_time <= arrival_time) {
        const SimEvent event = events_.pop();
        OSCHED_CHECK_GE(event.time, now_ - kTimeEps) << "event in the past";
        now_ = std::max(now_, event.time);
        hooks.on_event(event, now_);
      } else if (next_fleet < nf && fleet_time <= arrival_time) {
        const FleetEvent& event = plan_->events[next_fleet];
        now_ = std::max(now_, event.time);
        hooks.on_fleet(event, now_);
        ++next_fleet;
      } else {
        OSCHED_CHECK_GE(arrival_time, now_ - kTimeEps) << "arrival in the past";
        now_ = std::max(now_, arrival_time);
        hooks.on_arrival(static_cast<JobId>(next_arrival), now_);
        ++next_arrival;
      }
    }
  }

  void run(SimulationHooks& hooks) { run<SimulationHooks>(hooks); }

 private:
  const Store& store_;
  const FleetPlan* plan_ = nullptr;
  EventQueue events_;
  Time now_ = 0.0;
};

using SimEngine = SimEngineFor<Instance>;

}  // namespace osched
