// Online simulation driver.
//
// Merges the instance's arrival sequence with the scheduler's own future
// events (completions, wakeups) and delivers them in time order. At equal
// times, scheduled events fire BEFORE arrivals: a job arriving exactly when
// the running job completes sees an idle machine, which matches the paper's
// convention that a job counts as "dispatched during the execution of k"
// only at times strictly inside k's execution window.
#pragma once

#include "instance/instance.hpp"
#include "sim/event_queue.hpp"

namespace osched {

class SimulationHooks {
 public:
  virtual ~SimulationHooks() = default;

  /// A new job is released. The scheduler must dispatch (or reject) it.
  virtual void on_arrival(JobId job, Time now) = 0;

  /// A scheduler-scheduled event (typically a completion) fires.
  virtual void on_event(const SimEvent& event, Time now) = 0;
};

class SimEngine {
 public:
  explicit SimEngine(const Instance& instance) : instance_(instance) {}

  EventQueue& events() { return events_; }
  Time now() const { return now_; }

  /// Runs to quiescence: all arrivals delivered and the event queue drained.
  void run(SimulationHooks& hooks);

 private:
  const Instance& instance_;
  EventQueue events_;
  Time now_ = 0.0;
};

}  // namespace osched
