#include "sim/engine.hpp"

namespace osched {

void SimEngine::run(SimulationHooks& hooks) {
  std::size_t next_arrival = 0;
  const std::size_t n = instance_.num_jobs();

  for (;;) {
    const Time arrival_time = next_arrival < n
                                  ? instance_.job(static_cast<JobId>(next_arrival)).release
                                  : kTimeInfinity;
    const auto event_time = events_.peek_time();

    if (next_arrival >= n && !event_time.has_value()) break;

    if (event_time.has_value() && *event_time <= arrival_time) {
      const SimEvent event = events_.pop();
      OSCHED_CHECK_GE(event.time, now_ - kTimeEps) << "event in the past";
      now_ = std::max(now_, event.time);
      hooks.on_event(event, now_);
    } else {
      OSCHED_CHECK_GE(arrival_time, now_ - kTimeEps) << "arrival in the past";
      now_ = std::max(now_, arrival_time);
      hooks.on_arrival(static_cast<JobId>(next_arrival), now_);
      ++next_arrival;
    }
  }
}

}  // namespace osched
