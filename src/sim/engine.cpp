#include "sim/engine.hpp"

// SimEngine::run is a header template now (the batch entry points inline
// their policy into the event loop); this translation unit stays for the
// build graph.
