// Cancellable discrete-event queue.
//
// Schedulers register future events (job completions, timed wakeups) and may
// cancel them (e.g. Rule 1 interrupts the running job, voiding its scheduled
// completion). The production implementation is the machine-indexed
// tournament tree of util/event_queue.hpp (O(1) peek, eager cancellation,
// O(log m) updates); EventQueue below aliases it. HeapEventQueue keeps the
// previous lazy-cancel binary heap as the reference implementation: both
// order events by (time, insertion sequence) and expose identical
// generation-stamped handles, and tests/event_queue_diff_test.cpp drives
// them in lockstep to pin the event order down bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/event_queue.hpp"
#include "util/types.hpp"

namespace osched {

/// Production event queue: the tournament tree over machines.
using EventQueue = util::TournamentEventQueue;

/// Reference implementation: lazy-cancel binary heap over all live events.
/// Every handle names a generation-stamped slot, a cancel bumps the slot's
/// generation, and a heap entry whose stamp no longer matches its slot is
/// skipped at pop time. Slots are recycled through a free list.
class HeapEventQueue {
 public:
  /// Schedules an event and returns its cancellation handle.
  std::uint64_t schedule(Time time, MachineId machine, JobId job) {
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(generations_.size());
      generations_.push_back(1);
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    heap_.push(Entry{time, next_seq_++, slot, generations_[slot], machine, job});
    ++live_;
    return handle_of(slot, generations_[slot]);
  }

  /// Cancels a previously scheduled event. Cancelling a handle twice or
  /// after it fired is a programming error.
  void cancel(std::uint64_t handle) {
    const auto slot = static_cast<std::uint32_t>(handle >> 32);
    const auto generation = static_cast<std::uint32_t>(handle);
    OSCHED_CHECK(slot < generations_.size() &&
                 generations_[slot] == generation && generation != 0)
        << "event handle " << handle << " is not live (double cancel?)";
    retire(slot);
    OSCHED_CHECK_GT(live_, 0u);
    --live_;
  }

  bool empty() const { return live_ == 0; }

  /// Time of the next live event, if any.
  std::optional<Time> peek_time() {
    skip_cancelled();
    if (heap_.empty()) return std::nullopt;
    return heap_.top().time;
  }

  /// Pops the next live event. Requires !empty().
  SimEvent pop() {
    skip_cancelled();
    OSCHED_CHECK(!heap_.empty());
    const Entry entry = heap_.top();
    heap_.pop();
    retire(entry.slot);
    OSCHED_CHECK_GT(live_, 0u);
    --live_;
    return SimEvent{entry.time, entry.seq, entry.machine, entry.job};
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
    MachineId machine;
    JobId job;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static std::uint64_t handle_of(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(slot) << 32) | generation;
  }

  /// Invalidates the slot's outstanding handle and recycles it. The bumped
  /// generation orphans the heap entry (if still queued) and any stale
  /// handle. Generation 0 is never live, so a zero handle can't match.
  void retire(std::uint32_t slot) {
    if (++generations_[slot] == 0) ++generations_[slot];
    free_slots_.push_back(slot);
  }

  void skip_cancelled() {
    while (!heap_.empty() &&
           generations_[heap_.top().slot] != heap_.top().generation) {
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::uint32_t> generations_;  ///< current stamp per slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace osched
