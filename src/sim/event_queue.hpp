// Cancellable discrete-event queue.
//
// Schedulers register future events (job completions, timed wakeups) and may
// cancel them (e.g. Rule 1 interrupts the running job, voiding its scheduled
// completion). Cancellation is lazy: cancelled ids are skipped at pop time.
// Ordering is (time, insertion sequence), so simultaneous events fire in the
// order they were scheduled — deterministic across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

struct SimEvent {
  Time time = 0.0;
  std::uint64_t id = 0;
  MachineId machine = kInvalidMachine;
  JobId job = kInvalidJob;
};

class EventQueue {
 public:
  /// Schedules an event and returns its cancellation handle.
  std::uint64_t schedule(Time time, MachineId machine, JobId job) {
    const std::uint64_t id = next_id_++;
    heap_.push(SimEvent{time, id, machine, job});
    ++live_;
    return id;
  }

  /// Cancels a previously scheduled event. Cancelling an id twice or after
  /// it fired is a programming error.
  void cancel(std::uint64_t id) {
    OSCHED_CHECK(cancelled_.insert(id).second) << "event " << id << " cancelled twice";
    OSCHED_CHECK_GT(live_, 0u);
    --live_;
  }

  bool empty() const { return live_ == 0; }

  /// Time of the next live event, if any.
  std::optional<Time> peek_time() {
    skip_cancelled();
    if (heap_.empty()) return std::nullopt;
    return heap_.top().time;
  }

  /// Pops the next live event. Requires !empty().
  SimEvent pop() {
    skip_cancelled();
    OSCHED_CHECK(!heap_.empty());
    SimEvent event = heap_.top();
    heap_.pop();
    OSCHED_CHECK_GT(live_, 0u);
    --live_;
    return event;
  }

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
  }

  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace osched
