#include "sim/validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace osched {

namespace {

struct Interval {
  Time begin;
  Time end;
  JobId job;
};

}  // namespace

std::vector<std::string> validate_schedule(const Schedule& schedule,
                                           const Instance& instance,
                                           const ValidationOptions& options) {
  std::vector<std::string> violations;
  auto violation = [&violations](const std::string& msg) {
    violations.push_back(msg);
  };

  OSCHED_CHECK_EQ(schedule.num_jobs(), instance.num_jobs());
  const double tol = options.tolerance;

  std::vector<std::vector<Interval>> busy(instance.num_machines());

  for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = schedule.record(j);
    const Job& job = instance.job(j);
    std::ostringstream tag;
    tag << "job " << j << " (" << to_string(rec.fate) << "): ";

    if (rec.fate == JobFate::kUnscheduled || rec.fate == JobFate::kPending) {
      if (options.require_all_decided) {
        violation(tag.str() + "left undecided at end of run");
      }
      continue;
    }

    // A job rejected at its arrival instant, before any dispatch, carries no
    // machine (immediate-rejection policies, Lemma 1 setting): only the
    // timing is checkable.
    if (rec.fate == JobFate::kRejectedPending && rec.machine == kInvalidMachine) {
      if (rec.started) violation(tag.str() + "queue-rejected but started");
      if (rec.rejection_time < job.release - tol) {
        violation(tag.str() + "rejected before release");
      }
      continue;
    }

    // Dispatched machine must exist and be eligible.
    if (rec.machine < 0 ||
        static_cast<std::size_t>(rec.machine) >= instance.num_machines()) {
      violation(tag.str() + "invalid machine index");
      continue;
    }
    if (!instance.eligible(rec.machine, j)) {
      violation(tag.str() + "assigned to ineligible machine");
      continue;
    }

    if (rec.fate == JobFate::kRejectedPending) {
      if (rec.started) violation(tag.str() + "queue-rejected but started");
      if (rec.rejection_time < job.release - tol) {
        violation(tag.str() + "rejected before release");
      }
      continue;
    }

    // Completed or rejected-running: must have started.
    if (!rec.started) {
      violation(tag.str() + "finished without starting");
      continue;
    }
    if (rec.start < job.release - tol) {
      violation(tag.str() + "started before release");
    }
    if (rec.speed <= 0.0) {
      violation(tag.str() + "non-positive speed");
      continue;
    }
    if (rec.end < rec.start - tol) {
      violation(tag.str() + "ends before it starts");
    }

    if (rec.fate == JobFate::kCompleted) {
      const Work p = instance.processing(rec.machine, j);
      const Time required = p / rec.speed;
      const Time actual = rec.end - rec.start;
      if (std::abs(actual - required) > tol * std::max(1.0, required)) {
        std::ostringstream msg;
        msg << tag.str() << "non-preemptive duration mismatch: ran " << actual
            << ", needs " << required;
        violation(msg.str());
      }
      if (options.require_deadlines && job.has_deadline() &&
          rec.end > job.deadline + tol) {
        std::ostringstream msg;
        msg << tag.str() << "misses deadline " << job.deadline << " (ends "
            << rec.end << ")";
        violation(msg.str());
      }
    } else {  // kRejectedRunning
      if (std::abs(rec.rejection_time - rec.end) > tol) {
        violation(tag.str() + "interruption time disagrees with end time");
      }
      // An interrupted job must not have exceeded its full processing need
      // (otherwise it should have completed).
      const Work p = instance.processing(rec.machine, j);
      if (rec.end - rec.start > p / rec.speed + tol) {
        violation(tag.str() + "ran longer than its processing requirement");
      }
    }

    if (rec.end > rec.start) {
      busy[static_cast<std::size_t>(rec.machine)].push_back(
          Interval{rec.start, rec.end, j});
    }
  }

  // Machine capacity: at most one job at a time unless the model allows
  // parallel speed-added execution.
  if (!options.allow_parallel_execution) {
    for (std::size_t i = 0; i < busy.size(); ++i) {
      auto& intervals = busy[i];
      std::sort(intervals.begin(), intervals.end(),
                [](const Interval& a, const Interval& b) {
                  return a.begin < b.begin;
                });
      for (std::size_t k = 1; k < intervals.size(); ++k) {
        if (intervals[k].begin < intervals[k - 1].end - tol) {
          std::ostringstream msg;
          msg << "machine " << i << ": jobs " << intervals[k - 1].job << " and "
              << intervals[k].job << " overlap ([" << intervals[k - 1].begin
              << "," << intervals[k - 1].end << ") vs [" << intervals[k].begin
              << "," << intervals[k].end << "))";
          violation(msg.str());
        }
      }
    }
  }

  return violations;
}

void check_schedule(const Schedule& schedule, const Instance& instance,
                    const ValidationOptions& options) {
  const auto violations = validate_schedule(schedule, instance, options);
  OSCHED_CHECK(violations.empty())
      << violations.size() << " violations; first: " << violations.front();
}

}  // namespace osched
