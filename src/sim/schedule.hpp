// Schedule record: the single source of truth for what an algorithm did.
//
// Every scheduler in the library emits a Schedule. Objectives (flow time,
// weighted flow time, energy) are recomputed from this record — never taken
// from a scheduler's internal accounting — and an independent validator
// (sim/validator.hpp) checks non-preemptive feasibility. This separation is
// what makes the experimental claims trustworthy: a bug in a scheduler can
// produce a bad objective value, but not a silently infeasible schedule.
#pragma once

#include <vector>

#include "instance/instance.hpp"
#include "instance/power.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

enum class JobFate {
  /// Never dispatched/decided — only legal mid-simulation.
  kUnscheduled,
  /// Dispatched and waiting or running (mid-simulation only).
  kPending,
  /// Ran non-preemptively to completion.
  kCompleted,
  /// Rejected while running (Rule 1 style interruption).
  kRejectedRunning,
  /// Rejected while waiting in a queue (Rule 2 style) or at arrival
  /// (immediate-rejection policies).
  kRejectedPending,
};

const char* to_string(JobFate fate);

struct JobRecord {
  JobFate fate = JobFate::kUnscheduled;
  MachineId machine = kInvalidMachine;  ///< machine dispatched to
  bool started = false;
  Time start = 0.0;    ///< execution start (valid when started)
  Speed speed = 1.0;   ///< constant execution speed (1.0 in unit-speed model)
  Time end = 0.0;      ///< completion, or interruption time when rejected-running
  Time rejection_time = 0.0;  ///< valid for either rejected fate

  bool rejected() const {
    return fate == JobFate::kRejectedRunning || fate == JobFate::kRejectedPending;
  }
  bool completed() const { return fate == JobFate::kCompleted; }
  /// Terminal = the record can never change again (completed or rejected).
  bool terminal() const { return completed() || rejected(); }
};

// ---- Record state transitions ----
//
// The legality of each fate transition is defined once, on the record
// itself, so every record store (the batch Schedule below, the streaming
// session's windowed store) enforces identical semantics. `j` is only used
// in abort messages.
void record_dispatched(JobRecord& rec, JobId j, MachineId machine);
void record_started(JobRecord& rec, JobId j, Time start, Speed speed);
void record_completed(JobRecord& rec, JobId j, Time end);
void record_rejected_running(JobRecord& rec, JobId j, Time now);
void record_rejected_pending(JobRecord& rec, JobId j, Time now);
/// Moves a pending job to another machine after its machine failed. Resets
/// `started` — a killed running job that is restarted (rather than shed)
/// runs from scratch elsewhere: the non-preemptive model has no partial
/// progress to carry over.
void record_requeued(JobRecord& rec, JobId j, MachineId machine);

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t num_jobs) : records_(num_jobs) {}

  std::size_t num_jobs() const { return records_.size(); }

  /// Grows the record table to at least n jobs (new records unscheduled).
  /// Streaming drivers extend as jobs are submitted; batch schedulers size
  /// once at construction and this is a no-op.
  void ensure_size(std::size_t n) {
    if (n > records_.size()) records_.resize(n);
  }

  JobRecord& record(JobId j) {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < records_.size());
    return records_[static_cast<std::size_t>(j)];
  }
  const JobRecord& record(JobId j) const {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < records_.size());
    return records_[static_cast<std::size_t>(j)];
  }

  // ---- Mutation helpers used by schedulers ----

  void mark_dispatched(JobId j, MachineId machine);
  void mark_started(JobId j, Time start, Speed speed);
  void mark_completed(JobId j, Time end);
  /// Rejection of the currently running job (interrupts execution at `now`).
  void mark_rejected_running(JobId j, Time now);
  /// Rejection of a job that never started (queue or at-arrival rejection).
  void mark_rejected_pending(JobId j, Time now);
  /// Re-dispatch of a pending job after a machine failure (fleet mode).
  void mark_requeued(JobId j, MachineId machine);

  // ---- Objective queries (require the paired instance) ----

  /// Flow time of one job: completion − release for completed jobs,
  /// rejection − release for rejected jobs (the paper's convention: a
  /// rejected job pays for the time it spent in the system).
  Time flow_time(JobId j, const Instance& instance) const;

  /// Sum of flow times. When include_rejected is false only completed jobs
  /// contribute (useful for comparing against no-rejection baselines).
  Time total_flow(const Instance& instance, bool include_rejected = true) const;
  Time total_weighted_flow(const Instance& instance,
                           bool include_rejected = true) const;
  Time max_flow(const Instance& instance, bool include_rejected = true) const;

  std::size_t num_completed() const;
  std::size_t num_rejected() const;
  Weight rejected_weight(const Instance& instance) const;

  /// Latest completion/interruption time across machines.
  Time makespan() const;

  const std::vector<JobRecord>& records() const { return records_; }

 private:
  std::vector<JobRecord> records_;
};

/// Total energy of a schedule in the speed-scaling model: per machine, the
/// speed profile is the SUM of the speeds of concurrently executing jobs
/// (Theorem 3's model allows parallel execution on one machine; Theorems 1/2
/// never overlap, in which case this reduces to a per-segment sum), and the
/// energy is the integral of power(profile).
Energy compute_energy(const Schedule& schedule, const Instance& instance,
                      const PowerFunction& power);

/// Per-machine variant with machine-specific power functions (size must
/// equal instance.num_machines()).
Energy compute_energy(const Schedule& schedule, const Instance& instance,
                      const std::vector<const PowerFunction*>& powers);

}  // namespace osched
