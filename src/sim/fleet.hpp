// Dynamic fleet membership: machines join, drain and fail mid-run.
//
// A FleetPlan is a time-ordered script of membership changes delivered to
// the policy by whatever owns the clock (SimEngine for batch runs, a
// SchedulerSession for streaming) through SimulationHooks::on_fleet — the
// same delivery discipline as completions, so a batch run and a streamed
// run of the same plan make bit-identical decisions. Semantics:
//
//  * kJoin: the machine (re-)enters the fleet and becomes a dispatch
//    candidate again. Machines listed in FleetPlan::initially_down start
//    outside the fleet and typically join later.
//  * kDrain: the machine stops accepting NEW dispatches; its running job
//    and already-queued jobs complete normally. A later kJoin cancels the
//    drain.
//  * kFail: the machine dies instantly. The running job's execution is lost
//    (non-preemptive model: partial work cannot be resumed) and every
//    queued job is orphaned. The policy must re-decide each orphan NOW:
//    re-dispatch it through its normal dispatch rule restricted to active
//    machines, or reject it. See the budget rules below.
//  * kSpeedChange: the machine's speed multiplier becomes `speed` (finite,
//    > 0; 1.0 restores nominal speed). The multiplier applies to jobs
//    STARTED at or after the event — a non-preemptive job in flight
//    finishes at its start-time speed, so delivery order alone (the same
//    completions -> fleet -> arrivals tie order) keeps batch and streamed
//    runs bit-identical. Legal in any membership state: a down machine's
//    multiplier can change and takes effect when it rejoins.
//
// Rejection budget (the constrained-rejection framing of Davies–Guruswami–
// Ren, arXiv 2511.00184, turned into an operator knob): rejection_budget is
// the number of jobs the scheduler may shed BECAUSE of faults.
//  * While budget remains and shed_killed_running is set, a killed running
//    job is rejected rather than restarted (its work is lost; restarting
//    delays everything queued behind it).
//  * An orphan (or a new arrival) with NO active eligible machine is
//    force-rejected — it cannot run anywhere. Forced rejections consume
//    budget while any remains but are never blocked by exhaustion: the
//    scheduler degrades, it does not deadlock or crash.
//  * Everything else is re-dispatched. All of it is counted in FleetStats.
//
// The paper's dual certificates (Theorem 1's lambda/beta fitting) assume a
// fixed machine set; under a non-empty FleetPlan the certified lower bound
// is NOT a valid OPT bound and callers must treat it as diagnostic only.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

enum class FleetEventKind : std::uint8_t {
  kJoin = 0,
  kDrain = 1,
  kFail = 2,
  kSpeedChange = 3,
};

const char* to_string(FleetEventKind kind);

struct FleetEvent {
  Time time = 0.0;
  MachineId machine = kInvalidMachine;
  FleetEventKind kind = FleetEventKind::kJoin;
  /// kSpeedChange only: the machine's new speed multiplier (finite, > 0).
  /// Ignored by the membership kinds.
  double speed = 1.0;
};

struct FleetPlan {
  /// Membership changes, non-decreasing in time (ties: vector order). At
  /// equal timestamps the drivers deliver internal events (completions)
  /// first, then fleet events, then arrivals.
  std::vector<FleetEvent> events;
  /// Machines outside the fleet at t = 0 (they may kJoin later).
  std::vector<MachineId> initially_down;
  /// Fault-shed allowance; see the header comment.
  std::size_t rejection_budget = 0;
  /// While budget remains, reject a killed running job instead of
  /// restarting it from scratch on a surviving machine.
  bool shed_killed_running = true;

  bool empty() const { return events.empty() && initially_down.empty(); }

  /// Structural check against a fleet of `num_machines`: machine ids in
  /// range, times finite/non-negative/sorted, transitions consistent (no
  /// join of an active machine, no fail/drain of a down one, no duplicate
  /// initially_down entry). Empty string = valid.
  std::string validate(std::size_t num_machines) const;
};

/// Operational counters every policy reports identically (surfaced through
/// api::RunSummary::fleet and the per-family result structs).
struct FleetStats {
  std::size_t joins = 0;
  std::size_t drains = 0;
  std::size_t fails = 0;
  /// Orphans re-queued onto surviving machines after a kFail.
  std::size_t redispatched = 0;
  /// Jobs shed because of faults (budget sheds + forced rejections).
  std::size_t fault_rejections = 0;
  /// Subset of fault_rejections with no active eligible machine at decision
  /// time — these fire even with an exhausted budget.
  std::size_t forced_rejections = 0;
  /// Budget units consumed (never exceeds the plan's rejection_budget).
  std::size_t budget_spent = 0;
  /// kSpeedChange events applied (throttles + recoveries).
  std::size_t speed_changes = 0;
  /// Speed changes that set a multiplier < 1 (the machine slowed down).
  std::size_t throttles = 0;
  /// Speed changes that set a multiplier >= 1 (back to or above nominal).
  std::size_t recoveries = 0;
  /// Smallest multiplier ever applied; 1.0 when no speed event fired.
  double min_speed_multiplier = 1.0;
};

enum class MachineAvail : std::uint8_t { kActive = 0, kDraining = 1, kDown = 2 };

/// Per-policy fleet bookkeeping: availability array, the inactive-machine
/// list the dispatch paths use to mask candidates out of the float-shadow
/// sweep (O(#inactive) overwrites, zero cost while the fleet is whole), and
/// the budget/stat counters. Policies own one FleetState and keep it in
/// sync from their on_fleet handler; every query is branch-cheap and, when
/// the plan is empty, `active()` is a single constant-true short-circuit so
/// fleet support never taxes the static-fleet hot paths.
class FleetState {
 public:
  void init(std::size_t num_machines, const FleetPlan& plan) {
    enabled_ = !plan.empty();
    budget_left_ = plan.rejection_budget;
    shed_killed_running_ = plan.shed_killed_running;
    if (!enabled_) return;
    const std::string problems = plan.validate(num_machines);
    OSCHED_CHECK(problems.empty()) << "invalid fleet plan: " << problems;
    avail_.assign(num_machines, MachineAvail::kActive);
    inactive_pos_.assign(num_machines, 0);
    for (const MachineId i : plan.initially_down) {
      avail_[static_cast<std::size_t>(i)] = MachineAvail::kDown;
      inactive_add(static_cast<std::size_t>(i));
    }
    // Speed tracking is allocated only when the plan scripts speed changes,
    // so membership-only plans keep multiplier queries constant-foldable.
    for (const FleetEvent& event : plan.events) {
      if (event.kind == FleetEventKind::kSpeedChange) {
        speed_enabled_ = true;
        break;
      }
    }
    if (speed_enabled_) {
      mult_.assign(num_machines, 1.0);
      scaled_pos_.assign(num_machines, 0);
    }
  }

  bool enabled() const { return enabled_; }
  bool active(std::size_t i) const {
    return !enabled_ || avail_[i] == MachineAvail::kActive;
  }
  bool all_active() const { return !enabled_ || inactive_list_.empty(); }
  std::size_t num_active() const {
    return !enabled_ ? avail_.size() : avail_.size() - inactive_list_.size();
  }
  /// Machines currently kDraining or kDown (the dispatch mask).
  const std::vector<std::uint32_t>& inactive_list() const {
    return inactive_list_;
  }

  /// True when the plan scripts any kSpeedChange event — policies branch on
  /// this once so speed-free plans keep their exact old dispatch paths.
  bool has_speed_events() const { return speed_enabled_; }
  /// The machine's current speed multiplier (1.0 without speed events).
  double speed_multiplier(std::size_t i) const {
    return !speed_enabled_ ? 1.0 : mult_[i];
  }
  bool any_speed_scaled() const {
    return speed_enabled_ && !scaled_list_.empty();
  }
  /// Machines whose multiplier currently differs from 1 — the O(#scaled)
  /// fixup list for the dispatch index's shadow sweep.
  const std::vector<std::uint32_t>& scaled_list() const {
    return scaled_list_;
  }

  void on_speed_change(MachineId machine, double multiplier) {
    const auto i = checked(machine);
    OSCHED_CHECK(speed_enabled_) << "speed change without a speed plan";
    OSCHED_CHECK(multiplier > 0.0 &&
                 multiplier <= std::numeric_limits<double>::max())
        << "machine " << machine << " speed multiplier " << multiplier
        << " invalid";
    const bool was_scaled = mult_[i] != 1.0;
    mult_[i] = multiplier;
    const bool is_scaled = multiplier != 1.0;
    if (is_scaled && !was_scaled) scaled_add(i);
    if (!is_scaled && was_scaled) scaled_remove(i);
    ++stats.speed_changes;
    if (multiplier < 1.0) {
      ++stats.throttles;
    } else {
      ++stats.recoveries;
    }
    if (multiplier < stats.min_speed_multiplier) {
      stats.min_speed_multiplier = multiplier;
    }
  }

  void on_join(MachineId machine) {
    const auto i = checked(machine);
    OSCHED_CHECK(avail_[i] != MachineAvail::kActive)
        << "machine " << machine << " joined while active";
    avail_[i] = MachineAvail::kActive;
    inactive_remove(i);
    ++stats.joins;
  }

  void on_drain(MachineId machine) {
    const auto i = checked(machine);
    OSCHED_CHECK(avail_[i] == MachineAvail::kActive)
        << "machine " << machine << " drained while not active";
    avail_[i] = MachineAvail::kDraining;
    inactive_add(i);
    ++stats.drains;
  }

  /// Marks the machine down; the policy clears its queue/running state and
  /// re-decides the orphans.
  void on_fail(MachineId machine) {
    const auto i = checked(machine);
    OSCHED_CHECK(avail_[i] != MachineAvail::kDown)
        << "machine " << machine << " failed while already down";
    if (avail_[i] == MachineAvail::kActive) inactive_add(i);
    avail_[i] = MachineAvail::kDown;
    ++stats.fails;
  }

  /// Consumes one budget unit if any remains.
  bool try_spend_budget() {
    if (budget_left_ == 0) return false;
    --budget_left_;
    ++stats.budget_spent;
    return true;
  }
  bool shed_killed_running() const { return shed_killed_running_; }

  /// Bookkeeping for a rejection with no active eligible machine.
  void note_forced_rejection() {
    ++stats.fault_rejections;
    ++stats.forced_rejections;
    try_spend_budget();
  }

  FleetStats stats;

 private:
  std::size_t checked(MachineId machine) const {
    OSCHED_CHECK(enabled_) << "fleet event without a fleet plan";
    OSCHED_CHECK(machine >= 0 &&
                 static_cast<std::size_t>(machine) < avail_.size())
        << "fleet event for machine " << machine << " of " << avail_.size();
    return static_cast<std::size_t>(machine);
  }

  // Swap-remove list with a position map, the same shape as the policies'
  // live-machine list; order never affects outcomes (it only masks).
  void inactive_add(std::size_t i) {
    inactive_pos_[i] = static_cast<std::uint32_t>(inactive_list_.size()) + 1;
    inactive_list_.push_back(static_cast<std::uint32_t>(i));
  }
  void inactive_remove(std::size_t i) {
    const std::uint32_t pos = inactive_pos_[i] - 1;
    const std::uint32_t last = inactive_list_.back();
    inactive_list_[pos] = last;
    inactive_pos_[last] = pos + 1;
    inactive_list_.pop_back();
    inactive_pos_[i] = 0;
  }
  void scaled_add(std::size_t i) {
    scaled_pos_[i] = static_cast<std::uint32_t>(scaled_list_.size()) + 1;
    scaled_list_.push_back(static_cast<std::uint32_t>(i));
  }
  void scaled_remove(std::size_t i) {
    const std::uint32_t pos = scaled_pos_[i] - 1;
    const std::uint32_t last = scaled_list_.back();
    scaled_list_[pos] = last;
    scaled_pos_[last] = pos + 1;
    scaled_list_.pop_back();
    scaled_pos_[i] = 0;
  }

  bool enabled_ = false;
  bool speed_enabled_ = false;
  bool shed_killed_running_ = true;
  std::size_t budget_left_ = 0;
  std::vector<MachineAvail> avail_;
  std::vector<std::uint32_t> inactive_list_;
  std::vector<std::uint32_t> inactive_pos_;
  // Exact speed multipliers plus the swap-remove scaled-machine list (same
  // shape as the inactive list; order never affects outcomes).
  std::vector<double> mult_;
  std::vector<std::uint32_t> scaled_list_;
  std::vector<std::uint32_t> scaled_pos_;
};

}  // namespace osched
