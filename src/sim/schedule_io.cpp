#include "sim/schedule_io.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace osched {

namespace {

const char* fate_token(JobFate fate) {
  switch (fate) {
    case JobFate::kUnscheduled: return "unscheduled";
    case JobFate::kPending: return "pending";
    case JobFate::kCompleted: return "completed";
    case JobFate::kRejectedRunning: return "rejected-running";
    case JobFate::kRejectedPending: return "rejected-pending";
  }
  return "?";
}

JobFate parse_fate(const std::string& token) {
  if (token == "unscheduled") return JobFate::kUnscheduled;
  if (token == "pending") return JobFate::kPending;
  if (token == "completed") return JobFate::kCompleted;
  if (token == "rejected-running") return JobFate::kRejectedRunning;
  if (token == "rejected-pending") return JobFate::kRejectedPending;
  OSCHED_CHECK(false) << "unknown fate token '" << token << "'";
  return JobFate::kUnscheduled;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void write_schedule_csv(const Schedule& schedule, std::ostream& out) {
  out << "job,fate,machine,started,start,speed,end,rejection_time\n";
  const auto precision = out.precision();
  out << std::setprecision(17);
  for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
    const JobRecord& rec = schedule.record(static_cast<JobId>(idx));
    out << idx << ',' << fate_token(rec.fate) << ',' << rec.machine << ','
        << (rec.started ? 1 : 0) << ',' << rec.start << ',' << rec.speed << ','
        << rec.end << ',' << rec.rejection_time << '\n';
  }
  out << std::setprecision(static_cast<int>(precision));
}

Schedule read_schedule_csv(std::istream& in) {
  std::string line;
  OSCHED_CHECK(static_cast<bool>(std::getline(in, line))) << "empty schedule CSV";
  OSCHED_CHECK(line.rfind("job,", 0) == 0) << "missing schedule CSV header";

  std::vector<JobRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_line(line);
    OSCHED_CHECK_EQ(fields.size(), 8u) << "malformed schedule row: " << line;
    const auto job = static_cast<std::size_t>(std::stoull(fields[0]));
    OSCHED_CHECK_EQ(job, records.size()) << "schedule rows out of order";
    JobRecord rec;
    rec.fate = parse_fate(fields[1]);
    rec.machine = static_cast<MachineId>(std::stol(fields[2]));
    rec.started = fields[3] == "1";
    rec.start = std::stod(fields[4]);
    rec.speed = std::stod(fields[5]);
    rec.end = std::stod(fields[6]);
    rec.rejection_time = std::stod(fields[7]);
    records.push_back(rec);
  }
  Schedule schedule(records.size());
  for (std::size_t idx = 0; idx < records.size(); ++idx) {
    schedule.record(static_cast<JobId>(idx)) = records[idx];
  }
  return schedule;
}

std::vector<std::string> diff_schedules(const Schedule& a, const Schedule& b,
                                        const ScheduleDiffOptions& options) {
  std::vector<std::string> differences;
  const auto add = [&differences, &options](std::string message) {
    if (options.max_differences == 0 ||
        differences.size() < options.max_differences) {
      differences.push_back(std::move(message));
    }
  };
  const auto full = [&differences, &options] {
    return options.max_differences != 0 &&
           differences.size() >= options.max_differences;
  };

  if (a.num_jobs() != b.num_jobs()) {
    add("job counts differ: " + std::to_string(a.num_jobs()) + " vs " +
        std::to_string(b.num_jobs()));
    return differences;
  }

  const double tol = options.time_tolerance;
  const auto time_differs = [tol](Time x, Time y) {
    return std::abs(x - y) > tol;
  };
  for (std::size_t idx = 0; idx < a.num_jobs() && !full(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& ra = a.record(j);
    const JobRecord& rb = b.record(j);
    const std::string prefix = "job " + std::to_string(idx) + ": ";
    if (ra.fate != rb.fate) {
      add(prefix + "fate " + fate_token(ra.fate) + " vs " + fate_token(rb.fate));
      continue;  // remaining fields are not comparable across fates
    }
    if (ra.machine != rb.machine) {
      add(prefix + "machine " + std::to_string(ra.machine) + " vs " +
          std::to_string(rb.machine));
    }
    if (ra.started != rb.started) {
      add(prefix + "started " + std::to_string(ra.started) + " vs " +
          std::to_string(rb.started));
    }
    if (ra.started && rb.started && time_differs(ra.start, rb.start)) {
      std::ostringstream msg;
      msg << prefix << "start " << ra.start << " vs " << rb.start;
      add(msg.str());
    }
    if (ra.started && rb.started && std::abs(ra.speed - rb.speed) > tol) {
      std::ostringstream msg;
      msg << prefix << "speed " << ra.speed << " vs " << rb.speed;
      add(msg.str());
    }
    if (ra.started && rb.started && time_differs(ra.end, rb.end)) {
      std::ostringstream msg;
      msg << prefix << "end " << ra.end << " vs " << rb.end;
      add(msg.str());
    }
    if (ra.rejected() && rb.rejected() &&
        time_differs(ra.rejection_time, rb.rejection_time)) {
      std::ostringstream msg;
      msg << prefix << "rejection_time " << ra.rejection_time << " vs "
          << rb.rejection_time;
      add(msg.str());
    }
  }
  return differences;
}

}  // namespace osched
