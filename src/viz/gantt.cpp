#include "viz/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/table.hpp"

namespace osched::viz {

namespace {

char glyph_for(JobId j) {
  static const char kGlyphs[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  constexpr std::size_t kCount = sizeof(kGlyphs) - 1;
  return kGlyphs[static_cast<std::size_t>(j) % kCount];
}

Time schedule_horizon(const Schedule& schedule, Time requested) {
  if (requested > 0.0) return requested;
  const Time makespan = schedule.makespan();
  return makespan > 0.0 ? makespan : 1.0;
}

}  // namespace

std::string render_gantt(const Schedule& schedule, const Instance& instance,
                         const GanttOptions& options) {
  OSCHED_CHECK_GE(options.width, 16u);
  const Time horizon = schedule_horizon(schedule, options.horizon);
  const double scale = static_cast<double>(options.width) / horizon;
  const std::size_t machines =
      options.max_machines > 0
          ? std::min(options.max_machines, instance.num_machines())
          : instance.num_machines();

  std::vector<std::string> rows(machines, std::string(options.width, '.'));
  std::ostringstream queue_rejections;

  for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = schedule.record(j);
    if (rec.fate == JobFate::kRejectedPending) {
      if (options.show_rejections && rec.machine != kInvalidMachine &&
          static_cast<std::size_t>(rec.machine) < machines) {
        queue_rejections << ' ' << glyph_for(j) << "@t=" << rec.rejection_time;
      }
      continue;
    }
    if (!rec.started || rec.machine == kInvalidMachine) continue;
    if (static_cast<std::size_t>(rec.machine) >= machines) continue;

    std::string& row = rows[static_cast<std::size_t>(rec.machine)];
    const auto begin = static_cast<std::size_t>(
        std::clamp(rec.start * scale, 0.0, static_cast<double>(options.width - 1)));
    const auto end = static_cast<std::size_t>(std::clamp(
        rec.end * scale, static_cast<double>(begin) + 1.0,
        static_cast<double>(options.width)));
    for (std::size_t c = begin; c < end; ++c) row[c] = glyph_for(j);
    if (options.show_rejections && rec.fate == JobFate::kRejectedRunning &&
        end > 0) {
      row[end - 1] = 'x';
    }
  }

  std::ostringstream out;
  out << "t=0" << std::string(options.width > 12 ? options.width - 12 : 1, ' ')
      << "t=" << util::Table::num(horizon, 4) << '\n';
  for (std::size_t i = 0; i < machines; ++i) {
    out << "m" << i << " |" << rows[i] << "|\n";
  }
  if (options.show_rejections && !queue_rejections.str().empty()) {
    out << "queue rejections:" << queue_rejections.str() << '\n';
  }
  out << "('x' = running job interrupted; '.' = idle)\n";
  return out.str();
}

std::string render_speed_profile(const Schedule& schedule,
                                 const Instance& instance, MachineId machine,
                                 const PowerFunction& power,
                                 const ProfileOptions& options) {
  OSCHED_CHECK_GE(options.width, 16u);
  OSCHED_CHECK_GE(options.height, 2u);
  OSCHED_CHECK(machine >= 0 &&
               static_cast<std::size_t>(machine) < instance.num_machines());
  const Time horizon = schedule_horizon(schedule, options.horizon);

  // Sample the stacked speed at the midpoint of every column.
  std::vector<double> speed(options.width, 0.0);
  for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = schedule.record(j);
    if (!rec.started || rec.machine != machine) continue;
    for (std::size_t c = 0; c < options.width; ++c) {
      const Time t =
          (static_cast<double>(c) + 0.5) / static_cast<double>(options.width) *
          horizon;
      if (t >= rec.start && t < rec.end) speed[c] += rec.speed;
    }
  }
  const double peak = std::max(1e-12, *std::max_element(speed.begin(), speed.end()));

  // Energy under the (true, not sampled) profile via the schedule helper on
  // a single-machine view is overkill here; the sampled Riemann sum is
  // printed as an approximation and labelled as such.
  double energy_estimate = 0.0;
  for (double s : speed) {
    energy_estimate +=
        power.power(s) * horizon / static_cast<double>(options.width);
  }

  std::ostringstream out;
  out << "machine " << machine << " speed profile (peak "
      << util::Table::num(peak, 4) << ", energy ~"
      << util::Table::num(energy_estimate, 4) << " under " << power.name()
      << ")\n";
  for (std::size_t level = options.height; level > 0; --level) {
    const double threshold =
        peak * (static_cast<double>(level) - 0.5) / static_cast<double>(options.height);
    out << (level == options.height ? "s^ " : "   ");
    for (std::size_t c = 0; c < options.width; ++c) {
      out << (speed[c] >= threshold ? '#' : ' ');
    }
    out << '\n';
  }
  out << "t> " << std::string(options.width, '-') << '\n';
  return out.str();
}

}  // namespace osched::viz
