// ASCII rendering of schedules: Gantt charts and machine speed profiles.
//
// The examples print these so a reader can SEE what the paper's policies do
// — where Rule 1 interrupts a running elephant, how Rule 2 trims a queue,
// how the Theorem 3 greedy stacks parallel executions — without any plotting
// dependency. Rendering is pure string building over the Schedule record;
// nothing here feeds back into measurements.
#pragma once

#include <string>

#include "instance/instance.hpp"
#include "instance/power.hpp"
#include "sim/schedule.hpp"

namespace osched::viz {

struct GanttOptions {
  /// Characters available for the time axis.
  std::size_t width = 96;
  /// Draw at most this many machines (0 = all).
  std::size_t max_machines = 0;
  /// Mark rejected-running jobs with 'x' at the interruption point and list
  /// queue rejections under the chart.
  bool show_rejections = true;
  /// Clip the axis at this time (0 = makespan).
  Time horizon = 0.0;
};

/// One row per machine; executions drawn as runs of the job's glyph
/// (0-9a-zA-Z cycling by id), '.' for idle. A legend maps glyphs to jobs.
std::string render_gantt(const Schedule& schedule, const Instance& instance,
                         const GanttOptions& options = {});

struct ProfileOptions {
  std::size_t width = 96;
  /// Vertical resolution (rows) of the speed axis.
  std::size_t height = 8;
  Time horizon = 0.0;  ///< 0 = makespan
};

/// Total-speed-over-time bar chart for one machine (speeds of concurrently
/// executing jobs add, Theorem 3's model). Also prints the energy under the
/// profile for the given power function.
std::string render_speed_profile(const Schedule& schedule,
                                 const Instance& instance, MachineId machine,
                                 const PowerFunction& power,
                                 const ProfileOptions& options = {});

}  // namespace osched::viz
