#include "core/energy_min/bruteforce.hpp"

#include <algorithm>
#include <limits>
#include <memory>

namespace osched {

namespace {

class Search {
 public:
  Search(const Instance& instance, const BruteForceOptions& options)
      : instance_(instance), options_(options) {
    if (options.machine_alphas.empty()) {
      for (std::size_t i = 0; i < instance.num_machines(); ++i) {
        powers_.push_back(std::make_unique<PolynomialPower>(options.alpha));
      }
    } else {
      OSCHED_CHECK_EQ(options.machine_alphas.size(), instance.num_machines());
      for (double alpha : options.machine_alphas) {
        powers_.push_back(std::make_unique<PolynomialPower>(alpha));
      }
    }
    const std::vector<Speed> speeds =
        options.speeds.empty() ? make_speed_grid(instance, options.speed_levels)
                               : options.speeds;
    const std::size_t n = instance.num_jobs();
    strategies_.reserve(n);
    iso_min_.resize(n, 0.0);
    for (std::size_t idx = 0; idx < n; ++idx) {
      const auto j = static_cast<JobId>(idx);
      strategies_.push_back(
          enumerate_strategies(instance, j, speeds, options.start_grid));
      OSCHED_CHECK(!strategies_[idx].empty())
          << "job " << j << " has no feasible strategy";
      double iso = std::numeric_limits<double>::infinity();
      for (const Strategy& s : strategies_[idx]) {
        const Work p = instance.processing(s.machine, j);
        iso = std::min(iso, powers_[static_cast<std::size_t>(s.machine)]->power(
                                s.speed) *
                                s.duration(p));
      }
      iso_min_[idx] = iso;
    }
    // Suffix sums of isolated minima: admissible lower bound on the cost of
    // the not-yet-placed jobs (marginals of convex powers are superadditive).
    iso_suffix_.resize(n + 1, 0.0);
    for (std::size_t idx = n; idx-- > 0;) {
      iso_suffix_[idx] = iso_suffix_[idx + 1] + iso_min_[idx];
    }
    profiles_.assign(instance.num_machines(), SpeedProfile{});
    current_.resize(n);
    best_choice_.resize(n);
  }

  std::optional<BruteForceResult> run() {
    dfs(0, 0.0);
    if (best_ == std::numeric_limits<double>::infinity()) return std::nullopt;

    BruteForceResult result;
    result.optimal_energy = best_;
    result.chosen = best_choice_;
    result.nodes_explored = nodes_;
    result.certified_optimal = nodes_ < options_.node_budget;
    result.schedule = Schedule(instance_.num_jobs());
    for (std::size_t idx = 0; idx < instance_.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      const Strategy& s = best_choice_[idx];
      const Work p = instance_.processing(s.machine, j);
      result.schedule.mark_dispatched(j, s.machine);
      result.schedule.mark_started(j, s.start, s.speed);
      result.schedule.mark_completed(j, s.start + s.duration(p));
    }
    return result;
  }

 private:
  void dfs(std::size_t idx, double cost_so_far) {
    if (nodes_ >= options_.node_budget) return;
    ++nodes_;
    if (cost_so_far + iso_suffix_[idx] >= best_) return;  // admissible prune
    if (idx == instance_.num_jobs()) {
      best_ = cost_so_far;
      best_choice_ = current_;
      return;
    }
    const auto j = static_cast<JobId>(idx);

    // Order strategies by marginal cost so good incumbents appear early.
    struct Cand {
      double marginal;
      std::size_t index;
    };
    std::vector<Cand> cands;
    cands.reserve(strategies_[idx].size());
    for (std::size_t k = 0; k < strategies_[idx].size(); ++k) {
      const Strategy& s = strategies_[idx][k];
      const Work p = instance_.processing(s.machine, j);
      const double marginal =
          profiles_[static_cast<std::size_t>(s.machine)].marginal_cost(
              s.start, s.start + s.duration(p), s.speed,
              *powers_[static_cast<std::size_t>(s.machine)]);
      cands.push_back({marginal, k});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.marginal < b.marginal; });

    for (const Cand& cand : cands) {
      if (cost_so_far + cand.marginal + iso_suffix_[idx + 1] >= best_) {
        // Candidates are sorted: everything after is at least as bad.
        break;
      }
      const Strategy& s = strategies_[idx][cand.index];
      const Work p = instance_.processing(s.machine, j);
      const Time end = s.start + s.duration(p);
      // Rebuild-free undo: SpeedProfile has no remove, so snapshot the
      // machine's profile (instances here are tiny by design).
      SpeedProfile snapshot = profiles_[static_cast<std::size_t>(s.machine)];
      profiles_[static_cast<std::size_t>(s.machine)].add(s.start, end, s.speed);
      current_[idx] = s;
      dfs(idx + 1, cost_so_far + cand.marginal);
      profiles_[static_cast<std::size_t>(s.machine)] = std::move(snapshot);
      if (nodes_ >= options_.node_budget) return;
    }
  }

  const Instance& instance_;
  BruteForceOptions options_;
  std::vector<std::unique_ptr<PolynomialPower>> powers_;
  std::vector<std::vector<Strategy>> strategies_;
  std::vector<double> iso_min_;
  std::vector<double> iso_suffix_;
  std::vector<SpeedProfile> profiles_;
  std::vector<Strategy> current_;
  std::vector<Strategy> best_choice_;
  double best_ = std::numeric_limits<double>::infinity();
  std::size_t nodes_ = 0;
};

}  // namespace

std::optional<BruteForceResult> brute_force_energy(
    const Instance& instance, const BruteForceOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;
  Search search(instance, options);
  return search.run();
}

}  // namespace osched
