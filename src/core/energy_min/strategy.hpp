// Strategies and machine speed profiles for the energy-minimization problem
// (Theorem 3).
//
// The paper discretizes times and speeds (section 4, losing only a (1+eps)
// factor): a *strategy* of job j is a triple (machine, start time, constant
// speed) whose execution window [start, start + p_ij/speed] fits in
// [r_j, d_j]. Jobs on one machine MAY overlap; the machine's speed is the
// sum of the speeds of the jobs executing at that moment, and the energy is
// the integral of P(total speed).
//
// SpeedProfile is the piecewise-constant total-speed function of a machine,
// supporting exact marginal-cost queries — the quantity
//   f_i(A* u s_ijk) - f_i(A*)
// that both the greedy algorithm and the dual variables beta_ijk need.
#pragma once

#include <map>
#include <vector>

#include "instance/instance.hpp"
#include "instance/power.hpp"
#include "util/types.hpp"

namespace osched {

struct Strategy {
  MachineId machine = kInvalidMachine;
  Time start = 0.0;
  Speed speed = 0.0;

  /// Execution duration for a job of volume p.
  Time duration(Work p) const { return p / speed; }
};

class SpeedProfile {
 public:
  /// Adds speed v over [begin, end).
  void add(Time begin, Time end, Speed v);

  /// Total speed at time t.
  Speed speed_at(Time t) const;

  /// Total energy: integral of power(speed(t)).
  Energy total_cost(const PowerFunction& power) const;

  /// Marginal energy of adding speed v over [begin, end):
  /// integral of power(u(t) + v) - power(u(t)).
  Energy marginal_cost(Time begin, Time end, Speed v,
                       const PowerFunction& power) const;

  /// Breakpoints (time, absolute speed from that time on), for inspection.
  const std::map<Time, Speed>& steps() const { return step_; }

  bool empty() const { return step_.empty(); }

 private:
  /// Ensures a breakpoint exists at t carrying the current speed.
  void ensure_breakpoint(Time t);

  /// speed(t) = value at the greatest key <= t; 0 before the first key.
  std::map<Time, Speed> step_;
};

/// Builds a geometric speed grid covering every job's feasible range: from
/// the slowest useful speed (stretch the easiest assignment across the whole
/// window) up to `headroom` times the fastest *required* speed.
std::vector<Speed> make_speed_grid(const Instance& instance,
                                   std::size_t levels, double headroom = 4.0);

/// All feasible strategies of job j: every eligible machine x speed from the
/// grid x start times r_j, r_j + start_grid, ... plus the latest feasible
/// start d_j - p/v (the exact "finish at the deadline" option). If the grid
/// contains no feasible speed for some machine, the exact-fit speed
/// p_ij/(d_j - r_j) is added for that machine, so the returned set is
/// non-empty for every job with a feasible window.
std::vector<Strategy> enumerate_strategies(const Instance& instance, JobId j,
                                           const std::vector<Speed>& speeds,
                                           Time start_grid);

}  // namespace osched
