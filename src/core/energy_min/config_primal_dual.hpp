// Theorem 3: online non-preemptive energy minimization with deadlines via
// the configuration-LP primal-dual approach.
//
// Algorithm (paper, section 4): at the arrival of job j, select the strategy
// s_ijk — a (machine, start, speed) triple — minimizing the marginal energy
//   f_i(A*_i u s_ijk) - f_i(A*_i)
// against the machine's current committed speed profile A*_i; commit it and
// never modify it (no interruption, no speed change). Jobs on one machine
// may execute in parallel (speeds add).
//
// Dual variables (for (lambda, mu)-smooth powers):
//   delta_j  = (1/lambda) * marginal increase at j's arrival,
//   beta_ijk = (1/lambda) * [f_i(A*_{i,<j} u s_ijk) - f_i(A*_{i,<j})],
//   gamma_i  = -(mu/lambda) * f_i(A*_i final).
// Lemma 7 shows feasibility; the dual objective is (1-mu)/lambda * ALG,
// hence ALG <= lambda/(1-mu) * OPT — which is alpha^alpha for P(s)=s^alpha.
#pragma once

#include <functional>
#include <vector>

#include "core/energy_min/strategy.hpp"
#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct ConfigPDOptions {
  double alpha = 2.0;  ///< power exponent P(s) = s^alpha on every machine
  /// Heterogeneous machines (the paper's full setting): P_i(s) = s^{alpha_i}
  /// per machine. When non-empty, must have one entry per machine and
  /// overrides `alpha`; the guarantee is driven by alpha = max_i alpha_i.
  std::vector<double> machine_alphas;
  /// Discrete speed set; empty means make_speed_grid(instance, speed_levels).
  std::vector<Speed> speeds;
  std::size_t speed_levels = 8;
  /// Start-time grid step.
  Time start_grid = 1.0;
};

/// Resolved per-machine exponents (machine_alphas, or alpha broadcast).
std::vector<double> resolve_machine_alphas(const ConfigPDOptions& options,
                                           std::size_t num_machines);

/// Observer invoked per arrival BEFORE the chosen strategy is committed —
/// gives the dual-feasibility checker the exact pre-arrival profiles it
/// needs to evaluate beta_ijk for arbitrary strategies.
struct ArrivalObservation {
  JobId job = kInvalidJob;
  const std::vector<SpeedProfile>* profiles = nullptr;  ///< pre-commit, per machine
  const std::vector<Strategy>* strategies = nullptr;    ///< feasible set of j
  std::size_t chosen = 0;                               ///< index into strategies
  double chosen_marginal = 0.0;
};
using ArrivalObserver = std::function<void(const ArrivalObservation&)>;

struct ConfigPDResult {
  Schedule schedule;
  std::vector<Strategy> chosen;  ///< per job
  Energy algorithm_energy = 0.0;  ///< sum_i f_i(final profile)
  /// Per-job dual delta_j = marginal / lambda(alpha).
  std::vector<double> delta;
  /// Dual objective (1-mu)/lambda * ALG: a certified lower bound on OPT
  /// within the discretized strategy space (by Lemma 7 + weak duality).
  double dual_objective = 0.0;
  double opt_lower_bound = 0.0;
  /// Final per-machine profiles (for the dual checker's configuration
  /// constraint sampling).
  std::vector<SpeedProfile> profiles;
};

ConfigPDResult run_config_primal_dual(const Instance& instance,
                                      const ConfigPDOptions& options = {},
                                      const ArrivalObserver& observer = {});

}  // namespace osched
