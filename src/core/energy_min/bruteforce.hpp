// Exact optimal energy over a discretized strategy space, by
// branch-and-bound. Certifies the empirical competitive ratio of the
// configuration primal-dual scheduler on small instances (experiment E4)
// and provides the adversary witness cost in the Lemma 2 experiment (E5).
//
// The search space is the SAME (machine, start, speed) strategy grid the
// online algorithm uses, so measured ratios compare like against like; the
// admissible pruning bound exploits superadditivity of convex powers
// (P(u+v) - P(u) >= P(v)): a job's marginal cost can never beat its
// isolated cost on an empty machine.
#pragma once

#include <optional>
#include <vector>

#include "core/energy_min/strategy.hpp"
#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct BruteForceOptions {
  double alpha = 2.0;
  /// Heterogeneous machines: P_i(s) = s^{alpha_i}; overrides alpha when
  /// non-empty (must match the online options for like-for-like ratios).
  std::vector<double> machine_alphas;
  std::vector<Speed> speeds;  ///< empty = make_speed_grid(instance, levels)
  std::size_t speed_levels = 5;
  Time start_grid = 1.0;
  /// Safety valve: abort (return nullopt) after this many search nodes.
  std::size_t node_budget = 50'000'000;
};

struct BruteForceResult {
  Energy optimal_energy = 0.0;
  std::vector<Strategy> chosen;
  Schedule schedule;
  std::size_t nodes_explored = 0;
  /// True when the search ran to completion: optimal_energy is the exact
  /// optimum over the strategy space. False when the node budget ran out:
  /// optimal_energy is the best incumbent — still a feasible schedule, so
  /// still a valid UPPER bound on OPT (what the adversary experiments need).
  bool certified_optimal = true;
};

/// Returns nullopt only if the node budget was exhausted before any full
/// solution was found (with depth-first descent this requires a pathological
/// budget).
std::optional<BruteForceResult> brute_force_energy(
    const Instance& instance, const BruteForceOptions& options = {});

}  // namespace osched
