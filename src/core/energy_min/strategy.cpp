#include "core/energy_min/strategy.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace osched {

void SpeedProfile::ensure_breakpoint(Time t) {
  auto it = step_.upper_bound(t);
  if (it == step_.begin()) {
    step_.emplace(t, 0.0);
    return;
  }
  --it;
  if (it->first != t) step_.emplace(t, it->second);
}

void SpeedProfile::add(Time begin, Time end, Speed v) {
  OSCHED_CHECK_LT(begin, end);
  OSCHED_CHECK_GT(v, 0.0);
  ensure_breakpoint(begin);
  ensure_breakpoint(end);
  for (auto it = step_.find(begin); it != step_.end() && it->first < end; ++it) {
    it->second += v;
  }
}

Speed SpeedProfile::speed_at(Time t) const {
  auto it = step_.upper_bound(t);
  if (it == step_.begin()) return 0.0;
  --it;
  return it->second;
}

Energy SpeedProfile::total_cost(const PowerFunction& power) const {
  Energy total = 0.0;
  for (auto it = step_.begin(); it != step_.end(); ++it) {
    auto next = std::next(it);
    if (next == step_.end()) {
      OSCHED_CHECK(it->second <= kTimeEps)
          << "profile does not return to zero (trailing speed " << it->second << ")";
      break;
    }
    if (it->second > 0.0) {
      total += power.power(it->second) * (next->first - it->first);
    }
  }
  return total;
}

Energy SpeedProfile::marginal_cost(Time begin, Time end, Speed v,
                                   const PowerFunction& power) const {
  OSCHED_CHECK_LT(begin, end);
  Energy total = 0.0;
  Time cursor = begin;
  auto it = step_.upper_bound(begin);
  if (it != step_.begin()) --it;

  while (cursor < end) {
    // Current segment [seg_begin, seg_end) with constant speed u.
    Speed u = 0.0;
    Time seg_end = end;
    if (it != step_.end() && it->first <= cursor) {
      u = it->second;
      auto next = std::next(it);
      seg_end = next == step_.end() ? end : std::min(end, next->first);
      it = next;
    } else if (it != step_.end()) {
      // Before the next breakpoint the profile is whatever the previous
      // step said; when cursor precedes the first breakpoint, u = 0.
      seg_end = std::min(end, it->first);
    }
    total += (power.power(u + v) - power.power(u)) * (seg_end - cursor);
    cursor = seg_end;
  }
  return total;
}

std::vector<Speed> make_speed_grid(const Instance& instance,
                                   std::size_t levels, double headroom) {
  OSCHED_CHECK_GE(levels, 2u);
  double slowest = std::numeric_limits<double>::infinity();
  double fastest_required = 0.0;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = instance.job(j);
    OSCHED_CHECK(job.has_deadline())
        << "energy minimization requires deadlines (job " << j << ")";
    const Time window = job.deadline - job.release;
    OSCHED_CHECK_GT(window, 0.0);
    // Slowest useful: cheapest assignment stretched over the full window.
    slowest = std::min(slowest, instance.min_processing(j) / window);
    // Fastest required: even the cheapest machine needs at least this.
    fastest_required = std::max(fastest_required, instance.min_processing(j) / window);
  }
  OSCHED_CHECK_GT(fastest_required, 0.0);
  const double lo = slowest;
  const double hi = fastest_required * headroom;
  std::vector<Speed> grid;
  grid.reserve(levels);
  if (hi <= lo * (1.0 + 1e-12)) {
    grid.push_back(lo);
    return grid;
  }
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(levels - 1));
  double v = lo;
  for (std::size_t k = 0; k < levels; ++k) {
    grid.push_back(v);
    v *= ratio;
  }
  return grid;
}

std::vector<Strategy> enumerate_strategies(const Instance& instance, JobId j,
                                           const std::vector<Speed>& speeds,
                                           Time start_grid) {
  OSCHED_CHECK_GT(start_grid, 0.0);
  const Job& job = instance.job(j);
  OSCHED_CHECK(job.has_deadline());
  std::vector<Strategy> out;

  for (const MachineId machine : instance.eligible_machines(j)) {
    const Work p = instance.processing_unchecked(machine, j);
    const Time window = job.deadline - job.release;

    bool machine_has_feasible = false;
    auto add_starts_for_speed = [&](Speed v) {
      const Time duration = p / v;
      if (duration > window + kTimeEps) return;
      machine_has_feasible = true;
      const Time latest = job.deadline - duration;
      for (Time start = job.release; start <= latest + kTimeEps;
           start += start_grid) {
        out.push_back(Strategy{machine, std::min(start, latest), v});
      }
      // The exact latest start (finish at the deadline), if the stepping
      // missed it.
      const Time last_step =
          job.release +
          std::floor((latest - job.release) / start_grid + kTimeEps) * start_grid;
      if (latest - last_step > kTimeEps) {
        out.push_back(Strategy{machine, latest, v});
      }
    };

    for (Speed v : speeds) add_starts_for_speed(v);
    if (!machine_has_feasible) {
      // Exact-fit speed: run across the whole window.
      add_starts_for_speed(p / window);
    }
  }
  return out;
}

}  // namespace osched
