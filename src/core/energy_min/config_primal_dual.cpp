#include "core/energy_min/config_primal_dual.hpp"

#include <algorithm>
#include <limits>
#include <memory>

namespace osched {

std::vector<double> resolve_machine_alphas(const ConfigPDOptions& options,
                                           std::size_t num_machines) {
  if (options.machine_alphas.empty()) {
    return std::vector<double>(num_machines, options.alpha);
  }
  OSCHED_CHECK_EQ(options.machine_alphas.size(), num_machines)
      << "machine_alphas must have one entry per machine";
  for (double alpha : options.machine_alphas) OSCHED_CHECK_GT(alpha, 1.0);
  return options.machine_alphas;
}

ConfigPDResult run_config_primal_dual(const Instance& instance,
                                      const ConfigPDOptions& options,
                                      const ArrivalObserver& observer) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;
  OSCHED_CHECK_GT(options.alpha, 1.0);

  const std::vector<double> alphas =
      resolve_machine_alphas(options, instance.num_machines());
  std::vector<std::unique_ptr<PolynomialPower>> powers;
  powers.reserve(alphas.size());
  for (double alpha : alphas) {
    powers.push_back(std::make_unique<PolynomialPower>(alpha));
  }
  // The guarantee (and the dual scaling) is driven by alpha = max_i alpha_i.
  const double alpha_max = *std::max_element(alphas.begin(), alphas.end());
  const SmoothnessParams smooth = polynomial_smoothness(alpha_max);

  const std::vector<Speed> speeds =
      options.speeds.empty() ? make_speed_grid(instance, options.speed_levels)
                             : options.speeds;

  ConfigPDResult result;
  result.schedule = Schedule(instance.num_jobs());
  result.chosen.resize(instance.num_jobs());
  result.delta.resize(instance.num_jobs(), 0.0);
  result.profiles.assign(instance.num_machines(), SpeedProfile{});

  // Jobs arrive in release order (the Instance keeps them sorted); each is
  // committed greedily and never revisited.
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const std::vector<Strategy> strategies =
        enumerate_strategies(instance, j, speeds, options.start_grid);
    OSCHED_CHECK(!strategies.empty())
        << "job " << j << " has no feasible strategy (window too tight)";

    double best_marginal = std::numeric_limits<double>::infinity();
    std::size_t best_index = 0;
    for (std::size_t k = 0; k < strategies.size(); ++k) {
      const Strategy& s = strategies[k];
      const auto machine = static_cast<std::size_t>(s.machine);
      const Work p = instance.processing(s.machine, j);
      const double marginal = result.profiles[machine].marginal_cost(
          s.start, s.start + s.duration(p), s.speed, *powers[machine]);
      if (marginal < best_marginal) {
        best_marginal = marginal;
        best_index = k;
      }
    }

    if (observer) {
      ArrivalObservation obs;
      obs.job = j;
      obs.profiles = &result.profiles;
      obs.strategies = &strategies;
      obs.chosen = best_index;
      obs.chosen_marginal = best_marginal;
      observer(obs);
    }

    const Strategy& chosen = strategies[best_index];
    const Work p = instance.processing(chosen.machine, j);
    const Time end = chosen.start + chosen.duration(p);
    result.profiles[static_cast<std::size_t>(chosen.machine)].add(
        chosen.start, end, chosen.speed);
    result.chosen[idx] = chosen;
    result.delta[idx] = best_marginal / smooth.lambda;

    result.schedule.mark_dispatched(j, chosen.machine);
    result.schedule.mark_started(j, chosen.start, chosen.speed);
    result.schedule.mark_completed(j, end);
  }

  Energy total = 0.0;
  for (std::size_t i = 0; i < result.profiles.size(); ++i) {
    total += result.profiles[i].total_cost(*powers[i]);
  }
  result.algorithm_energy = total;
  // Dual objective: sum_j delta_j + sum_i gamma_i
  //   = ALG/lambda - (mu/lambda) * ALG = (1-mu)/lambda * ALG.
  result.dual_objective = (1.0 - smooth.mu) / smooth.lambda * total;
  result.opt_lower_bound = result.dual_objective;
  return result;
}

}  // namespace osched
