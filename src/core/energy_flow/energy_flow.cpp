#include "core/energy_flow/energy_flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace osched {

double theorem2_gamma(double eps, double alpha) {
  OSCHED_CHECK_GT(eps, 0.0);
  OSCHED_CHECK_GT(alpha, 1.0);
  const double lead = std::pow(eps / (1.0 + eps), 1.0 / (alpha - 1.0));
  const double inner = alpha - 1.0 + std::log(alpha - 1.0);
  if (inner > 0.0) {
    // Paper's choice (proof of Theorem 2).
    return lead / (alpha - 1.0) * std::pow(inner, (alpha - 1.0) / alpha);
  }
  // For alpha <= ~1.567 the closed form is non-positive; fall back to the
  // leading factor (any gamma > 0 yields a correct algorithm; only the
  // stated constant in the ratio changes).
  return lead;
}

double isolated_job_constant(double alpha) {
  OSCHED_CHECK_GT(alpha, 1.0);
  const double a1 = alpha - 1.0;
  return std::pow(a1, 1.0 / alpha) + std::pow(a1, (1.0 - alpha) / alpha);
}

namespace {

/// Pending order: non-increasing density, ties earliest release then id.
struct DensityKey {
  double density = 0.0;
  Time r = 0.0;
  JobId id = kInvalidJob;
  Weight weight = 0.0;
  Work volume = 0.0;

  bool operator<(const DensityKey& other) const {
    if (density != other.density) return density > other.density;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<DensityKey> pending;
  Weight pending_weight = 0.0;

  JobId running = kInvalidJob;
  Speed running_speed = 0.0;
  Time running_start = 0.0;
  Time running_end = 0.0;
  Work running_volume = 0.0;
  double v_counter = 0.0;  ///< weight dispatched during the current execution
  std::uint64_t completion_event = 0;
};

class EnergyFlowSimulation final : public SimulationHooks {
 public:
  EnergyFlowSimulation(const Instance& instance, const EnergyFlowOptions& options)
      : instance_(instance),
        options_(options),
        gamma_(options.gamma > 0.0 ? options.gamma
                                   : theorem2_gamma(options.epsilon, options.alpha)),
        engine_(instance),
        schedule_(instance.num_jobs()),
        extra_(instance.num_jobs(), 0.0),
        lambda_(instance.num_jobs(), 0.0),
        machines_(instance.num_machines()) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
    OSCHED_CHECK_GT(options.alpha, 1.0);
    OSCHED_CHECK_GT(gamma_, 0.0);
  }

  EnergyFlowResult run() {
    engine_.run(*this);
    return finalize();
  }

  void on_arrival(JobId j, Time now) override {
    const Job& job = instance_.job(j);

    double best_lambda = std::numeric_limits<double>::infinity();
    MachineId best_machine = kInvalidMachine;
    for (const MachineId machine : instance_.eligible_machines(j)) {
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    OSCHED_CHECK(best_machine != kInvalidMachine)
        << "job " << j << " has no eligible machine";
    const double lambda_j =
        options_.epsilon / (1.0 + options_.epsilon) * best_lambda;
    sum_lambda_ += lambda_j;
    lambda_[static_cast<std::size_t>(j)] = lambda_j;

    MachineState& ms = machines_[static_cast<std::size_t>(best_machine)];
    schedule_.mark_dispatched(j, best_machine);
    ms.pending.insert(make_key(best_machine, j));
    ms.pending_weight += job.weight;

    if (options_.enable_rejection && ms.running != kInvalidJob) {
      ms.v_counter += job.weight;
      const Weight w_k = instance_.job(ms.running).weight;
      if (ms.v_counter > w_k / options_.epsilon) {
        reject_running(best_machine, now);
      }
    }

    if (ms.running == kInvalidJob) start_next(best_machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    schedule_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

 private:
  DensityKey make_key(MachineId i, JobId j) const {
    const Job& job = instance_.job(j);
    const Work p = instance_.processing_unchecked(i, j);
    return DensityKey{job.weight / p, job.release, j, job.weight, p};
  }

  /// lambda_ij with j virtually inserted into machine i's pending order.
  double lambda_ij(MachineId i, JobId j) const {
    const MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const Job& job = instance_.job(j);
    const Work p = instance_.processing_unchecked(i, j);
    const double density = job.weight / p;

    double prefix_weight = 0.0;
    double sum_before = 0.0;  // sum_{l < j} p_il / (gamma W_l^{1/alpha})
    Weight weight_after = 0.0;
    for (const DensityKey& key : ms.pending) {
      // Pending jobs were released earlier (or tie with smaller id), so
      // equal densities order before the new arrival.
      if (key.density >= density) {
        prefix_weight += key.weight;
        sum_before +=
            key.volume / (gamma_ * std::pow(prefix_weight, 1.0 / options_.alpha));
      } else {
        weight_after += key.weight;
      }
    }
    const double w_j_prefix = prefix_weight + job.weight;
    const double denom_j = gamma_ * std::pow(w_j_prefix, 1.0 / options_.alpha);
    sum_before += p / denom_j;  // the l = j term

    return job.weight * (p / options_.epsilon + sum_before) +
           weight_after * p / denom_j;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    OSCHED_CHECK_EQ(ms.running, kInvalidJob);
    if (ms.pending.empty()) return;
    const DensityKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());

    // Speed from the total pending weight INCLUDING the started job.
    const Speed speed =
        gamma_ * std::pow(ms.pending_weight, 1.0 / options_.alpha);
    OSCHED_CHECK_GT(speed, 0.0);
    ms.pending_weight -= key.weight;

    ms.running = key.id;
    ms.running_speed = speed;
    ms.running_start = now;
    ms.running_volume = key.volume;
    ms.running_end = now + key.volume / speed;
    ms.v_counter = 0.0;
    schedule_.mark_started(key.id, now, speed);
    ms.completion_event = engine_.events().schedule(ms.running_end, i, key.id);
  }

  void reject_running(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const JobId k = ms.running;
    const Time remaining_time = std::max(0.0, ms.running_end - now);

    engine_.events().cancel(ms.completion_event);
    schedule_.mark_rejected_running(k, now);

    // Definitive-finish extension: every job of U_i(now) (pending + k)
    // lingers an extra q_ik(now)/s_k = remaining_time in the V/Q set.
    extra_[static_cast<std::size_t>(k)] += remaining_time;
    for (const DensityKey& key : ms.pending) {
      extra_[static_cast<std::size_t>(key.id)] += remaining_time;
    }

    ms.running = kInvalidJob;
    ++rejections_;
  }

  EnergyFlowResult finalize() {
    EnergyFlowResult result;
    result.rejections = rejections_;
    result.gamma = gamma_;
    result.sum_lambda = sum_lambda_;
    result.definitive_finish.resize(instance_.num_jobs(), 0.0);

    // Integral of the total fractional weight V(t) = sum_i V_i(t):
    // each job contributes w over [r, S) (waiting at full remaining volume),
    // the linear-decay integral over [S, C), and its frozen residue
    // w*q_end/p over the definitive-finish extension [C, C~).
    double v_integral = 0.0;
    double iso_lb = 0.0;
    const double c1 = isolated_job_constant(options_.alpha);
    for (std::size_t idx = 0; idx < instance_.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      const Job& job = instance_.job(j);
      const JobRecord& rec = schedule_.record(j);
      OSCHED_CHECK(rec.started) << "job " << j << " never started";
      const Work p = instance_.processing(rec.machine, j);
      const Work q_end = rec.completed()
                             ? 0.0
                             : std::max(0.0, p - rec.speed * (rec.end - rec.start));
      v_integral += job.weight * (rec.start - job.release);
      v_integral += job.weight * (p + q_end) / (2.0 * p) * (rec.end - rec.start);
      v_integral += job.weight * q_end / p * extra_[idx];
      result.definitive_finish[idx] = rec.end + extra_[idx];

      iso_lb += c1 * std::pow(job.weight, (options_.alpha - 1.0) / options_.alpha) *
                instance_.min_processing(j);
    }
    result.v_integral = v_integral;

    const double alpha = options_.alpha;
    const double u_pow_alpha_coeff = std::pow(
        options_.epsilon / (gamma_ * (1.0 + options_.epsilon) * (alpha - 1.0)),
        alpha / (alpha - 1.0));
    result.dual_objective =
        sum_lambda_ - (alpha - 1.0) * u_pow_alpha_coeff * v_integral;

    const double primal_to_opt_factor =
        2.0 + alpha / (gamma_ * (alpha - 1.0) * c1);
    result.opt_lower_bound =
        std::max(0.0, result.dual_objective) / primal_to_opt_factor;
    result.iso_lower_bound = iso_lb;

    result.lambda = std::move(lambda_);
    result.schedule = std::move(schedule_);
    return result;
  }

  const Instance& instance_;
  EnergyFlowOptions options_;
  double gamma_;
  SimEngine engine_;
  Schedule schedule_;
  std::vector<double> extra_;
  std::vector<double> lambda_;
  std::vector<MachineState> machines_;
  double sum_lambda_ = 0.0;
  std::size_t rejections_ = 0;
};

}  // namespace

EnergyFlowResult run_energy_flow(const Instance& instance,
                                 const EnergyFlowOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;
  EnergyFlowSimulation simulation(instance, options);
  return simulation.run();
}

double reference_energy_lambda_ij(
    const std::vector<std::pair<Weight, Work>>& pending_by_density, Weight w_j,
    Work p_ij, double eps, double alpha, double gamma) {
  const double density_j = w_j / p_ij;
  double prefix_weight = 0.0;
  double sum_before = 0.0;
  Weight weight_after = 0.0;
  for (const auto& [w, p] : pending_by_density) {
    if (w / p >= density_j) {
      prefix_weight += w;
      sum_before += p / (gamma * std::pow(prefix_weight, 1.0 / alpha));
    } else {
      weight_after += w;
    }
  }
  const double w_prefix_j = prefix_weight + w_j;
  const double denom_j = gamma * std::pow(w_prefix_j, 1.0 / alpha);
  return w_j * (p_ij / eps + sum_before + p_ij / denom_j) +
         weight_after * p_ij / denom_j;
}

}  // namespace osched
