#include "core/energy_flow/energy_flow.hpp"

#include <cmath>

#include "core/energy_flow/energy_flow_policy.hpp"
#include "instance/processing_store.hpp"
#include "sim/engine.hpp"

namespace osched {

double theorem2_gamma(double eps, double alpha) {
  OSCHED_CHECK_GT(eps, 0.0);
  OSCHED_CHECK_GT(alpha, 1.0);
  const double lead = std::pow(eps / (1.0 + eps), 1.0 / (alpha - 1.0));
  const double inner = alpha - 1.0 + std::log(alpha - 1.0);
  if (inner > 0.0) {
    // Paper's choice (proof of Theorem 2).
    return lead / (alpha - 1.0) * std::pow(inner, (alpha - 1.0) / alpha);
  }
  // For alpha <= ~1.567 the closed form is non-positive; fall back to the
  // leading factor (any gamma > 0 yields a correct algorithm; only the
  // stated constant in the ratio changes).
  return lead;
}

double isolated_job_constant(double alpha) {
  OSCHED_CHECK_GT(alpha, 1.0);
  const double a1 = alpha - 1.0;
  return std::pow(a1, 1.0 / alpha) + std::pow(a1, (1.0 - alpha) / alpha);
}

EnergyFlowResult run_energy_flow(const Instance& instance,
                                 const EnergyFlowOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  // One full instantiation per storage backend (see processing_store.hpp).
  return with_store_view(instance, [&](const auto& view) {
    using Store = std::decay_t<decltype(view)>;
    SimEngineFor<Store> engine(view, &options.fleet);
    Schedule schedule(view.num_jobs());
    EnergyFlowPolicy<Store, Schedule> policy(view, schedule, engine.events(),
                                             options);
    engine.run(policy);

    EnergyFlowResult result;
    policy.finalize_into(result);
    result.schedule = std::move(schedule);
    return result;
  });
}

double reference_energy_lambda_ij(
    const std::vector<std::pair<Weight, Work>>& pending_by_density, Weight w_j,
    Work p_ij, double eps, double alpha, double gamma) {
  const double density_j = w_j / p_ij;
  double prefix_weight = 0.0;
  double sum_before = 0.0;
  Weight weight_after = 0.0;
  for (const auto& [w, p] : pending_by_density) {
    if (w / p >= density_j) {
      prefix_weight += w;
      sum_before += p / (gamma * std::pow(prefix_weight, 1.0 / alpha));
    } else {
      weight_after += w;
    }
  }
  const double w_prefix_j = prefix_weight + w_j;
  const double denom_j = gamma * std::pow(w_prefix_j, 1.0 / alpha);
  return w_j * (p_ij / eps + sum_before + p_ij / denom_j) +
         weight_after * p_ij / denom_j;
}

}  // namespace osched
