// Theorem 2: online non-preemptive total weighted flow time plus energy on
// unrelated machines in the speed-scaling model, with weight rejections.
//
// Model: machine power P(s) = s^alpha, alpha > 1; job j has weight w_j,
// release r_j and per-machine volume p_ij; a job runs non-preemptively at a
// constant speed chosen when it starts.
//
// Policies (paper, section 3):
//  * Scheduling: pending jobs per machine in non-increasing DENSITY order
//    (delta_ij = w_j / p_ij), ties by earliest release then id; when the
//    machine idles, start the first pending job at speed
//       s = gamma * (sum of weights of all pending jobs, incl. the started
//           one)^{1/alpha},
//    frozen until the job completes or is rejected.
//  * Rejection: the running job k carries a weight counter v_k; every
//    arrival dispatched to the machine adds its weight; k is interrupted
//    and rejected the first time v_k > w_k / eps (strict).
//  * Dispatching: job j goes to argmin_i lambda_ij with
//       lambda_ij = w_j (p_ij/eps + sum_{l <= j} p_il/(gamma W_l^{1/alpha}))
//                   + (sum_{l > j} w_l) p_ij/(gamma W_j^{1/alpha}),
//    where the order runs over the pending jobs with j virtually inserted
//    (running job excluded) and W_l is the prefix weight up to l.
//
// Guarantee (Theorem 2): O((1 + 1/eps)^{alpha/(alpha-1)})-competitive for
// weighted flow + energy, rejecting at most an eps fraction of total weight.
//
// The run also produces a certified lower bound on OPT via the feasible
// dual of Lemma 6 (see EnergyFlowResult for the derivation notes).
#pragma once

#include <vector>

#include "instance/instance.hpp"
#include "sim/fleet.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct EnergyFlowOptions {
  double epsilon = 0.5;  ///< rejected-weight budget, in (0,1)
  double alpha = 2.0;    ///< power exponent, > 1
  /// Speed coefficient gamma; 0 means "auto": the paper's closed form
  /// gamma = (eps/(1+eps))^{1/(a-1)} (1/(a-1)) (a-1+ln(a-1))^{(a-1)/a}
  /// when that expression is positive (alpha > ~1.567), otherwise the
  /// leading factor (eps/(1+eps))^{1/(alpha-1)} alone.
  double gamma = 0.0;
  /// Ablation switch (E9): disables the weight-counter rejection rule while
  /// keeping HDF order, dispatching and speed scaling — the "Theorem 2
  /// without its relaxation" policy the paper's lower bounds apply to.
  bool enable_rejection = true;
  /// kIndexed (default) dispatches through the cached-lower-bound machine
  /// index; kLinearScan is the reference full scan. Both are bit-identical
  /// (tests/dispatch_index_test.cpp).
  DispatchMode dispatch = DispatchMode::kIndexed;
  /// Dynamic fleet membership; empty = static fleet. With a non-empty plan
  /// the dual certificate is diagnostic only — see sim/fleet.hpp.
  FleetPlan fleet = {};
};

/// The paper's gamma(eps, alpha) with the documented fallback.
double theorem2_gamma(double eps, double alpha);

struct EnergyFlowResult {
  Schedule schedule;
  std::size_t rejections = 0;
  double gamma = 0.0;  ///< the gamma actually used
  /// Fleet-membership counters (all zero for an empty plan).
  FleetStats fleet;

  // ---- dual bookkeeping (Lemma 6 machinery) ----
  /// sum_j lambda_j with lambda_j = eps/(1+eps) * min_i lambda_ij.
  double sum_lambda = 0.0;
  /// integral over time of sum_i V_i(t) — the total fractional weight of
  /// jobs not yet definitively finished.
  double v_integral = 0.0;
  /// D = sum lambda_j + sum_i int (1-alpha) u_i(t)^alpha dt; u_i(t)^alpha =
  /// (eps/(gamma(1+eps)(alpha-1)))^{alpha/(alpha-1)} V_i(t).
  double dual_objective = 0.0;
  /// Certified lower bound on OPT(weighted flow + energy): the feasible
  /// dual value D is at most the relaxation's optimum, and plugging the
  /// optimal schedule into the primal costs at most
  ///   2*wflow(OPT) + energy(OPT) + (alpha/(gamma(alpha-1))) * sum_j
  ///   w_j^{(a-1)/a} p_{i*(j),j}
  /// where the last sum is itself at most OPT / c1(alpha) per job
  /// (c1(alpha) = (a-1)^{1/a} + (a-1)^{(1-a)/a} is the isolated-job
  /// flow+energy constant). Hence OPT >= D / (2 + alpha/(gamma (alpha-1)
  /// c1(alpha))).
  double opt_lower_bound = 0.0;
  /// Unconditional per-job lower bound: sum_j c1(alpha) w_j^{(a-1)/a}
  /// min_i p_ij — the cheapest possible isolated flow+energy of each job.
  double iso_lower_bound = 0.0;
  /// Definitive finish times C~_j (completion/rejection + D_j extension).
  std::vector<Time> definitive_finish;
  /// Per-job dual variable lambda_j = eps/(1+eps) * min_i lambda_ij, for the
  /// Lemma 6 dual-feasibility checker.
  std::vector<double> lambda;

  double best_lower_bound() const {
    return opt_lower_bound > iso_lower_bound ? opt_lower_bound : iso_lower_bound;
  }
};

EnergyFlowResult run_energy_flow(const Instance& instance,
                                 const EnergyFlowOptions& options = {});

/// Isolated-job constant c1(alpha) = (a-1)^{1/a} + (a-1)^{(1-a)/a}: the
/// minimum over s of (w/s + s^{alpha-1}) for w=1 (scales as w^{(a-1)/a}).
double isolated_job_constant(double alpha);

/// Reference O(n) evaluation of lambda_ij for tests: pending jobs given as
/// (weight, volume) sorted by non-increasing density with j inserted after
/// equal densities (a new arrival has the latest release).
double reference_energy_lambda_ij(
    const std::vector<std::pair<Weight, Work>>& pending_by_density, Weight w_j,
    Work p_ij, double eps, double alpha, double gamma);

}  // namespace osched
