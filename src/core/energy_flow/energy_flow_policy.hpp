// Theorem 2 scheduling policy as a resumable, store-generic state machine
// (see energy_flow.hpp for the paper conventions and the batch entry point,
// and rejection_flow_policy.hpp for the Store/Rec contract).
//
// Unlike the flow-time policy, the dual bookkeeping here needs a final pass
// over every job record (the V-integral decomposition), so a streaming
// session must retain records and job rows to drain a Theorem 2 run — the
// session enforces that; retire_below is deliberately a no-op.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/energy_flow/energy_flow.hpp"
#include "sim/engine.hpp"
#include "util/sliding_vector.hpp"

namespace osched {

namespace energy_flow_detail {

/// Pending order: non-increasing density, ties earliest release then id.
struct DensityKey {
  double density = 0.0;
  Time r = 0.0;
  JobId id = kInvalidJob;
  Weight weight = 0.0;
  Work volume = 0.0;

  bool operator<(const DensityKey& other) const {
    if (density != other.density) return density > other.density;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<DensityKey> pending;
  Weight pending_weight = 0.0;

  JobId running = kInvalidJob;
  Speed running_speed = 0.0;
  Time running_start = 0.0;
  Time running_end = 0.0;
  Work running_volume = 0.0;
  double v_counter = 0.0;  ///< weight dispatched during the current execution
  std::uint64_t completion_event = 0;
};

}  // namespace energy_flow_detail

template <class Store, class Rec>
class EnergyFlowPolicy final : public SimulationHooks {
  using DensityKey = energy_flow_detail::DensityKey;
  using MachineState = energy_flow_detail::MachineState;

 public:
  EnergyFlowPolicy(const Store& store, Rec& rec, EventQueue& events,
                   const EnergyFlowOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        gamma_(options.gamma > 0.0 ? options.gamma
                                   : theorem2_gamma(options.epsilon, options.alpha)),
        machines_(store.num_machines()) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
    OSCHED_CHECK_GT(options.alpha, 1.0);
    OSCHED_CHECK_GT(gamma_, 0.0);
    extra_.extend_to(store.num_jobs());
    lambda_.extend_to(store.num_jobs());
  }

  void on_arrival(JobId j, Time now) override {
    extra_.extend_to(static_cast<std::size_t>(j) + 1);
    lambda_.extend_to(static_cast<std::size_t>(j) + 1);
    const Job& job = store_.job(j);

    double best_lambda = std::numeric_limits<double>::infinity();
    MachineId best_machine = kInvalidMachine;
    for (const MachineId machine : store_.eligible_machines(j)) {
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    OSCHED_CHECK(best_machine != kInvalidMachine)
        << "job " << j << " has no eligible machine";
    const double lambda_j =
        options_.epsilon / (1.0 + options_.epsilon) * best_lambda;
    sum_lambda_ += lambda_j;
    lambda_[static_cast<std::size_t>(j)] = lambda_j;

    MachineState& ms = machines_[static_cast<std::size_t>(best_machine)];
    rec_.mark_dispatched(j, best_machine);
    ms.pending.insert(make_key(best_machine, j));
    ms.pending_weight += job.weight;

    if (options_.enable_rejection && ms.running != kInvalidJob) {
      ms.v_counter += job.weight;
      const Weight w_k = store_.job(ms.running).weight;
      if (ms.v_counter > w_k / options_.epsilon) {
        reject_running(best_machine, now);
      }
    }

    if (ms.running == kInvalidJob) start_next(best_machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  /// No-op: the V-integral finalization reads every record, so Theorem 2
  /// runs cannot retire per-job state (sessions enforce retention).
  void retire_below(JobId /*frontier*/) {}

  /// Fills every EnergyFlowResult field except the schedule (the driver
  /// owns the record store). Requires all submitted jobs to have started
  /// (i.e. the run was driven to quiescence).
  void finalize_into(EnergyFlowResult& result) const {
    result.rejections = rejections_;
    result.gamma = gamma_;
    result.sum_lambda = sum_lambda_;
    result.definitive_finish.resize(store_.num_jobs(), 0.0);

    // Integral of the total fractional weight V(t) = sum_i V_i(t):
    // each job contributes w over [r, S) (waiting at full remaining volume),
    // the linear-decay integral over [S, C), and its frozen residue
    // w*q_end/p over the definitive-finish extension [C, C~).
    double v_integral = 0.0;
    double iso_lb = 0.0;
    const double c1 = isolated_job_constant(options_.alpha);
    for (std::size_t idx = 0; idx < store_.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      const Job& job = store_.job(j);
      const JobRecord& rec = rec_.record(j);
      OSCHED_CHECK(rec.started) << "job " << j << " never started";
      const Work p = store_.processing(rec.machine, j);
      const Work q_end = rec.completed()
                             ? 0.0
                             : std::max(0.0, p - rec.speed * (rec.end - rec.start));
      v_integral += job.weight * (rec.start - job.release);
      v_integral += job.weight * (p + q_end) / (2.0 * p) * (rec.end - rec.start);
      v_integral += job.weight * q_end / p * extra_[idx];
      result.definitive_finish[idx] = rec.end + extra_[idx];

      iso_lb += c1 * std::pow(job.weight, (options_.alpha - 1.0) / options_.alpha) *
                store_.min_processing(j);
    }
    result.v_integral = v_integral;

    const double alpha = options_.alpha;
    const double u_pow_alpha_coeff = std::pow(
        options_.epsilon / (gamma_ * (1.0 + options_.epsilon) * (alpha - 1.0)),
        alpha / (alpha - 1.0));
    result.dual_objective =
        sum_lambda_ - (alpha - 1.0) * u_pow_alpha_coeff * v_integral;

    const double primal_to_opt_factor =
        2.0 + alpha / (gamma_ * (alpha - 1.0) * c1);
    result.opt_lower_bound =
        std::max(0.0, result.dual_objective) / primal_to_opt_factor;
    result.iso_lower_bound = iso_lb;

    result.lambda.resize(store_.num_jobs());
    for (std::size_t idx = 0; idx < store_.num_jobs(); ++idx) {
      result.lambda[idx] = lambda_[idx];
    }
  }

  std::size_t rejections() const { return rejections_; }

 private:
  DensityKey make_key(MachineId i, JobId j) const {
    const Job& job = store_.job(j);
    const Work p = store_.processing_unchecked(i, j);
    return DensityKey{job.weight / p, job.release, j, job.weight, p};
  }

  /// lambda_ij with j virtually inserted into machine i's pending order.
  double lambda_ij(MachineId i, JobId j) const {
    const MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const Job& job = store_.job(j);
    const Work p = store_.processing_unchecked(i, j);
    const double density = job.weight / p;

    double prefix_weight = 0.0;
    double sum_before = 0.0;  // sum_{l < j} p_il / (gamma W_l^{1/alpha})
    Weight weight_after = 0.0;
    for (const DensityKey& key : ms.pending) {
      // Pending jobs were released earlier (or tie with smaller id), so
      // equal densities order before the new arrival.
      if (key.density >= density) {
        prefix_weight += key.weight;
        sum_before +=
            key.volume / (gamma_ * std::pow(prefix_weight, 1.0 / options_.alpha));
      } else {
        weight_after += key.weight;
      }
    }
    const double w_j_prefix = prefix_weight + job.weight;
    const double denom_j = gamma_ * std::pow(w_j_prefix, 1.0 / options_.alpha);
    sum_before += p / denom_j;  // the l = j term

    return job.weight * (p / options_.epsilon + sum_before) +
           weight_after * p / denom_j;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    OSCHED_CHECK_EQ(ms.running, kInvalidJob);
    if (ms.pending.empty()) return;
    const DensityKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());

    // Speed from the total pending weight INCLUDING the started job.
    const Speed speed =
        gamma_ * std::pow(ms.pending_weight, 1.0 / options_.alpha);
    OSCHED_CHECK_GT(speed, 0.0);
    ms.pending_weight -= key.weight;

    ms.running = key.id;
    ms.running_speed = speed;
    ms.running_start = now;
    ms.running_volume = key.volume;
    ms.running_end = now + key.volume / speed;
    ms.v_counter = 0.0;
    rec_.mark_started(key.id, now, speed);
    ms.completion_event = events_.schedule(ms.running_end, i, key.id);
  }

  void reject_running(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const JobId k = ms.running;
    const Time remaining_time = std::max(0.0, ms.running_end - now);

    events_.cancel(ms.completion_event);
    rec_.mark_rejected_running(k, now);

    // Definitive-finish extension: every job of U_i(now) (pending + k)
    // lingers an extra q_ik(now)/s_k = remaining_time in the V/Q set.
    extra_[static_cast<std::size_t>(k)] += remaining_time;
    for (const DensityKey& key : ms.pending) {
      extra_[static_cast<std::size_t>(key.id)] += remaining_time;
    }

    ms.running = kInvalidJob;
    ++rejections_;
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  EnergyFlowOptions options_;
  double gamma_;
  util::SlidingVector<double> extra_;
  util::SlidingVector<double> lambda_;
  std::vector<MachineState> machines_;
  double sum_lambda_ = 0.0;
  std::size_t rejections_ = 0;
};

}  // namespace osched
