// Theorem 2 scheduling policy as a resumable, store-generic state machine
// (see energy_flow.hpp for the paper conventions and the batch entry point,
// and rejection_flow_policy.hpp for the Store/Rec contract).
//
// Unlike the flow-time policy, the dual bookkeeping here needs a final pass
// over every job record (the V-integral decomposition), so a streaming
// session must retain records and job rows to drain a Theorem 2 run — the
// session enforces that; retire_below is deliberately a no-op.
//
// Machine state is structure-of-arrays, and the dispatch runs through the
// same index shape as the other policies: the exact lambda here costs an
// O(pending) walk WITH a pow() per element, so skipping dominated machines
// matters even at modest m. The lower bound is the job-only term
//   lb_i = margin * (w * (p/eps))
// — every other lambda term is non-negative — which orders candidates by
// p and prunes exactly (kDispatchBoundMargin absorbs the roundings).
// DispatchMode::kLinearScan keeps the reference full scan; both modes
// return the identical lexicographic (lambda, machine id) argmin
// (tests/dispatch_index_test.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/energy_flow/energy_flow.hpp"
#include "sim/engine.hpp"
#include "util/dispatch_heap.hpp"
#include "util/sliding_vector.hpp"

namespace osched {

namespace energy_flow_detail {

/// Pending order: non-increasing density, ties earliest release then id.
struct DensityKey {
  double density = 0.0;
  Time r = 0.0;
  JobId id = kInvalidJob;
  Weight weight = 0.0;
  Work volume = 0.0;

  bool operator<(const DensityKey& other) const {
    if (density != other.density) return density > other.density;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

}  // namespace energy_flow_detail

template <class Store, class Rec>
class EnergyFlowPolicy final : public SimulationHooks {
  using DensityKey = energy_flow_detail::DensityKey;

 public:
  EnergyFlowPolicy(const Store& store, Rec& rec, EventQueue& events,
                   const EnergyFlowOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        gamma_(options.gamma > 0.0 ? options.gamma
                                   : theorem2_gamma(options.epsilon, options.alpha)) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
    OSCHED_CHECK_GT(options.alpha, 1.0);
    OSCHED_CHECK_GT(gamma_, 0.0);
    extra_.extend_to(store.num_jobs());
    lambda_.extend_to(store.num_jobs());
    const std::size_t m = store.num_machines();
    fleet_.init(m, options.fleet);
    pending_.resize(m);
    pending_weight_.assign(m, 0.0);
    running_.assign(m, kInvalidJob);
    running_speed_.assign(m, 0.0);
    running_start_.assign(m, 0.0);
    running_end_.assign(m, 0.0);
    running_volume_.assign(m, 0.0);
    v_counter_.assign(m, 0.0);
    completion_event_.assign(m, 0);
    lb_.assign(m, 0.0);
    heap_.reserve(m);
  }

  void on_arrival(JobId j, Time now) override {
    extra_.extend_to(static_cast<std::size_t>(j) + 1);
    lambda_.extend_to(static_cast<std::size_t>(j) + 1);
    const Job& job = store_.job(j);

    double best_lambda = 0.0;
    const MachineId best_machine =
        options_.dispatch == DispatchMode::kIndexed
            ? dispatch_indexed(j, &best_lambda)
            : dispatch_linear_scan(j, &best_lambda);
    if (best_machine == kInvalidMachine) {
      // Fleet mode: no active eligible machine — forced rejection at
      // arrival, outside the weight-counter rule and with zero dual
      // contribution (the certificate is diagnostic under a fleet plan).
      OSCHED_CHECK(fleet_.enabled())
          << "job " << j << " has no eligible machine";
      lambda_[static_cast<std::size_t>(j)] = 0.0;
      rec_.mark_rejected_pending(j, now);
      fleet_.note_forced_rejection();
      return;
    }
    const double lambda_j =
        options_.epsilon / (1.0 + options_.epsilon) * best_lambda;
    sum_lambda_ += lambda_j;
    lambda_[static_cast<std::size_t>(j)] = lambda_j;

    const auto b = static_cast<std::size_t>(best_machine);
    rec_.mark_dispatched(j, best_machine);
    pending_[b].insert(make_key(best_machine, j));
    pending_weight_[b] += job.weight;

    if (options_.enable_rejection && running_[b] != kInvalidJob) {
      v_counter_[b] += job.weight;
      const Weight w_k = store_.job(running_[b]).weight;
      if (v_counter_[b] > w_k / options_.epsilon) {
        reject_running(best_machine, now);
      }
    }

    if (running_[b] == kInvalidJob) start_next(best_machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    const auto i = static_cast<std::size_t>(event.machine);
    OSCHED_CHECK_EQ(running_[i], event.job);
    rec_.mark_completed(event.job, now);
    running_[i] = kInvalidJob;
    start_next(event.machine, now);
  }

  void on_fleet(const FleetEvent& event, Time now) override {
    switch (event.kind) {
      case FleetEventKind::kJoin:
        fleet_.on_join(event.machine);
        break;
      case FleetEventKind::kDrain:
        fleet_.on_drain(event.machine);
        break;
      case FleetEventKind::kFail:
        fleet_.on_fail(event.machine);
        handle_fail(event.machine, now);
        break;
      case FleetEventKind::kSpeedChange:
        // The multiplier scales the EXECUTION speed chosen at start_next;
        // a job already running keeps its frozen start-time speed. The
        // dispatch lambda stays volume-based on purpose — it estimates
        // marginal cost in the nominal speed-scaling model, and scaling it
        // per-machine would double-count the throttle the execution speed
        // already pays for.
        fleet_.on_speed_change(event.machine, event.speed);
        break;
    }
  }

  /// Overload shed (see SimulationHooks): rejects the lowest-value pending
  /// job — smallest weight, ties to largest queued volume, then largest
  /// id — across every machine. Outside the v-counters and the rejection
  /// count (that total is the eps-budget accounting); the caller accounts
  /// the shed.
  JobId on_shed(Time now) override {
    std::size_t victim_machine = 0;
    const DensityKey* victim = nullptr;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      for (const DensityKey& key : pending_[i]) {
        if (victim == nullptr || key.weight < victim->weight ||
            (key.weight == victim->weight &&
             (key.volume > victim->volume ||
              (key.volume == victim->volume && key.id > victim->id)))) {
          victim = &key;
          victim_machine = i;
        }
      }
    }
    if (victim == nullptr) return kInvalidJob;
    const DensityKey key = *victim;
    pending_[victim_machine].erase(key);
    pending_weight_[victim_machine] -= key.weight;
    rec_.mark_rejected_pending(key.id, now);
    return key.id;
  }

  /// Theorem 2 charges its ε-budgeted arrival rejections; ε-charged sheds
  /// fall back to the fixed victim rule (no Rule-2 ledger to extend) but
  /// the session still books them against the same derived budget.
  std::size_t charged_rejections() const override { return rejections_; }

  /// No-op: the V-integral finalization reads every record, so Theorem 2
  /// runs cannot retire per-job state (sessions enforce retention).
  void retire_below(JobId /*frontier*/) {}

  /// Fills every EnergyFlowResult field except the schedule (the driver
  /// owns the record store). Requires the run to have been driven to
  /// quiescence: every job started, except fault rejections under a fleet
  /// plan (which contribute waiting-only fractional weight).
  void finalize_into(EnergyFlowResult& result) const {
    result.rejections = rejections_;
    result.gamma = gamma_;
    result.sum_lambda = sum_lambda_;
    result.fleet = fleet_.stats;
    result.definitive_finish.resize(store_.num_jobs(), 0.0);

    // Integral of the total fractional weight V(t) = sum_i V_i(t):
    // each job contributes w over [r, S) (waiting at full remaining volume),
    // the linear-decay integral over [S, C), and its frozen residue
    // w*q_end/p over the definitive-finish extension [C, C~).
    double v_integral = 0.0;
    double iso_lb = 0.0;
    const double c1 = isolated_job_constant(options_.alpha);
    for (std::size_t idx = 0; idx < store_.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      const Job& job = store_.job(j);
      const JobRecord& rec = rec_.record(j);
      if (!rec.started) {
        // Fleet-mode fault rejection before the job ever ran: it waited at
        // full weight from release to rejection and leaves no residue.
        OSCHED_CHECK(fleet_.enabled() && rec.fate == JobFate::kRejectedPending)
            << "job " << j << " never started";
        v_integral += job.weight * (rec.rejection_time - job.release);
        result.definitive_finish[idx] = rec.rejection_time + extra_[idx];
        iso_lb += c1 *
                  std::pow(job.weight, (options_.alpha - 1.0) / options_.alpha) *
                  store_.min_processing(j);
        continue;
      }
      const Work p = store_.processing(rec.machine, j);
      const Work q_end = rec.completed()
                             ? 0.0
                             : std::max(0.0, p - rec.speed * (rec.end - rec.start));
      v_integral += job.weight * (rec.start - job.release);
      v_integral += job.weight * (p + q_end) / (2.0 * p) * (rec.end - rec.start);
      v_integral += job.weight * q_end / p * extra_[idx];
      result.definitive_finish[idx] = rec.end + extra_[idx];

      iso_lb += c1 * std::pow(job.weight, (options_.alpha - 1.0) / options_.alpha) *
                store_.min_processing(j);
    }
    result.v_integral = v_integral;

    const double alpha = options_.alpha;
    const double u_pow_alpha_coeff = std::pow(
        options_.epsilon / (gamma_ * (1.0 + options_.epsilon) * (alpha - 1.0)),
        alpha / (alpha - 1.0));
    result.dual_objective =
        sum_lambda_ - (alpha - 1.0) * u_pow_alpha_coeff * v_integral;

    const double primal_to_opt_factor =
        2.0 + alpha / (gamma_ * (alpha - 1.0) * c1);
    result.opt_lower_bound =
        std::max(0.0, result.dual_objective) / primal_to_opt_factor;
    result.iso_lower_bound = iso_lb;

    result.lambda.resize(store_.num_jobs());
    for (std::size_t idx = 0; idx < store_.num_jobs(); ++idx) {
      result.lambda[idx] = lambda_[idx];
    }
  }

  std::size_t rejections() const { return rejections_; }
  const FleetStats& fleet_stats() const { return fleet_.stats; }

 private:
  DensityKey make_key(MachineId i, JobId j) const {
    const Job& job = store_.job(j);
    const Work p = store_.processing_unchecked(i, j);
    return DensityKey{job.weight / p, job.release, j, job.weight, p};
  }

  /// lambda_ij with j virtually inserted into machine i's pending order.
  double lambda_ij(MachineId i, JobId j) const {
    const auto& pending = pending_[static_cast<std::size_t>(i)];
    const Job& job = store_.job(j);
    const Work p = store_.processing_unchecked(i, j);
    const double density = job.weight / p;

    double prefix_weight = 0.0;
    double sum_before = 0.0;  // sum_{l < j} p_il / (gamma W_l^{1/alpha})
    Weight weight_after = 0.0;
    for (const DensityKey& key : pending) {
      // Pending jobs were released earlier (or tie with smaller id), so
      // equal densities order before the new arrival.
      if (key.density >= density) {
        prefix_weight += key.weight;
        sum_before +=
            key.volume / (gamma_ * std::pow(prefix_weight, 1.0 / options_.alpha));
      } else {
        weight_after += key.weight;
      }
    }
    const double w_j_prefix = prefix_weight + job.weight;
    const double denom_j = gamma_ * std::pow(w_j_prefix, 1.0 / options_.alpha);
    sum_before += p / denom_j;  // the l = j term

    return job.weight * (p / options_.epsilon + sum_before) +
           weight_after * p / denom_j;
  }

  /// Reference dispatch: exact lambda for every eligible machine, ascending
  /// machine id, strict-less keeps the first (= smallest id on ties).
  MachineId dispatch_linear_scan(JobId j, double* best_lambda_out) const {
    double best_lambda = std::numeric_limits<double>::infinity();
    MachineId best_machine = kInvalidMachine;
    for (const MachineId machine : store_.eligible_machines(j)) {
      if (!fleet_.active(static_cast<std::size_t>(machine))) continue;
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    *best_lambda_out = best_lambda;
    return best_machine;
  }

  /// Indexed dispatch: job-only lower bounds (every queue-dependent lambda
  /// term is non-negative), best-first exact evaluation until the next
  /// bound exceeds the incumbent. Bit-identical to dispatch_linear_scan.
  MachineId dispatch_indexed(JobId j, double* best_lambda_out) {
    const auto eligible = store_.eligible_machines(j);
    const std::size_t count = eligible.size();
    OSCHED_CHECK(count > 0) << "job " << j << " has no eligible machine";
    const Work* row = store_.processing_row(j);
    const Weight w = store_.job(j).weight;
    const double coeff = kDispatchBoundMargin * w / options_.epsilon;

    std::size_t seed_k = 0;
    double seed_lb = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < count; ++k) {
      const auto i = static_cast<std::size_t>(eligible.first[k]);
      if (!fleet_.active(i)) {
        lb_[k] = std::numeric_limits<double>::infinity();
        continue;
      }
      lb_[k] = coeff * row[i];
      if (lb_[k] < seed_lb) {
        seed_lb = lb_[k];
        seed_k = k;
      }
    }

    const MachineId seed_machine = eligible.first[seed_k];
    if (!fleet_.active(static_cast<std::size_t>(seed_machine))) {
      // Every eligible machine is masked: the reference scan settles it
      // (returns kInvalidMachine, the caller force-rejects).
      return dispatch_linear_scan(j, best_lambda_out);
    }
    double best_lambda = lambda_ij(seed_machine, j);
    MachineId best_machine = seed_machine;

    heap_.reset();
    for (std::size_t k = 0; k < count; ++k) {
      if (k == seed_k || lb_[k] > best_lambda) continue;
      heap_.push(lb_[k], static_cast<std::uint32_t>(eligible.first[k]));
    }
    while (!heap_.empty()) {
      const auto entry = heap_.pop_min();
      if (entry.key > best_lambda) break;
      const auto machine = static_cast<MachineId>(entry.id);
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda ||
          (lambda == best_lambda && machine < best_machine)) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    *best_lambda_out = best_lambda;
    return best_machine;
  }

  void start_next(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    OSCHED_CHECK_EQ(running_[i], kInvalidJob);
    if (pending_[i].empty()) return;
    const DensityKey key = *pending_[i].begin();
    pending_[i].erase(pending_[i].begin());

    // Speed from the total pending weight INCLUDING the started job, scaled
    // by the machine's current kSpeedChange multiplier (exactly 1.0 while
    // nominal, so multiplying keeps speed-free plans bit-identical).
    const Speed speed = fleet_.speed_multiplier(i) * gamma_ *
                        std::pow(pending_weight_[i], 1.0 / options_.alpha);
    OSCHED_CHECK_GT(speed, 0.0);
    pending_weight_[i] -= key.weight;

    running_[i] = key.id;
    running_speed_[i] = speed;
    running_start_[i] = now;
    running_volume_[i] = key.volume;
    running_end_[i] = now + key.volume / speed;
    v_counter_[i] = 0.0;
    rec_.mark_started(key.id, now, speed);
    completion_event_[i] = events_.schedule(running_end_[i], machine, key.id);
  }

  void reject_running(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    const JobId k = running_[i];
    const Time remaining_time = std::max(0.0, running_end_[i] - now);

    events_.cancel(completion_event_[i]);
    rec_.mark_rejected_running(k, now);

    // Definitive-finish extension: every job of U_i(now) (pending + k)
    // lingers an extra q_ik(now)/s_k = remaining_time in the V/Q set.
    extra_[static_cast<std::size_t>(k)] += remaining_time;
    for (const DensityKey& key : pending_[i]) {
      extra_[static_cast<std::size_t>(key.id)] += remaining_time;
    }

    running_[i] = kInvalidJob;
    ++rejections_;
  }

  // ---- fleet failure handling ----

  /// The machine just went down (fleet_ already reflects it): orphan the
  /// queue, decide the killed running job (budget shed or restart from
  /// scratch — its frozen-speed execution is lost), re-decide every orphan.
  void handle_fail(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);

    orphans_.assign(pending_[i].begin(), pending_[i].end());  // density order
    pending_[i].clear();
    pending_weight_[i] = 0.0;

    const JobId killed = running_[i];
    if (killed != kInvalidJob) {
      events_.cancel(completion_event_[i]);
      running_[i] = kInvalidJob;
      if (fleet_.shed_killed_running() && fleet_.try_spend_budget()) {
        rec_.mark_rejected_running(killed, now);
        ++fleet_.stats.fault_rejections;
      } else {
        redecide(killed, now, /*was_running=*/true);
      }
    }
    v_counter_[i] = 0.0;

    for (const DensityKey& key : orphans_) {
      redecide(key.id, now, /*was_running=*/false);
    }
  }

  /// Re-decides one orphan: normal dispatch restricted to active machines,
  /// or a forced rejection. Skips the weight counter and the dual lambda
  /// (set at arrival).
  void redecide(JobId j, Time now, bool was_running) {
    double lambda = 0.0;
    const MachineId target =
        options_.dispatch == DispatchMode::kIndexed
            ? dispatch_indexed(j, &lambda)
            : dispatch_linear_scan(j, &lambda);
    if (target == kInvalidMachine) {
      if (was_running) {
        rec_.mark_rejected_running(j, now);
      } else {
        rec_.mark_rejected_pending(j, now);
      }
      fleet_.note_forced_rejection();
      return;
    }
    rec_.mark_requeued(j, target);  // resets `started` for a killed runner
    const auto b = static_cast<std::size_t>(target);
    pending_[b].insert(make_key(target, j));
    pending_weight_[b] += store_.job(j).weight;
    ++fleet_.stats.redispatched;
    if (running_[b] == kInvalidJob) start_next(target, now);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  EnergyFlowOptions options_;
  double gamma_;
  util::SlidingVector<double> extra_;
  util::SlidingVector<double> lambda_;
  FleetState fleet_;
  std::vector<DensityKey> orphans_;  ///< handle_fail scratch

  // ---- machine state, structure-of-arrays (indexed by machine id) ----
  std::vector<std::set<DensityKey>> pending_;
  std::vector<Weight> pending_weight_;
  std::vector<JobId> running_;
  std::vector<Speed> running_speed_;
  std::vector<Time> running_start_;
  std::vector<Time> running_end_;
  std::vector<Work> running_volume_;
  std::vector<double> v_counter_;  ///< weight dispatched during execution
  std::vector<std::uint64_t> completion_event_;

  // ---- dispatch scratch, reused across arrivals ----
  std::vector<double> lb_;
  util::DispatchHeap heap_;

  double sum_lambda_ = 0.0;
  std::size_t rejections_ = 0;
};

}  // namespace osched
