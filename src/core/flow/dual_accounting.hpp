// Dual-fitting bookkeeping for the flow-time algorithm (Theorem 1).
//
// The algorithm's analysis defines, for every job j,
//   lambda_j = eps/(1+eps) * min_i lambda_ij            (set at arrival)
// and for every machine i and time t,
//   beta_i(t) = eps/(1+eps)^2 * (|U_i(t)| + |V_i(t)|),
// where U_i(t) are pending jobs and V_i(t) are jobs that are completed or
// rejected but not yet "definitively finished" at their extended time
// C-tilde_j. Because job j occupies U from r_j to C_j and V from C_j to
// C-tilde_j, the total beta integral collapses to
//   sum_i int beta_i(t) dt = eps/(1+eps)^2 * sum_j (C-tilde_j - r_j).
//
// This class tracks exactly that: per-job "extra" time from Rule 1
// rejections (the set D_j of the paper), the Rule 2 extension term, and the
// final dual objective
//   D = sum_j lambda_j - sum_i int beta_i(t) dt,
// which by Lemma 4 (feasibility) and weak duality satisfies D <= LP* <=
// 2*OPT, i.e. D/2 is a certified lower bound on the optimal non-preemptive
// total flow time. The harnesses report measured ratio = ALG / (D/2).
//
// Per-job state lives in a sliding window so a streaming session can retire
// finalized jobs (retire_below) and run in memory proportional to the live
// jobs, while the aggregates (sum lambda, residence) stay exact. Batch runs
// never retire, so definitive_finish(j) stays queryable for every job.
#pragma once

#include "util/check.hpp"
#include "util/sliding_vector.hpp"
#include "util/types.hpp"

namespace osched {

class FlowDualAccounting {
 public:
  /// `num_jobs` pre-creates the window for batch runs (streaming callers
  /// pass 0 and register jobs as they arrive).
  FlowDualAccounting(std::size_t num_jobs, double epsilon);

  /// Extends the per-job window to cover j. Must be called (directly or via
  /// the batch constructor's pre-sizing) before any other per-job call.
  void register_job(JobId j) {
    jobs_.extend_to(static_cast<std::size_t>(j) + 1);
  }

  /// Releases per-job state of jobs below `frontier` — every one of them
  /// must already be finalized. definitive_finish() becomes unavailable for
  /// retired jobs; the aggregate queries are unaffected.
  void retire_below(JobId frontier) {
    jobs_.retire_below(static_cast<std::size_t>(frontier));
  }

  /// Records lambda_j = eps/(1+eps) * min_i lambda_ij at j's arrival.
  /// (Inline: called once per arrival on the hot path.)
  void set_lambda(JobId /*j*/, double min_lambda_ij) {
    OSCHED_CHECK_GE(min_lambda_ij, 0.0);
    sum_lambda_ += epsilon_ / (1.0 + epsilon_) * min_lambda_ij;
  }

  /// Rule 1 rejected the running job k at time t with remaining time q: every
  /// job in U_i(t) — the pending jobs plus k itself — has its definitive
  /// finish pushed back by q (k joins its own D_k per the paper). The pending
  /// set is streamed via a visitor-of-visitors so the caller can walk its
  /// queue in place instead of materializing an id vector per rejection:
  /// `for_each_pending` is invoked once with a `void(JobId)` callback that it
  /// must apply to every pending job.
  template <typename ForEachPending>
  void on_rule1_rejection(JobId k, Time q, ForEachPending&& for_each_pending) {
    OSCHED_CHECK_GE(q, 0.0);
    OSCHED_CHECK(!jobs_.at(static_cast<std::size_t>(k)).finalized);
    jobs_[static_cast<std::size_t>(k)].extra += q;
    for_each_pending([this, q](JobId j) {
      OSCHED_CHECK(!jobs_.at(static_cast<std::size_t>(j)).finalized);
      jobs_[static_cast<std::size_t>(j)].extra += q;
    });
  }

  /// Rule 2 rejected pending job j at time t. The definitive-finish extension
  /// is the estimated completion had j stayed: remaining time of the running
  /// job + total pending processing ahead of it (all of it: j was the
  /// largest) except the just-arrived trigger job + j's own processing time.
  void on_rule2_rejection(JobId j, Time remaining_of_running,
                          Work pending_sum_except_trigger_and_j, Work p_ij);

  /// Finalizes C-tilde_j when j leaves the system at time `end` (completion
  /// time or rejection time). (Inline: called once per decided job.)
  void finalize(JobId j, Time release, Time end) {
    JobDual& entry = jobs_.at(static_cast<std::size_t>(j));
    OSCHED_CHECK(!entry.finalized) << "job " << j << " finalized twice";
    entry.finalized = true;
    entry.c_tilde = end + entry.extra;
    OSCHED_CHECK_GE(entry.c_tilde, release - kTimeEps);
    residence_ += entry.c_tilde - release;
  }

  double sum_lambda() const { return sum_lambda_; }

  /// sum_j (C-tilde_j - r_j); every job must have been finalized.
  double definitive_residence() const { return residence_; }

  /// sum_i int beta_i(t) dt = eps/(1+eps)^2 * definitive_residence().
  double beta_integral() const;

  /// D = sum lambda_j - beta integral.
  double dual_objective() const { return sum_lambda() - beta_integral(); }

  /// Certified lower bound on OPT: max(D, 0) / 2 (LP value <= 2 OPT).
  double opt_lower_bound() const;

  /// Requires j finalized and not retired.
  Time definitive_finish(JobId j) const {
    const JobDual& entry = jobs_.at(static_cast<std::size_t>(j));
    OSCHED_CHECK(entry.finalized) << "job " << j << " not finalized";
    return entry.c_tilde;
  }

 private:
  struct JobDual {
    double extra = 0.0;   ///< accumulated D_j + Rule-2 extension
    Time c_tilde = 0.0;   ///< finalized definitive finish
    bool finalized = false;
  };

  double epsilon_;
  double sum_lambda_ = 0.0;
  double residence_ = 0.0;
  util::SlidingVector<JobDual> jobs_;
};

}  // namespace osched
