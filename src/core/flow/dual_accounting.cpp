#include "core/flow/dual_accounting.hpp"

#include <algorithm>

namespace osched {

FlowDualAccounting::FlowDualAccounting(std::size_t num_jobs, double epsilon)
    : epsilon_(epsilon) {
  OSCHED_CHECK_GT(epsilon, 0.0);
  OSCHED_CHECK_LT(epsilon, 1.0);
  jobs_.extend_to(num_jobs);
}

void FlowDualAccounting::set_lambda(JobId /*j*/, double min_lambda_ij) {
  OSCHED_CHECK_GE(min_lambda_ij, 0.0);
  sum_lambda_ += epsilon_ / (1.0 + epsilon_) * min_lambda_ij;
}

void FlowDualAccounting::on_rule2_rejection(JobId j, Time remaining_of_running,
                                            Work pending_sum_except_trigger_and_j,
                                            Work p_ij) {
  OSCHED_CHECK(!jobs_.at(static_cast<std::size_t>(j)).finalized);
  OSCHED_CHECK_GE(remaining_of_running, 0.0);
  OSCHED_CHECK_GE(pending_sum_except_trigger_and_j, -kTimeEps);
  jobs_[static_cast<std::size_t>(j)].extra +=
      remaining_of_running + std::max(0.0, pending_sum_except_trigger_and_j) + p_ij;
}

void FlowDualAccounting::finalize(JobId j, Time release, Time end) {
  JobDual& entry = jobs_.at(static_cast<std::size_t>(j));
  OSCHED_CHECK(!entry.finalized) << "job " << j << " finalized twice";
  entry.finalized = true;
  entry.c_tilde = end + entry.extra;
  OSCHED_CHECK_GE(entry.c_tilde, release - kTimeEps);
  residence_ += entry.c_tilde - release;
}

double FlowDualAccounting::beta_integral() const {
  const double scale = epsilon_ / ((1.0 + epsilon_) * (1.0 + epsilon_));
  return scale * residence_;
}

double FlowDualAccounting::opt_lower_bound() const {
  return std::max(0.0, dual_objective()) / 2.0;
}

Time FlowDualAccounting::definitive_finish(JobId j) const {
  const JobDual& entry = jobs_.at(static_cast<std::size_t>(j));
  OSCHED_CHECK(entry.finalized) << "job " << j << " not finalized";
  return entry.c_tilde;
}

}  // namespace osched
