#include "core/flow/dual_accounting.hpp"

#include <algorithm>

namespace osched {

FlowDualAccounting::FlowDualAccounting(std::size_t num_jobs, double epsilon)
    : epsilon_(epsilon) {
  OSCHED_CHECK_GT(epsilon, 0.0);
  OSCHED_CHECK_LT(epsilon, 1.0);
  jobs_.extend_to(num_jobs);
}

void FlowDualAccounting::on_rule2_rejection(JobId j, Time remaining_of_running,
                                            Work pending_sum_except_trigger_and_j,
                                            Work p_ij) {
  OSCHED_CHECK(!jobs_.at(static_cast<std::size_t>(j)).finalized);
  OSCHED_CHECK_GE(remaining_of_running, 0.0);
  OSCHED_CHECK_GE(pending_sum_except_trigger_and_j, -kTimeEps);
  jobs_[static_cast<std::size_t>(j)].extra +=
      remaining_of_running + std::max(0.0, pending_sum_except_trigger_and_j) + p_ij;
}

double FlowDualAccounting::beta_integral() const {
  const double scale = epsilon_ / ((1.0 + epsilon_) * (1.0 + epsilon_));
  return scale * residence_;
}

double FlowDualAccounting::opt_lower_bound() const {
  return std::max(0.0, dual_objective()) / 2.0;
}

}  // namespace osched
