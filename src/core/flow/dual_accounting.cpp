#include "core/flow/dual_accounting.hpp"

#include <algorithm>

namespace osched {

FlowDualAccounting::FlowDualAccounting(std::size_t num_jobs, double epsilon)
    : epsilon_(epsilon),
      extra_(num_jobs, 0.0),
      c_tilde_(num_jobs, 0.0),
      finalized_(num_jobs, false) {
  OSCHED_CHECK_GT(epsilon, 0.0);
  OSCHED_CHECK_LT(epsilon, 1.0);
}

void FlowDualAccounting::set_lambda(JobId /*j*/, double min_lambda_ij) {
  OSCHED_CHECK_GE(min_lambda_ij, 0.0);
  sum_lambda_ += epsilon_ / (1.0 + epsilon_) * min_lambda_ij;
}

void FlowDualAccounting::on_rule2_rejection(JobId j, Time remaining_of_running,
                                            Work pending_sum_except_trigger_and_j,
                                            Work p_ij) {
  OSCHED_CHECK(!finalized_[static_cast<std::size_t>(j)]);
  OSCHED_CHECK_GE(remaining_of_running, 0.0);
  OSCHED_CHECK_GE(pending_sum_except_trigger_and_j, -kTimeEps);
  extra_[static_cast<std::size_t>(j)] +=
      remaining_of_running + std::max(0.0, pending_sum_except_trigger_and_j) + p_ij;
}

void FlowDualAccounting::finalize(JobId j, Time release, Time end) {
  const auto idx = static_cast<std::size_t>(j);
  OSCHED_CHECK(!finalized_[idx]) << "job " << j << " finalized twice";
  finalized_[idx] = true;
  c_tilde_[idx] = end + extra_[idx];
  OSCHED_CHECK_GE(c_tilde_[idx], release - kTimeEps);
  residence_ += c_tilde_[idx] - release;
}

double FlowDualAccounting::beta_integral() const {
  const double scale = epsilon_ / ((1.0 + epsilon_) * (1.0 + epsilon_));
  return scale * residence_;
}

double FlowDualAccounting::opt_lower_bound() const {
  return std::max(0.0, dual_objective()) / 2.0;
}

Time FlowDualAccounting::definitive_finish(JobId j) const {
  const auto idx = static_cast<std::size_t>(j);
  OSCHED_CHECK(finalized_[idx]) << "job " << j << " not finalized";
  return c_tilde_[idx];
}

}  // namespace osched
