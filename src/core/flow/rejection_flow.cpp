#include "core/flow/rejection_flow.hpp"

#include "core/flow/rejection_flow_policy.hpp"
#include "instance/processing_store.hpp"
#include "sim/engine.hpp"

namespace osched {

const char* to_string(Rule2Victim victim) {
  switch (victim) {
    case Rule2Victim::kLargest: return "largest";
    case Rule2Victim::kSmallest: return "smallest";
    case Rule2Victim::kNewest: return "newest";
    case Rule2Victim::kRandom: return "random";
  }
  return "?";
}

namespace {

/// Batch run = the resumable policy driven straight to quiescence, one full
/// template instantiation per storage backend (the dense one is the
/// pre-refactor hot path — DenseStoreView serves the exact loads Instance
/// used to). Streaming sessions drive the same policy class one
/// submit/advance at a time (see service/scheduler_session.hpp).
template <class Store>
RejectionFlowResult run_on_store(const Store& store,
                                 const RejectionFlowOptions& options) {
  const std::size_t n = store.num_jobs();
  SimEngineFor<Store> engine(store, &options.fleet);
  Schedule schedule(n);
  RejectionFlowPolicy<Store, Schedule> policy(store, schedule, engine.events(),
                                              options);
  engine.run(policy);

  RejectionFlowResult result;
  result.schedule = std::move(schedule);
  result.rule1_rejections = policy.rule1_rejections();
  result.rule2_rejections = policy.rule2_rejections();
  result.fleet = policy.fleet_stats();
  result.sum_lambda = policy.dual().sum_lambda();
  result.beta_integral = policy.dual().beta_integral();
  result.dual_objective = policy.dual().dual_objective();
  result.opt_lower_bound = policy.dual().opt_lower_bound();
  result.definitive_finish.resize(n);
  result.lambda.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.definitive_finish[j] =
        policy.dual().definitive_finish(static_cast<JobId>(j));
    result.lambda[j] = policy.lambda(static_cast<JobId>(j));
  }
  return result;
}

}  // namespace

RejectionFlowResult run_rejection_flow(const Instance& instance,
                                       const RejectionFlowOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;
  return with_store_view(instance, [&](const auto& view) {
    return run_on_store(view, options);
  });
}

double reference_lambda_ij(const std::vector<Work>& pending_sorted, Work p_ij,
                           double eps) {
  double before = 0.0;  // sum over pending ordered before j (p_l <= p_ij:
                        // a new arrival has the latest release, so equal
                        // processing times order before it)
  std::size_t after = 0;
  for (Work p : pending_sorted) {
    if (p <= p_ij) {
      before += p;
    } else {
      ++after;
    }
  }
  return p_ij / eps + (before + p_ij) + static_cast<double>(after) * p_ij;
}

}  // namespace osched
