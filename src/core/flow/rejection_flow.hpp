// Theorem 1: online non-preemptive total flow-time minimization on unrelated
// machines with rejections — the paper's algorithm A.
//
// Policies (quoted conventions from the paper, section 2):
//  * Scheduling: each machine keeps its pending jobs (dispatched, released,
//    not completed/rejected, not running) in non-decreasing processing-time
//    order, ties by earliest release then id; whenever a machine becomes
//    idle it starts the first pending job.
//  * Dispatching: at the arrival of job j, compute for each machine i
//      lambda_ij = p_ij/eps + sum_{l <= j} p_il + |{l > j}| * p_ij
//    over the pending order with j virtually inserted (running job
//    excluded), and dispatch j to argmin_i lambda_ij.
//  * Rule 1: when a machine starts a job it gets a counter v; every arrival
//    dispatched to that machine during the execution increments v; the
//    running job is interrupted and rejected the first time v reaches
//    ceil(1/eps).
//  * Rule 2: each machine has a counter c incremented on every dispatch to
//    it; the first time c reaches floor(1 + 1/eps), the pending job with the
//    LARGEST processing time is rejected and c resets to zero. (Rounding
//    down keeps c <= 1/eps between resets, which Lemma 3 / Corollary 1
//    require; the threshold still exceeds 1/eps so the rejection budget
//    holds, and it coincides with the paper's 1 + 1/eps for integral 1/eps.)
//
// Guarantee (Theorem 1): competitive ratio 2((1+eps)/eps)^2 against the
// optimal schedule that must complete ALL jobs, while rejecting at most a
// 2*eps fraction of the jobs. The run also emits the feasible dual solution
// of Lemma 4, whose objective/2 certifies a lower bound on OPT.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flow/dual_accounting.hpp"
#include "instance/instance.hpp"
#include "sim/fleet.hpp"
#include "sim/schedule.hpp"

namespace osched {

/// Which pending job Rule 2 sacrifices when the counter fires. The paper
/// proves Theorem 1 for kLargest only — Lemma 3's partition argument needs
/// the victim to dominate the estimated completion time of its whole group.
/// The alternatives exist for the ablation experiment (E12): they keep the
/// rejection budget but forfeit the Corollary 1 structure, and the measured
/// flow-time degradation shows how load-bearing the victim choice is.
enum class Rule2Victim {
  kLargest,   ///< paper's rule: largest processing time among pending
  kSmallest,  ///< anti-rule: smallest pending (rejects the cheapest job)
  kNewest,    ///< the job whose dispatch fired the counter
  kRandom,    ///< uniformly random pending job (seeded, reproducible)
};

const char* to_string(Rule2Victim victim);

struct RejectionFlowOptions {
  /// Rejection parameter in (0, 1).
  double epsilon = 0.2;
  /// Ablation switches (E9): disabling a rule skips its counter/rejection.
  bool enable_rule1 = true;
  bool enable_rule2 = true;
  /// Ablation switch (E12): Rule 2 victim selection; kLargest is the paper.
  Rule2Victim rule2_victim = Rule2Victim::kLargest;
  /// Seed for kRandom victim draws (unused otherwise).
  std::uint64_t victim_seed = 0x5EEDF00DULL;
  /// Machine speed multiplier; 1.0 is the paper's setting. The
  /// speed-augmented baseline [5] reuses this scheduler with speed > 1
  /// (processing times shrink to p_ij/speed).
  double speed = 1.0;
  /// kIndexed (default) dispatches through the cached-lower-bound machine
  /// index; kLinearScan is the reference full scan. Both are bit-identical
  /// (tests/dispatch_index_test.cpp).
  DispatchMode dispatch = DispatchMode::kIndexed;
  /// Dynamic fleet membership (join/drain/fail events, fault rejection
  /// budget); empty = the paper's static fleet. With a non-empty plan the
  /// dual certificate is diagnostic only — see sim/fleet.hpp.
  FleetPlan fleet = {};
};

struct RejectionFlowResult {
  Schedule schedule;
  std::size_t rule1_rejections = 0;
  std::size_t rule2_rejections = 0;
  /// Fleet-membership counters (all zero for an empty plan).
  FleetStats fleet;

  /// Dual-fitting summary (valid as an OPT lower bound only at speed=1).
  double sum_lambda = 0.0;
  double beta_integral = 0.0;
  double dual_objective = 0.0;
  double opt_lower_bound = 0.0;
  /// Definitive finish times C-tilde_j (paper's extended completion), used
  /// by tests to verify sum lambda_j >= eps/(1+eps) * sum (C~_j - r_j).
  std::vector<Time> definitive_finish;
  /// Per-job dual variable lambda_j = eps/(1+eps) * min_i lambda_ij, for the
  /// Lemma 4 dual-feasibility checker.
  std::vector<double> lambda;
};

RejectionFlowResult run_rejection_flow(const Instance& instance,
                                       const RejectionFlowOptions& options = {});

/// The lambda_ij dispatch quantity, exposed for unit tests: given the sorted
/// processing times of the pending jobs on machine i (running job excluded)
/// and p_ij, evaluates p_ij/eps + sum_{l<=j} p_il + |{l>j}|*p_ij with j
/// inserted by (p, tie: arrival later than all equal-p pending jobs — a new
/// arrival has the latest release). Reference O(n) implementation.
double reference_lambda_ij(const std::vector<Work>& pending_sorted, Work p_ij,
                           double eps);

}  // namespace osched
