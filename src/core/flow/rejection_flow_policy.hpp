// Theorem 1 scheduling policy as a resumable, store-generic state machine.
//
// The algorithm itself (dispatch by argmin lambda_ij, Rule 1/Rule 2
// rejections, SPT pending queues over the arena treap) lives here as a
// template over
//   Store — where job data comes from: the batch `Instance`, or the
//           streaming session's `service::StreamingJobStore`. Must provide
//           job(j), processing_unchecked(i, j), processing_row(j),
//           eligible_machines(j) and num_machines() with Instance's
//           semantics.
//   Rec   — where decisions are recorded: the batch `Schedule`, or the
//           session's windowed record store. Must provide the mark_*
//           mutation surface of Schedule.
// The policy holds no event loop: it reacts to on_arrival/on_event calls
// from whatever driver owns the clock (SimEngine for batch runs, a
// SchedulerSession for submit/advance/drain streaming), scheduling its own
// completions into the EventQueue it was handed. Identical call sequences
// produce bit-identical decisions regardless of the driver, which is what
// the streaming differential tests pin down.
//
// Machine state is laid out structure-of-arrays: the lambda inputs the
// dispatch needs per machine (pending count, pending minimum processing
// time) live in contiguous arrays next to the p_ij row, so the per-arrival
// lower-bound sweep is a straight-line vectorizable loop. On top of that
// sits the dispatch index: for each candidate machine a sound lower bound
//   lb_i = margin * (p/eps + p + n_i * min(p, pmin_i))        (p = p_ij)
// is computed from the cached aggregates (updated only when machine i's
// pending queue is touched), candidates are visited best-first through a
// min-heap, and the exact lambda — one O(log q) treap descent — is
// evaluated only until the next bound exceeds the incumbent. Because the
// bound never exceeds the rounded exact lambda (see kDispatchBoundMargin)
// and the incumbent update keeps the lexicographic (lambda, machine id)
// rule, the selected machine and its lambda are bit-identical to the
// reference linear scan (DispatchMode::kLinearScan, kept for the
// differential wall in tests/dispatch_index_test.cpp).
//
// See rejection_flow.hpp for the paper conventions and the batch entry
// point; this header is the shared implementation.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/flow/dual_accounting.hpp"
#include "core/flow/rejection_flow.hpp"
#include "sim/engine.hpp"
#include "util/augmented_treap.hpp"
#include "util/dispatch_heap.hpp"
#include "util/rng.hpp"
#include "util/simd_argmin.hpp"
#include "util/sliding_vector.hpp"

namespace osched {

namespace rejection_flow_detail {

/// Pending-queue key: shortest processing time first, ties by earliest
/// release then id (the paper's order, made total).
struct PendingKey {
  Work p = 0.0;
  Time r = 0.0;
  JobId id = kInvalidJob;

  bool operator<(const PendingKey& other) const {
    if (p != other.p) return p < other.p;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct KeyProcessing {
  double operator()(const PendingKey& key) const { return key.p; }
};

using PendingQueue = util::AugmentedTreap<PendingKey, KeyProcessing>;

}  // namespace rejection_flow_detail

template <class Store, class Rec>
class RejectionFlowPolicy final : public SimulationHooks {
  using PendingKey = rejection_flow_detail::PendingKey;
  using PendingQueue = rejection_flow_detail::PendingQueue;

 public:
  RejectionFlowPolicy(const Store& store, Rec& rec, EventQueue& events,
                      const RejectionFlowOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        speed_is_one_(options.speed == 1.0),
        dual_(store.num_jobs(), options.epsilon),
        victim_rng_(options.victim_seed) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
    OSCHED_CHECK_GT(options.speed, 0.0);
    // "the first time when v_j = 1/eps" / "c_i = 1 + 1/eps": counters are
    // integers. Rule 1 rounds UP (threshold >= 1/eps keeps the rejection
    // count within eps*n). Rule 2 rounds DOWN: Corollary 1 needs
    // c_i <= 1/eps between resets, so the trigger is floor(1 + 1/eps) —
    // which both stays >= 1/eps (budget) and equals the paper's 1 + 1/eps
    // whenever 1/eps is integral. The 1e-9 slack absorbs 1/eps float error
    // for eps = 1/k.
    rule1_threshold_ = static_cast<std::int64_t>(std::ceil(1.0 / options.epsilon - 1e-9));
    rule2_threshold_ =
        static_cast<std::int64_t>(std::floor(1.0 + 1.0 / options.epsilon + 1e-9));
    lambda_.extend_to(store.num_jobs());
    const std::size_t m = store.num_machines();
    pending_.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      pending_.emplace_back(rejection_flow_detail::KeyProcessing{},
                            util::derive_seed(0xF10BA5E5ULL, i));
    }
    fleet_.init(m, options.fleet);
    running_.assign(m, kInvalidJob);
    running_end_.assign(m, 0.0);
    completion_event_.assign(m, 0);
    v_counter_.assign(m, 0);
    c_counter_.assign(m, 0);
    pend_n_.assign(m, 0);
    pend_cnt_margin_.assign(m, 0.0f);
    pend_min_p_.assign(m, std::numeric_limits<float>::max());
    live_pos_.assign(m, 0);
    live_list_.reserve(m);
    lb_.assign(m, 0.0f);
    block_min_.assign(m / 8 + 1, std::numeric_limits<float>::max());
    heap_.reserve(m);
    // margin * (1/eps + 1): the division-free per-unit-p coefficient of the
    // lower bound (see lambda_lower_bound). The handful of float roundings
    // here and in the sweep are dwarfed by the 2^-16 margin.
    empty_coeff_margin_ = kDispatchBoundMarginF *
                          (1.0f / static_cast<float>(options.epsilon) + 1.0f);
    // UP-margined twin for the rival-screen threshold (an upper bound).
    empty_coeff_up_ =
        (1.0f / static_cast<float>(options.epsilon) + 1.0f) * 1.0001f;
    // Rounded UP so the float quotient p_f / speed_up_ never exceeds the
    // exact p / speed (speed != 1 only for the speed-augmented baseline).
    speed_up_ = std::nextafterf(static_cast<float>(options.speed),
                                std::numeric_limits<float>::infinity());
    // kSpeedChange plans: per-machine UP-rounded float divisors so the
    // bound sweeps stay sound under scaling. Exactly 1.0f while the
    // combined divisor is exactly 1 — float division by 1.0f is exact, so
    // the pre-first-event bounds match the speed-free path bit for bit.
    fleet_speed_ = fleet_.has_speed_events();
    if (fleet_speed_) {
      speed_div_up_.assign(m, speed_is_one_ ? 1.0f : speed_up_);
    }
  }

  void on_arrival(JobId j, Time now) override {
    dual_.register_job(j);
    lambda_.extend_to(static_cast<std::size_t>(j) + 1);

    double best_lambda = 0.0;
    const MachineId best_machine =
        options_.dispatch == DispatchMode::kIndexed
            ? dispatch_indexed(j, &best_lambda)
            : dispatch_linear_scan(j, &best_lambda);

    // No active eligible machine (fleet mode only): the job cannot run
    // anywhere — forced rejection at arrival, outside the rule counters and
    // with a zero dual contribution (the certificate is diagnostic under a
    // fleet plan anyway).
    if (best_machine == kInvalidMachine) {
      dual_.set_lambda(j, 0.0);
      lambda_[static_cast<std::size_t>(j)] = 0.0;
      rec_.mark_rejected_pending(j, now);
      dual_.finalize(j, store_.job(j).release, now);
      fleet_.note_forced_rejection();
      return;
    }

    dual_.set_lambda(j, best_lambda);
    lambda_[static_cast<std::size_t>(j)] =
        options_.epsilon / (1.0 + options_.epsilon) * best_lambda;

    const auto b = static_cast<std::size_t>(best_machine);
    rec_.mark_dispatched(j, best_machine);
    pending_insert(b, make_key(best_machine, j));

    // Rule 1: the arrival was dispatched during the running job's execution.
    if (options_.enable_rule1 && running_[b] != kInvalidJob) {
      ++v_counter_[b];
      if (v_counter_[b] >= rule1_threshold_) {
        reject_running(best_machine, now);
      }
    }

    // Rule 2: every dispatch to the machine counts.
    if (options_.enable_rule2) {
      ++c_counter_[b];
      if (c_counter_[b] >= rule2_threshold_) {
        reject_largest_pending(best_machine, j, now);
        c_counter_[b] = 0;
      }
    }

    if (running_[b] == kInvalidJob) start_next(best_machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    // Only completions are scheduled.
    const auto i = static_cast<std::size_t>(event.machine);
    OSCHED_CHECK_EQ(running_[i], event.job);
    rec_.mark_completed(event.job, now);
    dual_.finalize(event.job, store_.job(event.job).release, now);
    running_[i] = kInvalidJob;
    start_next(event.machine, now);
  }

  void on_fleet(const FleetEvent& event, Time now) override {
    switch (event.kind) {
      case FleetEventKind::kJoin:
        fleet_.on_join(event.machine);
        break;
      case FleetEventKind::kDrain:
        // Masked out of dispatch from now on; the running job and queue
        // complete normally through start_next.
        fleet_.on_drain(event.machine);
        break;
      case FleetEventKind::kFail:
        fleet_.on_fail(event.machine);
        handle_fail(event.machine, now);
        break;
      case FleetEventKind::kSpeedChange: {
        // Applies to jobs STARTED from now on (start_next reads the current
        // multiplier); the running job finishes at its start-time speed, so
        // no event is rescheduled. Pending keys keep their dispatch-time
        // effective p — re-keying would reorder queues mid-run and break
        // the batch==streamed equivalence the tie order guarantees.
        fleet_.on_speed_change(event.machine, event.speed);
        const auto i = static_cast<std::size_t>(event.machine);
        const double s = options_.speed * fleet_.speed_multiplier(i);
        speed_div_up_[i] = s == 1.0 ? 1.0f : float_next_up(static_cast<float>(s));
        break;
      }
    }
  }

  /// Overload shed (see SimulationHooks): rejects the lowest-value pending
  /// job — smallest weight, ties to largest queued p, then largest id —
  /// across every machine. Outside the Rule 1/2 counters and the dual
  /// (like fault sheds, the dual lower bound is diagnostic under forced
  /// rejections); the caller accounts the shed.
  JobId on_shed(Time now) override {
    std::size_t victim_machine = 0;
    PendingKey victim{};
    Weight victim_weight = 0.0;
    bool found = false;
    for (const std::uint32_t i : live_list_) {
      pending_[i].for_each([&](const PendingKey& key) {
        const Weight w = store_.job(key.id).weight;
        if (!found || w < victim_weight ||
            (w == victim_weight &&
             (key.p > victim.p || (key.p == victim.p && key.id > victim.id)))) {
          found = true;
          victim = key;
          victim_weight = w;
          victim_machine = i;
        }
      });
    }
    if (!found) return kInvalidJob;
    pending_erase(victim_machine, victim);
    rec_.mark_rejected_pending(victim.id, now);
    return victim.id;
  }

  /// ε-charged shed (see SimulationHooks): the victim is the job Rule 2
  /// would pick, generalized across machines — the globally LARGEST queued
  /// effective processing time, ties to the largest id — and the eviction
  /// is booked into the dual exactly like a Rule 2 rejection (definitive-
  /// finish extension by the victim's estimated completion, then finalize),
  /// so sum lambda / beta stay a valid certificate with the shed counted as
  /// a paper rejection. Unlike reject_largest_pending this fires outside
  /// the c-counters (the budget lives in the session, which charges it
  /// against floor(2εn) alongside rule1_rejections + rule2_rejections).
  JobId on_shed_charged(Time now) override {
    std::size_t victim_machine = 0;
    PendingKey victim{};
    bool found = false;
    for (const std::uint32_t i : live_list_) {
      pending_[i].for_each([&](const PendingKey& key) {
        if (!found || key.p > victim.p ||
            (key.p == victim.p && key.id > victim.id)) {
          found = true;
          victim = key;
          victim_machine = i;
        }
      });
    }
    if (!found) return kInvalidJob;
    const Time remaining_of_running =
        running_[victim_machine] != kInvalidJob
            ? std::max(0.0, running_end_[victim_machine] - now)
            : 0.0;
    // Estimated completion had the victim stayed: the running remainder
    // plus everything queued with it (it is its machine's largest, so the
    // whole queue is "ahead") plus its own processing time. No arriving
    // trigger to exclude — the shed fires before the triggering arrival is
    // dispatched anywhere.
    const double sum_except =
        pending_[victim_machine].total_weight() - victim.p;
    dual_.on_rule2_rejection(victim.id, remaining_of_running,
                             std::max(0.0, sum_except), victim.p);
    dual_.finalize(victim.id, store_.job(victim.id).release, now);
    rec_.mark_rejected_pending(victim.id, now);
    pending_erase(victim_machine, victim);
    return victim.id;
  }

  std::size_t charged_rejections() const override {
    return rule1_rejections_ + rule2_rejections_;
  }

  /// Releases per-job dual/lambda state below the decided frontier
  /// (streaming sessions only; batch runs keep everything for export).
  void retire_below(JobId frontier) {
    dual_.retire_below(frontier);
    lambda_.retire_below(static_cast<std::size_t>(frontier));
  }

  std::size_t rule1_rejections() const { return rule1_rejections_; }
  std::size_t rule2_rejections() const { return rule2_rejections_; }
  const FleetStats& fleet_stats() const { return fleet_.stats; }
  const FlowDualAccounting& dual() const { return dual_; }
  /// lambda_j = eps/(1+eps) * min_i lambda_ij; j must not be retired.
  double lambda(JobId j) const { return lambda_.at(static_cast<std::size_t>(j)); }

 private:
  /// Above this many busy machines the per-contender exact evaluations of
  /// the ordered path stop paying for themselves and dispatch falls back
  /// to the vectorized bound sweep. Both paths return the identical
  /// lexicographic argmin; the cutover is performance-only.
  static constexpr std::size_t kOrderedPathMaxLive = 16;

  PendingKey make_key(MachineId i, JobId j) const {
    return PendingKey{effective_processing(i, j), store_.job(j).release, j};
  }

  Work effective_processing(MachineId i, JobId j) const {
    // Indices are validated by construction: i comes from the store's
    // eligibility adjacency (or a machine that already holds j) and j from
    // the arrival stream. speed == 1.0 skips the division (p/1.0 == p, so
    // the fast path is bit-identical).
    const Work p = store_.processing_unchecked(i, j);
    if (!fleet_speed_) return speed_is_one_ ? p : p / options_.speed;
    // kSpeedChange plans: the machine's CURRENT multiplier scales dispatch
    // scoring and pending keys; the combined divisor folds the global
    // speed option in. s == 1.0 keeps p untouched bit for bit.
    const double s =
        options_.speed * fleet_.speed_multiplier(static_cast<std::size_t>(i));
    return s == 1.0 ? p : p / s;
  }

  /// lambda_ij = p_ij/eps + sum_{l <= j} p_il + |{l > j}| * p_ij over the
  /// pending order with j virtually inserted (running job excluded).
  /// `p` must be effective_processing(i, j).
  double lambda_ij(MachineId i, JobId j, Work p, Time release) const {
    const PendingQueue& pending = pending_[static_cast<std::size_t>(i)];
    if (pending.empty()) {
      // Bit-identical shortcut of the general expression below with
      // prefix = {0, 0.0} and after = 0: for finite p > 0, 0.0 + p == p,
      // 0 * p == +0.0 and x + 0.0 == x, exactly.
      return p / options_.epsilon + p;
    }
    const PendingKey key{p, release, j};
    const auto prefix = pending.stats_less(key);
    const std::size_t after = pending.size() - prefix.count;
    return p / options_.epsilon + (prefix.weight + p) +
           static_cast<double>(after) * p;
  }

  /// Sound lower bound on lambda_ij from the cached per-machine aggregates:
  /// lambda_ij = p/eps + p + sum_l min(p_l, p) over machine i's pending
  /// jobs, and each of the n_i queue contributions is at least
  /// min(p, pmin_i). Evaluated division- and branch-free in FLOAT32 as
  ///   p_f * [margin*(1/eps + 1)]  +  [margin*n_i] * min(p_f, pmin_f_i)
  /// over inputs rounded DOWN (float_lower), with kDispatchBoundMarginF
  /// absorbing the float roundings — the bound never exceeds the rounded
  /// exact lambda, so a candidate whose bound exceeds the incumbent can
  /// never be the lexicographic argmin. Float halves the sweep's memory
  /// traffic, which is what the dense dispatch is bound by.
  float lambda_lower_bound(float p, std::size_t i) const {
    return p * empty_coeff_margin_ +
           pend_cnt_margin_[i] * std::min(p, pend_min_p_[i]);
  }

  /// Reference dispatch: exact lambda for every ACTIVE eligible machine,
  /// ascending machine id, strict-less keeps the first (= smallest id on
  /// ties). Returns kInvalidMachine when the fleet mask leaves no candidate
  /// (impossible with an empty fleet plan — active() is then constant
  /// true and eligibility is non-empty by validation).
  MachineId dispatch_linear_scan(JobId j, double* best_lambda_out) const {
    const Time release = store_.job(j).release;
    const auto eligible = store_.eligible_machines(j);
    OSCHED_CHECK(!eligible.empty()) << "job " << j << " has no eligible machine";
    double best_lambda = kTimeInfinity;
    MachineId best_machine = kInvalidMachine;
    for (const MachineId machine : eligible) {
      if (!fleet_.active(static_cast<std::size_t>(machine))) continue;
      const Work p = effective_processing(machine, j);
      const double lambda = lambda_ij(machine, j, p, release);
      if (lambda < best_lambda) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    *best_lambda_out = best_lambda;
    return best_machine;
  }

  /// Indexed dispatch: one vectorizable sweep computes every candidate's
  /// lower bound, the argmin-bound machine seeds the incumbent, and the
  /// remaining candidates are visited best-first until the next bound
  /// exceeds the incumbent lambda. Returns the same (lambda, machine) as
  /// dispatch_linear_scan, bit for bit.
  /// Ordered path of the dispatch index, used while few machines have
  /// pending work (the common state under SPT draining): the best machine
  /// with an EMPTY queue is the first idle entry of the job's precomputed
  /// (p, id)-order — lambda = p/eps + p is monotone in p — and every other
  /// contender has a non-empty queue, i.e. sits in the live list, whose
  /// members are evaluated exactly. Cost is O(|live|), independent of m.
  /// Returns the same lexicographic (lambda, id) argmin as the sweep.
  MachineId dispatch_ordered(JobId j, Time release,
                             const EligibleMachines& eligible,
                             double* best_lambda_out) {
    const std::size_t count = eligible.size();
    // uint16 or uint32 machine ids depending on the store's order width
    // (m >= 65536 selects the wide table) — the walk is width-agnostic.
    const auto* order = store_.p_order_row(j);
    const Work* rowd = store_.processing_row(j);
    const bool dense = count == store_.num_machines();

    // Overlap the cold double-row loads: the head of the order (the likely
    // idle hit) and every live contender's entry fetch in parallel. (The
    // order table exists only for batch stores; streaming rows were just
    // appended and are cache-hot without help.)
    if (order != nullptr) __builtin_prefetch(rowd + order[0], 0, 0);
    for (const std::uint32_t i : live_list_) {
      __builtin_prefetch(rowd + i, 0, 0);
    }

    double best_lambda = kTimeInfinity;
    MachineId best_machine = kInvalidMachine;

    // While a kSpeedChange multiplier is in force somewhere, the raw-p
    // order table no longer sorts machines by EFFECTIVE p, so the
    // first-idle-in-order shortcut (and its id-tie walk) would pick the
    // wrong idle machine. Fall through to the exact idle scan below — its
    // lexicographic (lambda, id) argmin is the linear scan's by
    // construction. Restored multipliers (all back to 1) re-enable the
    // order-table walk automatically.
    const bool order_walk_sound =
        order != nullptr && !(fleet_speed_ && fleet_.any_speed_scaled());

    if (order_walk_sound) {
      // First ACTIVE idle machine in (p, id) order, then the id-tie walk:
      // later idle machines tie only while their rounded lambda is bit-equal
      // (p is non-decreasing along the order and fl is monotone, so the walk
      // stops at the first strictly larger lambda). Down/draining machines
      // have pend_n_ == 0 and would otherwise masquerade as idle.
      std::size_t w = 0;
      while (w < count && (pend_n_[order[w]] != 0 || !fleet_.active(order[w])))
        ++w;
      if (w < count) {
        const auto i0 = static_cast<std::size_t>(order[w]);
        const Work p0 = effective_processing(static_cast<MachineId>(i0), j);
        best_lambda = p0 / options_.epsilon + p0;  // empty-queue lambda
        best_machine = static_cast<MachineId>(i0);
        for (std::size_t w2 = w + 1; w2 < count; ++w2) {
          const auto i2 = static_cast<std::size_t>(order[w2]);
          if (pend_n_[i2] != 0 || !fleet_.active(i2)) continue;
          const Work p2 = effective_processing(static_cast<MachineId>(i2), j);
          const double lambda2 = p2 / options_.epsilon + p2;
          if (lambda2 != best_lambda) break;
          if (static_cast<MachineId>(i2) < best_machine) {
            best_machine = static_cast<MachineId>(i2);
          }
        }
      }
    } else if (dense && speed_is_one_ && !fleet_speed_ && !fleet_.enabled()) {
      // No precomputed order, no fleet mask, no speed scaling (the huge-m
      // generator/streaming steady state — the O(m) loop e23 sizes): the
      // effective p IS the double row entry and every machine is a
      // candidate when idle, so the exact idle argmin vectorizes — per
      // lane the scalar division-then-add, min-reduce plus first-index
      // semantics, bit-identical to the scalar loop below (which stays the
      // reference for the masked/scaled cases).
      const util::simd::IdleArgmin idle = util::simd::idle_lambda_argmin(
          rowd, pend_n_.data(), count, options_.epsilon);
      if (idle.index < count) {
        best_lambda = idle.lambda;
        best_machine = static_cast<MachineId>(idle.index);
      }
    } else {
      // No precomputed order (streaming store, generator tile), or the
      // table is unsound under active speed multipliers: derive the idle
      // argmin from the DOUBLE row directly. Rows without an order table
      // are the just-appended / just-synthesized ones — already cache-hot —
      // so the float shadow's halved memory traffic buys nothing here, and
      // skipping it keeps the lazily-filled shadow
      // (service::StreamingJobStore) untouched on this path entirely. The
      // exact scan returns the same lexicographic (lambda, id) argmin the
      // former float screen located.
      for (std::size_t k = 0; k < count; ++k) {
        const auto i = static_cast<std::size_t>(
            dense ? static_cast<MachineId>(k) : eligible.first[k]);
        if (pend_n_[i] != 0 || !fleet_.active(i)) continue;
        const Work p = effective_processing(static_cast<MachineId>(i), j);
        const double lambda = p / options_.epsilon + p;  // empty-queue
        if (lambda < best_lambda ||
            (lambda == best_lambda &&
             static_cast<MachineId>(i) < best_machine)) {
          best_lambda = lambda;
          best_machine = static_cast<MachineId>(i);
        }
      }
    }

    // Every non-idle contender: cheap cached bound first (same sound
    // margins as the sweep — a machine whose bound exceeds the incumbent
    // can never be the argmin), exact lambda only for the few that
    // survive. The update rule is the lexicographic (lambda, id) argmin
    // and skips are sound, so the live list's order never changes the
    // outcome. With an order table the bound's p comes from the float
    // shadow (cold batch rows: half the traffic); without one the hot
    // double row converts in-register — float_lower(rowd[i]) IS the shadow
    // entry bit for bit, so the bound, pruning and result are identical.
    const float* rowf = order != nullptr ? store_.bounds_row(j) : nullptr;
    for (const std::uint32_t i : live_list_) {
      const auto machine = static_cast<MachineId>(i);
      if (!fleet_.active(i)) continue;  // draining machines stay live
      if (!dense && !(rowd[i] < kTimeInfinity)) continue;  // ineligible
      const float pf = rowf != nullptr ? rowf[i] : float_lower(rowd[i]);
      const float plb = fleet_speed_
                            ? pf / speed_div_up_[i]
                            : (speed_is_one_ ? pf : pf / speed_up_);
      if (static_cast<double>(lambda_lower_bound(plb, i)) > best_lambda) {
        continue;
      }
      const Work p = effective_processing(machine, j);
      const double lambda = lambda_ij(machine, j, p, release);
#ifdef OSCHED_DISPATCH_STATS
      ++stat_evals_;
#endif
      if (lambda < best_lambda ||
          (lambda == best_lambda && machine < best_machine)) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    if (best_machine == kInvalidMachine) {
      OSCHED_CHECK(fleet_.enabled())
          << "job " << j << " has no eligible machine";
      *best_lambda_out = kTimeInfinity;
      return kInvalidMachine;
    }

    // Lookahead for the NEXT arrival: its candidate entries in the double
    // row are cold (the sweep path streams only the float shadow), and a
    // prefetch issued here has a whole job's worth of work to complete —
    // issued at dispatch time it would have none. Batch stores know the
    // next job already; streaming stores don't (next == num_jobs), which
    // just skips the hint. The prefetched lines are exactly the ones the
    // next dispatch reads, so this adds no net memory traffic.
    const auto next = static_cast<std::size_t>(j) + 1;
    if (next < store_.num_jobs()) {
      const auto nj = static_cast<JobId>(next);
      const Work* nrow = store_.processing_row(nj);
      const auto* norder = store_.p_order_row(nj);
      if (norder != nullptr) {
        const std::size_t ncount = store_.eligible_machines(nj).size();
        __builtin_prefetch(nrow + norder[0], 0, 0);
        if (ncount > 1) __builtin_prefetch(nrow + norder[1], 0, 0);
      }
      for (const std::uint32_t i : live_list_) {
        __builtin_prefetch(nrow + i, 0, 0);
        __builtin_prefetch(pending_[i].root_address(), 0, 3);
      }
    }

    *best_lambda_out = best_lambda;
    return best_machine;
  }

  MachineId dispatch_indexed(JobId j, double* best_lambda_out) {
    const Time release = store_.job(j).release;
    const auto eligible = store_.eligible_machines(j);
    const std::size_t count = eligible.size();
    OSCHED_CHECK(count > 0) << "job " << j << " has no eligible machine";

    // Whole fleet down: nothing can take the job (also keeps the dense
    // argmin below safe — an all-infinity lb row has no locatable seed).
    if (fleet_.enabled() && fleet_.num_active() == 0) {
      *best_lambda_out = kTimeInfinity;
      return kInvalidMachine;
    }

    // Few busy machines (the steady state): O(|live|) ordered path. The
    // cutover scales with the candidate count — at small m the sweep is
    // already a handful of cache lines and beats per-contender evaluation
    // as soon as a burst backs up most machines.
    if (live_list_.size() <= std::min(kOrderedPathMaxLive, count / 4 + 1)) {
      return dispatch_ordered(j, release, eligible, best_lambda_out);
    }

    const float* row = store_.bounds_row(j);
    const std::size_t m = store_.num_machines();

    // Lower-bound sweep over the float32 shadow row (half the memory
    // traffic of the double row — the resource the dense sweep is bound
    // by). lb_[k] is the bound of the k-th eligible machine; the dense case
    // (every machine eligible, k == machine id) is a branch-free contiguous
    // loop over the SoA lambda inputs — the loop the layout exists for —
    // followed by a two-level argmin; the first index attaining the minimum
    // is the smallest machine id, which is the tie-break the heap uses too.
    std::size_t seed_k = 0;
    float seed_p = 0.0f;
    const bool dense = count == m && speed_is_one_;
    constexpr std::size_t kBlock = 8;
    const std::size_t full = dense ? m / kBlock : 0;
    if (dense) {
      const float* __restrict pcm = pend_cnt_margin_.data();
      const float* __restrict pmp = pend_min_p_.data();
      float* __restrict lb = lb_.data();
      // Explicit SIMD fill (AVX2/AVX-512 behind runtime dispatch, scalar
      // reference as fallback) — per-lane identical to the former inline
      // loop; see util/simd_argmin.hpp for the bit-identity contract.
      util::simd::lb_fill(row, pcm, pmp, empty_coeff_margin_, lb, m);
      // Speed mask: the bulk fill used the RAW shadow row, which is not a
      // lower bound on a sped-UP machine's effective lambda. O(#scaled)
      // overwrites recompute those entries from the UP-rounded divisor —
      // the same masked-fixup shape as the fleet mask below, and a no-op
      // while every multiplier is 1.
      if (fleet_speed_) {
        for (const std::uint32_t s : fleet_.scaled_list()) {
          lb[s] = lambda_lower_bound(row[s] / speed_div_up_[s], s);
        }
      }
      // Fleet mask: O(#inactive) overwrites keep the sweep itself
      // branch-free — masked machines can never seed and never screen in
      // as rivals. A no-op while the fleet is whole. (After the speed
      // fixup: a machine can be both scaled and down, and down wins.)
      for (const std::uint32_t down : fleet_.inactive_list()) {
        lb[down] = std::numeric_limits<float>::infinity();
      }
      // Two-level argmin: per-block minima first (min is exactly
      // associative/commutative over the NaN-free, -0.0-free lb values, so
      // any lane split gives the same value), then the first block and
      // first lane attaining the minimum — the explicit SIMD kernel keeps
      // those exact semantics across tiers, and also returns the block
      // minima the rival screen reads below.
      const util::simd::ArgminResult seed =
          util::simd::block_minima_argmin(lb, m, block_min_.data());
      OSCHED_CHECK_LT(seed.index, m) << "no finite dispatch bound";
      seed_k = seed.index;
      seed_p = row[seed_k];
    } else {
      float seed_lb = std::numeric_limits<float>::max();
      for (std::size_t k = 0; k < count; ++k) {
        const auto i = static_cast<std::size_t>(eligible.first[k]);
        if (!fleet_.active(i)) {
          lb_[k] = std::numeric_limits<float>::infinity();
          continue;
        }
        // speed_up_ >= speed exactly, so the float quotient stays a lower
        // bound on p/speed (speed != 1 only in the speed-augmented runs);
        // under a kSpeedChange plan the per-machine UP-rounded divisor
        // plays the same role (1.0f — exact — while unscaled).
        const float p = fleet_speed_
                            ? row[i] / speed_div_up_[i]
                            : (speed_is_one_ ? row[i] : row[i] / speed_up_);
        lb_[k] = lambda_lower_bound(p, i);
        if (lb_[k] < seed_lb) {
          seed_lb = lb_[k];
          seed_k = k;
          seed_p = p;
        }
      }
    }

    const MachineId seed_machine = eligible.first[seed_k];
    const auto seed_i = static_cast<std::size_t>(seed_machine);
    if (!fleet_.active(seed_i)) {
      // Every eligible machine is masked (sparse eligibility under a fleet
      // plan) or every active bound saturated: the exact reference scan —
      // itself active-filtered — settles it, including kInvalidMachine.
      return dispatch_linear_scan(j, best_lambda_out);
    }
    // The exact lambda evaluation below is the dispatch's only read of the
    // DOUBLE p row — a cold line (the sweep streams the float shadow). Kick
    // the fetch off now and fill its latency shadow with the rival screen,
    // which only needs float state.
    __builtin_prefetch(store_.processing_row(j) + seed_i, 0, 0);

    // Rival screen against a sound float UPPER bound of the seed lambda
    // (lambda_seed = p/eps + p + sum min(p_l, p) <= (n_seed + 1 + 1/eps) *
    // p_up in reals; the 1.0001 factors absorb every float rounding). The
    // threshold over-approximates "bound <= exact seed lambda", so it can
    // only flag extra rivals — the heap loop re-checks against the exact
    // incumbent — never miss one. In the dense case the block minima from
    // the argmin pass screen eight machines per compare, and almost always
    // conclude "seed only" without touching the per-machine bounds again.
    const float* __restrict lbs = lb_.data();
    float threshold = std::numeric_limits<float>::max();
    // The screen needs a sound UPPER bound on the seed's effective p; while
    // any speed multiplier is in force, seed_p came through a rounded
    // division and next-up no longer covers the exact value — leave the
    // threshold saturated so every bounded candidate reaches the heap's
    // exact re-check (outcome unchanged, just less pruning).
    if (speed_is_one_ && !(fleet_speed_ && fleet_.any_speed_scaled())) {
      const float p_up = float_next_up(seed_p);
      threshold = (p_up * empty_coeff_up_ +
                   static_cast<float>(pend_n_[seed_i]) * p_up * 1.0001f) *
                  1.0001f;
    }
    bool has_rivals = false;
    if (dense) {
      const std::size_t seed_block = seed_k / kBlock;
      const float* __restrict bmin = block_min_.data();
      for (std::size_t b = 0; b < full && !has_rivals; ++b) {
        has_rivals = b != seed_block && bmin[b] <= threshold;
      }
      if (!has_rivals) {
        // The seed's own block (or the tail, when the seed sits there)...
        const std::size_t lo = seed_block * kBlock;
        const std::size_t hi = std::min(m, lo + kBlock);
        for (std::size_t i2 = lo; i2 < hi; ++i2) {
          has_rivals |= i2 != seed_k && lbs[i2] <= threshold;
        }
        // ...and the tail block, which has no bmin entry.
        if (seed_block != full) {
          for (std::size_t i2 = full * kBlock; i2 < m; ++i2) {
            has_rivals |= lbs[i2] <= threshold;
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < count; ++k) {
        has_rivals |= k != seed_k && lbs[k] <= threshold;
      }
    }
    heap_.reset();
    if (has_rivals) {
      for (std::size_t k = 0; k < count; ++k) {
        if (k == seed_k || lbs[k] > threshold) continue;
        heap_.push(lbs[k], static_cast<std::uint32_t>(eligible.first[k]));
      }
    }

    // Exact incumbent (the prefetched line has had the screen to arrive),
    // then best-first rival evaluation with the exact pruning rule.
    double best_lambda = lambda_ij(seed_machine, j,
                                   effective_processing(seed_machine, j),
                                   release);
    MachineId best_machine = seed_machine;
    while (!heap_.empty()) {
      const auto entry = heap_.pop_min();
      if (entry.key > best_lambda) break;
      const auto machine = static_cast<MachineId>(entry.id);
      const Work p = effective_processing(machine, j);
      const double lambda = lambda_ij(machine, j, p, release);
#ifdef OSCHED_DISPATCH_STATS
      ++stat_evals_;
#endif
      if (lambda < best_lambda ||
          (lambda == best_lambda && machine < best_machine)) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
#ifdef OSCHED_DISPATCH_STATS
    ++stat_dispatches_;
    stat_survivors_ += has_rivals ? 1 : 0;
#endif
    *best_lambda_out = best_lambda;
    return best_machine;
  }

#ifdef OSCHED_DISPATCH_STATS
 public:
  /// Diagnostics for perf work (compile-gated; not part of the API):
  /// dispatches, exact rival lambda evaluations, dispatches with rivals.
  mutable std::size_t stat_dispatches_ = 0;
  mutable std::size_t stat_evals_ = 0;
  mutable std::size_t stat_survivors_ = 0;

 private:
#endif

  // ---- pending-queue mutations keep the cached lambda inputs in sync
  // (only the touched machine's entries are ever written) ----

  void pending_insert(std::size_t i, const PendingKey& key) {
    pending_[i].insert(key);
    // The margin product is recomputed from the integer count (never
    // accumulated), so it cannot drift above margin * n_i.
    const std::uint32_t n = ++pend_n_[i];
    pend_cnt_margin_[i] = kDispatchBoundMarginF * static_cast<float>(n);
    if (n == 1) live_add(i);
    const float low = float_lower(key.p);
    if (low < pend_min_p_[i]) pend_min_p_[i] = low;
  }

  PendingKey pending_pop_min(std::size_t i) {
    const PendingKey* next = nullptr;
    const PendingKey key = pending_[i].pop_min_peek_next(&next);
    const std::uint32_t n = --pend_n_[i];
    pend_cnt_margin_[i] = kDispatchBoundMarginF * static_cast<float>(n);
    if (n == 0) live_remove(i);
    // The popped key was the order minimum, so the reported successor's p
    // is the new pending minimum (p is the primary key component).
    pend_min_p_[i] = next == nullptr ? std::numeric_limits<float>::max()
                                     : float_lower(next->p);
    return key;
  }

  void pending_erase(std::size_t i, const PendingKey& key) {
    OSCHED_CHECK(pending_[i].erase(key));
    const std::uint32_t n = --pend_n_[i];
    pend_cnt_margin_[i] = kDispatchBoundMarginF * static_cast<float>(n);
    if (n == 0) live_remove(i);
    if (float_lower(key.p) <= pend_min_p_[i]) {
      pend_min_p_[i] = pending_[i].empty()
                           ? std::numeric_limits<float>::max()
                           : float_lower(pending_[i].min()->p);
    }
  }

  // ---- live-machine set: machines with a non-empty pending queue, kept
  // as a swap-remove list with a position map. The dispatch's ordered path
  // is O(|live|); outcomes never depend on the list's internal order
  // (candidates are compared lexicographically by (lambda, id)). ----

  void live_add(std::size_t i) {
    live_pos_[i] = static_cast<std::uint32_t>(live_list_.size()) + 1;
    live_list_.push_back(static_cast<std::uint32_t>(i));
  }

  void live_remove(std::size_t i) {
    const std::uint32_t pos = live_pos_[i] - 1;
    const std::uint32_t last = live_list_.back();
    live_list_[pos] = last;
    live_pos_[last] = pos + 1;
    live_list_.pop_back();
    live_pos_[i] = 0;
  }

  void start_next(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    OSCHED_CHECK_EQ(running_[i], kInvalidJob);
    if (pending_[i].empty()) return;
    const PendingKey key = pending_pop_min(i);
    running_[i] = key.id;
    if (!fleet_speed_) {
      running_end_[i] = now + key.p;
      rec_.mark_started(key.id, now, options_.speed);
    } else {
      // The key froze the DISPATCH-time effective p (queue-order
      // stability); the run itself executes at the START-time speed — a
      // speed change between dispatch and start re-resolves the duration
      // here, and the recorded speed keeps the validator's p/speed
      // occupancy check exact.
      const double s = options_.speed * fleet_.speed_multiplier(i);
      const Work p = store_.processing_unchecked(machine, key.id);
      running_end_[i] = now + (s == 1.0 ? p : p / s);
      rec_.mark_started(key.id, now, s);
    }
    v_counter_[i] = 0;
    completion_event_[i] = events_.schedule(running_end_[i], machine, key.id);
  }

  void reject_running(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    const JobId k = running_[i];
    OSCHED_CHECK(k != kInvalidJob);
    const Time remaining = running_end_[i] - now;
    OSCHED_CHECK_GE(remaining, -kTimeEps);
    events_.cancel(completion_event_[i]);
    rec_.mark_rejected_running(k, now);

    // Every job of U_i(now) — the pending jobs and k itself — has its
    // definitive finish pushed back by the removed remaining time. The
    // pending queue is walked in place; no per-rejection id vector.
    dual_.on_rule1_rejection(k, std::max(0.0, remaining), [&](auto&& extend) {
      pending_[i].for_each([&](const PendingKey& key) { extend(key.id); });
    });
    dual_.finalize(k, store_.job(k).release, now);

    running_[i] = kInvalidJob;
    ++rule1_rejections_;
  }

  PendingKey select_rule2_victim(std::size_t i, MachineId machine, JobId trigger) {
    switch (options_.rule2_victim) {
      case Rule2Victim::kLargest:
        return *pending_[i].max();
      case Rule2Victim::kSmallest:
        return *pending_[i].min();
      case Rule2Victim::kNewest:
        return make_key(machine, trigger);
      case Rule2Victim::kRandom:
        // Order-statistic select: O(log n) for the same in-order position
        // (and the same RNG draw) the former O(n) for_each scan picked.
        return pending_[i].kth(victim_rng_.index(pending_[i].size()));
    }
    OSCHED_CHECK(false) << "unreachable victim rule";
    return PendingKey{};
  }

  void reject_largest_pending(MachineId machine, JobId trigger, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    // The trigger was dispatched to this machine and has not started, so the
    // pending queue is non-empty.
    OSCHED_CHECK(!pending_[i].empty());
    const PendingKey victim = select_rule2_victim(i, machine, trigger);

    const Time remaining_of_running =
        running_[i] != kInvalidJob ? std::max(0.0, running_end_[i] - now) : 0.0;
    // Pending total except the just-arrived trigger and the victim itself.
    double sum_except = pending_[i].total_weight() - victim.p;
    if (victim.id != trigger) {
      sum_except -= effective_processing(machine, trigger);
    }
    dual_.on_rule2_rejection(victim.id, remaining_of_running,
                             std::max(0.0, sum_except), victim.p);
    dual_.finalize(victim.id, store_.job(victim.id).release, now);
    rec_.mark_rejected_pending(victim.id, now);
    pending_erase(i, victim);
    ++rule2_rejections_;
  }

  // ---- fleet failure handling ----

  /// The machine just went down (fleet_ already reflects it). Orphans the
  /// queue, decides the killed running job (budget shed or restart), and
  /// re-decides every orphan against the surviving fleet.
  void handle_fail(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);

    // Pop the whole queue through pending_pop_min so the cached lambda
    // inputs and the live list stay in sync; orphans come out in SPT order,
    // which fixes the (deterministic) re-decision order.
    orphans_.clear();
    while (pend_n_[i] != 0) orphans_.push_back(pending_pop_min(i));

    const JobId killed = running_[i];
    if (killed != kInvalidJob) {
      events_.cancel(completion_event_[i]);
      running_[i] = kInvalidJob;
      if (fleet_.shed_killed_running() && fleet_.try_spend_budget()) {
        rec_.mark_rejected_running(killed, now);
        dual_.finalize(killed, store_.job(killed).release, now);
        ++fleet_.stats.fault_rejections;
      } else {
        redecide(killed, now, /*was_running=*/true);
      }
    }
    v_counter_[i] = 0;
    c_counter_[i] = 0;

    for (const PendingKey& key : orphans_) {
      redecide(key.id, now, /*was_running=*/false);
    }
  }

  /// Re-decides one orphan: normal dispatch rule restricted to active
  /// machines, or a forced rejection when nothing can take it. Skips the
  /// rule counters and the dual lambda (set at arrival).
  void redecide(JobId j, Time now, bool was_running) {
    double lambda = 0.0;
    const MachineId target =
        options_.dispatch == DispatchMode::kIndexed
            ? dispatch_indexed(j, &lambda)
            : dispatch_linear_scan(j, &lambda);
    if (target == kInvalidMachine) {
      if (was_running) {
        rec_.mark_rejected_running(j, now);
      } else {
        rec_.mark_rejected_pending(j, now);
      }
      dual_.finalize(j, store_.job(j).release, now);
      fleet_.note_forced_rejection();
      return;
    }
    rec_.mark_requeued(j, target);  // resets `started` for a killed runner
    pending_insert(static_cast<std::size_t>(target), make_key(target, j));
    ++fleet_.stats.redispatched;
    if (running_[static_cast<std::size_t>(target)] == kInvalidJob) {
      start_next(target, now);
    }
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  RejectionFlowOptions options_;
  bool speed_is_one_ = true;
  FlowDualAccounting dual_;
  util::SlidingVector<double> lambda_;
  util::Rng victim_rng_;
  FleetState fleet_;
  std::vector<PendingKey> orphans_;  ///< handle_fail scratch

  // ---- machine state, structure-of-arrays (indexed by machine id) ----
  std::vector<PendingQueue> pending_;
  std::vector<JobId> running_;
  std::vector<Time> running_end_;
  std::vector<std::uint64_t> completion_event_;
  std::vector<std::int64_t> v_counter_;  ///< Rule 1 dispatch counters
  std::vector<std::int64_t> c_counter_;  ///< Rule 2 dispatch counters
  /// Cached lambda inputs (contiguous float32; written only for touched
  /// machines, read as whole rows by the dispatch sweep).
  std::vector<std::uint32_t> pend_n_;    ///< authoritative pending count
  std::vector<float> pend_cnt_margin_;   ///< marginF * pend_n_ (derived)
  std::vector<float> pend_min_p_;        ///< float_lower(min pending p)
  std::vector<std::uint32_t> live_list_;  ///< machines with pend_n_ > 0
  std::vector<std::uint32_t> live_pos_;   ///< position + 1 in live_list_

  // ---- dispatch scratch, reused across arrivals ----
  std::vector<float> lb_;
  std::vector<float> block_min_;
  util::DispatchHeap heap_;
  float empty_coeff_margin_ = 0.0f;  ///< marginF * (1/eps + 1)
  float empty_coeff_up_ = 0.0f;      ///< (1/eps + 1) * 1.0001 (upper twin)
  float speed_up_ = 1.0f;            ///< float(speed) rounded up
  /// kSpeedChange plans only: per-machine combined divisor
  /// (options.speed * multiplier) rounded up as a float, exactly 1.0f when
  /// the combination is exactly 1 (division by 1.0f is exact).
  bool fleet_speed_ = false;
  std::vector<float> speed_div_up_;

  std::int64_t rule1_threshold_ = 0;
  std::int64_t rule2_threshold_ = 0;
  std::size_t rule1_rejections_ = 0;
  std::size_t rule2_rejections_ = 0;
};

}  // namespace osched
