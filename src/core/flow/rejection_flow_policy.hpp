// Theorem 1 scheduling policy as a resumable, store-generic state machine.
//
// The algorithm itself (dispatch by argmin lambda_ij, Rule 1/Rule 2
// rejections, SPT pending queues over the arena treap) lives here as a
// template over
//   Store — where job data comes from: the batch `Instance`, or the
//           streaming session's `service::StreamingJobStore`. Must provide
//           job(j), processing_unchecked(i, j), eligible_machines(j) and
//           num_machines() with Instance's semantics.
//   Rec   — where decisions are recorded: the batch `Schedule`, or the
//           session's windowed record store. Must provide the mark_*
//           mutation surface of Schedule.
// The policy holds no event loop: it reacts to on_arrival/on_event calls
// from whatever driver owns the clock (SimEngine for batch runs, a
// SchedulerSession for submit/advance/drain streaming), scheduling its own
// completions into the EventQueue it was handed. Identical call sequences
// produce bit-identical decisions regardless of the driver, which is what
// the streaming differential tests pin down.
//
// See rejection_flow.hpp for the paper conventions and the batch entry
// point; this header is the shared implementation.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/flow/dual_accounting.hpp"
#include "core/flow/rejection_flow.hpp"
#include "sim/engine.hpp"
#include "util/augmented_treap.hpp"
#include "util/rng.hpp"
#include "util/sliding_vector.hpp"

namespace osched {

namespace rejection_flow_detail {

/// Pending-queue key: shortest processing time first, ties by earliest
/// release then id (the paper's order, made total).
struct PendingKey {
  Work p = 0.0;
  Time r = 0.0;
  JobId id = kInvalidJob;

  bool operator<(const PendingKey& other) const {
    if (p != other.p) return p < other.p;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct KeyProcessing {
  double operator()(const PendingKey& key) const { return key.p; }
};

using PendingQueue = util::AugmentedTreap<PendingKey, KeyProcessing>;

struct MachineState {
  explicit MachineState(std::uint64_t seed)
      : pending(KeyProcessing{}, seed) {}

  PendingQueue pending;
  JobId running = kInvalidJob;
  Work running_p = 0.0;  ///< effective (speed-scaled) processing time
  Time running_end = 0.0;
  std::uint64_t completion_event = 0;
  std::int64_t v_counter = 0;  ///< Rule 1: dispatches during current execution
  std::int64_t c_counter = 0;  ///< Rule 2: dispatches since last reset
};

}  // namespace rejection_flow_detail

template <class Store, class Rec>
class RejectionFlowPolicy final : public SimulationHooks {
  using PendingKey = rejection_flow_detail::PendingKey;
  using MachineState = rejection_flow_detail::MachineState;

 public:
  RejectionFlowPolicy(const Store& store, Rec& rec, EventQueue& events,
                      const RejectionFlowOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        speed_is_one_(options.speed == 1.0),
        dual_(store.num_jobs(), options.epsilon),
        victim_rng_(options.victim_seed) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
    OSCHED_CHECK_GT(options.speed, 0.0);
    // "the first time when v_j = 1/eps" / "c_i = 1 + 1/eps": counters are
    // integers. Rule 1 rounds UP (threshold >= 1/eps keeps the rejection
    // count within eps*n). Rule 2 rounds DOWN: Corollary 1 needs
    // c_i <= 1/eps between resets, so the trigger is floor(1 + 1/eps) —
    // which both stays >= 1/eps (budget) and equals the paper's 1 + 1/eps
    // whenever 1/eps is integral. The 1e-9 slack absorbs 1/eps float error
    // for eps = 1/k.
    rule1_threshold_ = static_cast<std::int64_t>(std::ceil(1.0 / options.epsilon - 1e-9));
    rule2_threshold_ =
        static_cast<std::int64_t>(std::floor(1.0 + 1.0 / options.epsilon + 1e-9));
    lambda_.extend_to(store.num_jobs());
    machines_.reserve(store.num_machines());
    for (std::size_t i = 0; i < store.num_machines(); ++i) {
      machines_.emplace_back(util::derive_seed(0xF10BA5E5ULL, i));
    }
  }

  void on_arrival(JobId j, Time now) override {
    dual_.register_job(j);
    lambda_.extend_to(static_cast<std::size_t>(j) + 1);

    // Dispatch to argmin_i lambda_ij over j's eligible machines; ties go to
    // the lowest machine index, exactly as the former ascending full scan.
    const Time release = store_.job(j).release;
    const auto eligible = store_.eligible_machines(j);
    OSCHED_CHECK(!eligible.empty())
        << "job " << j << " has no eligible machine";

    // Seed the scan with the fastest machine: its lambda is usually near the
    // minimum, which lets the p/eps + p lower bound prune most of the other
    // treap descents before they start.
    MachineId seed_machine = *eligible.begin();
    Work seed_p = effective_processing(seed_machine, j);
    for (const MachineId machine : eligible) {
      const Work p = effective_processing(machine, j);
      if (p < seed_p) {
        seed_p = p;
        seed_machine = machine;
      }
    }
    double best_lambda = lambda_ij(seed_machine, j, seed_p, release);
    MachineId best_machine = seed_machine;
    for (const MachineId machine : eligible) {
      if (machine == seed_machine) continue;
      const Work p = effective_processing(machine, j);
      // Exact pruning: p/eps + p is lambda_ij for an empty queue, and the
      // pending contributions only add non-negative terms (floating-point
      // addition of non-negatives is monotone), so it lower-bounds
      // lambda_ij. A machine whose bound strictly exceeds the incumbent can
      // never be the argmin.
      if (p / options_.epsilon + p > best_lambda) continue;
      const double lambda = lambda_ij(machine, j, p, release);
      // Explicit tie rule: the seed may carry a higher index than an
      // equal-lambda machine scanned here.
      if (lambda < best_lambda ||
          (lambda == best_lambda && machine < best_machine)) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
    dual_.set_lambda(j, best_lambda);
    lambda_[static_cast<std::size_t>(j)] =
        options_.epsilon / (1.0 + options_.epsilon) * best_lambda;

    MachineState& ms = machines_[static_cast<std::size_t>(best_machine)];
    rec_.mark_dispatched(j, best_machine);
    ms.pending.insert(make_key(best_machine, j));

    // Rule 1: the arrival was dispatched during the running job's execution.
    if (options_.enable_rule1 && ms.running != kInvalidJob) {
      ++ms.v_counter;
      if (ms.v_counter >= rule1_threshold_) {
        reject_running(best_machine, now);
      }
    }

    // Rule 2: every dispatch to the machine counts.
    if (options_.enable_rule2) {
      ++ms.c_counter;
      if (ms.c_counter >= rule2_threshold_) {
        reject_largest_pending(best_machine, j, now);
        ms.c_counter = 0;
      }
    }

    if (ms.running == kInvalidJob) start_next(best_machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    // Only completions are scheduled.
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    dual_.finalize(event.job, store_.job(event.job).release, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  /// Releases per-job dual/lambda state below the decided frontier
  /// (streaming sessions only; batch runs keep everything for export).
  void retire_below(JobId frontier) {
    dual_.retire_below(frontier);
    lambda_.retire_below(static_cast<std::size_t>(frontier));
  }

  std::size_t rule1_rejections() const { return rule1_rejections_; }
  std::size_t rule2_rejections() const { return rule2_rejections_; }
  const FlowDualAccounting& dual() const { return dual_; }
  /// lambda_j = eps/(1+eps) * min_i lambda_ij; j must not be retired.
  double lambda(JobId j) const { return lambda_.at(static_cast<std::size_t>(j)); }

 private:
  PendingKey make_key(MachineId i, JobId j) const {
    return PendingKey{effective_processing(i, j), store_.job(j).release, j};
  }

  Work effective_processing(MachineId i, JobId j) const {
    // Indices are validated by construction: i comes from the store's
    // eligibility adjacency (or a machine that already holds j) and j from
    // the arrival stream. speed == 1.0 skips the division (p/1.0 == p, so
    // the fast path is bit-identical).
    const Work p = store_.processing_unchecked(i, j);
    return speed_is_one_ ? p : p / options_.speed;
  }

  /// lambda_ij = p_ij/eps + sum_{l <= j} p_il + |{l > j}| * p_ij over the
  /// pending order with j virtually inserted (running job excluded).
  /// `p` must be effective_processing(i, j).
  double lambda_ij(MachineId i, JobId j, Work p, Time release) const {
    const MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const PendingKey key{p, release, j};
    const auto prefix = ms.pending.stats_less(key);
    const std::size_t after = ms.pending.size() - prefix.count;
    return p / options_.epsilon + (prefix.weight + p) +
           static_cast<double>(after) * p;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    OSCHED_CHECK_EQ(ms.running, kInvalidJob);
    if (ms.pending.empty()) return;
    const PendingKey key = ms.pending.pop_min();
    ms.running = key.id;
    ms.running_p = key.p;
    ms.running_end = now + key.p;
    ms.v_counter = 0;
    rec_.mark_started(key.id, now, options_.speed);
    ms.completion_event = events_.schedule(ms.running_end, i, key.id);
  }

  void reject_running(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const JobId k = ms.running;
    OSCHED_CHECK(k != kInvalidJob);
    const Time remaining = ms.running_end - now;
    OSCHED_CHECK_GE(remaining, -kTimeEps);
    events_.cancel(ms.completion_event);
    rec_.mark_rejected_running(k, now);

    // Every job of U_i(now) — the pending jobs and k itself — has its
    // definitive finish pushed back by the removed remaining time. The
    // pending queue is walked in place; no per-rejection id vector.
    dual_.on_rule1_rejection(k, std::max(0.0, remaining), [&](auto&& extend) {
      ms.pending.for_each([&](const PendingKey& key) { extend(key.id); });
    });
    dual_.finalize(k, store_.job(k).release, now);

    ms.running = kInvalidJob;
    ++rule1_rejections_;
  }

  PendingKey select_rule2_victim(MachineState& ms, MachineId i, JobId trigger) {
    switch (options_.rule2_victim) {
      case Rule2Victim::kLargest:
        return *ms.pending.max();
      case Rule2Victim::kSmallest:
        return *ms.pending.min();
      case Rule2Victim::kNewest:
        return make_key(i, trigger);
      case Rule2Victim::kRandom:
        // Order-statistic select: O(log n) for the same in-order position
        // (and the same RNG draw) the former O(n) for_each scan picked.
        return ms.pending.kth(victim_rng_.index(ms.pending.size()));
    }
    OSCHED_CHECK(false) << "unreachable victim rule";
    return PendingKey{};
  }

  void reject_largest_pending(MachineId i, JobId trigger, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    // The trigger was dispatched to this machine and has not started, so the
    // pending queue is non-empty.
    OSCHED_CHECK(!ms.pending.empty());
    const PendingKey victim = select_rule2_victim(ms, i, trigger);

    const Time remaining_of_running =
        ms.running != kInvalidJob ? std::max(0.0, ms.running_end - now) : 0.0;
    // Pending total except the just-arrived trigger and the victim itself.
    double sum_except = ms.pending.total_weight() - victim.p;
    if (victim.id != trigger) {
      sum_except -= effective_processing(i, trigger);
    }
    dual_.on_rule2_rejection(victim.id, remaining_of_running,
                             std::max(0.0, sum_except), victim.p);
    dual_.finalize(victim.id, store_.job(victim.id).release, now);
    rec_.mark_rejected_pending(victim.id, now);
    OSCHED_CHECK(ms.pending.erase(victim));
    ++rule2_rejections_;
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  RejectionFlowOptions options_;
  bool speed_is_one_ = true;
  FlowDualAccounting dual_;
  util::SlidingVector<double> lambda_;
  util::Rng victim_rng_;
  std::vector<MachineState> machines_;
  std::int64_t rule1_threshold_ = 0;
  std::int64_t rule2_threshold_ = 0;
  std::size_t rule1_rejections_ = 0;
  std::size_t rule2_rejections_ = 0;
};

}  // namespace osched
