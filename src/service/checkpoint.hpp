// Checkpoint wire format: versioned, checksummed binary blobs for
// session/driver snapshots.
//
// A checkpoint is a REPLAY JOURNAL, not a state dump: it records the
// session's configuration, clock, and every submitted job, and restore
// rebuilds the session by replaying the submissions and advancing to the
// saved clock. Because a streamed run makes bit-identical decisions
// regardless of how the feed is chunked (the streaming differential wall,
// tests/streaming_test.cpp), the restored session is bit-identical to the
// original — same records, same pending queues, same future decisions —
// without serializing a single byte of policy internals. That keeps the
// format stable across policy refactors: only the journal is normative.
//
// Layout (all integers little-endian, all floats raw IEEE-754 bits; the
// field-by-field specification lives in docs/ARCHITECTURE.md and is
// normative — a change here without a version bump is a bug):
//
//   magic      8 bytes  "OSCKPT01" (session) / "OSCKPD01" (shard driver)
//   version    u32      format version (kCheckpointVersion)
//   body       ...      per-kind fields (see docs/ARCHITECTURE.md)
//   checksum   u64      FNV-1a 64 of every preceding byte
//
// Restore NEVER aborts on a damaged blob: truncation, corruption and
// version mismatches come back as diagnostic strings (the checksum is
// verified before any field is trusted, and every read is bounds-checked
// on top — a short or bit-flipped file can misparse, but it cannot touch
// memory out of bounds or allocate from an unvalidated length field).
// The checksum guards against accidental damage, not adversaries: a blob
// forged with a valid checksum is "a genuine checkpoint" as far as this
// layer can tell, and replaying it re-runs the same input validation any
// live submission faces.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace osched::service {

inline constexpr char kSessionCheckpointMagic[8] = {'O', 'S', 'C', 'K',
                                                    'P', 'T', '0', '1'};
inline constexpr char kDriverCheckpointMagic[8] = {'O', 'S', 'C', 'K',
                                                   'P', 'D', '0', '1'};
/// Current write version. Version history (readers accept every version in
/// [kCheckpointVersionMin, kCheckpointVersion]; the field-by-field deltas
/// are specified in docs/ARCHITECTURE.md):
///   1  original session/driver journal format
///   2  adds a per-fleet-event f64 speed multiplier (kSpeedChange events)
///      and the session overload-control fields (live_window_cap,
///      shed_budget); version-1 blobs restore with speed = 1.0 and an
///      uncapped window
///   3  adds the session storage backend (u8 after shed_budget) and makes
///      the job journal's payload follow it: dense rows unchanged, sparse
///      jobs carry a u32 entry count plus (u32 machine, f64 p) pairs,
///      generator jobs carry metadata only (restore() is handed the closed
///      form); version-1/2 blobs restore as dense sessions
///   4  adds the adaptive overload policy after the backend byte: the shed
///      policy (u8), then the adaptive-cap configuration (enabled u8,
///      min_cap u64, max_cap u64, window f64, target_delay f64,
///      hysteresis u64). Configuration only — estimator contents and the
///      effective cap are replay-derived. Version-1/2/3 blobs restore
///      under the neutral defaults (fixed shed rule, tuning disabled)
inline constexpr std::uint32_t kCheckpointVersion = 4;
inline constexpr std::uint32_t kCheckpointVersionMin = 1;

/// FNV-1a 64-bit over a byte range — the checkpoint trailer's checksum.
inline std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Append-only little-endian encoder. finish() seals the blob with the
/// FNV-1a trailer; the writer is spent afterwards.
class CheckpointWriter {
 public:
  void bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  void u8(std::uint8_t value) { bytes(&value, 1); }
  void u32(std::uint32_t value) { put_le(value); }
  void u64(std::uint64_t value) { put_le(value); }
  void f64(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    put_le(bits);
  }

  std::string finish() {
    const std::uint64_t checksum = fnv1a64(buffer_.data(), buffer_.size());
    put_le(checksum);
    return std::move(buffer_);
  }

 private:
  template <class T>
  void put_le(T value) {
    char out[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    bytes(out, sizeof(T));
  }

  std::string buffer_;
};

/// Bounds-checked decoder over a sealed blob. Every read either succeeds or
/// latches a failure (ok() == false, error() says why) and returns zero;
/// callers may batch reads and check once. expect_magic/verify_checksum
/// front-load the whole-blob integrity checks.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view blob) : blob_(blob) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  void fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  /// Bytes left between the cursor and the checksum trailer.
  std::size_t remaining() const {
    const std::size_t body = blob_.size() - sizeof(std::uint64_t);
    return pos_ < body ? body - pos_ : 0;
  }

  /// Checks the 8-byte magic and the trailing checksum; the cursor ends up
  /// just past the magic. All subsequent reads stop at the trailer.
  void open(const char (&magic)[8], const char* kind) {
    if (blob_.size() < sizeof(magic) + 2 * sizeof(std::uint64_t)) {
      return fail(std::string("checkpoint truncated: ") +
                  std::to_string(blob_.size()) + " bytes is too short for a " +
                  kind + " checkpoint header");
    }
    if (std::memcmp(blob_.data(), magic, sizeof(magic)) != 0) {
      return fail(std::string("not a ") + kind +
                  " checkpoint (magic mismatch)");
    }
    const std::size_t body = blob_.size() - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    for (std::size_t i = 0; i < sizeof(stored); ++i) {
      stored |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(blob_[body + i]))
                << (8 * i);
    }
    if (stored != fnv1a64(blob_.data(), body)) {
      return fail("checkpoint corrupted: checksum mismatch");
    }
    pos_ = sizeof(magic);
  }

  std::uint8_t u8() {
    std::uint8_t value = 0;
    read(&value, 1);
    return value;
  }
  void bytes(void* out, std::size_t size) { read(out, size); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = get_le<std::uint64_t>();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  void read(void* out, std::size_t size) {
    if (!ok()) return;
    if (remaining() < size) {
      std::memset(out, 0, size);
      return fail("checkpoint truncated: field extends past the blob");
    }
    std::memcpy(out, blob_.data() + pos_, size);
    pos_ += size;
  }

  template <class T>
  T get_le() {
    unsigned char in[sizeof(T)] = {};
    read(in, sizeof(T));
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(in[i]) << (8 * i);
    }
    return value;
  }

  std::string_view blob_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace osched::service
