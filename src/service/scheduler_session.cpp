#include "service/scheduler_session.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "baselines/immediate_rejection_policy.hpp"
#include "baselines/list_scheduler_policy.hpp"
#include "core/energy_flow/energy_flow_policy.hpp"
#include "core/flow/rejection_flow_policy.hpp"
#include "extensions/weighted_flow_policy.hpp"
#include "instance/power.hpp"
#include "metrics/metrics.hpp"
#include "service/checkpoint.hpp"
#include "service/job_store.hpp"
#include "service/session_schedule.hpp"
#include "sim/validator.hpp"

namespace osched::service {

namespace {

/// Type-erased owner of one policy instance. The session drives the policy
/// through SimulationHooks; the algorithm-specific result fields are filled
/// by finalize().
class PolicyHost {
 public:
  virtual ~PolicyHost() = default;
  virtual SimulationHooks& hooks() = 0;
  virtual void retire_below(JobId frontier) = 0;
  virtual void finalize(api::RunSummary& summary) = 0;
};

using T1Policy = RejectionFlowPolicy<StreamingJobStore, SessionSchedule>;
using T2Policy = EnergyFlowPolicy<StreamingJobStore, SessionSchedule>;
using WePolicy = WeightedFlowPolicy<StreamingJobStore, SessionSchedule>;
using LsPolicy = ListSchedulerPolicy<StreamingJobStore, SessionSchedule>;
using IrPolicy = ImmediateRejectionPolicy<StreamingJobStore, SessionSchedule>;

template <class Policy, class Options>
class HostBase : public PolicyHost {
 public:
  HostBase(const StreamingJobStore& store, SessionSchedule& rec,
           EventQueue& events, const Options& options)
      : policy_(store, rec, events, options) {}
  SimulationHooks& hooks() override { return policy_; }
  void retire_below(JobId frontier) override { policy_.retire_below(frontier); }

 protected:
  Policy policy_;
};

class Theorem1Host final : public HostBase<T1Policy, RejectionFlowOptions> {
 public:
  using HostBase::HostBase;
  void finalize(api::RunSummary& summary) override {
    summary.certified_lower_bound = policy_.dual().opt_lower_bound();
    summary.rule1_rejections = policy_.rule1_rejections();
    summary.rule2_rejections = policy_.rule2_rejections();
    summary.fleet = policy_.fleet_stats();
  }
};

class Theorem2Host final : public HostBase<T2Policy, EnergyFlowOptions> {
 public:
  using HostBase::HostBase;
  void finalize(api::RunSummary& summary) override {
    summary.rule1_rejections = policy_.rejections();
    summary.fleet = policy_.fleet_stats();
  }
};

class WeightedExtHost final : public HostBase<WePolicy, WeightedFlowOptions> {
 public:
  using HostBase::HostBase;
  void finalize(api::RunSummary& summary) override {
    summary.rule1_rejections = policy_.rule1_rejections();
    summary.rule2_rejections = policy_.rule2_rejections();
    summary.fleet = policy_.fleet_stats();
  }
};

class ListHost final : public HostBase<LsPolicy, ListSchedulerOptions> {
 public:
  using HostBase::HostBase;
  void finalize(api::RunSummary& summary) override {
    summary.fleet = policy_.fleet_stats();
  }
};

class ImmediateHost final : public HostBase<IrPolicy, ImmediateRejectionOptions> {
 public:
  using HostBase::HostBase;
  void finalize(api::RunSummary& summary) override {
    summary.rule1_rejections = policy_.rejections();
    summary.fleet = policy_.fleet_stats();
  }
};

std::unique_ptr<PolicyHost> make_host(api::Algorithm algorithm,
                                      const StreamingJobStore& store,
                                      SessionSchedule& rec, EventQueue& events,
                                      const api::RunOptions& run) {
  switch (algorithm) {
    case api::Algorithm::kTheorem1:
      return std::make_unique<Theorem1Host>(
          store, rec, events,
          RejectionFlowOptions{.epsilon = run.epsilon, .fleet = run.fleet});
    case api::Algorithm::kTheorem2: {
      EnergyFlowOptions ef;
      ef.epsilon = run.epsilon;
      ef.alpha = run.alpha;
      ef.fleet = run.fleet;
      return std::make_unique<Theorem2Host>(store, rec, events, ef);
    }
    case api::Algorithm::kWeightedExt:
      return std::make_unique<WeightedExtHost>(
          store, rec, events,
          WeightedFlowOptions{.epsilon = run.epsilon, .fleet = run.fleet});
    case api::Algorithm::kGreedySpt:
      return std::make_unique<ListHost>(
          store, rec, events,
          ListSchedulerOptions{DispatchRule::kMinCompletion,
                               QueueDiscipline::kSpt, run.fleet});
    case api::Algorithm::kFifo:
      return std::make_unique<ListHost>(
          store, rec, events,
          ListSchedulerOptions{DispatchRule::kMinBacklog,
                               QueueDiscipline::kFifo, run.fleet});
    case api::Algorithm::kImmediateReject:
      return std::make_unique<ImmediateHost>(
          store, rec, events,
          ImmediateRejectionOptions{.eps = run.epsilon, .fleet = run.fleet});
    case api::Algorithm::kTheorem3:
      break;
  }
  OSCHED_CHECK(false) << "algorithm " << api::to_string(algorithm)
                      << " has no streaming session (theorem3 is batch-only)";
  return nullptr;
}

}  // namespace

class SchedulerSession::Impl {
 public:
  Impl(api::Algorithm algorithm, std::size_t num_machines,
       SessionOptions options)
      : algorithm_(algorithm),
        options_(options),
        store_(num_machines, /*jobs_per_block=*/4096, options.storage,
               options.generator),
        host_(make_host(algorithm, store_, records_, events_, options.run)) {
    OSCHED_CHECK(options.retain_records || !options.run.validate)
        << "low-memory sessions keep no schedule to validate; set "
           "run.validate = false (or retain records)";
    OSCHED_CHECK(options.retain_records ||
                 algorithm != api::Algorithm::kTheorem2)
        << "theorem2's dual finalization reads every record; low-memory "
           "sessions are unavailable for it";
    OSCHED_CHECK_GT(options.retire_batch, 0u);
    const AdaptiveCapOptions& tune = options_.adaptive_cap;
    if (tune.enabled) {
      OSCHED_CHECK_GE(tune.min_cap, 1u)
          << "adaptive cap: min_cap must be >= 1";
      OSCHED_CHECK_GE(tune.max_cap, tune.min_cap)
          << "adaptive cap: max_cap must be >= min_cap";
      OSCHED_CHECK_GT(tune.window, 0.0)
          << "adaptive cap: the rate-estimate window must be positive";
      OSCHED_CHECK_GT(tune.target_delay, 0.0)
          << "adaptive cap: target_delay must be positive";
      cap_ = std::clamp(options_.live_window_cap, tune.min_cap, tune.max_cap);
    } else {
      cap_ = options_.live_window_cap;
    }
  }

  api::Algorithm algorithm() const { return algorithm_; }
  std::size_t num_machines() const { return store_.num_machines(); }
  Time now() const { return now_; }
  std::size_t num_submitted() const { return store_.num_jobs(); }
  std::size_t num_decided() const { return records_.num_decided(); }
  std::size_t live_jobs() const { return num_submitted() - num_decided(); }
  std::size_t max_live_jobs() const { return max_live_; }
  std::size_t num_shed() const { return sheds_spent_; }
  std::size_t num_backpressured() const { return backpressured_; }
  std::size_t matrix_bytes() const { return store_.matrix_bytes(); }
  std::size_t matrix_peak_bytes() const { return store_.matrix_peak_bytes(); }
  bool drained() const { return drained_; }

  std::string validate_job(const StreamJob& job) const {
    if (drained_) return "session already drained; ";
    std::string problems = store_.validate_job(job);
    if (job.release < now_) {
      problems += "release precedes the session clock (advance() already "
                  "passed it); ";
    }
    return problems;
  }

  JobId submit(const StreamJob& job) {
    JobId id = kInvalidJob;
    const SubmitOutcome outcome = try_submit(job, &id);
    OSCHED_CHECK(outcome == SubmitOutcome::kAccepted)
        << "live window saturated (cap " << options_.live_window_cap
        << ", live " << live_jobs()
        << "); bounded-ingest callers use try_submit()";
    return id;
  }

  SubmitOutcome try_submit(const StreamJob& job, JobId* id_out) {
    OSCHED_CHECK(!drained_) << "submit() on a drained session";
    OSCHED_CHECK_GE(job.release, now_)
        << "job released at " << job.release
        << " submitted after the clock reached " << now_;
    // Events first: completions due by the release seal fates and can free
    // window slots, so they fire whether or not the job is admitted (and
    // the admission decision must see the post-event window, or a full
    // window of already-finished jobs would refuse a perfectly good
    // arrival). run_events_until never moves the clock past the release,
    // so a refused job can be resubmitted as-is.
    run_events_until(job.release);
    if (!make_room(job.release)) {
      ++backpressured_;
      return SubmitOutcome::kBackpressure;
    }
    const JobId j = store_.append(job);
    total_weight_ += job.weight;
    records_.ensure_size(static_cast<std::size_t>(j) + 1);
    now_ = std::max(now_, job.release);
    host_->hooks().on_arrival(j, now_);
    note_arrival(job.release);
    max_live_ = std::max(max_live_, live_jobs());
    maybe_fold();
    if (id_out != nullptr) *id_out = j;
    return SubmitOutcome::kAccepted;
  }

  JobId submit(std::span<const StreamJob> jobs) {
    OSCHED_CHECK(!drained_) << "submit() on a drained session";
    if (jobs.empty()) return kInvalidJob;
    // One clock check covers the batch: the validation pass guarantees the
    // remaining releases are non-decreasing, and delivering arrival k only
    // fires events due at or before r_k, so the clock can never overtake a
    // later release.
    OSCHED_CHECK_GE(jobs.front().release, now_)
        << "job released at " << jobs.front().release
        << " submitted after the clock reached " << now_;
    store_.validate_batch(jobs);
    const auto first = static_cast<JobId>(store_.num_jobs());
    records_.ensure_size(static_cast<std::size_t>(first) + jobs.size());
    // Append and deliver per job, exactly like the one-job submit minus its
    // per-job gate/bookkeeping: the just-appended row is dispatched while
    // cache-hot, the live window (and max_live_jobs) is identical to the
    // per-job feed, and the event interleaving never changes. Window
    // admission runs BEFORE the append (as try_submit does), so shed
    // decisions are identical however the feed is chunked; mid-batch
    // saturation aborts — backpressure-aware callers feed one at a time.
    for (const StreamJob& job : jobs) {
      run_events_until(job.release);
      OSCHED_CHECK(make_room(job.release))
          << "live window saturated mid-batch (cap "
          << options_.live_window_cap << ", live " << live_jobs()
          << "); bounded-ingest callers use try_submit()";
      const JobId j = store_.append_trusted(job);
      total_weight_ += job.weight;
      now_ = std::max(now_, job.release);
      host_->hooks().on_arrival(j, now_);
      note_arrival(job.release);
      max_live_ = std::max(max_live_, live_jobs());
    }
    maybe_fold();
    return first;
  }

  void advance(Time to) {
    OSCHED_CHECK(!drained_) << "advance() on a drained session";
    OSCHED_CHECK_GE(to, now_) << "advance() must not move the clock backwards";
    run_events_until(to);
    now_ = std::max(now_, to);
    maybe_fold();
  }

  api::RunSummary drain() {
    OSCHED_CHECK(!drained_) << "drain() called twice";
    drained_ = true;
    run_events_until(kTimeInfinity);

    api::RunSummary summary;
    summary.algorithm = algorithm_;
    // Streamed stores keep no order table, so dispatch_index_active /
    // dispatch_order_width stay at their defaults (false / 0); the SIMD
    // tier applies to the streamed dispatch kernels all the same.
    summary.dispatch_simd_tier = util::active_simd_tier();
    host_->finalize(summary);

    if (options_.retain_records) {
      Schedule schedule = records_.to_schedule();
      // Destructive: the policy made its last store read before drain, and
      // the session is finished after this call.
      const Instance instance = store_.take_instance();
      if (options_.run.validate) {
        // Same validator invocation as api::run for these algorithms (none
        // of the streamable policies uses parallel execution or deadlines).
        check_schedule(schedule, instance, ValidationOptions{});
      }
      const PolynomialPower power(options_.run.alpha);
      const PowerFunction* report_power =
          algorithm_ == api::Algorithm::kTheorem2 ? &power : nullptr;
      summary.report = evaluate(schedule, instance, report_power);
      summary.schedule = std::move(schedule);
    } else {
      fold_to(records_.decided_frontier());
      OSCHED_CHECK_EQ(static_cast<std::size_t>(records_.decided_frontier()),
                      store_.num_jobs())
          << "drained session left undecided jobs";
      summary.report = aggregate_report();
    }
    return summary;
  }

  std::string checkpoint() const {
    OSCHED_CHECK(!drained_) << "checkpoint() on a drained session";
    OSCHED_CHECK(options_.retain_records)
        << "checkpoint() requires retain_records: a low-memory session has "
           "already released the replay journal";
    CheckpointWriter w;
    w.bytes(kSessionCheckpointMagic, sizeof(kSessionCheckpointMagic));
    w.u32(kCheckpointVersion);
    w.u32(static_cast<std::uint32_t>(algorithm_));
    w.u64(store_.num_machines());
    const api::RunOptions& run = options_.run;
    w.f64(run.epsilon);
    w.f64(run.alpha);
    w.u64(run.speed_levels);
    w.f64(run.start_grid);
    w.u8(run.validate ? 1 : 0);
    const FleetPlan& plan = run.fleet;
    w.u64(plan.events.size());
    for (const FleetEvent& event : plan.events) {
      w.f64(event.time);
      w.u32(static_cast<std::uint32_t>(event.machine));
      w.u8(static_cast<std::uint8_t>(event.kind));
      w.f64(event.speed);  // v2: multiplier (1.0 for membership kinds)
    }
    w.u64(plan.initially_down.size());
    for (const MachineId machine : plan.initially_down) {
      w.u32(static_cast<std::uint32_t>(machine));
    }
    w.u64(plan.rejection_budget);
    w.u8(plan.shed_killed_running ? 1 : 0);
    w.u64(options_.retire_batch);
    w.u64(options_.live_window_cap);  // v2: overload control
    w.u64(options_.shed_budget);      // v2
    const StorageBackend backend = store_.backend();
    w.u8(static_cast<std::uint8_t>(backend));  // v3: storage backend
    // v4: adaptive overload policy. Configuration only — the estimator
    // contents and the effective cap are pure functions of the accepted
    // journal below, so replay re-derives them (the same reason no shed or
    // rule state is serialized).
    w.u8(static_cast<std::uint8_t>(options_.shed_policy));
    const AdaptiveCapOptions& tune = options_.adaptive_cap;
    w.u8(tune.enabled ? 1 : 0);
    w.u64(tune.min_cap);
    w.u64(tune.max_cap);
    w.f64(tune.window);
    w.f64(tune.target_delay);
    w.u64(tune.hysteresis);
    w.f64(now_);
    // The journal proper: every submitted job, in id order. Restore replays
    // these through submit() — policy state is never serialized. The payload
    // form per job follows the backend (v3): dense writes the m-wide row
    // exactly as v2 did; sparse writes an entry count plus the eligible
    // (machine, p) pairs; generator writes the job fields only, since the
    // closed form is code the restoring caller must supply.
    w.u64(store_.num_jobs());
    const std::size_t m = store_.num_machines();
    for (std::size_t idx = 0; idx < store_.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      const Job& job = store_.job(j);
      w.f64(job.release);
      w.f64(job.weight);
      w.f64(job.deadline);
      switch (backend) {
        case StorageBackend::kDense: {
          const Work* row = store_.processing_row(j);
          for (std::size_t i = 0; i < m; ++i) w.f64(row[i]);
          break;
        }
        case StorageBackend::kSparseCsr: {
          const EligibleMachines eligible = store_.eligible_machines(j);
          const Work* values = store_.csr_values(j);
          w.u32(static_cast<std::uint32_t>(eligible.size()));
          for (std::size_t k = 0; k < eligible.size(); ++k) {
            w.u32(static_cast<std::uint32_t>(eligible.begin()[k]));
            w.f64(values[k]);
          }
          break;
        }
        case StorageBackend::kGenerator:
          break;  // metadata only
      }
    }
    return w.finish();
  }

 private:
  /// Fires scheduler events AND fleet-plan events due at or before t, in the
  /// batch engine's exact tie order: scheduler events before fleet events at
  /// the same instant, and both before any arrival at that instant (submit
  /// calls this with t = the arrival's release, so a machine failing the
  /// moment a job arrives is applied first — the job is decided against the
  /// post-fail fleet, exactly as SimEngine does it).
  void run_events_until(Time t) {
    const auto& fleet = options_.run.fleet.events;
    for (;;) {
      const auto when = events_.peek_time();
      const bool fleet_due =
          next_fleet_ < fleet.size() && fleet[next_fleet_].time <= t;
      const bool event_due = when.has_value() && *when <= t;
      if (event_due &&
          (!fleet_due || *when <= fleet[next_fleet_].time)) {
        const SimEvent event = events_.pop();
        now_ = std::max(now_, event.time);
        host_->hooks().on_event(event, now_);
      } else if (fleet_due) {
        const FleetEvent& event = fleet[next_fleet_];
        now_ = std::max(now_, event.time);
        host_->hooks().on_fleet(event, now_);
        ++next_fleet_;
      } else {
        break;
      }
    }
  }

 public:
  /// Sheds still available under the active ShedPolicy. Fixed mode: the
  /// unspent part of the configured lifetime budget — guarded, not bare
  /// unsigned subtraction: sheds_spent_ <= shed_budget is an invariant
  /// (make_room only spends what this function reports), and the CHECK
  /// turns any future violation into a diagnostic instead of a wrapped
  /// near-2^64 allowance that would let every subsequent shed through.
  /// ε-charged mode: the unspent part of the paper's rejection allowance,
  /// floor(2·ε·n) with n counting the triggering arrival (every quantity
  /// is a pure function of the accepted prefix, so replay re-derives the
  /// same allowance at every step).
  std::size_t shed_allowance() const {
    if (options_.shed_policy == ShedPolicy::kFixedBudget) {
      OSCHED_CHECK_LE(sheds_spent_, options_.shed_budget)
          << "shed accounting corrupted: spent exceeds the fixed budget";
      return options_.shed_budget - sheds_spent_;
    }
    const double eps = options_.run.epsilon;
    const auto budget = static_cast<std::size_t>(
        2.0 * eps * static_cast<double>(num_submitted() + 1));
    const std::size_t charged =
        host_->hooks().charged_rejections() + sheds_spent_;
    return charged >= budget ? 0 : budget - charged;
  }

  std::size_t current_window_cap() const { return cap_; }

 private:
  /// Window admission for an arrival at time `at` (== its release; the
  /// clock has already caught up with every event due by then). Returns
  /// true when the arrival may be ingested, shedding first — the policy's
  /// lowest-value pending jobs (kFixedBudget) or the Rule-2-style largest
  /// pending jobs booked into the rejection accounting (kEpsilonCharged) —
  /// when the remaining allowance covers the FULL deficit (which exceeds 1
  /// only after an adaptive cap drop strands extra live jobs above the new
  /// cap). All-or-nothing on purpose: a refused submit must leave no
  /// trace, or replaying the accepted-jobs journal could not reproduce the
  /// shed sequence.
  bool make_room(Time at) {
    const std::size_t cap = cap_;
    if (cap == 0 || live_jobs() < cap) return true;
    const std::size_t deficit = live_jobs() - cap + 1;
    if (deficit > shed_allowance()) return false;
    const bool charged =
        options_.shed_policy == ShedPolicy::kEpsilonCharged;
    for (std::size_t k = 0; k < deficit; ++k) {
      // kInvalidJob: every live job is already RUNNING (no pending queue
      // anywhere holds a victim). Admit the overshoot — it is bounded by
      // the machine count, and refusing here would mean a shed-then-refuse
      // submit, which the determinism contract above forbids.
      const JobId victim = charged ? host_->hooks().on_shed_charged(at)
                                   : host_->hooks().on_shed(at);
      if (victim == kInvalidJob) break;
      ++sheds_spent_;
    }
    return true;
  }

  /// Feeds the arrival-rate estimator and re-tunes the cap (adaptive mode
  /// only). Called once per ACCEPTED arrival with its release — the
  /// estimator state is a pure function of the accepted release sequence,
  /// which is exactly what the checkpoint journal carries, so replay (and
  /// any chunking of the same feed) reproduces every cap move. advance()
  /// never touches it: an idle gap lowers the cap only when the next
  /// arrival's window looks back across the gap, keeping batch == streamed.
  void note_arrival(Time release) {
    const AdaptiveCapOptions& tune = options_.adaptive_cap;
    if (!tune.enabled) return;
    recent_.push_back(release);
    const Time floor_time = release - tune.window;
    while (recent_.front() <= floor_time) recent_.pop_front();
    const double rate =
        static_cast<double>(recent_.size()) / tune.window;
    const auto desired = std::clamp(
        static_cast<std::size_t>(std::ceil(rate * tune.target_delay)),
        tune.min_cap, tune.max_cap);
    // Hysteresis dead-band: hold the cap until the sizing target has moved
    // decisively. Raises and lowers use the same threshold, so the cap
    // trajectory is a deterministic function of the release sequence.
    if (desired > cap_ && desired - cap_ > tune.hysteresis) {
      cap_ = desired;
    } else if (desired < cap_ && cap_ - desired > tune.hysteresis) {
      cap_ = desired;
    }
  }

  void maybe_fold() {
    if (options_.retain_records) return;
    const JobId frontier = records_.decided_frontier();
    if (static_cast<std::size_t>(frontier - folded_upto_) >=
        options_.retire_batch) {
      fold_to(frontier);
    }
  }

  /// Folds decided records [folded_upto_, frontier) into the running
  /// aggregates — in id order, the same order the batch report sums in, so
  /// the totals are bit-identical — then releases their memory everywhere.
  void fold_to(JobId frontier) {
    for (JobId j = folded_upto_; j < frontier; ++j) {
      const JobRecord& rec = records_.record(j);
      const Job& job = store_.job(j);
      const Time flow =
          (rec.completed() ? rec.end : rec.rejection_time) - job.release;
      if (rec.completed()) {
        ++agg_.completed;
        agg_.completed_flow += flow;
      } else {
        ++agg_.rejected;
        agg_.rejected_weight += job.weight;
      }
      agg_.total_flow += flow;
      agg_.weighted_flow += job.weight * flow;
      agg_.max_flow = std::max(agg_.max_flow, flow);
      if (rec.started) agg_.makespan = std::max(agg_.makespan, rec.end);
    }
    folded_upto_ = frontier;
    records_.retire_below(frontier);
    store_.retire_below(frontier);
    host_->retire_below(frontier);
  }

  ObjectiveReport aggregate_report() const {
    ObjectiveReport report;
    report.num_jobs = store_.num_jobs();
    report.num_completed = agg_.completed;
    report.num_rejected = agg_.rejected;
    if (report.num_jobs > 0) {
      report.rejected_fraction = static_cast<double>(report.num_rejected) /
                                 static_cast<double>(report.num_jobs);
    }
    if (total_weight_ > 0.0) {
      report.rejected_weight_fraction = agg_.rejected_weight / total_weight_;
    }
    report.total_flow = agg_.total_flow;
    report.completed_flow = agg_.completed_flow;
    report.total_weighted_flow = agg_.weighted_flow;
    report.max_flow = agg_.max_flow;
    report.makespan = agg_.makespan;
    return report;
  }

  struct Aggregates {
    std::size_t completed = 0;
    std::size_t rejected = 0;
    Weight rejected_weight = 0.0;
    Time total_flow = 0.0;
    Time completed_flow = 0.0;
    Time weighted_flow = 0.0;
    Time max_flow = 0.0;
    Time makespan = 0.0;
  };

  api::Algorithm algorithm_;
  SessionOptions options_;
  StreamingJobStore store_;
  SessionSchedule records_;
  EventQueue events_;
  Time now_ = 0.0;
  std::size_t next_fleet_ = 0;  ///< cursor into options_.run.fleet.events
  bool drained_ = false;
  Weight total_weight_ = 0.0;
  std::size_t max_live_ = 0;
  std::size_t sheds_spent_ = 0;    ///< overload sheds (<= the allowance)
  std::size_t backpressured_ = 0;  ///< refused try_submit calls
  std::size_t cap_ = 0;            ///< effective live-window cap (tunable)
  /// Adaptive mode: releases of accepted arrivals inside the trailing
  /// estimator window (pruned as the newest release advances).
  std::deque<Time> recent_;
  JobId folded_upto_ = 0;
  Aggregates agg_;
  std::unique_ptr<PolicyHost> host_;
};

SchedulerSession::SchedulerSession(api::Algorithm algorithm,
                                   std::size_t num_machines,
                                   SessionOptions options)
    : impl_(std::make_unique<Impl>(algorithm, num_machines, options)) {}

SchedulerSession::~SchedulerSession() = default;

api::Algorithm SchedulerSession::algorithm() const { return impl_->algorithm(); }
std::size_t SchedulerSession::num_machines() const {
  return impl_->num_machines();
}
Time SchedulerSession::now() const { return impl_->now(); }
std::size_t SchedulerSession::num_submitted() const {
  return impl_->num_submitted();
}
std::size_t SchedulerSession::num_decided() const {
  return impl_->num_decided();
}
std::size_t SchedulerSession::live_jobs() const { return impl_->live_jobs(); }
std::size_t SchedulerSession::max_live_jobs() const {
  return impl_->max_live_jobs();
}
std::string SchedulerSession::validate_job(const StreamJob& job) const {
  return impl_->validate_job(job);
}
JobId SchedulerSession::submit(const StreamJob& job) {
  return impl_->submit(job);
}
SubmitOutcome SchedulerSession::try_submit(const StreamJob& job, JobId* id) {
  return impl_->try_submit(job, id);
}
std::size_t SchedulerSession::num_shed() const { return impl_->num_shed(); }
std::size_t SchedulerSession::num_backpressured() const {
  return impl_->num_backpressured();
}
std::size_t SchedulerSession::current_window_cap() const {
  return impl_->current_window_cap();
}
std::size_t SchedulerSession::shed_allowance() const {
  return impl_->shed_allowance();
}
std::size_t SchedulerSession::matrix_bytes() const {
  return impl_->matrix_bytes();
}
std::size_t SchedulerSession::matrix_peak_bytes() const {
  return impl_->matrix_peak_bytes();
}
JobId SchedulerSession::submit(std::span<const StreamJob> jobs) {
  return impl_->submit(jobs);
}
void SchedulerSession::advance(Time to) { impl_->advance(to); }
api::RunSummary SchedulerSession::drain() { return impl_->drain(); }
bool SchedulerSession::drained() const { return impl_->drained(); }
std::string SchedulerSession::checkpoint() const { return impl_->checkpoint(); }

std::unique_ptr<SchedulerSession> SchedulerSession::restore(
    std::string_view blob, std::string* error,
    std::shared_ptr<const RowGenerator> generator) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return nullptr;
  };

  CheckpointReader r(blob);
  r.open(kSessionCheckpointMagic, "session");
  if (!r.ok()) return fail(r.error());
  const std::uint32_t version = r.u32();
  if (r.ok() &&
      (version < kCheckpointVersionMin || version > kCheckpointVersion)) {
    return fail("unsupported checkpoint version " + std::to_string(version) +
                " (this build reads versions " +
                std::to_string(kCheckpointVersionMin) + " through " +
                std::to_string(kCheckpointVersion) + ")");
  }

  const std::uint32_t algorithm_raw = r.u32();
  const std::uint64_t num_machines = r.u64();
  SessionOptions options;
  options.run.epsilon = r.f64();
  options.run.alpha = r.f64();
  options.run.speed_levels = static_cast<std::size_t>(r.u64());
  options.run.start_grid = r.f64();
  options.run.validate = r.u8() != 0;
  FleetPlan& plan = options.run.fleet;
  const std::uint64_t num_fleet_events = r.u64();
  // Size sanity before any allocation: the count must fit in the bytes that
  // are actually present (13 bytes per event in v1; v2 appends the f64
  // speed multiplier for 21).
  const std::size_t event_bytes = version >= 2 ? 21 : 13;
  if (r.ok() && num_fleet_events > r.remaining() / event_bytes) {
    return fail("checkpoint corrupted: fleet event count exceeds blob size");
  }
  // kSpeedChange entered the format in v2; a v1 blob carrying kind 3 is
  // damage, not history.
  const auto max_kind = static_cast<std::uint8_t>(
      version >= 2 ? FleetEventKind::kSpeedChange : FleetEventKind::kFail);
  plan.events.reserve(static_cast<std::size_t>(num_fleet_events));
  for (std::uint64_t e = 0; r.ok() && e < num_fleet_events; ++e) {
    FleetEvent event;
    event.time = r.f64();
    event.machine = static_cast<MachineId>(r.u32());
    const std::uint8_t kind = r.u8();
    if (kind > max_kind) {
      return fail("checkpoint corrupted: unknown fleet event kind " +
                  std::to_string(kind));
    }
    event.kind = static_cast<FleetEventKind>(kind);
    if (version >= 2) event.speed = r.f64();
    plan.events.push_back(event);
  }
  const std::uint64_t num_down = r.u64();
  if (r.ok() && num_down > r.remaining() / 4) {
    return fail("checkpoint corrupted: initially-down count exceeds blob size");
  }
  plan.initially_down.reserve(static_cast<std::size_t>(num_down));
  for (std::uint64_t i = 0; r.ok() && i < num_down; ++i) {
    plan.initially_down.push_back(static_cast<MachineId>(r.u32()));
  }
  plan.rejection_budget = static_cast<std::size_t>(r.u64());
  plan.shed_killed_running = r.u8() != 0;
  options.retire_batch = static_cast<std::size_t>(r.u64());
  if (version >= 2) {
    options.live_window_cap = static_cast<std::size_t>(r.u64());
    options.shed_budget = static_cast<std::size_t>(r.u64());
  }
  // Storage backend entered the format in v3; older blobs are dense by
  // construction (their journal rows ARE the dense matrix).
  std::uint8_t backend_raw = static_cast<std::uint8_t>(StorageBackend::kDense);
  if (version >= 3) backend_raw = r.u8();
  // Adaptive overload policy entered the format in v4; older blobs restore
  // under the neutral defaults (fixed shed rule, cap tuning disabled).
  std::uint8_t shed_policy_raw =
      static_cast<std::uint8_t>(ShedPolicy::kFixedBudget);
  if (version >= 4) {
    shed_policy_raw = r.u8();
    AdaptiveCapOptions& tune = options.adaptive_cap;
    tune.enabled = r.u8() != 0;
    tune.min_cap = static_cast<std::size_t>(r.u64());
    tune.max_cap = static_cast<std::size_t>(r.u64());
    tune.window = r.f64();
    tune.target_delay = r.f64();
    tune.hysteresis = static_cast<std::size_t>(r.u64());
  }
  const Time clock = r.f64();
  const std::uint64_t num_jobs = r.u64();
  if (!r.ok()) return fail(r.error());

  // Recoverable validation of everything a replay would otherwise abort on.
  if (algorithm_raw > static_cast<std::uint32_t>(api::Algorithm::kImmediateReject)) {
    return fail("checkpoint corrupted: unknown algorithm id " +
                std::to_string(algorithm_raw));
  }
  const auto algorithm = static_cast<api::Algorithm>(algorithm_raw);
  if (algorithm == api::Algorithm::kTheorem3) {
    return fail("checkpoint names theorem3, which has no streaming session");
  }
  if (num_machines == 0 || num_machines > (1u << 20)) {
    return fail("checkpoint corrupted: implausible machine count " +
                std::to_string(num_machines));
  }
  const std::string plan_problems =
      plan.validate(static_cast<std::size_t>(num_machines));
  if (!plan_problems.empty()) {
    return fail("checkpoint corrupted: invalid fleet plan: " + plan_problems);
  }
  if (options.retire_batch == 0) {
    return fail("checkpoint corrupted: retire_batch is zero");
  }
  if (backend_raw > static_cast<std::uint8_t>(StorageBackend::kGenerator)) {
    return fail("checkpoint corrupted: unknown storage backend id " +
                std::to_string(backend_raw));
  }
  if (shed_policy_raw > static_cast<std::uint8_t>(ShedPolicy::kEpsilonCharged)) {
    return fail("checkpoint corrupted: unknown shed policy id " +
                std::to_string(shed_policy_raw));
  }
  options.shed_policy = static_cast<ShedPolicy>(shed_policy_raw);
  // Recoverable twins of the constructor's adaptive-cap CHECKs: a forged
  // or damaged v4 blob must come back as a diagnostic, not an abort.
  if (options.adaptive_cap.enabled) {
    const AdaptiveCapOptions& tune = options.adaptive_cap;
    if (tune.min_cap == 0 || tune.max_cap < tune.min_cap ||
        !(tune.window > 0.0) || !(tune.target_delay > 0.0)) {
      return fail("checkpoint corrupted: invalid adaptive-cap fields "
                  "(min_cap " + std::to_string(tune.min_cap) + ", max_cap " +
                  std::to_string(tune.max_cap) + ", window " +
                  std::to_string(tune.window) + ", target_delay " +
                  std::to_string(tune.target_delay) + ")");
    }
  }
  const auto backend = static_cast<StorageBackend>(backend_raw);
  options.storage = backend;
  if (backend == StorageBackend::kGenerator) {
    if (generator == nullptr) {
      return fail(
          "checkpoint names a generator-backed session, whose journal "
          "carries job metadata only; pass the session's closed form to "
          "restore() (the generator is code, not checkpoint data)");
    }
    options.generator = std::move(generator);
  }
  // Size check before any count-driven allocation. Dense and generator
  // journals are fixed-stride, so the remaining bytes must hold PRECISELY
  // the declared jobs; a sparse journal is variable-stride, so the check is
  // a per-job minimum (3 f64 + u32 count) here and exact at the end — every
  // per-entry read below is bounds-checked on top.
  const std::size_t job_bytes =
      backend == StorageBackend::kDense
          ? static_cast<std::size_t>(3 + num_machines) * sizeof(double)
          : (backend == StorageBackend::kSparseCsr
                 ? 3 * sizeof(double) + sizeof(std::uint32_t)
                 : 3 * sizeof(double));
  const bool journal_size_bad =
      backend == StorageBackend::kSparseCsr
          ? num_jobs > r.remaining() / job_bytes
          : r.remaining() != num_jobs * job_bytes;
  if (journal_size_bad) {
    return fail("checkpoint corrupted: job journal size mismatch (" +
                std::to_string(r.remaining()) + " bytes for " +
                std::to_string(num_jobs) + " declared jobs)");
  }

  auto session = std::make_unique<SchedulerSession>(
      algorithm, static_cast<std::size_t>(num_machines), options);
  StreamJob job;
  if (backend == StorageBackend::kDense) {
    job.processing.resize(static_cast<std::size_t>(num_machines));
  }
  for (std::uint64_t idx = 0; idx < num_jobs; ++idx) {
    job.release = r.f64();
    job.weight = r.f64();
    job.deadline = r.f64();
    switch (backend) {
      case StorageBackend::kDense:
        for (std::size_t i = 0; i < num_machines; ++i) {
          job.processing[i] = r.f64();
        }
        break;
      case StorageBackend::kSparseCsr: {
        const std::uint32_t count = r.u32();
        if (r.ok() && count > r.remaining() / (sizeof(std::uint32_t) +
                                               sizeof(double))) {
          return fail("checkpoint corrupted: job " + std::to_string(idx) +
                      " declares more sparse entries than the blob holds");
        }
        job.entries.clear();
        job.entries.reserve(count);
        for (std::uint32_t k = 0; r.ok() && k < count; ++k) {
          SparseEntry entry;
          entry.machine = static_cast<MachineId>(r.u32());
          entry.p = r.f64();
          job.entries.push_back(entry);
        }
        break;
      }
      case StorageBackend::kGenerator:
        break;  // metadata only; the store synthesizes the row
    }
    if (!r.ok()) return fail(r.error());
    const std::string problems = session->validate_job(job);
    if (!problems.empty()) {
      return fail("checkpoint job " + std::to_string(idx) +
                  " fails replay validation: " + problems);
    }
    // Every journaled job was accepted by the original session, and the
    // shed sequence is a deterministic function of the accepted arrivals —
    // so a faithful blob cannot backpressure here. A refusal means the
    // window fields are inconsistent with the journal (forged or damaged).
    if (session->try_submit(job) == SubmitOutcome::kBackpressure) {
      return fail("checkpoint corrupted: replayed job " + std::to_string(idx) +
                  " hit backpressure (overload fields inconsistent with the "
                  "journal)");
    }
  }
  // The variable-stride sparse journal gets its exact-size check here: after
  // the declared jobs, the body must be fully consumed (fixed-stride
  // backends already guaranteed this above).
  if (r.remaining() != 0) {
    return fail("checkpoint corrupted: " + std::to_string(r.remaining()) +
                " trailing bytes after the declared job journal");
  }
  if (!(clock >= session->now())) {
    return fail("checkpoint corrupted: clock " + std::to_string(clock) +
                " precedes the replayed journal's clock");
  }
  session->advance(clock);
  if (error != nullptr) error->clear();
  return session;
}

api::RunSummary streamed_run(api::Algorithm algorithm, const Instance& instance,
                             const api::RunOptions& options,
                             std::size_t chunk_size) {
  SessionOptions session_options;
  session_options.run = options;
  return streamed_session_run(algorithm, instance, session_options, chunk_size);
}

api::RunSummary streamed_session_run(api::Algorithm algorithm,
                                     const Instance& instance,
                                     const SessionOptions& session_options,
                                     std::size_t chunk_size) {
  OSCHED_CHECK_GT(chunk_size, 0u);
  SchedulerSession session(algorithm, instance.num_machines(), session_options);

  const bool meta_only =
      session_options.storage == StorageBackend::kGenerator;
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (meta_only) {
      fill_stream_job_meta(instance.job(j), 0.0, &job);
    } else {
      fill_stream_job(instance, j, 0.0, &job);
    }
    session.submit(job);
    // Chunk boundary: catch up to a clock strictly between this arrival
    // and the next, firing any completions due in the gap — the driving
    // pattern of a live feeder between chunk deliveries. (Advancing only to
    // the last submitted release would be a no-op: submit already fired
    // everything due by then.) Different chunk sizes thus produce genuinely
    // different advance() interleavings, all required to be bit-identical.
    if ((idx + 1) % chunk_size == 0 && idx + 1 < instance.num_jobs()) {
      const Time here = instance.job(j).release;
      const Time next = instance.job(static_cast<JobId>(idx + 1)).release;
      session.advance(here + 0.5 * (next - here));
    }
  }
  return session.drain();
}

}  // namespace osched::service
