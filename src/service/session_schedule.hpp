// Windowed schedule record store for streaming sessions.
//
// Presents the same mark_* mutation surface as Schedule (the state
// transitions are the shared record_* functions, so legality is enforced
// identically) over a sliding window of JobRecords, and tracks the decided
// frontier: the first job whose fate is still open. Everything below the
// frontier is immutable history — a low-memory session folds it into its
// running aggregates and retires it; a retention session keeps the window
// whole and exports a batch Schedule at drain time.
#pragma once

#include "sim/schedule.hpp"
#include "util/sliding_vector.hpp"

namespace osched::service {

class SessionSchedule {
 public:
  /// Extends the record window to cover job j (new records unscheduled).
  void ensure_size(std::size_t n) { records_.extend_to(n); }

  std::size_t num_jobs() const { return records_.end_index(); }

  void mark_dispatched(JobId j, MachineId machine) {
    record_dispatched(records_.at(static_cast<std::size_t>(j)), j, machine);
  }
  void mark_started(JobId j, Time start, Speed speed) {
    record_started(records_.at(static_cast<std::size_t>(j)), j, start, speed);
  }
  void mark_completed(JobId j, Time end) {
    record_completed(records_.at(static_cast<std::size_t>(j)), j, end);
    on_decided();
  }
  void mark_rejected_running(JobId j, Time now) {
    record_rejected_running(records_.at(static_cast<std::size_t>(j)), j, now);
    on_decided();
  }
  void mark_rejected_pending(JobId j, Time now) {
    record_rejected_pending(records_.at(static_cast<std::size_t>(j)), j, now);
    on_decided();
  }
  void mark_requeued(JobId j, MachineId machine) {
    record_requeued(records_.at(static_cast<std::size_t>(j)), j, machine);
  }

  const JobRecord& record(JobId j) const {
    return records_.at(static_cast<std::size_t>(j));
  }

  /// First job whose record can still change; every record below it is
  /// terminal. Advanced eagerly on each terminal mark.
  JobId decided_frontier() const { return frontier_; }
  /// Jobs with a terminal fate (not necessarily contiguous from 0).
  std::size_t num_decided() const { return num_decided_; }

  /// Releases records below `frontier` (must not exceed decided_frontier()).
  void retire_below(JobId frontier) {
    OSCHED_CHECK_LE(frontier, frontier_);
    records_.retire_below(static_cast<std::size_t>(frontier));
  }

  /// Copies the full record window into a batch Schedule. Requires that
  /// nothing was retired (retention-mode sessions only).
  Schedule to_schedule() const {
    OSCHED_CHECK_EQ(records_.begin_index(), 0u)
        << "cannot export a Schedule after retirement";
    Schedule schedule(records_.end_index());
    for (std::size_t j = 0; j < records_.end_index(); ++j) {
      schedule.record(static_cast<JobId>(j)) = records_[j];
    }
    return schedule;
  }

 private:
  void on_decided() {
    ++num_decided_;
    while (static_cast<std::size_t>(frontier_) < records_.end_index() &&
           records_[static_cast<std::size_t>(frontier_)].terminal()) {
      ++frontier_;
    }
  }

  util::SlidingVector<JobRecord> records_;
  JobId frontier_ = 0;
  std::size_t num_decided_ = 0;
};

}  // namespace osched::service
