// Sharded multi-tenant driver: S independent SchedulerSessions served by
// per-shard persistent workers.
//
// Each shard is one tenant's session — its own job store, clock, event
// queue and policy state. The caller stages operations per shard
// (submit/advance, in arrival order); flush() hands each shard's staged
// batch to its owning worker through a lock-free MPSC queue (one heap node
// per BATCH, never per operation), and sync() blocks until every handed-off
// batch has been applied. pump() = flush() + sync(), the original blocking
// contract. Because a shard's operations are applied sequentially, in
// staging order, by exactly one owner, every session's outcome is
// bit-identical for any worker count — the same per-unit determinism
// contract the experiment harness keeps, now for serving.
// tests/streaming_test.cpp pins worker-count invariance down.
//
// Worker model: `threads` persistent workers (capped at the shard count)
// each own a fixed subset of shards (shard s belongs to worker s % W) and
// sleep on their own condition variable when their inboxes are empty — no
// shared task queue, no per-chunk std::function allocation, no global
// mutex on the submission path. Shard state is cache-line-aligned so two
// workers never false-share a shard.
//
// When one worker (or fewer) would remain — notably on single-core hosts —
// the driver runs INLINE: operations apply directly on the calling thread
// at submit()/advance() time, flush()/sync() are no-ops, and the only
// overhead over a bare SchedulerSession is the shard lookup. Outcomes are
// identical either way.
//
// The caller-facing thread model is single-producer: submit()/advance()/
// flush()/sync()/pump()/drain_all() are called from one thread (a
// frontend's ingest loop); parallelism happens inside the workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/scheduler_session.hpp"
#include "util/mpsc_queue.hpp"

namespace osched::service {

/// Worker placement across NUMA nodes. PLACEMENT ONLY: every policy yields
/// bit-identical session outcomes (the worker-count invariance contract);
/// what changes is which node's memory a shard's lazily grown state lands
/// on, via pinned first-touch.
enum class NumaPolicy : std::uint8_t {
  /// No pinning — the OS scheduler places workers (PR 11 and earlier
  /// behavior; byte-identical setup on single-node hosts either way).
  kNone,
  /// Pin worker w to NUMA node (w mod nodes), so the shards a worker owns
  /// are first-touched — and stay — on that worker's node. A no-op in
  /// inline mode and on single-node hosts (including masked-sysfs
  /// containers, where topology degrades to one node).
  kInterleave,
};

struct ShardDriverOptions {
  /// Persistent workers; 0 = hardware concurrency. Capped at the shard
  /// count; a resolved count of <= 1 selects the inline (worker-less) mode.
  std::size_t threads = 0;
  /// NUMA worker placement (see NumaPolicy). A runtime concern like
  /// `threads`: not checkpointed; restore() chooses it fresh.
  NumaPolicy numa_policy = NumaPolicy::kNone;
  /// Applied to every shard's session.
  SessionOptions session;
  /// Bound on a shard's handed-off-but-unapplied batches (flush() units) —
  /// the MPSC queue depth. 0 = unbounded. At the bound, try_submit()/
  /// try_advance() refuse further staging for that shard; the caller backs
  /// off (sync(), or serve other shards) and retries. Plain submit()/
  /// advance() ignore the bound (their callers opted into unbounded
  /// buffering). A runtime concern like `threads`: not checkpointed.
  std::size_t max_inflight_batches = 0;
  /// Fair multi-tenant backpressure: deficit-round-robin admission over
  /// staged operations. 0 = disabled (PR 7 behavior). When set, every
  /// shard holds a credit of ops it may stage this round; try_submit()/
  /// try_advance() return kDeferred for a shard whose credit is exhausted,
  /// and flush() starts the next round by replenishing every shard's
  /// credit by the quantum (unused credit carries over, capped at one
  /// extra quantum — the "deficit" part, so a bursty tenant is not
  /// punished for an idle round). A hot tenant is thus bounded to at most
  /// 2×quantum ops per flush round while its siblings always have at
  /// least a full quantum available — it can saturate neither the
  /// inflight-batch slots nor its worker's time. Plain submit()/advance()
  /// bypass fairness, like they bypass the inflight bound. A runtime
  /// concern like `threads`: not checkpointed (see set_fair_quantum for
  /// restored drivers).
  std::size_t fair_quantum = 0;
};

/// Outcome of a bounded staging attempt (try_submit / try_advance) —
/// the driver-level unification of the session's SubmitOutcome with the
/// worker-mode staging refusals, so callers can tell WHY an op did not go
/// through (and thus whether to retry, back off, or drop) in both modes.
enum class StageOutcome : std::uint8_t {
  kAccepted,      ///< inline mode: applied, the session accepted it
  kStaged,        ///< worker mode: buffered for the owning worker
  kBackpressure,  ///< inline mode: the session's live window refused the
                  ///< job (SubmitOutcome::kBackpressure) — retry after
                  ///< decisions free slots
  kInflightFull,  ///< worker mode: shard at max_inflight_batches — back
                  ///< off (sync() or serve other shards) and retry
  kDeferred,      ///< fairness: the shard exhausted its DRR credit this
                  ///< round — flush() (a new round) re-admits it
};

/// True when the operation reached the session or its staging buffer.
inline bool stage_ok(StageOutcome outcome) {
  return outcome == StageOutcome::kAccepted ||
         outcome == StageOutcome::kStaged;
}

/// Per-shard overload/fairness counters surfaced by the driver (see
/// ShardDriver::shard_counters).
struct ShardCounters {
  std::size_t sheds = 0;            ///< session->num_shed()
  std::size_t backpressured = 0;    ///< session->num_backpressured()
  std::size_t deferred = 0;         ///< kDeferred staging refusals
  std::size_t inflight_refused = 0; ///< kInflightFull staging refusals
  std::uint64_t staged_ops = 0;     ///< ops admitted into the shard (lifetime)
  std::size_t max_batch_ops = 0;    ///< largest single handed-off batch
};

class ShardDriver {
 public:
  ShardDriver(api::Algorithm algorithm, std::size_t num_shards,
              std::size_t num_machines, ShardDriverOptions options = {});
  ~ShardDriver();

  ShardDriver(const ShardDriver&) = delete;
  ShardDriver& operator=(const ShardDriver&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  /// Persistent workers serving the shards; 0 means inline mode (operations
  /// run on the calling thread).
  std::size_t worker_count() const { return workers_.size(); }

  /// Stable tenant-key -> shard routing (SplitMix64 of the key, mod S).
  std::size_t shard_for(std::uint64_t tenant_key) const;

  /// Direct access for inspection (clock, live-job counts). Call sync()
  /// first; the session must not be mutated between pumps except through
  /// the driver.
  SchedulerSession& session(std::size_t shard);

  /// Stages one arrival for `shard` (inline mode: applies it immediately).
  void submit(std::size_t shard, const StreamJob& job);
  /// Stages a clock advance for `shard`, ordered after the submissions
  /// staged so far (inline mode: applies it immediately).
  void advance(std::size_t shard, Time to);

  /// Bounded staging: refuses (staging nothing) when fairness credit is
  /// exhausted (kDeferred) or the shard is at max_inflight_batches
  /// (kInflightFull) — the retry/backoff contract for overloaded ingest
  /// loops. Inline mode forwards the session's SubmitOutcome (kAccepted /
  /// kBackpressure), so callers distinguish a session-window refusal from
  /// a staging refusal in both modes through one return type. Worker mode
  /// cannot deliver per-job backpressure (ops apply asynchronously);
  /// sessions driven through workers should use shed_budget (absorbing)
  /// rather than a bare window cap, which would abort inside the worker.
  StageOutcome try_submit(std::size_t shard, const StreamJob& job);
  /// Bounded counterpart of advance(), same refusal rules (in inline mode
  /// an advance with credit always applies and returns kAccepted).
  StageOutcome try_advance(std::size_t shard, Time to);

  /// Handed-off-but-unapplied batches for `shard` right now (worker mode;
  /// 0 in inline mode).
  std::size_t inflight_batches(std::size_t shard) const;

  /// Overload/fairness counters for one shard. The session-side fields
  /// read the shard's session, so in worker mode call sync() first (same
  /// rule as session()); the staging-side fields are producer-owned and
  /// always current.
  ShardCounters shard_counters(std::size_t shard) const;

  /// Adjusts the DRR quantum at runtime (same meaning as
  /// ShardDriverOptions::fair_quantum; 0 disables fairness). The knob for
  /// restored drivers, whose checkpoints deliberately carry no runtime
  /// concerns. Takes effect from the next staging attempt; per-shard
  /// credits are reset to one fresh quantum. Producer-thread only.
  void set_fair_quantum(std::size_t quantum);
  std::size_t fair_quantum() const { return fair_quantum_; }

  /// Hands every staged batch to the owning workers. Non-blocking: the
  /// caller can keep staging the next wave while workers chew this one.
  void flush();

  /// Blocks until every flushed batch has been applied.
  void sync();

  /// flush() + sync(): applies every buffered operation and blocks until
  /// all are done — the original blocking contract.
  void pump();

  /// pump()s the remaining backlog, then drains every session (on the
  /// workers, in parallel). Results are in shard order. The driver is
  /// finished afterwards.
  std::vector<api::RunSummary> drain_all();

  /// pump()s the backlog, then serializes every shard's session into one
  /// versioned, checksummed blob (format: service/checkpoint.hpp; spec:
  /// docs/ARCHITECTURE.md). Requires undrained, retain_records sessions.
  /// The driver is untouched and remains usable.
  std::string checkpoint();

  /// Rebuilds a driver (and every tenant session, bit-identically — see
  /// SchedulerSession::restore) from a checkpoint() blob. `threads` is a
  /// runtime concern, not session state, so it is chosen fresh (same
  /// meaning as ShardDriverOptions::threads). When any shard is
  /// generator-backed (wire v3), `generator` supplies the shared closed
  /// form, exactly as for SchedulerSession::restore — one form for the
  /// whole fleet, matching how SessionOptions applies to every shard.
  /// Damaged input returns nullptr with a diagnostic in *error.
  static std::unique_ptr<ShardDriver> restore(
      std::string_view blob, std::size_t threads, std::string* error,
      std::shared_ptr<const RowGenerator> generator = nullptr,
      NumaPolicy numa_policy = NumaPolicy::kNone);

  /// Workers actually pinned to a NUMA node (0 under NumaPolicy::kNone, in
  /// inline mode, on single-node hosts, and for workers whose pin attempt
  /// failed — pinning is best-effort, never a correctness requirement).
  /// Readable after construction; stable for the driver's lifetime.
  std::size_t pinned_workers() const {
    return pinned_workers_.load(std::memory_order_acquire);
  }

 private:
  struct Op {
    enum class Kind : std::uint8_t { kSubmit, kAdvance, kDrain };
    Kind kind = Kind::kSubmit;
    Time to = 0.0;
    StreamJob job;
  };

  /// Cache-line-aligned so two workers (and the producer) never false-share
  /// neighbouring shards' state.
  struct alignas(64) Shard {
    std::unique_ptr<SchedulerSession> session;
    std::vector<Op> staging;              ///< producer-side wave buffer
    util::MpscQueue<std::vector<Op>> inbox;
    std::atomic<std::uint64_t> batches_submitted{0};
    std::atomic<std::uint64_t> batches_done{0};
    api::RunSummary drain_result;         ///< written by the drain op
    bool drained = false;
    // Producer-owned fairness/telemetry state (single-producer contract:
    // only the staging thread reads or writes these).
    std::size_t credit = 0;               ///< DRR ops left this round
    std::size_t deferred = 0;             ///< kDeferred refusals (lifetime)
    std::size_t inflight_refused = 0;     ///< kInflightFull refusals
    std::uint64_t staged_ops = 0;         ///< admitted ops (lifetime)
    std::size_t max_batch_ops = 0;        ///< largest handed-off batch
  };

  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    bool signal = false;
    bool stop = false;
    std::vector<std::size_t> shards;  ///< owned shard indices
    int numa_node = -1;  ///< target node under kInterleave; -1 = unpinned
  };

  /// Restore path: shards_ is filled from the checkpoint before
  /// start_workers runs.
  ShardDriver() = default;
  /// Spins up the worker pool (or selects inline mode) over the already
  /// populated shards_ — the shared tail of both construction paths.
  void start_workers(std::size_t threads, NumaPolicy numa_policy);

  bool inline_mode() const { return workers_.empty(); }
  bool at_inflight_cap(const Shard& s) const;
  void apply(Shard& shard, Op& op) const;
  void worker_loop(Worker& worker);
  void wake(Worker& worker);

  /// Fairness gate shared by try_submit/try_advance: refuses (kDeferred,
  /// counting it) when DRR is on and the shard's round credit is spent.
  bool fairness_refuses(Shard& s);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t max_inflight_ = 0;  ///< ShardDriverOptions::max_inflight_batches
  std::size_t fair_quantum_ = 0;  ///< ShardDriverOptions::fair_quantum
  /// Written by each worker once at startup (success of its own pin call);
  /// monotonic, so a relaxed-ish acquire read after construction is stable.
  std::atomic<std::size_t> pinned_workers_{0};
  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
};

}  // namespace osched::service
