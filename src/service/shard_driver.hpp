// Sharded multi-tenant driver: S independent SchedulerSessions multiplexed
// over the shared thread pool.
//
// Each shard is one tenant's session — its own job store, clock, event
// queue and policy state. The driver buffers incoming operations per shard
// (submit/advance, in arrival order) and pump() applies every shard's
// backlog concurrently, one worker per shard at a time. Because a shard's
// operations are always applied sequentially and in order by whichever
// worker picks them up, every session's outcome is bit-identical for any
// thread count — the same per-unit determinism contract the experiment
// harness keeps, now for serving. tests/streaming_test.cpp pins
// threads=1 vs threads=N down.
//
// The caller-facing thread model is single-producer: submit()/advance()/
// pump()/drain_all() are called from one thread (a frontend's ingest loop);
// parallelism happens inside pump().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "service/scheduler_session.hpp"
#include "util/thread_pool.hpp"

namespace osched::service {

struct ShardDriverOptions {
  /// Worker threads for pump(); 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Applied to every shard's session.
  SessionOptions session;
};

class ShardDriver {
 public:
  ShardDriver(api::Algorithm algorithm, std::size_t num_shards,
              std::size_t num_machines, ShardDriverOptions options = {});

  std::size_t num_shards() const { return shards_.size(); }

  /// Stable tenant-key -> shard routing (SplitMix64 of the key, mod S).
  std::size_t shard_for(std::uint64_t tenant_key) const;

  /// Direct access for inspection (clock, live-job counts). The session
  /// must not be mutated between pump() calls except through the driver.
  SchedulerSession& session(std::size_t shard);

  /// Buffers one arrival for `shard`. Applied on the next pump().
  void submit(std::size_t shard, StreamJob job);
  /// Buffers a clock advance for `shard`, ordered after the submissions
  /// buffered so far.
  void advance(std::size_t shard, Time to);

  /// Applies every buffered operation, shards in parallel, and blocks until
  /// all are done.
  void pump();

  /// pump()s the remaining backlog, then drains every session in parallel.
  /// Results are in shard order. The driver is finished afterwards.
  std::vector<api::RunSummary> drain_all();

 private:
  struct Op {
    bool is_advance = false;
    Time to = 0.0;
    StreamJob job;
  };

  struct Shard {
    std::unique_ptr<SchedulerSession> session;
    std::vector<Op> backlog;
  };

  std::vector<Shard> shards_;
  util::ThreadPool pool_;
};

}  // namespace osched::service
