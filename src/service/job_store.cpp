#include "service/job_store.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

namespace osched::service {

StreamingJobStore::StreamingJobStore(
    std::size_t num_machines, std::size_t jobs_per_block,
    StorageBackend backend, std::shared_ptr<const RowGenerator> generator)
    : num_machines_(num_machines),
      jobs_per_block_(jobs_per_block),
      backend_(backend),
      generator_(std::move(generator)) {
  OSCHED_CHECK_GT(num_machines, 0u);
  OSCHED_CHECK_GT(jobs_per_block, 0u);
  if (backend_ == StorageBackend::kGenerator) {
    OSCHED_CHECK(generator_ != nullptr)
        << "a generator-backed store needs the closed form";
    identity_machines_.resize(num_machines_);
    std::iota(identity_machines_.begin(), identity_machines_.end(),
              MachineId{0});
  } else {
    OSCHED_CHECK(generator_ == nullptr)
        << "only the kGenerator backend takes a row generator";
  }
}

bool StreamingJobStore::check_job_after(const StreamJob& job,
                                        Time last_release, bool have_last,
                                        std::ostringstream* problems) const {
  // Single implementation behind both validation surfaces: with a null
  // sink (the append() hot path) the first violation returns false without
  // touching a stream; with a sink every violation is described. The
  // negated comparisons (!(x > y)) deliberately catch NaN operands.
  //
  // KEEP IN SYNC with Instance::validate / Instance::from_sparse_rows
  // (instance/instance.cpp): these are the same per-job rules plus the
  // streaming-only ones (arity, release monotonicity, the per-backend
  // payload-form contract). tests/streaming_test.cpp's differential wall
  // turns any acceptance drift into a loud failure, but rule edits should
  // land in both places.
  bool ok = true;
  const auto flag = [&ok, problems] {
    ok = false;
    return problems != nullptr;  // keep going only when collecting messages
  };
  const bool has_dense = !job.processing.empty();
  const bool has_sparse = !job.entries.empty();
  if (has_dense && has_sparse) {
    if (!flag()) return false;
    *problems << "both the dense row and sparse entries are set (a "
                 "submission carries exactly one payload form); ";
  }
  if (backend_ == StorageBackend::kGenerator && (has_dense || has_sparse)) {
    if (!flag()) return false;
    *problems << "generator-backed stores take metadata-only submissions "
                 "(the shared closed form supplies every p_ij); ";
  }
  if (backend_ != StorageBackend::kGenerator && !has_dense && !has_sparse) {
    if (!flag()) return false;
    *problems << "empty payload: this store has " << num_machines_
              << " machines and needs a dense processing row or sparse "
                 "(machine, p) entries; ";
  }
  if (!(job.release >= 0.0)) {
    if (!flag()) return false;
    *problems << "release " << job.release << " is negative or NaN; ";
  }
  if (have_last && job.release < last_release) {
    if (!flag()) return false;
    *problems << "release " << job.release
              << " precedes the last submitted release " << last_release
              << " (streaming submissions must be in release order); ";
  }
  if (!(job.weight > 0.0) || job.weight >= kTimeInfinity) {
    if (!flag()) return false;
    *problems << "weight " << job.weight << " is not finite positive; ";
  }
  if (!(job.deadline > job.release)) {
    if (!flag()) return false;
    *problems << "deadline " << job.deadline << " not after release; ";
  }
  if (has_dense && !has_sparse) {
    if (job.processing.size() != num_machines_) {
      if (!flag()) return false;
      *problems << "processing row has " << job.processing.size()
                << " entries, store has " << num_machines_ << " machines; ";
    }
    bool any_eligible = false;
    for (std::size_t i = 0; i < job.processing.size(); ++i) {
      const Work p = job.processing[i];
      if (p < kTimeInfinity) {
        any_eligible = true;
        if (!(p > 0.0)) {
          if (!flag()) return false;
          *problems << "p[" << i << "] is non-positive or NaN; ";
        }
      } else if (std::isnan(p)) {
        if (!flag()) return false;
        *problems << "p[" << i << "] is NaN; ";
      }
    }
    // Only meaningful when the arity matched (an arity mismatch was already
    // flagged above, and num_machines_ > 0 by construction).
    if (job.processing.size() == num_machines_ && !any_eligible) {
      if (!flag()) return false;
      *problems << "no eligible machine; ";
    }
  }
  if (has_sparse && !has_dense) {
    // Mirrors Instance::from_sparse_rows: strictly ascending in-range
    // machine ids (duplicates and disorder diagnosed separately), finite
    // positive p — an ineligible machine is expressed by OMITTING it.
    MachineId prev = -1;
    for (std::size_t k = 0; k < job.entries.size(); ++k) {
      const SparseEntry& entry = job.entries[k];
      if (entry.machine < 0 ||
          static_cast<std::size_t>(entry.machine) >= num_machines_) {
        if (!flag()) return false;
        *problems << "entries[" << k << "] machine " << entry.machine
                  << " out of range (store has " << num_machines_
                  << " machines); ";
      } else if (k > 0 && entry.machine == prev) {
        if (!flag()) return false;
        *problems << "entries[" << k << "] duplicates machine "
                  << entry.machine << "; ";
      } else if (k > 0 && entry.machine < prev) {
        if (!flag()) return false;
        *problems << "entries[" << k << "] machine " << entry.machine
                  << " out of order (entries are sorted ascending by "
                     "machine); ";
      }
      prev = entry.machine;
      if (!(entry.p > 0.0)) {
        if (!flag()) return false;
        *problems << "entries[" << k << "] p is non-positive or NaN; ";
      } else if (entry.p >= kTimeInfinity) {
        if (!flag()) return false;
        *problems << "entries[" << k
                  << "] p is not finite (omit ineligible machines); ";
      }
    }
    // A non-empty valid entry list implies an eligible machine, so there is
    // no sparse "no eligible machine" case: the empty list is the empty-
    // payload diagnostic above.
  }
  return ok;
}

std::string StreamingJobStore::validate_job(const StreamJob& job) const {
  std::ostringstream problems;
  if (check_job(job, &problems)) return std::string();
  return problems.str();
}

JobId StreamingJobStore::append(const StreamJob& job) {
  // job_ok is the allocation-free gate; the diagnostic message is only
  // materialized on the failure path (OSCHED_CHECK streams lazily).
  OSCHED_CHECK(job_ok(job))
      << "invalid streamed job " << num_jobs_ << ": " << validate_job(job);
  return append_unchecked(job);
}

void StreamingJobStore::validate_batch(std::span<const StreamJob> jobs) const {
  Time last = last_release_;
  bool have_last = num_jobs_ > 0;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    if (!check_job_after(jobs[k], last, have_last, nullptr)) {
      // Diagnose against the same predecessor the gate used (the store's
      // validate_job would compare against its own high-water mark).
      std::ostringstream problems;
      check_job_after(jobs[k], last, have_last, &problems);
      OSCHED_CHECK(false) << "invalid streamed job " << num_jobs_ + k
                          << " (batch position " << k
                          << "): " << problems.str();
    }
    last = jobs[k].release;
    have_last = true;
  }
}

JobId StreamingJobStore::append_batch(std::span<const StreamJob> jobs) {
  if (jobs.empty()) return kInvalidJob;
  validate_batch(jobs);
  const auto first = static_cast<JobId>(num_jobs_);
  for (const StreamJob& job : jobs) append_unchecked(job);
  return first;
}

JobId StreamingJobStore::append_unchecked(const StreamJob& job) {
  const std::size_t block_index = num_jobs_ / jobs_per_block_;
  if (block_index == blocks_.size()) {
    blocks_.push_back(std::make_unique<Block>());
    Block& fresh = *blocks_.back();
    fresh.jobs.reserve(jobs_per_block_);
    if (backend_ == StorageBackend::kDense) {
      fresh.processing.reserve(jobs_per_block_ * num_machines_);
    }
    if (backend_ != StorageBackend::kGenerator) {
      fresh.eligible_offsets.reserve(jobs_per_block_ + 1);
      fresh.eligible_offsets.push_back(0);
    }
  }
  Block& block = *blocks_[block_index];

  const auto id = static_cast<JobId>(num_jobs_);
  Job stored;
  stored.id = id;
  stored.release = job.release;
  stored.weight = job.weight;
  stored.deadline = job.deadline;
  block.jobs.push_back(stored);

  switch (backend_) {
    case StorageBackend::kDense:
      if (!job.entries.empty()) {
        // Sparse submission into a dense store: scatter over an
        // infinity-filled row (the one conversion that still pays O(m) —
        // it is the dense store's own cost, not the feeder's).
        const std::size_t base = block.processing.size();
        block.processing.resize(base + num_machines_, kTimeInfinity);
        for (const SparseEntry& entry : job.entries) {
          block.processing[base + static_cast<std::size_t>(entry.machine)] =
              entry.p;
          block.eligible.push_back(entry.machine);
        }
      } else {
        block.processing.insert(block.processing.end(),
                                job.processing.begin(), job.processing.end());
        // The float shadow is NOT written here: it fills lazily on the
        // first bounds_row() touch (see the header), which moved the former
        // ~40% of append's cost off the ingest clock.
        for (std::size_t i = 0; i < job.processing.size(); ++i) {
          if (job.processing[i] < kTimeInfinity) {
            block.eligible.push_back(static_cast<MachineId>(i));
          }
        }
      }
      block.eligible_offsets.push_back(
          static_cast<std::uint32_t>(block.eligible.size()));
      bump_matrix_bytes(num_machines_ * sizeof(Work));
      break;
    case StorageBackend::kSparseCsr:
      if (!job.entries.empty()) {
        // The backend's native form: O(eligible) append, nothing m-wide.
        for (const SparseEntry& entry : job.entries) {
          block.eligible.push_back(entry.machine);
          block.csr_p.push_back(entry.p);
        }
      } else {
        for (std::size_t i = 0; i < job.processing.size(); ++i) {
          if (job.processing[i] < kTimeInfinity) {
            block.eligible.push_back(static_cast<MachineId>(i));
            block.csr_p.push_back(job.processing[i]);
          }
        }
      }
      block.eligible_offsets.push_back(
          static_cast<std::uint32_t>(block.eligible.size()));
      bump_matrix_bytes((block.eligible_offsets.back() -
                         block.eligible_offsets[block.jobs.size() - 1]) *
                        sizeof(Work));
      break;
    case StorageBackend::kGenerator:
      // Metadata only: the closed form holds every p_ij, adjacency is the
      // shared identity row. Nothing else to store.
      break;
  }

  last_release_ = job.release;
  ++num_jobs_;
  return id;
}

const StreamingJobStore::RowTile& StreamingJobStore::tile(JobId j) const {
  RowTile& slot = tiles_[static_cast<std::size_t>(j) % kTileSlots];
  // The fast path must still honor the retirement abort: a slot can hold a
  // row whose block was retired since, and serving it would hide the
  // use-after-retire the dense path traps.
  if (slot.id == j && j >= begin_id_) return slot;
  const Block& b = block_of(j);
  if (slot.p.size() != num_machines_) {
    slot.p.resize(num_machines_);
    slot.bounds.resize(num_machines_);
  }
  if (backend_ == StorageBackend::kGenerator) {
    generator_->fill_row(j, num_machines_, slot.p.data());
    for (std::size_t i = 0; i < num_machines_; ++i) {
      slot.bounds[i] = float_lower(slot.p[i]);
    }
  } else {
    // CSR: infinity everywhere, then scatter the stored entries. FLT_MAX is
    // float_lower(kTimeInfinity) — the same encoding the dense shadow uses.
    std::fill(slot.p.begin(), slot.p.end(), kTimeInfinity);
    std::fill(slot.bounds.begin(), slot.bounds.end(), FLT_MAX);
    const std::size_t offset = offset_of(j);
    const MachineId* cols = b.eligible.data();
    for (std::uint32_t e = b.eligible_offsets[offset];
         e < b.eligible_offsets[offset + 1]; ++e) {
      const auto i = static_cast<std::size_t>(cols[e]);
      slot.p[i] = b.csr_p[e];
      slot.bounds[i] = float_lower(b.csr_p[e]);
    }
  }
  slot.id = j;
  return slot;
}

void StreamingJobStore::fill_bounds(const Block& block,
                                    std::size_t offset) const {
  // One-time block allocation, then a contiguous conversion sweep over
  // every row appended since the last touch. float_lower is the same
  // branchless rounded-down conversion Instance::bounds_ uses
  // (inf -> FLT_MAX), so both stores' shadow rows obey one contract.
  if (block.bounds.empty()) {
    block.bounds.resize(jobs_per_block_ * num_machines_);
    bump_matrix_bytes(block.bounds.size() * sizeof(float));
  }
  const std::size_t begin = block.bounds_rows_filled * num_machines_;
  const std::size_t end = (offset + 1) * num_machines_;
  const Work* __restrict from = block.processing.data();
  float* __restrict to = block.bounds.data();
  for (std::size_t k = begin; k < end; ++k) {
    to[k] = float_lower(from[k]);
  }
  block.bounds_rows_filled = offset + 1;
}

void StreamingJobStore::retire_below(JobId frontier) {
  if (frontier <= begin_id_) return;
  begin_id_ = std::min(frontier, static_cast<JobId>(num_jobs_));
  const std::size_t first_live_block =
      static_cast<std::size_t>(begin_id_) / jobs_per_block_;
  for (std::size_t b = 0; b < first_live_block && b < blocks_.size(); ++b) {
    release_block(blocks_[b]);
  }
}

Work StreamingJobStore::min_processing(JobId j) const {
  Work best = kTimeInfinity;
  switch (backend_) {
    case StorageBackend::kDense: {
      const Work* row = processing_row(j);
      for (std::size_t i = 0; i < num_machines_; ++i) {
        best = std::min(best, row[i]);
      }
      break;
    }
    case StorageBackend::kSparseCsr: {
      const Block& b = block_of(j);
      const std::size_t offset = offset_of(j);
      for (std::uint32_t e = b.eligible_offsets[offset];
           e < b.eligible_offsets[offset + 1]; ++e) {
        best = std::min(best, b.csr_p[e]);
      }
      break;
    }
    case StorageBackend::kGenerator:
      // Deliberately tile-free (like every point read): the caller may hold
      // row pointers into the tiles.
      for (std::size_t i = 0; i < num_machines_; ++i) {
        best = std::min(
            best, generator_->entry(j, static_cast<MachineId>(i)));
      }
      break;
  }
  return best;
}

Instance StreamingJobStore::take_instance() {
  OSCHED_CHECK_EQ(begin_id_, 0)
      << "cannot materialize an Instance after retirement";
  std::vector<Job> jobs;
  jobs.reserve(num_jobs_);
  // Submissions were release-ordered with dense ids, so every Instance
  // constructor's stable (release, id) sort is the identity permutation and
  // streamed ids keep their meaning. The materialized instance keeps the
  // store's backend: a compact session's drain never builds the n×m matrix.
  if (backend_ == StorageBackend::kGenerator) {
    for (std::size_t idx = 0; idx < num_jobs_; ++idx) {
      jobs.push_back(job(static_cast<JobId>(idx)));
    }
    std::shared_ptr<const RowGenerator> generator = generator_;
    begin_id_ = static_cast<JobId>(num_jobs_);
    for (auto& block : blocks_) release_block(block);
    return Instance::from_generator(std::move(jobs), num_machines_,
                                    std::move(generator));
  }
  if (backend_ == StorageBackend::kSparseCsr) {
    std::vector<std::vector<SparseEntry>> rows(num_jobs_);
    for (std::size_t idx = 0; idx < num_jobs_; ++idx) {
      const auto j = static_cast<JobId>(idx);
      jobs.push_back(job(j));
      const EligibleMachines eligible = eligible_machines(j);
      const Work* values = csr_values(j);
      rows[idx].reserve(eligible.size());
      for (std::size_t e = 0; e < eligible.size(); ++e) {
        rows[idx].push_back(SparseEntry{eligible.begin()[e], values[e]});
      }
      if (offset_of(j) + 1 == jobs_per_block_) {
        release_block(blocks_[idx / jobs_per_block_]);
        begin_id_ = static_cast<JobId>(idx + 1);
      }
    }
    begin_id_ = static_cast<JobId>(num_jobs_);
    for (auto& block : blocks_) release_block(block);
    return Instance::from_sparse_rows(std::move(jobs), num_machines_,
                                      std::move(rows));
  }
  std::vector<std::vector<Work>> processing(num_machines_);
  for (auto& row : processing) row.reserve(num_jobs_);
  for (std::size_t idx = 0; idx < num_jobs_; ++idx) {
    const auto j = static_cast<JobId>(idx);
    jobs.push_back(job(j));
    for (std::size_t i = 0; i < num_machines_; ++i) {
      processing[i].push_back(
          processing_unchecked(static_cast<MachineId>(i), j));
    }
    // Hand back each fully-copied block immediately: copied-so-far plus
    // blocks-still-held stays ~one instance worth of memory, instead of
    // ending with two complete copies live at once.
    if (offset_of(j) + 1 == jobs_per_block_) {
      release_block(blocks_[idx / jobs_per_block_]);
      begin_id_ = static_cast<JobId>(idx + 1);
    }
  }
  begin_id_ = static_cast<JobId>(num_jobs_);
  for (auto& block : blocks_) release_block(block);
  return Instance(std::move(jobs), std::move(processing));
}

}  // namespace osched::service
