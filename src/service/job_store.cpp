#include "service/job_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace osched::service {

StreamingJobStore::StreamingJobStore(std::size_t num_machines,
                                     std::size_t jobs_per_block)
    : num_machines_(num_machines), jobs_per_block_(jobs_per_block) {
  OSCHED_CHECK_GT(num_machines, 0u);
  OSCHED_CHECK_GT(jobs_per_block, 0u);
}

bool StreamingJobStore::check_job_after(const StreamJob& job,
                                        Time last_release, bool have_last,
                                        std::ostringstream* problems) const {
  // Single implementation behind both validation surfaces: with a null
  // sink (the append() hot path) the first violation returns false without
  // touching a stream; with a sink every violation is described. The
  // negated comparisons (!(x > y)) deliberately catch NaN operands.
  //
  // KEEP IN SYNC with Instance::validate (instance/instance.cpp): these are
  // the same per-job rules plus the streaming-only ones (arity, release
  // monotonicity). tests/streaming_test.cpp's differential wall turns any
  // acceptance drift into a loud failure, but rule edits should land in
  // both places.
  bool ok = true;
  const auto flag = [&ok, problems] {
    ok = false;
    return problems != nullptr;  // keep going only when collecting messages
  };
  if (job.processing.size() != num_machines_) {
    if (!flag()) return false;
    *problems << "processing row has " << job.processing.size()
              << " entries, store has " << num_machines_ << " machines; ";
  }
  if (!(job.release >= 0.0)) {
    if (!flag()) return false;
    *problems << "release " << job.release << " is negative or NaN; ";
  }
  if (have_last && job.release < last_release) {
    if (!flag()) return false;
    *problems << "release " << job.release
              << " precedes the last submitted release " << last_release
              << " (streaming submissions must be in release order); ";
  }
  if (!(job.weight > 0.0) || job.weight >= kTimeInfinity) {
    if (!flag()) return false;
    *problems << "weight " << job.weight << " is not finite positive; ";
  }
  if (!(job.deadline > job.release)) {
    if (!flag()) return false;
    *problems << "deadline " << job.deadline << " not after release; ";
  }
  bool any_eligible = false;
  for (std::size_t i = 0; i < job.processing.size(); ++i) {
    const Work p = job.processing[i];
    if (p < kTimeInfinity) {
      any_eligible = true;
      if (!(p > 0.0)) {
        if (!flag()) return false;
        *problems << "p[" << i << "] is non-positive or NaN; ";
      }
    } else if (std::isnan(p)) {
      if (!flag()) return false;
      *problems << "p[" << i << "] is NaN; ";
    }
  }
  // Only meaningful when the arity matched (an arity mismatch was already
  // flagged above, and num_machines_ > 0 by construction).
  if (job.processing.size() == num_machines_ && !any_eligible) {
    if (!flag()) return false;
    *problems << "no eligible machine; ";
  }
  return ok;
}

std::string StreamingJobStore::validate_job(const StreamJob& job) const {
  std::ostringstream problems;
  if (check_job(job, &problems)) return std::string();
  return problems.str();
}

JobId StreamingJobStore::append(const StreamJob& job) {
  // job_ok is the allocation-free gate; the diagnostic message is only
  // materialized on the failure path (OSCHED_CHECK streams lazily).
  OSCHED_CHECK(job_ok(job))
      << "invalid streamed job " << num_jobs_ << ": " << validate_job(job);
  return append_unchecked(job);
}

void StreamingJobStore::validate_batch(std::span<const StreamJob> jobs) const {
  Time last = last_release_;
  bool have_last = num_jobs_ > 0;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    if (!check_job_after(jobs[k], last, have_last, nullptr)) {
      // Diagnose against the same predecessor the gate used (the store's
      // validate_job would compare against its own high-water mark).
      std::ostringstream problems;
      check_job_after(jobs[k], last, have_last, &problems);
      OSCHED_CHECK(false) << "invalid streamed job " << num_jobs_ + k
                          << " (batch position " << k
                          << "): " << problems.str();
    }
    last = jobs[k].release;
    have_last = true;
  }
}

JobId StreamingJobStore::append_batch(std::span<const StreamJob> jobs) {
  if (jobs.empty()) return kInvalidJob;
  validate_batch(jobs);
  const auto first = static_cast<JobId>(num_jobs_);
  for (const StreamJob& job : jobs) append_unchecked(job);
  return first;
}

JobId StreamingJobStore::append_unchecked(const StreamJob& job) {
  const std::size_t block_index = num_jobs_ / jobs_per_block_;
  if (block_index == blocks_.size()) {
    blocks_.push_back(std::make_unique<Block>());
    Block& fresh = *blocks_.back();
    fresh.jobs.reserve(jobs_per_block_);
    fresh.processing.reserve(jobs_per_block_ * num_machines_);
    fresh.eligible_offsets.reserve(jobs_per_block_ + 1);
    fresh.eligible_offsets.push_back(0);
  }
  Block& block = *blocks_[block_index];

  const auto id = static_cast<JobId>(num_jobs_);
  Job stored;
  stored.id = id;
  stored.release = job.release;
  stored.weight = job.weight;
  stored.deadline = job.deadline;
  block.jobs.push_back(stored);
  block.processing.insert(block.processing.end(), job.processing.begin(),
                          job.processing.end());
  // The float shadow is NOT written here: it fills lazily on the first
  // bounds_row() touch (see the header), which moved the former ~40% of
  // append's cost off the ingest clock.
  for (std::size_t i = 0; i < job.processing.size(); ++i) {
    if (job.processing[i] < kTimeInfinity) {
      block.eligible.push_back(static_cast<MachineId>(i));
    }
  }
  block.eligible_offsets.push_back(
      static_cast<std::uint32_t>(block.eligible.size()));

  last_release_ = job.release;
  ++num_jobs_;
  return id;
}

void StreamingJobStore::fill_bounds(const Block& block,
                                    std::size_t offset) const {
  // One-time block allocation, then a contiguous conversion sweep over
  // every row appended since the last touch. float_lower is the same
  // branchless rounded-down conversion Instance::bounds_ uses
  // (inf -> FLT_MAX), so both stores' shadow rows obey one contract.
  if (block.bounds.empty()) {
    block.bounds.resize(jobs_per_block_ * num_machines_);
  }
  const std::size_t begin = block.bounds_rows_filled * num_machines_;
  const std::size_t end = (offset + 1) * num_machines_;
  const Work* __restrict from = block.processing.data();
  float* __restrict to = block.bounds.data();
  for (std::size_t k = begin; k < end; ++k) {
    to[k] = float_lower(from[k]);
  }
  block.bounds_rows_filled = offset + 1;
}

void StreamingJobStore::retire_below(JobId frontier) {
  if (frontier <= begin_id_) return;
  begin_id_ = std::min(frontier, static_cast<JobId>(num_jobs_));
  const std::size_t first_live_block =
      static_cast<std::size_t>(begin_id_) / jobs_per_block_;
  for (std::size_t b = 0; b < first_live_block && b < blocks_.size(); ++b) {
    blocks_[b].reset();
  }
}

Work StreamingJobStore::min_processing(JobId j) const {
  Work best = kTimeInfinity;
  for (std::size_t i = 0; i < num_machines_; ++i) {
    best = std::min(best, processing_unchecked(static_cast<MachineId>(i), j));
  }
  return best;
}

Instance StreamingJobStore::take_instance() {
  OSCHED_CHECK_EQ(begin_id_, 0)
      << "cannot materialize an Instance after retirement";
  std::vector<Job> jobs;
  jobs.reserve(num_jobs_);
  std::vector<std::vector<Work>> processing(num_machines_);
  for (auto& row : processing) row.reserve(num_jobs_);
  for (std::size_t idx = 0; idx < num_jobs_; ++idx) {
    const auto j = static_cast<JobId>(idx);
    jobs.push_back(job(j));
    for (std::size_t i = 0; i < num_machines_; ++i) {
      processing[i].push_back(
          processing_unchecked(static_cast<MachineId>(i), j));
    }
    // Hand back each fully-copied block immediately: copied-so-far plus
    // blocks-still-held stays ~one instance worth of memory, instead of
    // ending with two complete copies live at once.
    if (offset_of(j) + 1 == jobs_per_block_) {
      blocks_[idx / jobs_per_block_].reset();
      begin_id_ = static_cast<JobId>(idx + 1);
    }
  }
  begin_id_ = static_cast<JobId>(num_jobs_);
  for (auto& block : blocks_) block.reset();
  // Submissions were release-ordered with dense ids, so the Instance
  // constructor's stable (release, id) sort is the identity permutation and
  // streamed ids keep their meaning.
  return Instance(std::move(jobs), std::move(processing));
}

}  // namespace osched::service
