// Streaming job store: the growable, prefix-retirable counterpart of
// Instance.
//
// A SchedulerSession ingests jobs one at a time, in release order, and the
// policies read job data through exactly the accessor surface Instance
// exposes (job / processing_unchecked / eligible_machines / ...). The store
// keeps that data in fixed-size blocks so that once every job of a block is
// decided and folded, the whole block's memory is handed back — the live
// footprint tracks the in-flight window, not the full trace.
//
// Storage backends (the PR-5 batch trio, carried through the service layer):
//  * kDense     — each block holds a job-major m-wide double matrix plus a
//                 lazily filled float_lower shadow. The compatibility hot
//                 path; accepts dense AND sparse submission forms (sparse
//                 entries scatter into an infinity-filled row).
//  * kSparseCsr — each block stores only the eligible (machine, p) entries,
//                 as a values array aligned with the eligibility adjacency
//                 the store keeps anyway. A restricted-assignment job costs
//                 O(eligible), never O(m). Accepts both submission forms
//                 (a dense row is compacted on append).
//  * kGenerator — no matrix at all: p_ij comes from a shared RowGenerator
//                 closed form (fully eligible by contract). Submissions are
//                 METADATA-ONLY (release/weight/deadline; both payload
//                 vectors empty).
// The m-wide row accessors (processing_row / bounds_row) that the indexed
// dispatch path needs are served, for the compact backends, from a 4-slot
// direct-mapped row-tile cache (slot = j % 4) — the same shape as the batch
// Sparse/GeneratorStoreView, sized so that the dispatch's row-j + lookahead
// row-j+1 pointers never collide. Point lookups (processing_unchecked) NEVER
// go through the tiles: policies probe arbitrary pending ids mid-dispatch
// while holding tile row pointers, so those reads use a per-row binary
// search (CSR) or the closed form (generator) instead.
//
// Ids are dense and monotone: append() assigns 0, 1, 2, ... in submission
// order, and submissions must be non-decreasing in release time (the online
// model's arrival order; Instance sorts batch input the same way). Reading
// a retired job aborts — schedulers only touch pending/running jobs, so a
// read below the frontier is a bug, never a recoverable condition.
#pragma once

#include <algorithm>
#include <array>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "instance/instance.hpp"
#include "instance/stream_job.hpp"
#include "util/check.hpp"

namespace osched::service {

class StreamingJobStore {
 public:
  /// `backend` selects the block representation above. kGenerator requires
  /// a non-null `generator` (the closed form shared with the feeder); the
  /// matrix-backed backends require it null.
  explicit StreamingJobStore(
      std::size_t num_machines, std::size_t jobs_per_block = 4096,
      StorageBackend backend = StorageBackend::kDense,
      std::shared_ptr<const RowGenerator> generator = nullptr);

  std::size_t num_machines() const { return num_machines_; }
  /// Total jobs ever appended (retired jobs included) — the id space size.
  std::size_t num_jobs() const { return num_jobs_; }
  /// First id still stored.
  JobId begin_id() const { return begin_id_; }

  StorageBackend backend() const { return backend_; }
  /// The closed form of a kGenerator store; null otherwise.
  const std::shared_ptr<const RowGenerator>& generator() const {
    return generator_;
  }

  /// Allocation-free structural check of one submission (the hot-path
  /// form): true iff append() would accept the job.
  bool job_ok(const StreamJob& job) const { return check_job(job, nullptr); }

  /// Diagnostic form of job_ok: empty string = acceptable, else a
  /// description of every problem. Only builds its message machinery when
  /// the job is actually invalid.
  std::string validate_job(const StreamJob& job) const;

  /// Appends the job and returns its id. Aborts on invalid input — callers
  /// wanting recoverable rejection run job_ok/validate_job first.
  JobId append(const StreamJob& job);

  /// One validation pass over a whole batch (each job checked against its
  /// in-batch predecessor for release order, the first against the store's
  /// high-water mark). Aborts on the first invalid job, naming its batch
  /// position; the store is not mutated. The amortization behind
  /// SchedulerSession's batch submit: validate once, then append_trusted
  /// per job with no per-job gate.
  void validate_batch(std::span<const StreamJob> jobs) const;

  /// Appends WITHOUT the validity gate — legal only for jobs a
  /// validate_batch pass (or an explicit job_ok) already accepted.
  JobId append_trusted(const StreamJob& job) { return append_unchecked(job); }

  /// validate_batch + append_trusted over the whole span: appends the batch
  /// in one call and returns the FIRST assigned id (kInvalidJob for an
  /// empty batch).
  JobId append_batch(std::span<const StreamJob> jobs);

  /// Frees every block that lies entirely below `frontier`.
  void retire_below(JobId frontier);

  /// Bytes currently held in p_ij payload across live blocks: dense rows,
  /// float shadows and CSR value arrays. Job records, the eligibility
  /// adjacency and the fixed 4-row tile scratch are excluded — this is the
  /// number that collapses for compact backends (a kGenerator store reports
  /// 0 forever). matrix_peak_bytes() is its lifetime high-water mark, the
  /// deterministic per-tenant memory metric the multi-tenant soak tracks.
  std::size_t matrix_bytes() const { return matrix_bytes_; }
  std::size_t matrix_peak_bytes() const { return matrix_peak_bytes_; }

  // ---- Instance-compatible accessor surface (policies are templates over
  // it; semantics match Instance exactly) ----

  const Job& job(JobId j) const {
    const Block& b = block_of(j);
    return b.jobs[offset_of(j)];
  }

  /// Point lookup. NEVER routed through the row tiles: policies call this
  /// with arbitrary pending ids (shed victim scans, queue-key refreshes)
  /// while holding processing_row pointers, and a tile fill here would
  /// clobber the rows those pointers alias.
  Work processing_unchecked(MachineId i, JobId j) const {
    const Block& b = block_of(j);
    if (backend_ == StorageBackend::kDense) {
      return b.processing[offset_of(j) * num_machines_ +
                          static_cast<std::size_t>(i)];
    }
    if (backend_ == StorageBackend::kGenerator) {
      return generator_->entry(j, i);
    }
    const std::size_t offset = offset_of(j);
    const MachineId* base = b.eligible.data();
    const MachineId* begin = base + b.eligible_offsets[offset];
    const MachineId* end = base + b.eligible_offsets[offset + 1];
    const MachineId* it = std::lower_bound(begin, end, i);
    if (it == end || *it != i) return kTimeInfinity;
    return b.csr_p[static_cast<std::size_t>(it - base)];
  }

  /// Job j's contiguous p_{., j} row, same contract as
  /// Instance::processing_row. Dense blocks serve the stored row (rows
  /// never straddle a block boundary); compact backends decompress into the
  /// j % 4 tile slot. The pointer stays valid across reads of rows j and
  /// j+1 and any number of processing_unchecked probes — exactly the
  /// lifetime the dispatch path needs.
  const Work* processing_row(JobId j) const {
    if (backend_ == StorageBackend::kDense) {
      const Block& b = block_of(j);
      return b.processing.data() + offset_of(j) * num_machines_;
    }
    return tile(j).p.data();
  }

  /// Rounded-down float32 shadow row, same contract as
  /// Instance::bounds_row. Dense blocks fill LAZILY: append() never touches
  /// the shadow (the fill used to be ~40% of its cost); the first
  /// bounds_row() on a block allocates the block's shadow and fills every
  /// row up to j in one contiguous branch-free conversion loop. Runs that
  /// never read bounds (linear-scan dispatch) never pay for — or allocate —
  /// the shadow at all. Compact backends fill p and bounds together into
  /// the same tile slot, so bounds_row(j) after processing_row(j) is a hit,
  /// not a refill.
  const float* bounds_row(JobId j) const {
    if (backend_ == StorageBackend::kDense) {
      const Block& b = block_of(j);
      const std::size_t offset = offset_of(j);
      if (offset >= b.bounds_rows_filled) fill_bounds(b, offset);
      return b.bounds.data() + offset * num_machines_;
    }
    return tile(j).bounds.data();
  }

  /// Streaming stores have no precomputed (p, id) order: sorting every
  /// append would sit on the ingest clock, and a just-appended row is
  /// cache-hot anyway, so the dispatch's ordered path derives the idle
  /// argmin from the shadow row instead (nullptr selects that sub-path).
  const std::uint16_t* p_order_row(JobId /*j*/) const { return nullptr; }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < num_machines_);
    return processing_unchecked(i, j);
  }

  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }

  EligibleMachines eligible_machines(JobId j) const {
    const Block& b = block_of(j);
    if (backend_ == StorageBackend::kGenerator) {
      // Fully eligible by contract: every generator row is the identity.
      return EligibleMachines{identity_machines_.data(),
                              identity_machines_.data() + num_machines_};
    }
    const std::size_t offset = offset_of(j);
    const MachineId* base = b.eligible.data();
    return EligibleMachines{base + b.eligible_offsets[offset],
                            base + b.eligible_offsets[offset + 1]};
  }

  /// kSparseCsr only: job j's stored values, aligned entry-for-entry with
  /// eligible_machines(j). The checkpoint writer and take_instance() read
  /// rows through this instead of m probes.
  const Work* csr_values(JobId j) const {
    OSCHED_CHECK(backend_ == StorageBackend::kSparseCsr);
    const Block& b = block_of(j);
    return b.csr_p.data() + b.eligible_offsets[offset_of(j)];
  }

  Work min_processing(JobId j) const;

  /// Builds a batch Instance holding every appended job — under the SAME
  /// storage backend as the store, so a sparse or generator session's drain
  /// never materializes the n×m matrix — RELEASING each store block as soon
  /// as it is copied. Peak memory stays ~one copy of the data, but the
  /// store is empty afterwards (every read aborts). Only legal while
  /// nothing has been retired; retention-mode sessions call it at drain
  /// time, after the policy's last store read, to run the batch validator
  /// and objective evaluation over the streamed run.
  Instance take_instance();

 private:
  /// The one validation predicate behind job_ok/validate_job/append: null
  /// sink = fast boolean short-circuit, non-null = collect every problem.
  /// `last_release` is the release the job must not precede (the store's
  /// high-water mark, or the preceding job of a batch); `have_last` is
  /// false for the very first submission.
  bool check_job_after(const StreamJob& job, Time last_release, bool have_last,
                       std::ostringstream* problems) const;
  bool check_job(const StreamJob& job, std::ostringstream* problems) const {
    return check_job_after(job, last_release_, num_jobs_ > 0, problems);
  }

  /// Appends one pre-validated job (the shared tail of append/append_batch).
  JobId append_unchecked(const StreamJob& job);

  struct Block {
    std::vector<Job> jobs;
    std::vector<Work> processing;  ///< kDense: jobs.size() * m, job-major
    /// float_lower shadow of processing, lazily materialized (bounds_row).
    mutable std::vector<float> bounds;
    mutable std::size_t bounds_rows_filled = 0;
    /// Eligibility adjacency (kDense and kSparseCsr; kGenerator rows are
    /// implicitly the identity and store nothing).
    std::vector<MachineId> eligible;
    std::vector<std::uint32_t> eligible_offsets;  ///< jobs.size() + 1
    /// kSparseCsr: stored p values, aligned with `eligible`.
    std::vector<Work> csr_p;
  };

  /// One decompressed row of a compact backend: exact doubles plus the
  /// float_lower shadow, filled together.
  struct RowTile {
    JobId id = kInvalidJob;
    std::vector<Work> p;
    std::vector<float> bounds;
  };
  /// Direct-mapped (slot = j % kTileSlots): consecutive ids land in
  /// different slots, so the dispatch's held row-j pointer survives the
  /// row-j+1 lookahead fill.
  static constexpr std::size_t kTileSlots = 4;

  /// Serves row j from its tile slot, filling it from the block (CSR) or
  /// the closed form (generator) on a miss.
  const RowTile& tile(JobId j) const;

  /// Extends the block's shadow through row `offset` (see bounds_row).
  void fill_bounds(const Block& block, std::size_t offset) const;

  /// p-payload bytes a block currently holds (the matrix_bytes unit).
  std::size_t block_matrix_bytes(const Block& block) const {
    return block.processing.size() * sizeof(Work) +
           block.bounds.size() * sizeof(float) +
           block.csr_p.size() * sizeof(Work);
  }
  void bump_matrix_bytes(std::size_t bytes) const {
    matrix_bytes_ += bytes;
    matrix_peak_bytes_ = std::max(matrix_peak_bytes_, matrix_bytes_);
  }
  void release_block(std::unique_ptr<Block>& block) {
    if (block == nullptr) return;
    matrix_bytes_ -= block_matrix_bytes(*block);
    block.reset();
  }

  const Block& block_of(JobId j) const {
    OSCHED_CHECK(j >= begin_id_ && static_cast<std::size_t>(j) < num_jobs_)
        << "job " << j << " outside the live store window [" << begin_id_
        << ", " << num_jobs_ << ")";
    const Block* block =
        blocks_[static_cast<std::size_t>(j) / jobs_per_block_].get();
    return *block;
  }

  std::size_t offset_of(JobId j) const {
    return static_cast<std::size_t>(j) % jobs_per_block_;
  }

  std::size_t num_machines_;
  std::size_t jobs_per_block_;
  StorageBackend backend_ = StorageBackend::kDense;
  std::shared_ptr<const RowGenerator> generator_;
  /// kGenerator: the identity adjacency row every job shares.
  std::vector<MachineId> identity_machines_;
  std::size_t num_jobs_ = 0;
  JobId begin_id_ = 0;
  Time last_release_ = 0.0;
  /// blocks_[b] covers ids [b*B, (b+1)*B); retired blocks are null.
  std::vector<std::unique_ptr<Block>> blocks_;
  /// Compact-backend row cache (see RowTile). Mutable: serving a row is
  /// logically const.
  mutable std::array<RowTile, kTileSlots> tiles_;
  mutable std::size_t matrix_bytes_ = 0;
  mutable std::size_t matrix_peak_bytes_ = 0;
};

}  // namespace osched::service
