// Streaming job store: the growable, prefix-retirable counterpart of
// Instance.
//
// A SchedulerSession ingests jobs one at a time, in release order, and the
// policies read job data through exactly the accessor surface Instance
// exposes (job / processing_unchecked / eligible_machines / ...). The store
// keeps that data in fixed-size blocks so that once every job of a block is
// decided and folded, the whole block's memory is handed back — the live
// footprint tracks the in-flight window, not the full trace.
//
// Ids are dense and monotone: append() assigns 0, 1, 2, ... in submission
// order, and submissions must be non-decreasing in release time (the online
// model's arrival order; Instance sorts batch input the same way). Reading
// a retired job aborts — schedulers only touch pending/running jobs, so a
// read below the frontier is a bug, never a recoverable condition.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "instance/instance.hpp"
#include "instance/stream_job.hpp"
#include "util/check.hpp"

namespace osched::service {

class StreamingJobStore {
 public:
  explicit StreamingJobStore(std::size_t num_machines,
                             std::size_t jobs_per_block = 4096);

  std::size_t num_machines() const { return num_machines_; }
  /// Total jobs ever appended (retired jobs included) — the id space size.
  std::size_t num_jobs() const { return num_jobs_; }
  /// First id still stored.
  JobId begin_id() const { return begin_id_; }

  /// Allocation-free structural check of one submission (the hot-path
  /// form): true iff append() would accept the job.
  bool job_ok(const StreamJob& job) const { return check_job(job, nullptr); }

  /// Diagnostic form of job_ok: empty string = acceptable, else a
  /// description of every problem. Only builds its message machinery when
  /// the job is actually invalid.
  std::string validate_job(const StreamJob& job) const;

  /// Appends the job and returns its id. Aborts on invalid input — callers
  /// wanting recoverable rejection run job_ok/validate_job first.
  JobId append(const StreamJob& job);

  /// One validation pass over a whole batch (each job checked against its
  /// in-batch predecessor for release order, the first against the store's
  /// high-water mark). Aborts on the first invalid job, naming its batch
  /// position; the store is not mutated. The amortization behind
  /// SchedulerSession's batch submit: validate once, then append_trusted
  /// per job with no per-job gate.
  void validate_batch(std::span<const StreamJob> jobs) const;

  /// Appends WITHOUT the validity gate — legal only for jobs a
  /// validate_batch pass (or an explicit job_ok) already accepted.
  JobId append_trusted(const StreamJob& job) { return append_unchecked(job); }

  /// validate_batch + append_trusted over the whole span: appends the batch
  /// in one call and returns the FIRST assigned id (kInvalidJob for an
  /// empty batch).
  JobId append_batch(std::span<const StreamJob> jobs);

  /// Frees every block that lies entirely below `frontier`.
  void retire_below(JobId frontier);

  // ---- Instance-compatible accessor surface (policies are templates over
  // it; semantics match Instance exactly) ----

  const Job& job(JobId j) const {
    const Block& b = block_of(j);
    return b.jobs[offset_of(j)];
  }

  Work processing_unchecked(MachineId i, JobId j) const {
    const Block& b = block_of(j);
    return b.processing[offset_of(j) * num_machines_ +
                        static_cast<std::size_t>(i)];
  }

  /// Job j's contiguous p_{., j} row, same contract as
  /// Instance::processing_row (rows never straddle a block boundary).
  const Work* processing_row(JobId j) const {
    const Block& b = block_of(j);
    return b.processing.data() + offset_of(j) * num_machines_;
  }

  /// Rounded-down float32 shadow row, same contract as
  /// Instance::bounds_row. Filled LAZILY: append() never touches the shadow
  /// (the fill used to be ~40% of its cost); the first bounds_row() on a
  /// block allocates the block's shadow and fills every row up to j in one
  /// contiguous branch-free conversion loop (vectorizable — the rows since
  /// the last touch convert in a single batch rather than one append at a
  /// time). Runs that never read bounds (linear-scan dispatch) never pay
  /// for — or allocate — the shadow at all.
  const float* bounds_row(JobId j) const {
    const Block& b = block_of(j);
    const std::size_t offset = offset_of(j);
    if (offset >= b.bounds_rows_filled) fill_bounds(b, offset);
    return b.bounds.data() + offset * num_machines_;
  }

  /// Streaming stores have no precomputed (p, id) order: sorting every
  /// append would sit on the ingest clock, and a just-appended row is
  /// cache-hot anyway, so the dispatch's ordered path derives the idle
  /// argmin from the shadow row instead (nullptr selects that sub-path).
  const std::uint16_t* p_order_row(JobId /*j*/) const { return nullptr; }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < num_machines_);
    return processing_unchecked(i, j);
  }

  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }

  EligibleMachines eligible_machines(JobId j) const {
    const Block& b = block_of(j);
    const std::size_t offset = offset_of(j);
    const MachineId* base = b.eligible.data();
    return EligibleMachines{base + b.eligible_offsets[offset],
                            base + b.eligible_offsets[offset + 1]};
  }

  Work min_processing(JobId j) const;

  /// Builds a batch Instance holding every appended job, RELEASING each
  /// store block as soon as it is copied — peak memory stays ~one copy of
  /// the data, but the store is empty afterwards (every read aborts). Only
  /// legal while nothing has been retired; retention-mode sessions call it
  /// at drain time, after the policy's last store read, to run the batch
  /// validator and objective evaluation over the streamed run.
  Instance take_instance();

 private:
  /// The one validation predicate behind job_ok/validate_job/append: null
  /// sink = fast boolean short-circuit, non-null = collect every problem.
  /// `last_release` is the release the job must not precede (the store's
  /// high-water mark, or the preceding job of a batch); `have_last` is
  /// false for the very first submission.
  bool check_job_after(const StreamJob& job, Time last_release, bool have_last,
                       std::ostringstream* problems) const;
  bool check_job(const StreamJob& job, std::ostringstream* problems) const {
    return check_job_after(job, last_release_, num_jobs_ > 0, problems);
  }

  /// Appends one pre-validated job (the shared tail of append/append_batch).
  JobId append_unchecked(const StreamJob& job);

  struct Block {
    std::vector<Job> jobs;
    std::vector<Work> processing;  ///< jobs.size() * m, job-major
    /// float_lower shadow of processing, lazily materialized (bounds_row).
    mutable std::vector<float> bounds;
    mutable std::size_t bounds_rows_filled = 0;
    std::vector<MachineId> eligible;
    std::vector<std::uint32_t> eligible_offsets;  ///< jobs.size() + 1
  };

  /// Extends the block's shadow through row `offset` (see bounds_row).
  void fill_bounds(const Block& block, std::size_t offset) const;

  const Block& block_of(JobId j) const {
    OSCHED_CHECK(j >= begin_id_ && static_cast<std::size_t>(j) < num_jobs_)
        << "job " << j << " outside the live store window [" << begin_id_
        << ", " << num_jobs_ << ")";
    const Block* block =
        blocks_[static_cast<std::size_t>(j) / jobs_per_block_].get();
    return *block;
  }

  std::size_t offset_of(JobId j) const {
    return static_cast<std::size_t>(j) % jobs_per_block_;
  }

  std::size_t num_machines_;
  std::size_t jobs_per_block_;
  std::size_t num_jobs_ = 0;
  JobId begin_id_ = 0;
  Time last_release_ = 0.0;
  /// blocks_[b] covers ids [b*B, (b+1)*B); retired blocks are null.
  std::vector<std::unique_ptr<Block>> blocks_;
};

}  // namespace osched::service
