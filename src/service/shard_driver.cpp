#include "service/shard_driver.hpp"

#include <algorithm>
#include <utility>

#include "service/checkpoint.hpp"
#include "util/numa.hpp"
#include "util/rng.hpp"

namespace osched::service {

ShardDriver::ShardDriver(api::Algorithm algorithm, std::size_t num_shards,
                         std::size_t num_machines, ShardDriverOptions options) {
  OSCHED_CHECK_GT(num_shards, 0u);
  max_inflight_ = options.max_inflight_batches;
  fair_quantum_ = options.fair_quantum;
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->session = std::make_unique<SchedulerSession>(algorithm, num_machines,
                                                        options.session);
    shard->credit = fair_quantum_;
    shards_.push_back(std::move(shard));
  }
  start_workers(options.threads, options.numa_policy);
}

void ShardDriver::set_fair_quantum(std::size_t quantum) {
  fair_quantum_ = quantum;
  for (auto& shard : shards_) shard->credit = quantum;
}

ShardCounters ShardDriver::shard_counters(std::size_t shard) const {
  OSCHED_CHECK_LT(shard, shards_.size());
  const Shard& s = *shards_[shard];
  ShardCounters counters;
  counters.sheds = s.session->num_shed();
  counters.backpressured = s.session->num_backpressured();
  counters.deferred = s.deferred;
  counters.inflight_refused = s.inflight_refused;
  counters.staged_ops = s.staged_ops;
  counters.max_batch_ops = s.max_batch_ops;
  return counters;
}

bool ShardDriver::fairness_refuses(Shard& s) {
  if (fair_quantum_ == 0) return false;
  if (s.credit == 0) {
    ++s.deferred;
    return true;
  }
  return false;
}

void ShardDriver::start_workers(std::size_t threads, NumaPolicy numa_policy) {
  const std::size_t num_shards = shards_.size();
  std::size_t workers = threads != 0
                            ? threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, num_shards);
  // One worker buys no parallelism — inline application on the caller's
  // thread drops the staging copies, the hand-off and the context
  // switches, which on a single-core host is the whole cost.
  if (workers <= 1) return;

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    workers_[s % workers]->shards.push_back(s);
  }
  if (numa_policy == NumaPolicy::kInterleave &&
      util::numa_topology().multi_node()) {
    // Round-robin workers across nodes. Each worker pins ITSELF as the
    // first thing its loop does, so every allocation it first-touches —
    // batch buffers and, dominating by far, the lazily grown session state
    // of the shards it owns — lands on its node and stays there.
    const std::size_t nodes = util::numa_topology().num_nodes();
    for (std::size_t w = 0; w < workers; ++w) {
      workers_[w]->numa_node = static_cast<int>(w % nodes);
    }
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, worker = worker.get()] {
      worker_loop(*worker);
    });
  }
}

ShardDriver::~ShardDriver() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->stop = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) worker->thread.join();
}

std::size_t ShardDriver::shard_for(std::uint64_t tenant_key) const {
  return util::derive_seed(0x5AA5D000D15EA5EULL, tenant_key) % shards_.size();
}

SchedulerSession& ShardDriver::session(std::size_t shard) {
  OSCHED_CHECK_LT(shard, shards_.size());
  return *shards_[shard]->session;
}

void ShardDriver::submit(std::size_t shard, const StreamJob& job) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Shard& s = *shards_[shard];
  if (inline_mode()) {
    s.session->submit(job);
    return;
  }
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.job = job;
  s.staging.push_back(std::move(op));
}

void ShardDriver::advance(std::size_t shard, Time to) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Shard& s = *shards_[shard];
  if (inline_mode()) {
    s.session->advance(to);
    return;
  }
  Op op;
  op.kind = Op::Kind::kAdvance;
  op.to = to;
  s.staging.push_back(std::move(op));
}

StageOutcome ShardDriver::try_submit(std::size_t shard, const StreamJob& job) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Shard& s = *shards_[shard];
  // Fairness gates before the inflight bound: a deferred shard must not
  // burn its siblings' chance at a refusal diagnosis that will still hold
  // next round, and the counters stay disjoint (one refusal, one reason).
  if (fairness_refuses(s)) return StageOutcome::kDeferred;
  if (inline_mode()) {
    if (s.session->try_submit(job) != SubmitOutcome::kAccepted) {
      return StageOutcome::kBackpressure;
    }
    if (fair_quantum_ != 0) --s.credit;
    ++s.staged_ops;
    return StageOutcome::kAccepted;
  }
  if (at_inflight_cap(s)) {
    ++s.inflight_refused;
    return StageOutcome::kInflightFull;
  }
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.job = job;
  s.staging.push_back(std::move(op));
  if (fair_quantum_ != 0) --s.credit;
  ++s.staged_ops;
  return StageOutcome::kStaged;
}

StageOutcome ShardDriver::try_advance(std::size_t shard, Time to) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Shard& s = *shards_[shard];
  if (fairness_refuses(s)) return StageOutcome::kDeferred;
  if (inline_mode()) {
    s.session->advance(to);
    if (fair_quantum_ != 0) --s.credit;
    ++s.staged_ops;
    return StageOutcome::kAccepted;
  }
  if (at_inflight_cap(s)) {
    ++s.inflight_refused;
    return StageOutcome::kInflightFull;
  }
  Op op;
  op.kind = Op::Kind::kAdvance;
  op.to = to;
  s.staging.push_back(std::move(op));
  if (fair_quantum_ != 0) --s.credit;
  ++s.staged_ops;
  return StageOutcome::kStaged;
}

std::size_t ShardDriver::inflight_batches(std::size_t shard) const {
  OSCHED_CHECK_LT(shard, shards_.size());
  const Shard& s = *shards_[shard];
  // done <= submitted always (submitted is written by this thread only —
  // the single-producer contract), so the difference cannot wrap.
  return static_cast<std::size_t>(
      s.batches_submitted.load(std::memory_order_acquire) -
      s.batches_done.load(std::memory_order_acquire));
}

bool ShardDriver::at_inflight_cap(const Shard& s) const {
  if (max_inflight_ == 0) return false;
  return s.batches_submitted.load(std::memory_order_acquire) -
             s.batches_done.load(std::memory_order_acquire) >=
         max_inflight_;
}

void ShardDriver::flush() {
  // A flush is a DRR round boundary in both modes: every shard's credit is
  // replenished by the quantum, with unused credit carrying over up to one
  // extra quantum (the deficit). This runs before the inline early-return
  // so inline-mode callers pace rounds with the same flush()/pump() calls.
  if (fair_quantum_ != 0) {
    for (auto& shard : shards_) {
      shard->credit = std::min(shard->credit + fair_quantum_,
                               2 * fair_quantum_);
    }
  }
  if (inline_mode()) return;
  const std::size_t workers = workers_.size();
  // Hand off every non-empty staged batch, then wake each involved worker
  // once (not once per shard).
  std::vector<bool> wake_worker(workers, false);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (shard.staging.empty()) continue;
    shard.max_batch_ops = std::max(shard.max_batch_ops, shard.staging.size());
    shard.inbox.push(std::move(shard.staging));
    shard.staging.clear();
    shard.batches_submitted.fetch_add(1, std::memory_order_release);
    wake_worker[s % workers] = true;
  }
  for (std::size_t w = 0; w < workers; ++w) {
    if (wake_worker[w]) wake(*workers_[w]);
  }
}

void ShardDriver::sync() {
  if (inline_mode()) return;
  const auto all_done = [this] {
    for (const auto& shard : shards_) {
      if (shard->batches_done.load(std::memory_order_acquire) !=
          shard->batches_submitted.load(std::memory_order_acquire)) {
        return false;
      }
    }
    return true;
  };
  std::unique_lock<std::mutex> lock(sync_mutex_);
  sync_cv_.wait(lock, all_done);
}

void ShardDriver::pump() {
  flush();
  sync();
}

std::vector<api::RunSummary> ShardDriver::drain_all() {
  pump();
  std::vector<api::RunSummary> results(shards_.size());
  if (inline_mode()) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      results[s] = shards_[s]->session->drain();
    }
    return results;
  }
  // Drain as one more per-shard op, so the heavy run-to-quiescence work
  // happens on the workers, in parallel.
  for (auto& shard : shards_) {
    Op op;
    op.kind = Op::Kind::kDrain;
    shard->staging.push_back(std::move(op));
  }
  pump();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    OSCHED_CHECK(shards_[s]->drained) << "shard " << s << " did not drain";
    results[s] = std::move(shards_[s]->drain_result);
  }
  return results;
}

std::string ShardDriver::checkpoint() {
  pump();  // every staged/handed-off op is applied; sessions are quiescent
  CheckpointWriter w;
  w.bytes(kDriverCheckpointMagic, sizeof(kDriverCheckpointMagic));
  w.u32(kCheckpointVersion);
  w.u64(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    OSCHED_CHECK(!shards_[s]->drained)
        << "checkpoint() after shard " << s << " drained";
    const std::string blob = shards_[s]->session->checkpoint();
    w.u64(blob.size());
    w.bytes(blob.data(), blob.size());
  }
  return w.finish();
}

std::unique_ptr<ShardDriver> ShardDriver::restore(
    std::string_view blob, std::size_t threads, std::string* error,
    std::shared_ptr<const RowGenerator> generator, NumaPolicy numa_policy) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return nullptr;
  };

  CheckpointReader r(blob);
  r.open(kDriverCheckpointMagic, "shard-driver");
  if (!r.ok()) return fail(r.error());
  const std::uint32_t version = r.u32();
  if (r.ok() &&
      (version < kCheckpointVersionMin || version > kCheckpointVersion)) {
    return fail("unsupported checkpoint version " + std::to_string(version) +
                " (this build reads versions " +
                std::to_string(kCheckpointVersionMin) + " through " +
                std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint64_t num_shards = r.u64();
  if (!r.ok()) return fail(r.error());
  if (num_shards == 0) {
    return fail("checkpoint corrupted: zero shards");
  }
  // Each shard costs at least its 8-byte length prefix: a forged count
  // larger than the blob can carry is rejected before the reserve below.
  if (num_shards > r.remaining() / 8) {
    return fail("checkpoint corrupted: shard count exceeds blob size");
  }

  // Private default ctor: make_unique cannot reach it.
  std::unique_ptr<ShardDriver> driver(new ShardDriver());
  driver->shards_.reserve(static_cast<std::size_t>(num_shards));
  for (std::uint64_t s = 0; s < num_shards; ++s) {
    const std::uint64_t size = r.u64();
    if (!r.ok()) return fail(r.error());
    if (size > r.remaining()) {
      return fail("checkpoint truncated: shard " + std::to_string(s) +
                  " blob extends past the checkpoint");
    }
    std::string session_blob(static_cast<std::size_t>(size), '\0');
    r.bytes(session_blob.data(), session_blob.size());
    OSCHED_CHECK(r.ok()) << r.error();  // size was just checked
    std::string session_error;
    auto session =
        SchedulerSession::restore(session_blob, &session_error, generator);
    if (session == nullptr) {
      return fail("shard " + std::to_string(s) + ": " + session_error);
    }
    auto shard = std::make_unique<Shard>();
    shard->session = std::move(session);
    driver->shards_.push_back(std::move(shard));
  }
  if (r.remaining() != 0) {
    return fail("checkpoint corrupted: " + std::to_string(r.remaining()) +
                " trailing bytes after the last shard");
  }
  driver->start_workers(threads, numa_policy);
  if (error != nullptr) error->clear();
  return driver;
}

void ShardDriver::apply(Shard& shard, Op& op) const {
  switch (op.kind) {
    case Op::Kind::kSubmit:
      shard.session->submit(op.job);
      break;
    case Op::Kind::kAdvance:
      shard.session->advance(op.to);
      break;
    case Op::Kind::kDrain:
      shard.drain_result = shard.session->drain();
      shard.drained = true;
      break;
  }
}

void ShardDriver::wake(Worker& worker) {
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.signal = true;
  }
  worker.cv.notify_one();
}

void ShardDriver::worker_loop(Worker& worker) {
  if (worker.numa_node >= 0 &&
      util::pin_current_thread_to_node(
          static_cast<std::size_t>(worker.numa_node))) {
    pinned_workers_.fetch_add(1, std::memory_order_release);
  }
  std::vector<std::vector<Op>> batches;
  for (;;) {
    bool did_work = false;
    for (const std::size_t s : worker.shards) {
      Shard& shard = *shards_[s];
      batches.clear();
      if (shard.inbox.drain(batches) == 0) continue;
      did_work = true;
      for (auto& ops : batches) {
        for (Op& op : ops) apply(shard, op);
        shard.batches_done.fetch_add(1, std::memory_order_release);
        // Empty critical section: pairs with sync()'s predicate re-check,
        // so a syncer between its check and its wait cannot miss this.
        { std::lock_guard<std::mutex> lock(sync_mutex_); }
        sync_cv_.notify_all();
      }
    }
    if (did_work) continue;
    std::unique_lock<std::mutex> lock(worker.mutex);
    if (worker.stop) return;
    worker.cv.wait(lock, [&worker] { return worker.signal || worker.stop; });
    if (worker.stop) return;
    worker.signal = false;
  }
}

}  // namespace osched::service
