#include "service/shard_driver.hpp"

#include <algorithm>
#include <utility>

#include "util/rng.hpp"

namespace osched::service {

ShardDriver::ShardDriver(api::Algorithm algorithm, std::size_t num_shards,
                         std::size_t num_machines, ShardDriverOptions options) {
  OSCHED_CHECK_GT(num_shards, 0u);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->session = std::make_unique<SchedulerSession>(algorithm, num_machines,
                                                        options.session);
    shards_.push_back(std::move(shard));
  }

  std::size_t workers = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, num_shards);
  // One worker buys no parallelism — inline application on the caller's
  // thread drops the staging copies, the hand-off and the context
  // switches, which on a single-core host is the whole cost.
  if (workers <= 1) return;

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    workers_[s % workers]->shards.push_back(s);
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, worker = worker.get()] {
      worker_loop(*worker);
    });
  }
}

ShardDriver::~ShardDriver() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->stop = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) worker->thread.join();
}

std::size_t ShardDriver::shard_for(std::uint64_t tenant_key) const {
  return util::derive_seed(0x5AA5D000D15EA5EULL, tenant_key) % shards_.size();
}

SchedulerSession& ShardDriver::session(std::size_t shard) {
  OSCHED_CHECK_LT(shard, shards_.size());
  return *shards_[shard]->session;
}

void ShardDriver::submit(std::size_t shard, const StreamJob& job) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Shard& s = *shards_[shard];
  if (inline_mode()) {
    s.session->submit(job);
    return;
  }
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.job = job;
  s.staging.push_back(std::move(op));
}

void ShardDriver::advance(std::size_t shard, Time to) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Shard& s = *shards_[shard];
  if (inline_mode()) {
    s.session->advance(to);
    return;
  }
  Op op;
  op.kind = Op::Kind::kAdvance;
  op.to = to;
  s.staging.push_back(std::move(op));
}

void ShardDriver::flush() {
  if (inline_mode()) return;
  const std::size_t workers = workers_.size();
  // Hand off every non-empty staged batch, then wake each involved worker
  // once (not once per shard).
  std::vector<bool> wake_worker(workers, false);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (shard.staging.empty()) continue;
    shard.inbox.push(std::move(shard.staging));
    shard.staging.clear();
    shard.batches_submitted.fetch_add(1, std::memory_order_release);
    wake_worker[s % workers] = true;
  }
  for (std::size_t w = 0; w < workers; ++w) {
    if (wake_worker[w]) wake(*workers_[w]);
  }
}

void ShardDriver::sync() {
  if (inline_mode()) return;
  const auto all_done = [this] {
    for (const auto& shard : shards_) {
      if (shard->batches_done.load(std::memory_order_acquire) !=
          shard->batches_submitted.load(std::memory_order_acquire)) {
        return false;
      }
    }
    return true;
  };
  std::unique_lock<std::mutex> lock(sync_mutex_);
  sync_cv_.wait(lock, all_done);
}

void ShardDriver::pump() {
  flush();
  sync();
}

std::vector<api::RunSummary> ShardDriver::drain_all() {
  pump();
  std::vector<api::RunSummary> results(shards_.size());
  if (inline_mode()) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      results[s] = shards_[s]->session->drain();
    }
    return results;
  }
  // Drain as one more per-shard op, so the heavy run-to-quiescence work
  // happens on the workers, in parallel.
  for (auto& shard : shards_) {
    Op op;
    op.kind = Op::Kind::kDrain;
    shard->staging.push_back(std::move(op));
  }
  pump();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    OSCHED_CHECK(shards_[s]->drained) << "shard " << s << " did not drain";
    results[s] = std::move(shards_[s]->drain_result);
  }
  return results;
}

void ShardDriver::apply(Shard& shard, Op& op) const {
  switch (op.kind) {
    case Op::Kind::kSubmit:
      shard.session->submit(op.job);
      break;
    case Op::Kind::kAdvance:
      shard.session->advance(op.to);
      break;
    case Op::Kind::kDrain:
      shard.drain_result = shard.session->drain();
      shard.drained = true;
      break;
  }
}

void ShardDriver::wake(Worker& worker) {
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.signal = true;
  }
  worker.cv.notify_one();
}

void ShardDriver::worker_loop(Worker& worker) {
  std::vector<std::vector<Op>> batches;
  for (;;) {
    bool did_work = false;
    for (const std::size_t s : worker.shards) {
      Shard& shard = *shards_[s];
      batches.clear();
      if (shard.inbox.drain(batches) == 0) continue;
      did_work = true;
      for (auto& ops : batches) {
        for (Op& op : ops) apply(shard, op);
        shard.batches_done.fetch_add(1, std::memory_order_release);
        // Empty critical section: pairs with sync()'s predicate re-check,
        // so a syncer between its check and its wait cannot miss this.
        { std::lock_guard<std::mutex> lock(sync_mutex_); }
        sync_cv_.notify_all();
      }
    }
    if (did_work) continue;
    std::unique_lock<std::mutex> lock(worker.mutex);
    if (worker.stop) return;
    worker.cv.wait(lock, [&worker] { return worker.signal || worker.stop; });
    if (worker.stop) return;
    worker.signal = false;
  }
}

}  // namespace osched::service
