#include "service/shard_driver.hpp"

#include <utility>

#include "util/rng.hpp"

namespace osched::service {

ShardDriver::ShardDriver(api::Algorithm algorithm, std::size_t num_shards,
                         std::size_t num_machines, ShardDriverOptions options)
    : pool_(options.threads) {
  OSCHED_CHECK_GT(num_shards, 0u);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.session = std::make_unique<SchedulerSession>(algorithm, num_machines,
                                                       options.session);
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardDriver::shard_for(std::uint64_t tenant_key) const {
  return util::derive_seed(0x5AA5D000D15EA5EULL, tenant_key) % shards_.size();
}

SchedulerSession& ShardDriver::session(std::size_t shard) {
  OSCHED_CHECK_LT(shard, shards_.size());
  return *shards_[shard].session;
}

void ShardDriver::submit(std::size_t shard, StreamJob job) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Op op;
  op.job = std::move(job);
  shards_[shard].backlog.push_back(std::move(op));
}

void ShardDriver::advance(std::size_t shard, Time to) {
  OSCHED_CHECK_LT(shard, shards_.size());
  Op op;
  op.is_advance = true;
  op.to = to;
  shards_[shard].backlog.push_back(std::move(op));
}

void ShardDriver::pump() {
  // One task per shard with a backlog: the shard's operations are applied
  // sequentially in buffered order, so the session sees the same call
  // sequence as a dedicated single-threaded feeder would.
  for (Shard& shard : shards_) {
    if (shard.backlog.empty()) continue;
    pool_.submit([&shard] {
      for (Op& op : shard.backlog) {
        if (op.is_advance) {
          shard.session->advance(op.to);
        } else {
          shard.session->submit(op.job);
        }
      }
      shard.backlog.clear();
    });
  }
  pool_.wait_idle();
}

std::vector<api::RunSummary> ShardDriver::drain_all() {
  pump();
  std::vector<api::RunSummary> results(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    pool_.submit([this, s, &results] {
      results[s] = shards_[s].session->drain();
    });
  }
  pool_.wait_idle();
  return results;
}

}  // namespace osched::service
