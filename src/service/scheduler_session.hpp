// Streaming scheduler sessions: online policies as long-lived services.
//
// api::run() materializes a whole Instance and runs a policy to completion.
// A SchedulerSession runs the SAME policy state machine incrementally:
//
//   service::SchedulerSession session(api::Algorithm::kTheorem1, m);
//   for (const StreamJob& job : chunk) session.submit(job);   // arrivals
//   session.advance(t);          // let completions fire up to time t
//   api::RunSummary summary = session.drain();   // end of stream
//
// submit() delivers the arrival to the policy after firing every internal
// event (completion) due at or before the job's release — the exact
// interleaving SimEngine uses — so a streamed run makes bit-identical
// decisions to the batch run of the same jobs, regardless of how the stream
// is chunked. tests/streaming_test.cpp pins that down differentially.
//
// Memory modes:
//  * retain_records = true (default): every record and job row is kept; at
//    drain() the session validates the schedule and computes the objective
//    report with the same code paths as api::run — the RunSummary is
//    byte-identical to the batch one.
//  * retain_records = false: once a job's fate is sealed and the decided
//    frontier passes it, its record, job row and per-job policy state are
//    folded into running aggregates and released — the footprint tracks
//    the live window, not the trace (the ROADMAP's constant-memory n=1e6
//    target; bench_e17_streaming measures it). The drained RunSummary
//    carries an empty Schedule and an aggregate-only report; per-job folds
//    happen in id order, so the deterministic totals (flow, counts,
//    makespan) still match the batch run exactly. Requires
//    run.validate = false (there is no retained schedule to validate) and
//    is unavailable for kTheorem2, whose dual needs a full end pass.
//
// Sessions exist for every *online arrival-time* policy the facade names:
// kTheorem1, kTheorem2, kWeightedExt, kGreedySpt, kFifo, kImmediateReject.
// kTheorem3 (configuration primal-dual over a discretized horizon) is not
// an arrival-driven state machine and stays batch-only.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "api/scheduler_api.hpp"
#include "instance/stream_job.hpp"
#include "sim/event_queue.hpp"

namespace osched::service {

/// How a saturated live window picks and budgets its overload sheds.
enum class ShedPolicy : std::uint8_t {
  /// PR 7 rule, bit-identical (the oracle the adaptive mode is checked
  /// against): a fixed lifetime budget (SessionOptions::shed_budget) and
  /// the lowest-value victim order (smallest weight, ties to largest
  /// queued p, then largest id).
  kFixedBudget = 0,
  /// Paper-derived rule: the budget is the unspent part of Theorem 1's
  /// rejection allowance — sheds may fire while
  ///   charged_rejections() + sheds_spent < floor(2·ε·n)
  /// (n counts the triggering arrival; ε is run.epsilon;
  /// charged_rejections() is the policy's own Rule 1 + Rule 2 / ε-budget
  /// count) — and the victim rule is Rule 2's, generalized across
  /// machines: the globally largest queued effective processing time.
  /// Theorem 1 books each shed into its FlowDualAccounting exactly like a
  /// Rule 2 rejection (definitive-finish extension + finalize), so the
  /// degradation cost stays inside the paper's charging argument and the
  /// dual certificate remains valid. SessionOptions::shed_budget is
  /// ignored in this mode. Like the fixed rule, sheds stay a pure
  /// function of the accepted arrivals, so checkpoint replay reproduces
  /// them bit for bit.
  kEpsilonCharged = 1,
};

/// Deterministic live-window-cap auto-tuning from the observed arrival
/// rate. The estimator is windowed over SUBMITTED VIRTUAL TIME (accepted
/// arrivals' release timestamps), never over wall clock or chunk
/// boundaries — so a batch feed, any streamed chunking, and a checkpoint
/// replay of the accepted journal all reproduce every cap decision
/// bit for bit (the same invariant the shed sequence keeps).
struct AdaptiveCapOptions {
  /// Off by default: the cap stays pinned at live_window_cap (PR 7).
  bool enabled = false;
  /// Hysteresis bounds: the effective cap never leaves [min_cap, max_cap].
  /// min_cap must be >= 1 and max_cap >= min_cap when enabled.
  std::size_t min_cap = 0;
  std::size_t max_cap = 0;
  /// Trailing virtual-time width of the rate estimate (> 0): an accepted
  /// arrival at release r counts while r > latest_release - window.
  double window = 0.0;
  /// Sizing target: desired cap = ceil(observed_rate * target_delay),
  /// clamped to the bounds — the window the session would need for a job
  /// admitted at the observed rate to wait ~target_delay before its slot
  /// frees (> 0).
  double target_delay = 0.0;
  /// Dead-band: the cap moves only when |desired - current| exceeds this
  /// many slots, so a rate hovering at a sizing boundary cannot flap the
  /// cap (and with it the shed pattern) on every arrival.
  std::size_t hysteresis = 0;
};

struct SessionOptions {
  /// Per-algorithm knobs, same meaning as api::run.
  api::RunOptions run;
  /// See the header comment: full retention (batch-identical drain) vs
  /// sliding-window memory (aggregate-only drain).
  bool retain_records = true;
  /// Low-memory mode: fold-and-release runs every time this many newly
  /// sealed jobs accumulate below the decided frontier.
  std::size_t retire_batch = 8192;
  /// Overload control: cap on live_jobs() (submitted, fate not yet sealed).
  /// 0 = uncapped (the default; the hot path is untouched). At the cap,
  /// try_submit() refuses new arrivals with kBackpressure instead of
  /// growing the window; plain submit() aborts, since its callers opted
  /// into unbounded ingest.
  std::size_t live_window_cap = 0;
  /// Budgeted load-shed: total overload sheds the session may perform over
  /// its lifetime (0 = none). A saturated window first force-rejects the
  /// policy's lowest-value pending jobs (SimulationHooks::on_shed) to make
  /// room for the arrival; once the budget is spent, saturation returns
  /// kBackpressure. Sheds fire only when they make the triggering arrival
  /// admissible — a refused submit never sheds — so the shed sequence is a
  /// deterministic function of the accepted arrivals alone, which is what
  /// lets checkpoint replay (which carries accepted jobs only) reproduce
  /// every shed decision bit for bit.
  std::size_t shed_budget = 0;
  /// Victim rule + budget source for those sheds (see ShedPolicy). The
  /// default keeps PR 7's fixed rule bit-identical; kEpsilonCharged
  /// derives both from the paper's ε instead and ignores shed_budget.
  ShedPolicy shed_policy = ShedPolicy::kFixedBudget;
  /// Live-window-cap auto-tuning (see AdaptiveCapOptions). When enabled,
  /// live_window_cap seeds the initial cap (clamped into
  /// [min_cap, max_cap]; 0 seeds at min_cap) and the effective cap then
  /// tracks the observed arrival rate between the bounds. Checkpointed as
  /// wire v4; v1–v3 blobs restore with tuning disabled.
  AdaptiveCapOptions adaptive_cap;
  /// Processing-time storage for the session's job store (the streaming
  /// counterpart of Instance's backend trio). kDense keeps the m-wide row
  /// per job (the default; the hot path is untouched). kSparseCsr stores
  /// eligible (machine, p) entries only — a restricted-assignment tenant's
  /// matrix cost tracks its eligibility, not m. kGenerator stores NO matrix
  /// at all: every p_ij is synthesized from `generator`, and submissions are
  /// metadata-only (fill_stream_job_meta). Scheduling decisions are
  /// byte-identical across backends (tests/streaming_test.cpp pins the trio
  /// differentially); only memory and the accepted submission forms differ.
  StorageBackend storage = StorageBackend::kDense;
  /// The shared closed form for kGenerator sessions (required there,
  /// rejected elsewhere). Shared: a thousand tenants of one closed-form
  /// family hold a thousand copies of this pointer, not of any matrix.
  std::shared_ptr<const RowGenerator> generator;
};

/// Result of a bounded ingest attempt (try_submit).
enum class SubmitOutcome {
  kAccepted,      ///< delivered to the policy (possibly after sheds)
  kBackpressure,  ///< live window saturated beyond the shed budget; the job
                  ///< was NOT ingested — retry after decisions free slots
};

class SchedulerSession {
 public:
  SchedulerSession(api::Algorithm algorithm, std::size_t num_machines,
                   SessionOptions options = {});
  ~SchedulerSession();

  SchedulerSession(const SchedulerSession&) = delete;
  SchedulerSession& operator=(const SchedulerSession&) = delete;

  api::Algorithm algorithm() const;
  std::size_t num_machines() const;
  /// Session clock: the latest time submit()/advance()/internal events have
  /// reached. Submissions must not be released before now().
  Time now() const;

  std::size_t num_submitted() const;
  /// Jobs with a sealed fate (completed or rejected).
  std::size_t num_decided() const;
  /// Jobs submitted but not yet sealed.
  std::size_t live_jobs() const;
  /// High-water mark of live_jobs() — the working-set size the low-memory
  /// mode's footprint is proportional to.
  std::size_t max_live_jobs() const;

  /// Recoverable pre-check of a submission (empty string = acceptable):
  /// structural job validity plus release-order/clock monotonicity.
  std::string validate_job(const StreamJob& job) const;

  /// Ingests one arrival and runs the policy's reaction (which may start,
  /// complete or reject jobs at times up to the job's release). Aborts on
  /// invalid input — multi-tenant frontends run validate_job first — and
  /// on a saturated live window (see SessionOptions::live_window_cap);
  /// callers expecting saturation use try_submit.
  JobId submit(const StreamJob& job);

  /// Bounded ingest: like submit(), but a live window saturated beyond the
  /// shed budget returns kBackpressure instead of aborting. A refused job
  /// is NOT ingested and the session is unchanged except for internal
  /// events due at or before job.release, which fire either way (they can
  /// only seal fates, freeing window slots) — so retrying the same job
  /// after advance() or later decisions is always legal. On kAccepted,
  /// *id (when non-null) receives the assigned JobId.
  SubmitOutcome try_submit(const StreamJob& job, JobId* id = nullptr);

  /// Overload sheds performed (lifetime; bounded by shed_budget under
  /// ShedPolicy::kFixedBudget, by the derived floor(2εn) allowance under
  /// kEpsilonCharged).
  std::size_t num_shed() const;
  /// try_submit calls refused with kBackpressure (lifetime).
  std::size_t num_backpressured() const;
  /// The effective live-window cap right now: live_window_cap under a
  /// fixed configuration, the auto-tuned value (always within
  /// [AdaptiveCapOptions::min_cap, max_cap]) when adaptive tuning is on.
  std::size_t current_window_cap() const;
  /// Sheds still available before the active policy's budget refuses the
  /// next one (fixed: shed_budget - num_shed(); ε-charged: the unspent
  /// part of floor(2·ε·(num_submitted()+1)) after the policy's own charged
  /// rejections and the sheds so far).
  std::size_t shed_allowance() const;

  /// The session store's current / lifetime-peak p_ij payload bytes
  /// (StreamingJobStore::matrix_bytes): the per-tenant memory metric that
  /// collapses for sparse sessions and is zero forever for generator ones.
  /// bench_e21_multitenant tracks the peak across a whole fleet.
  std::size_t matrix_bytes() const;
  std::size_t matrix_peak_bytes() const;

  /// Batch ingest: appends the whole span to the store in one
  /// validation/block-bookkeeping pass, then delivers the arrivals in order
  /// (internal events still fire between them, exactly as the one-job
  /// overload interleaves) — decisions are bit-identical to submitting the
  /// jobs one at a time, which tests/streaming_test.cpp pins down. Returns
  /// the FIRST assigned id (kInvalidJob for an empty span). Fold-and-release
  /// bookkeeping runs once per batch instead of once per job.
  JobId submit(std::span<const StreamJob> jobs);

  /// Fires every internal event due at or before `to` and moves the clock
  /// there. `to` must be >= now().
  void advance(Time to);

  /// Ends the stream: runs the policy to quiescence and returns the summary
  /// (see the memory-mode notes above). The session is finished afterwards;
  /// further submit/advance/drain calls abort.
  api::RunSummary drain();
  bool drained() const;

  /// Serializes the session into a versioned, checksummed replay journal
  /// (format: service/checkpoint.hpp; field-by-field spec:
  /// docs/ARCHITECTURE.md). Requires retain_records (a low-memory session
  /// has released the journal) and an undrained session. The session is
  /// untouched and remains usable.
  std::string checkpoint() const;

  /// Rebuilds a session from a checkpoint() blob by replaying its journal —
  /// the result is bit-identical to the original at its checkpoint clock
  /// (same records, same queues, same future decisions). Damaged input
  /// (truncated, corrupted, wrong version/magic) returns nullptr with a
  /// diagnostic in *error; it never aborts and never reads out of bounds.
  /// A generator-backed blob (wire v3) journals job metadata only — the
  /// closed form itself is code, not data — so the caller must supply the
  /// same `generator` the original session ran with; omitting it is a
  /// diagnosed failure, and supplying a DIFFERENT closed form silently
  /// yields a different (internally consistent) session, exactly like
  /// feeding a different trace. Dense and sparse blobs ignore `generator`.
  static std::unique_ptr<SchedulerSession> restore(
      std::string_view blob, std::string* error,
      std::shared_ptr<const RowGenerator> generator = nullptr);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Drives `instance` through a streaming session in `chunk_size`-job chunks
/// (submitting in release order, advancing the clock to the last submitted
/// release between chunks) and drains. With default options the result is
/// byte-identical to api::run(algorithm, instance, options) — the
/// differential tests compare exactly these two calls.
api::RunSummary streamed_run(api::Algorithm algorithm, const Instance& instance,
                             const api::RunOptions& options = {},
                             std::size_t chunk_size = 65536);

/// Same drive loop with full SessionOptions — the handle for running the
/// feed against a sparse- or generator-backed session. The submission form
/// follows the session: a kGenerator session is fed metadata-only jobs
/// (its closed form must be the instance's own generator for the results
/// to be comparable); otherwise fill_stream_job emits the instance
/// backend's natural form, which any matrix-backed session accepts. The
/// differential wall compares these runs byte-for-byte across backends.
/// (Named distinctly — an overload would make `{}` ambiguous at call sites.)
api::RunSummary streamed_session_run(api::Algorithm algorithm,
                                     const Instance& instance,
                                     const SessionOptions& session_options,
                                     std::size_t chunk_size = 65536);

}  // namespace osched::service
