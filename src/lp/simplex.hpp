// Two-phase dense primal simplex.
//
// Solves the LinearProgram model (min c'x, ranged rows, bounded columns) by
// reduction to standard form: columns are shifted to lower bound zero, upper
// bounds become explicit rows, inequality rows get slack/surplus columns,
// and equality / surplus rows get phase-1 artificials. The tableau is dense
// — the intended problems (time-indexed flow LPs on experiment-sized
// instances, unit-test models) have at most a few thousand columns and a few
// hundred rows, where a dense tableau with Dantzig pricing is both simple to
// audit and fast enough. Bland's rule kicks in after a stall to guarantee
// termination under degeneracy.
//
// The solver reports the primal solution, the objective, and the dual value
// of every ORIGINAL row (read off the final reduced costs of the rows'
// slack/artificial columns), which is what the duality experiments consume:
// the λ_j / β_i(t) of the paper's flow LP are exactly these row duals.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace osched::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus status);

struct SimplexOptions {
  /// Pivot cap across both phases; 0 means the solver picks
  /// max(10000, 50 * (rows + columns)).
  std::size_t max_iterations = 0;
  /// Feasibility / optimality tolerance on reduced costs and ratios.
  double tolerance = 1e-9;
};

struct SimplexResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  /// Values of the ORIGINAL columns (bounds respected).
  std::vector<double> solution;
  /// Dual value per ORIGINAL row. Sign convention: for the minimization
  /// primal, duals satisfy y >= 0 on >= rows, y <= 0 on <= rows, free on =
  /// rows, and strong duality holds against the standard-form rhs.
  std::vector<double> row_duals;
  std::size_t iterations = 0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

SimplexResult solve(const LinearProgram& problem, const SimplexOptions& options = {});

}  // namespace osched::lp
