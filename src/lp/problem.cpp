#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>

namespace osched::lp {

std::size_t LinearProgram::add_column(std::string name, double objective,
                                      double lower, double upper) {
  OSCHED_CHECK(!std::isnan(objective));
  OSCHED_CHECK_LE(lower, upper);
  OSCHED_CHECK(lower > -kInfinity) << "free/unbounded-below variables are not "
                                      "needed by this library's models";
  columns_.push_back(Column{std::move(name), objective, lower, upper});
  return columns_.size() - 1;
}

std::size_t LinearProgram::add_row(std::string name, Sense sense, double rhs,
                                   std::vector<Coefficient> coefficients) {
  OSCHED_CHECK(!std::isnan(rhs));
  std::sort(coefficients.begin(), coefficients.end(),
            [](const Coefficient& a, const Coefficient& b) {
              return a.column < b.column;
            });
  // Merge duplicates, drop explicit zeros.
  std::vector<Coefficient> merged;
  merged.reserve(coefficients.size());
  for (const Coefficient& c : coefficients) {
    OSCHED_CHECK_LT(c.column, columns_.size())
        << "row " << name << " references unknown column";
    if (!merged.empty() && merged.back().column == c.column) {
      merged.back().value += c.value;
    } else {
      merged.push_back(c);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Coefficient& c) { return c.value == 0.0; }),
               merged.end());
  rows_.push_back(Row{std::move(name), sense, rhs, std::move(merged)});
  return rows_.size() - 1;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  OSCHED_CHECK_EQ(x.size(), columns_.size());
  double value = 0.0;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    value += columns_[c].objective * x[c];
  }
  return value;
}

double LinearProgram::max_violation(const std::vector<double>& x) const {
  OSCHED_CHECK_EQ(x.size(), columns_.size());
  double worst = 0.0;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    worst = std::max(worst, columns_[c].lower - x[c]);
    if (columns_[c].upper < kInfinity) {
      worst = std::max(worst, x[c] - columns_[c].upper);
    }
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const Coefficient& c : row.coefficients) lhs += c.value * x[c.column];
    switch (row.sense) {
      case Sense::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace osched::lp
