#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

namespace osched::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

/// Dense tableau: `rows` constraint rows over `cols` columns plus rhs.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * (cols_ + 1) + c]; }
  double& rhs(std::size_t r) { return data_[r * (cols_ + 1) + cols_]; }
  double rhs(std::size_t r) const { return data_[r * (cols_ + 1) + cols_]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Gauss–Jordan step: make column `pc` a unit vector with 1 in row `pr`.
  void pivot(std::size_t pr, std::size_t pc) {
    const double p = at(pr, pc);
    const double inv = 1.0 / p;
    for (std::size_t c = 0; c <= cols_; ++c) data_[pr * (cols_ + 1) + c] *= inv;
    at(pr, pc) = 1.0;  // exact
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      double* dst = &data_[r * (cols_ + 1)];
      const double* src = &data_[pr * (cols_ + 1)];
      for (std::size_t c = 0; c <= cols_; ++c) dst[c] -= factor * src[c];
      at(r, pc) = 0.0;  // exact
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

struct StandardForm {
  Tableau tableau{0, 0};
  std::vector<double> cost;           ///< phase-2 cost per tableau column
  std::vector<bool> artificial;       ///< per tableau column
  std::vector<std::size_t> basis;     ///< per row: basic column
  std::vector<std::size_t> reader;    ///< per row: +1 unit column for duals
  std::vector<double> row_sign;       ///< original-row dual sign (flip = -1)
  std::size_t num_original_columns = 0;
  std::size_t num_original_rows = 0;
  double objective_constant = 0.0;    ///< c'lo from the bound shift
};

StandardForm build_standard_form(const LinearProgram& problem) {
  const std::size_t n = problem.num_columns();

  // Row set: original rows then one row per finite upper bound.
  struct RawRow {
    Sense sense;
    double rhs;
    const std::vector<Coefficient>* coefficients;  // nullptr for bound rows
    std::size_t bound_column = 0;
  };
  std::vector<RawRow> raw;
  raw.reserve(problem.num_rows());
  for (const Row& row : problem.rows()) {
    raw.push_back(RawRow{row.sense, row.rhs, &row.coefficients});
  }
  for (std::size_t c = 0; c < n; ++c) {
    const Column& col = problem.column(c);
    if (col.upper < kInfinity) {
      raw.push_back(RawRow{Sense::kLessEqual, col.upper - col.lower, nullptr, c});
    }
  }
  const std::size_t m = raw.size();

  StandardForm sf;
  sf.num_original_columns = n;
  sf.num_original_rows = problem.num_rows();
  sf.row_sign.assign(m, 1.0);

  // Shift columns to lower bound zero; fold the shift into each rhs.
  std::vector<double> shifted_rhs(m);
  std::vector<Sense> sense(m);
  for (std::size_t r = 0; r < m; ++r) {
    double rhs = raw[r].rhs;
    if (raw[r].coefficients != nullptr) {
      for (const Coefficient& coef : *raw[r].coefficients) {
        rhs -= coef.value * problem.column(coef.column).lower;
      }
    }
    shifted_rhs[r] = rhs;
    sense[r] = raw[r].sense;
    if (rhs < 0.0) {  // normalize rhs >= 0; flips the sense and the dual sign
      shifted_rhs[r] = -rhs;
      sf.row_sign[r] = -1.0;
      if (sense[r] == Sense::kLessEqual) {
        sense[r] = Sense::kGreaterEqual;
      } else if (sense[r] == Sense::kGreaterEqual) {
        sense[r] = Sense::kLessEqual;
      }
    }
  }

  // Column layout: structurals, then per-row slack/surplus, then artificials.
  std::size_t extra = 0;
  for (std::size_t r = 0; r < m; ++r) {
    extra += sense[r] == Sense::kEqual ? 1 : (sense[r] == Sense::kGreaterEqual ? 2 : 1);
  }
  const std::size_t total = n + extra;
  sf.tableau = Tableau(m, total);
  sf.cost.assign(total, 0.0);
  sf.artificial.assign(total, false);
  sf.basis.assign(m, 0);
  sf.reader.assign(m, 0);

  for (std::size_t c = 0; c < n; ++c) {
    sf.cost[c] = problem.column(c).objective;
    sf.objective_constant += problem.column(c).objective * problem.column(c).lower;
  }

  for (std::size_t r = 0; r < m; ++r) {
    const double sign = sf.row_sign[r];
    if (raw[r].coefficients != nullptr) {
      for (const Coefficient& coef : *raw[r].coefficients) {
        sf.tableau.at(r, coef.column) = sign * coef.value;
      }
    } else {
      sf.tableau.at(r, raw[r].bound_column) = sign * 1.0;
    }
    sf.tableau.rhs(r) = shifted_rhs[r];
  }

  std::size_t next = n;
  for (std::size_t r = 0; r < m; ++r) {
    switch (sense[r]) {
      case Sense::kLessEqual: {
        sf.tableau.at(r, next) = 1.0;  // slack; initial basic
        sf.basis[r] = next;
        sf.reader[r] = next;
        ++next;
        break;
      }
      case Sense::kGreaterEqual: {
        sf.tableau.at(r, next) = -1.0;  // surplus
        ++next;
        sf.tableau.at(r, next) = 1.0;  // artificial; initial basic
        sf.artificial[next] = true;
        sf.basis[r] = next;
        sf.reader[r] = next;
        ++next;
        break;
      }
      case Sense::kEqual: {
        sf.tableau.at(r, next) = 1.0;  // artificial; initial basic
        sf.artificial[next] = true;
        sf.basis[r] = next;
        sf.reader[r] = next;
        ++next;
        break;
      }
    }
  }
  OSCHED_CHECK_EQ(next, total);
  return sf;
}

/// Reduced-cost row d_j = c_j - c_B' B^{-1} A_j, priced from scratch against
/// the current tableau (columns of the tableau ARE B^{-1} A_j).
std::vector<double> price(const Tableau& tableau, const std::vector<std::size_t>& basis,
                          const std::vector<double>& cost) {
  std::vector<double> reduced(cost);
  for (std::size_t r = 0; r < tableau.rows(); ++r) {
    const double cb = cost[basis[r]];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c < tableau.cols(); ++c) {
      reduced[c] -= cb * tableau.at(r, c);
    }
  }
  return reduced;
}

double basic_objective(const Tableau& tableau, const std::vector<std::size_t>& basis,
                       const std::vector<double>& cost) {
  double value = 0.0;
  for (std::size_t r = 0; r < tableau.rows(); ++r) {
    value += cost[basis[r]] * tableau.rhs(r);
  }
  return value;
}

struct PhaseOutcome {
  SolveStatus status = SolveStatus::kOptimal;
  std::size_t iterations = 0;
};

/// Runs simplex pivots until optimality for the given cost vector.
/// `allowed(c)` filters entering candidates (phase 2 bans artificials).
template <typename Allowed>
PhaseOutcome run_phase(Tableau& tableau, std::vector<std::size_t>& basis,
                       std::vector<double>& reduced, const std::vector<double>& cost,
                       const Allowed& allowed, double tol, std::size_t max_iterations,
                       std::size_t& iterations) {
  // Dantzig pricing until the objective stalls for `stall_limit` pivots, then
  // Bland's rule (guaranteed finite under degeneracy).
  const std::size_t stall_limit = tableau.rows() + 16;
  std::size_t stall = 0;
  bool bland = false;
  double last_objective = basic_objective(tableau, basis, cost);

  PhaseOutcome outcome;
  while (true) {
    if (iterations >= max_iterations) {
      outcome.status = SolveStatus::kIterationLimit;
      return outcome;
    }

    // Entering column.
    std::size_t entering = tableau.cols();
    if (bland) {
      for (std::size_t c = 0; c < tableau.cols(); ++c) {
        if (allowed(c) && reduced[c] < -tol) {
          entering = c;
          break;
        }
      }
    } else {
      double best = -tol;
      for (std::size_t c = 0; c < tableau.cols(); ++c) {
        if (allowed(c) && reduced[c] < best) {
          best = reduced[c];
          entering = c;
        }
      }
    }
    if (entering == tableau.cols()) {
      outcome.status = SolveStatus::kOptimal;
      return outcome;
    }

    // Leaving row: min ratio; Bland tie-break by smallest basic column.
    std::size_t leaving = tableau.rows();
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < tableau.rows(); ++r) {
      const double a = tableau.at(r, entering);
      if (a <= tol) continue;
      const double ratio = tableau.rhs(r) / a;
      if (leaving == tableau.rows() || ratio < best_ratio - tol ||
          (ratio < best_ratio + tol && basis[r] < basis[leaving])) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving == tableau.rows()) {
      outcome.status = SolveStatus::kUnbounded;
      return outcome;
    }

    tableau.pivot(leaving, entering);
    basis[leaving] = entering;
    reduced = price(tableau, basis, cost);
    ++iterations;
    ++outcome.iterations;

    const double objective = basic_objective(tableau, basis, cost);
    if (objective < last_objective - tol) {
      stall = 0;
      last_objective = objective;
    } else if (!bland && ++stall > stall_limit) {
      bland = true;
    }
  }
}

}  // namespace

SimplexResult solve(const LinearProgram& problem, const SimplexOptions& options) {
  StandardForm sf = build_standard_form(problem);
  Tableau& tableau = sf.tableau;
  const double tol = options.tolerance;
  const std::size_t max_iterations =
      options.max_iterations != 0
          ? options.max_iterations
          : std::max<std::size_t>(10'000, 50 * (tableau.rows() + tableau.cols()));

  SimplexResult result;

  // ---- Phase 1: minimize the sum of artificials. ----
  bool any_artificial = false;
  std::vector<double> phase1_cost(tableau.cols(), 0.0);
  for (std::size_t c = 0; c < tableau.cols(); ++c) {
    if (sf.artificial[c]) {
      phase1_cost[c] = 1.0;
      any_artificial = true;
    }
  }
  if (any_artificial) {
    std::vector<double> reduced = price(tableau, sf.basis, phase1_cost);
    const PhaseOutcome outcome =
        run_phase(tableau, sf.basis, reduced, phase1_cost,
                  [](std::size_t) { return true; }, tol, max_iterations,
                  result.iterations);
    if (outcome.status != SolveStatus::kOptimal) {
      // Phase 1 is bounded below by 0, so non-optimal means iteration limit.
      result.status = SolveStatus::kIterationLimit;
      return result;
    }
    const double infeasibility = basic_objective(tableau, sf.basis, phase1_cost);
    if (infeasibility > 1e-7) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    // Drive any artificial still basic (at value 0) out of the basis where a
    // non-artificial pivot exists; otherwise the row is redundant and the
    // artificial harmlessly stays at zero (it is banned from re-entering).
    for (std::size_t r = 0; r < tableau.rows(); ++r) {
      if (!sf.artificial[sf.basis[r]]) continue;
      for (std::size_t c = 0; c < tableau.cols(); ++c) {
        if (!sf.artificial[c] && std::abs(tableau.at(r, c)) > 1e-7) {
          tableau.pivot(r, c);
          sf.basis[r] = c;
          break;
        }
      }
    }
  }

  // ---- Phase 2: minimize the true objective, artificials banned. ----
  {
    std::vector<double> reduced = price(tableau, sf.basis, sf.cost);
    const auto allowed = [&sf](std::size_t c) { return !sf.artificial[c]; };
    const PhaseOutcome outcome = run_phase(tableau, sf.basis, reduced, sf.cost,
                                           allowed, tol, max_iterations,
                                           result.iterations);
    result.status = outcome.status;
    if (outcome.status != SolveStatus::kOptimal) return result;

    // Primal solution (original columns, shifted back).
    std::vector<double> shifted(tableau.cols(), 0.0);
    for (std::size_t r = 0; r < tableau.rows(); ++r) {
      shifted[sf.basis[r]] = tableau.rhs(r);
    }
    result.solution.resize(sf.num_original_columns);
    for (std::size_t c = 0; c < sf.num_original_columns; ++c) {
      result.solution[c] = problem.column(c).lower + std::max(0.0, shifted[c]);
    }
    result.objective = basic_objective(tableau, sf.basis, sf.cost) +
                       sf.objective_constant;

    // Row duals: each row's reader column is a +1 unit column of that row
    // with phase-2 cost 0, so its reduced cost equals -y_row; a sign-flipped
    // row negates the dual of the original row.
    result.row_duals.resize(sf.num_original_rows);
    for (std::size_t r = 0; r < sf.num_original_rows; ++r) {
      result.row_duals[r] = -reduced[sf.reader[r]] * sf.row_sign[r];
    }
  }
  return result;
}

}  // namespace osched::lp
