#include "lp/flow_time_lp.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "lp/problem.hpp"

namespace osched::lp {

namespace {

/// Feasibility horizon: every job fits sequentially on its fastest machine
/// after the last release, so capacity up to this point always admits a
/// feasible y.
Time feasible_horizon(const Instance& instance) {
  Time last_release = 0.0;
  Work total_min_work = 0.0;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    last_release = std::max(last_release, instance.job(j).release);
    total_min_work += instance.min_processing(j);
  }
  return last_release + std::max(total_min_work, 1.0);
}

}  // namespace

std::vector<FlowLpCell> make_flow_lp_grid(const Instance& instance,
                                          std::size_t target_intervals) {
  OSCHED_CHECK_GE(target_intervals, 2u);
  const Time horizon = feasible_horizon(instance);

  std::vector<Time> points;
  points.reserve(instance.num_jobs() + 2);
  points.push_back(0.0);
  points.push_back(horizon);
  for (const Job& job : instance.jobs()) {
    if (job.release < horizon) points.push_back(job.release);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](Time a, Time b) { return std::abs(a - b) < kTimeEps; }),
               points.end());

  // Refine: repeatedly split the longest cell until the budget is consumed.
  // (Greedy equal-split keeps the grid balanced without disturbing release
  // breakpoints.)
  std::vector<FlowLpCell> cells;
  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    cells.push_back(FlowLpCell{points[k], points[k + 1]});
  }
  while (cells.size() < target_intervals) {
    std::size_t longest = 0;
    for (std::size_t k = 1; k < cells.size(); ++k) {
      if (cells[k].length() > cells[longest].length()) longest = k;
    }
    if (cells[longest].length() < 2.0 * kTimeEps) break;
    const Time mid = 0.5 * (cells[longest].begin + cells[longest].end);
    const FlowLpCell right{mid, cells[longest].end};
    cells[longest].end = mid;
    cells.insert(cells.begin() + static_cast<std::ptrdiff_t>(longest) + 1, right);
  }
  return cells;
}

FlowLpResult solve_flow_time_lp(const Instance& instance,
                                const FlowLpOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  FlowLpResult result;
  result.cells = make_flow_lp_grid(instance, options.target_intervals);
  const std::size_t num_cells = result.cells.size();
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();

  LinearProgram lp;

  // Columns y[i][j][k]; kept sparse via an index map (kNone = not created:
  // cell before release or ineligible machine).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> column_of(m * n * num_cells, kNone);
  const auto column_index = [&](std::size_t i, std::size_t j, std::size_t k) -> std::size_t& {
    return column_of[(i * n + j) * num_cells + k];
  };

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto job_id = static_cast<JobId>(j);
      if (!instance.eligible(static_cast<MachineId>(i), job_id)) continue;
      const Work p = instance.processing(static_cast<MachineId>(i), job_id);
      const Time release = instance.job(job_id).release;
      const Weight weight =
          options.use_weights ? instance.job(job_id).weight : 1.0;
      for (std::size_t k = 0; k < num_cells; ++k) {
        const FlowLpCell& cell = result.cells[k];
        if (cell.begin < release - kTimeEps) continue;
        const Time anchor =
            options.midpoint_costs ? 0.5 * (cell.begin + cell.end) : cell.begin;
        const double cost = weight * ((anchor - release) / p + 1.0);
        column_index(i, j, k) =
            lp.add_column("y[" + std::to_string(i) + "," + std::to_string(j) +
                              "," + std::to_string(k) + "]",
                          cost, 0.0, cell.length());
      }
    }
  }

  // complete[j]: sum_{i,k} y/p_ij >= 1.
  std::vector<std::size_t> complete_row(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<Coefficient> coefficients;
    for (std::size_t i = 0; i < m; ++i) {
      const auto job_id = static_cast<JobId>(j);
      if (!instance.eligible(static_cast<MachineId>(i), job_id)) continue;
      const Work p = instance.processing(static_cast<MachineId>(i), job_id);
      for (std::size_t k = 0; k < num_cells; ++k) {
        const std::size_t c = column_index(i, j, k);
        if (c != kNone) coefficients.push_back(Coefficient{c, 1.0 / p});
      }
    }
    complete_row[j] = lp.add_row("complete[" + std::to_string(j) + "]",
                                 Sense::kGreaterEqual, 1.0, std::move(coefficients));
  }

  // capacity[i][k]: sum_j y <= cell length.
  std::vector<std::vector<std::size_t>> capacity_row(m,
                                                     std::vector<std::size_t>(num_cells, kNone));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < num_cells; ++k) {
      std::vector<Coefficient> coefficients;
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t c = column_index(i, j, k);
        if (c != kNone) coefficients.push_back(Coefficient{c, 1.0});
      }
      if (coefficients.empty()) continue;
      capacity_row[i][k] =
          lp.add_row("capacity[" + std::to_string(i) + "," + std::to_string(k) + "]",
                     Sense::kLessEqual, result.cells[k].length(),
                     std::move(coefficients));
    }
  }

  result.num_columns = lp.num_columns();
  result.num_rows = lp.num_rows();

  const SimplexResult solved = lp::solve(lp, options.simplex);
  result.status = solved.status;
  result.iterations = solved.iterations;
  if (!solved.optimal()) return result;

  result.lp_objective = solved.objective;
  result.lower_bound = options.midpoint_costs ? 0.0 : solved.objective / 2.0;

  result.lambda.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.lambda[j] = solved.row_duals[complete_row[j]];
  }
  result.beta.assign(m, std::vector<double>(num_cells, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < num_cells; ++k) {
      if (capacity_row[i][k] != kNone) {
        result.beta[i][k] = solved.row_duals[capacity_row[i][k]];
      }
    }
  }
  result.machine_time.assign(m, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < num_cells; ++k) {
        const std::size_t c = column_index(i, j, k);
        if (c != kNone) result.machine_time[i][j] += solved.solution[c];
      }
    }
  }
  return result;
}

}  // namespace osched::lp
