// Linear-program builder.
//
// A thin, explicit model of   min c'x  s.t.  row_lo <= Ax <= row_hi,
// lo <= x <= hi   with named rows and columns. The builder keeps the
// instance-level structure (sparse rows) and hands the solver a normalized
// standard form; names survive so duals and solutions can be reported
// against the modelling vocabulary ("complete[j]", "capacity[i,k]") rather
// than raw indices.
//
// This exists because the paper's entire analysis is LP duality: the
// time-indexed flow LP of section 2 is not just an analysis device here but
// an executable artifact (lp/flow_time_lp.hpp) whose exact optimum certifies
// lower bounds for the experiments. No external solver dependency is
// acceptable for that role, so the repository carries its own simplex.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace osched::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One nonzero of a constraint row.
struct Coefficient {
  std::size_t column = 0;
  double value = 0.0;
};

enum class Sense {
  kLessEqual,     ///< a'x <= rhs
  kGreaterEqual,  ///< a'x >= rhs
  kEqual,         ///< a'x == rhs
};

struct Row {
  std::string name;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
  std::vector<Coefficient> coefficients;
};

struct Column {
  std::string name;
  double objective = 0.0;
  double lower = 0.0;
  double upper = kInfinity;
};

/// Minimization LP. Columns and rows are appended once; the solver reads the
/// finished problem. All indices are dense and stable.
class LinearProgram {
 public:
  /// Adds a variable with bounds [lower, upper] and objective coefficient c.
  /// Returns its column index.
  std::size_t add_column(std::string name, double objective, double lower = 0.0,
                         double upper = kInfinity);

  /// Adds a constraint. Coefficients may arrive in any column order;
  /// duplicate columns are summed. Returns the row index.
  std::size_t add_row(std::string name, Sense sense, double rhs,
                      std::vector<Coefficient> coefficients);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  const Column& column(std::size_t c) const {
    OSCHED_CHECK_LT(c, columns_.size());
    return columns_[c];
  }
  const Row& row(std::size_t r) const {
    OSCHED_CHECK_LT(r, rows_.size());
    return rows_[r];
  }

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Objective value of a given point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Largest violation of any row/bound at x; 0 means feasible. Used by
  /// tests and by callers that want to double-check a reported solution.
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace osched::lp
