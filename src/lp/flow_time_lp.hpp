// The paper's time-indexed linear program for total flow time (section 2),
// discretized and solved exactly with the in-repo simplex.
//
// Continuous primal (relaxed):
//   min  sum_{i,j} ∫_{r_j}^∞ ((t - r_j)/p_ij + 1) x_ij(t) dt
//   s.t. sum_i ∫ x_ij(t)/p_ij dt >= 1      for every job j   (complete[j])
//        sum_j x_ij(t) <= 1                for every i, t    (capacity)
//        x_ij(t) >= 0.
//
// Discretization: the horizon is cut at every release time and refined to at
// most `target_intervals` cells; variable y[i][j][k] is the amount of time
// machine i spends on job j inside cell k (cells never straddle a release,
// so y is only created for cells starting at or after r_j). With the cost
// coefficient evaluated at the CELL START, every feasible continuous
// solution maps to a discrete solution of no greater cost, so
//
//   LP_discrete <= LP_continuous <= 2 * OPT_nonpreemptive
//
// and lower_bound() = LP_discrete / 2 is a certified lower bound on the
// optimal non-preemptive total flow time — the strongest certificate in the
// repository for multi-machine instances (the Theorem 1 scheduler's own dual
// objective is a feasible point of this LP's dual, hence never larger).
// Refining the grid only raises the discrete optimum.
//
// The row duals are the paper's dual variables: lambda_j from complete[j]
// and beta_i(t) (per cell, <= 0 in solver convention; the paper's beta is
// its negation) from the capacity rows — letting experiments compare the
// ALGORITHM's dual assignment against the OPTIMAL dual point.
#pragma once

#include <vector>

#include "instance/instance.hpp"
#include "lp/simplex.hpp"

namespace osched::lp {

struct FlowLpOptions {
  /// Upper limit on the number of grid cells (the release breakpoints are
  /// always kept; refinement splits long cells until the budget is used).
  std::size_t target_intervals = 64;
  /// Cost coefficients at cell starts give the certified lower bound
  /// (default). Midpoint coefficients estimate the continuous LP better but
  /// certify nothing; they exist for the tightness experiment only.
  bool midpoint_costs = false;
  /// Weighted objective: coefficients w_j ((t - r_j)/p_ij + 1). The same
  /// factor-2 argument applies verbatim (both the fractional weighted flow
  /// and w_j p_ij lower-bound job j's weighted flow), so lower_bound
  /// certifies the optimal weighted total flow. Off = unit weights (the
  /// Theorem 1 objective) regardless of the instance's weights.
  bool use_weights = false;
  SimplexOptions simplex{};
};

struct FlowLpCell {
  Time begin = 0.0;
  Time end = 0.0;
  Time length() const { return end - begin; }
};

struct FlowLpResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Optimal value of the discretized LP.
  double lp_objective = 0.0;
  /// Certified lower bound on OPT (= lp_objective / 2) when status is
  /// optimal and midpoint_costs was false; 0 otherwise.
  double lower_bound = 0.0;
  /// Dual of complete[j] (the paper's lambda_j), one per job.
  std::vector<double> lambda;
  /// Dual of capacity[i][k] per machine x cell (solver sign: <= 0; the
  /// paper's beta_i(t) = -beta[i][k]).
  std::vector<std::vector<double>> beta;
  /// The time grid used.
  std::vector<FlowLpCell> cells;
  /// y[i][j] summed over cells: total time machine i works on j in the
  /// fractional optimum.
  std::vector<std::vector<double>> machine_time;

  std::size_t num_columns = 0;
  std::size_t num_rows = 0;
  std::size_t iterations = 0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Builds and solves the discretized flow LP. Requires a valid instance.
FlowLpResult solve_flow_time_lp(const Instance& instance,
                                const FlowLpOptions& options = {});

/// The grid the solver would use (exposed for tests).
std::vector<FlowLpCell> make_flow_lp_grid(const Instance& instance,
                                          std::size_t target_intervals);

}  // namespace osched::lp
