// Certified lower bounds on the optimal total flow time, plus an exact
// single-machine optimum for small instances.
//
// The experiments never report a ratio against anything that is not a
// certified lower bound on OPT (see metrics/ratio.hpp). These are the
// combinatorial bounds that complement the dual-objective bound emitted by
// the Theorem 1 scheduler.
#pragma once

#include <optional>

#include "instance/instance.hpp"

namespace osched {

/// Trivial bound: every job's flow is at least its fastest processing time.
double lb_sum_min_processing(const Instance& instance);

/// Single-machine busy-period bound: for any prefix of jobs released by
/// time t that OPT serves on the one machine, total flow is at least the
/// flow of the preemptive SRPT schedule, itself at least the sum of
/// completions of the volume backlog. We use the simpler (still certified)
/// "SRPT clairvoyant relaxation": the optimal PREEMPTIVE flow computed by
/// simulating SRPT, which lower-bounds the optimal non-preemptive flow.
/// Only defined for single-machine instances (returns nullopt otherwise).
std::optional<double> lb_srpt_preemptive_single_machine(const Instance& instance);

/// Exact optimal non-preemptive total flow on a single machine by
/// branch-and-bound over job orders (an optimal schedule runs each job at
/// max(release, previous completion) for some order, so orders are
/// sufficient). Returns nullopt if num_machines != 1 or n > max_jobs.
std::optional<double> exact_optimal_flow_single_machine(
    const Instance& instance, std::size_t max_jobs = 10);

/// Exact optimal non-preemptive total flow on unrelated machines for tiny
/// instances: enumerate all machine assignments (m^n, jobs restricted to
/// eligible machines), then — since machines do not interact once the
/// assignment is fixed — solve each machine independently with the
/// single-machine branch-and-bound. Returns nullopt when m^n exceeds
/// max_assignments.
std::optional<double> exact_optimal_flow_unrelated(
    const Instance& instance, std::size_t max_assignments = 200'000);

/// Weighted variant of the single-machine exact optimum (sum of w_j F_j);
/// same order-enumeration argument — an optimal non-preemptive schedule is a
/// start-as-early-as-possible execution of SOME job order. Used by the
/// weighted-extension experiment (E14) as ground truth on small instances.
std::optional<double> exact_optimal_weighted_flow_single_machine(
    const Instance& instance, std::size_t max_jobs = 10);

/// The strongest certified flow lower bound available for this instance;
/// pass the Theorem 1 dual bound if a run produced one (0 otherwise).
double best_flow_lower_bound(const Instance& instance, double dual_bound);

}  // namespace osched
