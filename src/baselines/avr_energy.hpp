// AVERAGE-RATE-inspired baseline for deadline energy minimization.
//
// Yao, Demers and Shenker's AVR [17] runs each job at its density
// p_j / (d_j - r_j) spread over its whole window. The natural
// non-preemptive, unrelated-machines adaptation: at arrival, for each
// machine compute the average-rate strategy (start at r_j, speed
// p_ij / (d_j - r_j), i.e. stretch across the full window) and commit to
// the machine where the marginal energy against the current profile is
// smallest. Always feasible; never adjusts starts or speeds — the
// difference from the Theorem 3 greedy is exactly the freedom to choose
// start time and speed, which experiment E4/E6 quantifies.
#pragma once

#include "core/energy_min/strategy.hpp"
#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct AvrEnergyResult {
  Schedule schedule;
  Energy energy = 0.0;
  std::vector<Strategy> chosen;
};

AvrEnergyResult run_avr_energy(const Instance& instance, double alpha);

}  // namespace osched
