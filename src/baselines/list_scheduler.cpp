#include "baselines/list_scheduler.hpp"

#include "baselines/list_scheduler_policy.hpp"
#include "instance/processing_store.hpp"
#include "sim/engine.hpp"

namespace osched {

const char* to_string(DispatchRule rule) {
  switch (rule) {
    case DispatchRule::kMinCompletion: return "min-completion";
    case DispatchRule::kMinBacklog: return "min-backlog";
    case DispatchRule::kRoundRobin: return "round-robin";
  }
  return "?";
}

const char* to_string(QueueDiscipline discipline) {
  switch (discipline) {
    case QueueDiscipline::kSpt: return "spt";
    case QueueDiscipline::kFifo: return "fifo";
  }
  return "?";
}

Schedule run_list_scheduler(const Instance& instance,
                            const ListSchedulerOptions& options,
                            FleetStats* fleet_stats) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  // One full instantiation per storage backend (see processing_store.hpp).
  return with_store_view(instance, [&](const auto& view) {
    using Store = std::decay_t<decltype(view)>;
    SimEngineFor<Store> engine(view, &options.fleet);
    Schedule schedule(view.num_jobs());
    ListSchedulerPolicy<Store, Schedule> policy(view, schedule, engine.events(),
                                                options);
    engine.run(policy);
    if (fleet_stats != nullptr) *fleet_stats = policy.fleet_stats();
    return schedule;
  });
}

}  // namespace osched
