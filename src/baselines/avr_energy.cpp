#include "baselines/avr_energy.hpp"

#include <limits>

#include "util/check.hpp"

namespace osched {

AvrEnergyResult run_avr_energy(const Instance& instance, double alpha) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;
  OSCHED_CHECK_GT(alpha, 1.0);
  const PolynomialPower power(alpha);

  AvrEnergyResult result;
  result.schedule = Schedule(instance.num_jobs());
  result.chosen.resize(instance.num_jobs());
  std::vector<SpeedProfile> profiles(instance.num_machines());

  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = instance.job(j);
    OSCHED_CHECK(job.has_deadline()) << "AVR requires deadlines (job " << j << ")";
    const Time window = job.deadline - job.release;

    MachineId best = kInvalidMachine;
    double best_marginal = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < instance.num_machines(); ++i) {
      const auto machine = static_cast<MachineId>(i);
      if (!instance.eligible(machine, j)) continue;
      const Speed v = instance.processing(machine, j) / window;
      const double marginal = profiles[i].marginal_cost(
          job.release, job.deadline, v, power);
      if (marginal < best_marginal) {
        best_marginal = marginal;
        best = machine;
      }
    }
    OSCHED_CHECK(best != kInvalidMachine) << "job " << j << " has no eligible machine";

    const Speed v = instance.processing(best, j) / window;
    profiles[static_cast<std::size_t>(best)].add(job.release, job.deadline, v);
    result.chosen[idx] = Strategy{best, job.release, v};
    result.schedule.mark_dispatched(j, best);
    result.schedule.mark_started(j, job.release, v);
    result.schedule.mark_completed(j, job.deadline);
  }

  Energy total = 0.0;
  for (const SpeedProfile& profile : profiles) total += profile.total_cost(power);
  result.energy = total;
  return result;
}

}  // namespace osched
