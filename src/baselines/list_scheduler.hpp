// No-rejection baselines: classic online non-preemptive list schedulers.
//
// These are the "practice" algorithms the paper's lower bounds apply to:
// they dispatch every arriving job immediately, never reject, and serve
// each machine's queue in a fixed discipline. Configurable on two axes:
//   * dispatch rule: minimize the arriving job's estimated completion time,
//     minimize machine backlog, or round-robin;
//   * local order: shortest-processing-time-first or FIFO.
#pragma once

#include "instance/instance.hpp"
#include "sim/fleet.hpp"
#include "sim/schedule.hpp"

namespace osched {

enum class DispatchRule {
  kMinCompletion,  ///< argmin_i (remaining running + work ahead in queue + p_ij)
  kMinBacklog,     ///< argmin_i (remaining running + total queued work)
  kRoundRobin,     ///< cyclic over eligible machines
};

enum class QueueDiscipline {
  kSpt,   ///< shortest processing time first (ties: release, id)
  kFifo,  ///< first released first (ties: id)
};

const char* to_string(DispatchRule rule);
const char* to_string(QueueDiscipline discipline);

struct ListSchedulerOptions {
  DispatchRule dispatch = DispatchRule::kMinCompletion;
  QueueDiscipline discipline = QueueDiscipline::kSpt;
  /// Dynamic fleet membership; empty = static fleet (see sim/fleet.hpp).
  /// A "no-rejection" baseline under a fleet plan still force-rejects jobs
  /// that no active machine can serve — the alternative is a deadlock.
  FleetPlan fleet = {};
};

/// `fleet_stats`, when non-null, receives the fleet-membership counters
/// (all zero for an empty options.fleet).
Schedule run_list_scheduler(const Instance& instance,
                            const ListSchedulerOptions& options = {},
                            FleetStats* fleet_stats = nullptr);

/// Convenience wrappers used throughout the benches.
inline Schedule run_greedy_spt(const Instance& instance) {
  return run_list_scheduler(
      instance, {DispatchRule::kMinCompletion, QueueDiscipline::kSpt, {}});
}
inline Schedule run_fifo(const Instance& instance) {
  return run_list_scheduler(
      instance, {DispatchRule::kMinBacklog, QueueDiscipline::kFifo, {}});
}

}  // namespace osched
