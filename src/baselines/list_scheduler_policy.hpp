// List-scheduler baselines as resumable, store-generic state machines (see
// list_scheduler.hpp for the dispatch/discipline axes and the batch entry
// points, and rejection_flow_policy.hpp for the Store/Rec contract).
#pragma once

#include <limits>
#include <set>

#include "baselines/list_scheduler.hpp"
#include "sim/engine.hpp"

namespace osched {

namespace list_scheduler_detail {

struct QueueKey {
  double primary;  ///< p_ij for SPT, release for FIFO
  Time r;
  JobId id;
  Work p;

  bool operator<(const QueueKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<QueueKey> pending;
  Work pending_work = 0.0;
  JobId running = kInvalidJob;
  Time running_end = 0.0;
  std::uint64_t completion_event = 0;
};

}  // namespace list_scheduler_detail

template <class Store, class Rec>
class ListSchedulerPolicy final : public SimulationHooks {
  using QueueKey = list_scheduler_detail::QueueKey;
  using MachineState = list_scheduler_detail::MachineState;

 public:
  ListSchedulerPolicy(const Store& store, Rec& rec, EventQueue& events,
                      const ListSchedulerOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        machines_(store.num_machines()) {
    fleet_.init(store.num_machines(), options.fleet);
    fleet_speed_ = fleet_.has_speed_events();
  }

  void on_arrival(JobId j, Time now) override {
    const MachineId machine = pick_machine(j, now);
    if (machine == kInvalidMachine) {
      // Fleet mode: no active eligible machine. Even a "no-rejection"
      // baseline must shed the job — the alternative is a deadlock.
      rec_.mark_rejected_pending(j, now);
      fleet_.note_forced_rejection();
      return;
    }
    MachineState& ms = machines_[static_cast<std::size_t>(machine)];
    rec_.mark_dispatched(j, machine);
    const QueueKey key = make_key(machine, j);
    ms.pending.insert(key);
    ms.pending_work += key.p;
    if (ms.running == kInvalidJob) start_next(machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  void on_fleet(const FleetEvent& event, Time now) override {
    switch (event.kind) {
      case FleetEventKind::kJoin:
        fleet_.on_join(event.machine);
        break;
      case FleetEventKind::kDrain:
        fleet_.on_drain(event.machine);
        break;
      case FleetEventKind::kFail:
        fleet_.on_fail(event.machine);
        handle_fail(event.machine, now);
        break;
      case FleetEventKind::kSpeedChange:
        // Future dispatch estimates and starts see the new multiplier;
        // the running job keeps its frozen start-time speed, and pending
        // keys keep their dispatch-time effective p (queue order is a
        // property of the decision, not of later throttles).
        fleet_.on_speed_change(event.machine, event.speed);
        break;
    }
  }

  /// Overload shed (see SimulationHooks): rejects the lowest-value pending
  /// job — smallest weight, ties to largest queued p, then largest id —
  /// across every machine; the caller accounts the shed.
  JobId on_shed(Time now) override {
    std::size_t victim_machine = 0;
    const QueueKey* victim = nullptr;
    Weight victim_weight = 0.0;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      for (const QueueKey& key : machines_[i].pending) {
        const Weight w = store_.job(key.id).weight;
        if (victim == nullptr || w < victim_weight ||
            (w == victim_weight &&
             (key.p > victim->p ||
              (key.p == victim->p && key.id > victim->id)))) {
          victim = &key;
          victim_weight = w;
          victim_machine = i;
        }
      }
    }
    if (victim == nullptr) return kInvalidJob;
    const QueueKey key = *victim;
    MachineState& ms = machines_[victim_machine];
    ms.pending.erase(key);
    ms.pending_work -= key.p;
    rec_.mark_rejected_pending(key.id, now);
    return key.id;
  }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

  const FleetStats& fleet_stats() const { return fleet_.stats; }

 private:
  /// Processing time in wall-clock terms under the machine's CURRENT
  /// multiplier. Exactly p when no plan scripts speed events.
  Work effective_processing(MachineId i, JobId j) const {
    const Work p = store_.processing_unchecked(i, j);
    if (!fleet_speed_) return p;
    const double s = fleet_.speed_multiplier(static_cast<std::size_t>(i));
    return s == 1.0 ? p : p / s;
  }

  QueueKey make_key(MachineId i, JobId j) const {
    const Work p = effective_processing(i, j);
    const Time r = store_.job(j).release;
    const double primary = options_.discipline == QueueDiscipline::kSpt
                               ? p
                               : static_cast<double>(r);
    return QueueKey{primary, r, j, p};
  }

  MachineId pick_machine(JobId j, Time now) {
    MachineId best = kInvalidMachine;
    double best_score = std::numeric_limits<double>::infinity();
    if (options_.dispatch == DispatchRule::kRoundRobin) {
      const std::size_t m = machines_.size();
      for (std::size_t step = 0; step < m; ++step) {
        const auto candidate = static_cast<MachineId>((round_robin_ + step) % m);
        if (store_.eligible(candidate, j) &&
            fleet_.active(static_cast<std::size_t>(candidate))) {
          round_robin_ = (static_cast<std::size_t>(candidate) + 1) % m;
          return candidate;
        }
      }
      OSCHED_CHECK(fleet_.enabled()) << "job " << j << " has no eligible machine";
      return kInvalidMachine;
    }
    for (const MachineId machine : store_.eligible_machines(j)) {
      if (!fleet_.active(static_cast<std::size_t>(machine))) continue;
      const MachineState& ms = machines_[static_cast<std::size_t>(machine)];
      const Work p = effective_processing(machine, j);
      const double remaining =
          ms.running != kInvalidJob ? std::max(0.0, ms.running_end - now) : 0.0;
      double score = 0.0;
      if (options_.dispatch == DispatchRule::kMinBacklog) {
        score = remaining + ms.pending_work;
      } else {  // kMinCompletion: work served before j under the discipline
        double ahead = 0.0;
        if (options_.discipline == QueueDiscipline::kSpt) {
          for (const QueueKey& key : ms.pending) {
            if (key.p <= p) ahead += key.p;  // equal sizes precede the arrival
          }
        } else {
          ahead = ms.pending_work;  // FIFO: everything queued is ahead
        }
        score = remaining + ahead + p;
      }
      if (score < best_score) {
        best_score = score;
        best = machine;
      }
    }
    OSCHED_CHECK(best != kInvalidMachine || fleet_.enabled())
        << "job " << j << " has no eligible machine";
    return best;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    if (ms.pending.empty()) return;
    const QueueKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());
    ms.pending_work -= key.p;
    ms.running = key.id;
    if (!fleet_speed_) {
      ms.running_end = now + key.p;
      rec_.mark_started(key.id, now, 1.0);
    } else {
      // Duration resolves at START from the current multiplier (the key's
      // p is the dispatch-time estimate, possibly from another epoch).
      const double s = fleet_.speed_multiplier(static_cast<std::size_t>(i));
      const Work p = store_.processing_unchecked(i, key.id);
      ms.running_end = now + (s == 1.0 ? p : p / s);
      rec_.mark_started(key.id, now, s);
    }
    ms.completion_event = events_.schedule(ms.running_end, i, key.id);
  }

  // ---- fleet failure handling ----

  void handle_fail(MachineId machine, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(machine)];

    orphans_.assign(ms.pending.begin(), ms.pending.end());  // queue order
    ms.pending.clear();
    ms.pending_work = 0.0;

    const JobId killed = ms.running;
    if (killed != kInvalidJob) {
      events_.cancel(ms.completion_event);
      ms.running = kInvalidJob;
      if (fleet_.shed_killed_running() && fleet_.try_spend_budget()) {
        rec_.mark_rejected_running(killed, now);
        ++fleet_.stats.fault_rejections;
      } else {
        redecide(killed, now, /*was_running=*/true);
      }
    }

    for (const QueueKey& key : orphans_) {
      redecide(key.id, now, /*was_running=*/false);
    }
  }

  void redecide(JobId j, Time now, bool was_running) {
    const MachineId target = pick_machine(j, now);
    if (target == kInvalidMachine) {
      if (was_running) {
        rec_.mark_rejected_running(j, now);
      } else {
        rec_.mark_rejected_pending(j, now);
      }
      fleet_.note_forced_rejection();
      return;
    }
    rec_.mark_requeued(j, target);  // resets `started` for a killed runner
    MachineState& ms = machines_[static_cast<std::size_t>(target)];
    const QueueKey key = make_key(target, j);
    ms.pending.insert(key);
    ms.pending_work += key.p;
    ++fleet_.stats.redispatched;
    if (ms.running == kInvalidJob) start_next(target, now);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  ListSchedulerOptions options_;
  std::vector<MachineState> machines_;
  FleetState fleet_;
  bool fleet_speed_ = false;  ///< plan scripts kSpeedChange events
  std::vector<QueueKey> orphans_;  ///< handle_fail scratch
  std::size_t round_robin_ = 0;
};

}  // namespace osched
