// List-scheduler baselines as resumable, store-generic state machines (see
// list_scheduler.hpp for the dispatch/discipline axes and the batch entry
// points, and rejection_flow_policy.hpp for the Store/Rec contract).
#pragma once

#include <limits>
#include <set>

#include "baselines/list_scheduler.hpp"
#include "sim/engine.hpp"

namespace osched {

namespace list_scheduler_detail {

struct QueueKey {
  double primary;  ///< p_ij for SPT, release for FIFO
  Time r;
  JobId id;
  Work p;

  bool operator<(const QueueKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<QueueKey> pending;
  Work pending_work = 0.0;
  JobId running = kInvalidJob;
  Time running_end = 0.0;
};

}  // namespace list_scheduler_detail

template <class Store, class Rec>
class ListSchedulerPolicy final : public SimulationHooks {
  using QueueKey = list_scheduler_detail::QueueKey;
  using MachineState = list_scheduler_detail::MachineState;

 public:
  ListSchedulerPolicy(const Store& store, Rec& rec, EventQueue& events,
                      const ListSchedulerOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        machines_(store.num_machines()) {}

  void on_arrival(JobId j, Time now) override {
    const MachineId machine = pick_machine(j, now);
    MachineState& ms = machines_[static_cast<std::size_t>(machine)];
    rec_.mark_dispatched(j, machine);
    ms.pending.insert(make_key(machine, j));
    ms.pending_work += store_.processing(machine, j);
    if (ms.running == kInvalidJob) start_next(machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

 private:
  QueueKey make_key(MachineId i, JobId j) const {
    const Work p = store_.processing(i, j);
    const Time r = store_.job(j).release;
    const double primary = options_.discipline == QueueDiscipline::kSpt
                               ? p
                               : static_cast<double>(r);
    return QueueKey{primary, r, j, p};
  }

  MachineId pick_machine(JobId j, Time now) {
    MachineId best = kInvalidMachine;
    double best_score = std::numeric_limits<double>::infinity();
    if (options_.dispatch == DispatchRule::kRoundRobin) {
      const std::size_t m = machines_.size();
      for (std::size_t step = 0; step < m; ++step) {
        const auto candidate = static_cast<MachineId>((round_robin_ + step) % m);
        if (store_.eligible(candidate, j)) {
          round_robin_ = (static_cast<std::size_t>(candidate) + 1) % m;
          return candidate;
        }
      }
      OSCHED_CHECK(false) << "job " << j << " has no eligible machine";
    }
    for (const MachineId machine : store_.eligible_machines(j)) {
      const MachineState& ms = machines_[static_cast<std::size_t>(machine)];
      const Work p = store_.processing_unchecked(machine, j);
      const double remaining =
          ms.running != kInvalidJob ? std::max(0.0, ms.running_end - now) : 0.0;
      double score = 0.0;
      if (options_.dispatch == DispatchRule::kMinBacklog) {
        score = remaining + ms.pending_work;
      } else {  // kMinCompletion: work served before j under the discipline
        double ahead = 0.0;
        if (options_.discipline == QueueDiscipline::kSpt) {
          for (const QueueKey& key : ms.pending) {
            if (key.p <= p) ahead += key.p;  // equal sizes precede the arrival
          }
        } else {
          ahead = ms.pending_work;  // FIFO: everything queued is ahead
        }
        score = remaining + ahead + p;
      }
      if (score < best_score) {
        best_score = score;
        best = machine;
      }
    }
    OSCHED_CHECK(best != kInvalidMachine) << "job " << j << " has no eligible machine";
    return best;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    if (ms.pending.empty()) return;
    const QueueKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());
    ms.pending_work -= key.p;
    ms.running = key.id;
    ms.running_end = now + key.p;
    rec_.mark_started(key.id, now, 1.0);
    events_.schedule(ms.running_end, i, key.id);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  ListSchedulerOptions options_;
  std::vector<MachineState> machines_;
  std::size_t round_robin_ = 0;
};

}  // namespace osched
