// List-scheduler baselines as resumable, store-generic state machines (see
// list_scheduler.hpp for the dispatch/discipline axes and the batch entry
// points, and rejection_flow_policy.hpp for the Store/Rec contract).
#pragma once

#include <limits>
#include <set>

#include "baselines/list_scheduler.hpp"
#include "sim/engine.hpp"

namespace osched {

namespace list_scheduler_detail {

struct QueueKey {
  double primary;  ///< p_ij for SPT, release for FIFO
  Time r;
  JobId id;
  Work p;

  bool operator<(const QueueKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<QueueKey> pending;
  Work pending_work = 0.0;
  JobId running = kInvalidJob;
  Time running_end = 0.0;
  std::uint64_t completion_event = 0;
};

}  // namespace list_scheduler_detail

template <class Store, class Rec>
class ListSchedulerPolicy final : public SimulationHooks {
  using QueueKey = list_scheduler_detail::QueueKey;
  using MachineState = list_scheduler_detail::MachineState;

 public:
  ListSchedulerPolicy(const Store& store, Rec& rec, EventQueue& events,
                      const ListSchedulerOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        machines_(store.num_machines()) {
    fleet_.init(store.num_machines(), options.fleet);
  }

  void on_arrival(JobId j, Time now) override {
    const MachineId machine = pick_machine(j, now);
    if (machine == kInvalidMachine) {
      // Fleet mode: no active eligible machine. Even a "no-rejection"
      // baseline must shed the job — the alternative is a deadlock.
      rec_.mark_rejected_pending(j, now);
      fleet_.note_forced_rejection();
      return;
    }
    MachineState& ms = machines_[static_cast<std::size_t>(machine)];
    rec_.mark_dispatched(j, machine);
    ms.pending.insert(make_key(machine, j));
    ms.pending_work += store_.processing(machine, j);
    if (ms.running == kInvalidJob) start_next(machine, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  void on_fleet(const FleetEvent& event, Time now) override {
    switch (event.kind) {
      case FleetEventKind::kJoin:
        fleet_.on_join(event.machine);
        break;
      case FleetEventKind::kDrain:
        fleet_.on_drain(event.machine);
        break;
      case FleetEventKind::kFail:
        fleet_.on_fail(event.machine);
        handle_fail(event.machine, now);
        break;
    }
  }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

  const FleetStats& fleet_stats() const { return fleet_.stats; }

 private:
  QueueKey make_key(MachineId i, JobId j) const {
    const Work p = store_.processing(i, j);
    const Time r = store_.job(j).release;
    const double primary = options_.discipline == QueueDiscipline::kSpt
                               ? p
                               : static_cast<double>(r);
    return QueueKey{primary, r, j, p};
  }

  MachineId pick_machine(JobId j, Time now) {
    MachineId best = kInvalidMachine;
    double best_score = std::numeric_limits<double>::infinity();
    if (options_.dispatch == DispatchRule::kRoundRobin) {
      const std::size_t m = machines_.size();
      for (std::size_t step = 0; step < m; ++step) {
        const auto candidate = static_cast<MachineId>((round_robin_ + step) % m);
        if (store_.eligible(candidate, j) &&
            fleet_.active(static_cast<std::size_t>(candidate))) {
          round_robin_ = (static_cast<std::size_t>(candidate) + 1) % m;
          return candidate;
        }
      }
      OSCHED_CHECK(fleet_.enabled()) << "job " << j << " has no eligible machine";
      return kInvalidMachine;
    }
    for (const MachineId machine : store_.eligible_machines(j)) {
      if (!fleet_.active(static_cast<std::size_t>(machine))) continue;
      const MachineState& ms = machines_[static_cast<std::size_t>(machine)];
      const Work p = store_.processing_unchecked(machine, j);
      const double remaining =
          ms.running != kInvalidJob ? std::max(0.0, ms.running_end - now) : 0.0;
      double score = 0.0;
      if (options_.dispatch == DispatchRule::kMinBacklog) {
        score = remaining + ms.pending_work;
      } else {  // kMinCompletion: work served before j under the discipline
        double ahead = 0.0;
        if (options_.discipline == QueueDiscipline::kSpt) {
          for (const QueueKey& key : ms.pending) {
            if (key.p <= p) ahead += key.p;  // equal sizes precede the arrival
          }
        } else {
          ahead = ms.pending_work;  // FIFO: everything queued is ahead
        }
        score = remaining + ahead + p;
      }
      if (score < best_score) {
        best_score = score;
        best = machine;
      }
    }
    OSCHED_CHECK(best != kInvalidMachine || fleet_.enabled())
        << "job " << j << " has no eligible machine";
    return best;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    if (ms.pending.empty()) return;
    const QueueKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());
    ms.pending_work -= key.p;
    ms.running = key.id;
    ms.running_end = now + key.p;
    rec_.mark_started(key.id, now, 1.0);
    ms.completion_event = events_.schedule(ms.running_end, i, key.id);
  }

  // ---- fleet failure handling ----

  void handle_fail(MachineId machine, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(machine)];

    orphans_.assign(ms.pending.begin(), ms.pending.end());  // queue order
    ms.pending.clear();
    ms.pending_work = 0.0;

    const JobId killed = ms.running;
    if (killed != kInvalidJob) {
      events_.cancel(ms.completion_event);
      ms.running = kInvalidJob;
      if (fleet_.shed_killed_running() && fleet_.try_spend_budget()) {
        rec_.mark_rejected_running(killed, now);
        ++fleet_.stats.fault_rejections;
      } else {
        redecide(killed, now, /*was_running=*/true);
      }
    }

    for (const QueueKey& key : orphans_) {
      redecide(key.id, now, /*was_running=*/false);
    }
  }

  void redecide(JobId j, Time now, bool was_running) {
    const MachineId target = pick_machine(j, now);
    if (target == kInvalidMachine) {
      if (was_running) {
        rec_.mark_rejected_running(j, now);
      } else {
        rec_.mark_rejected_pending(j, now);
      }
      fleet_.note_forced_rejection();
      return;
    }
    rec_.mark_requeued(j, target);  // resets `started` for a killed runner
    MachineState& ms = machines_[static_cast<std::size_t>(target)];
    ms.pending.insert(make_key(target, j));
    ms.pending_work += store_.processing(target, j);
    ++fleet_.stats.redispatched;
    if (ms.running == kInvalidJob) start_next(target, now);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  ListSchedulerOptions options_;
  std::vector<MachineState> machines_;
  FleetState fleet_;
  std::vector<QueueKey> orphans_;  ///< handle_fail scratch
  std::size_t round_robin_ = 0;
};

}  // namespace osched
