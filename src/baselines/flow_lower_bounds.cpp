#include "baselines/flow_lower_bounds.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "instance/builders.hpp"
#include "util/check.hpp"

namespace osched {

double lb_sum_min_processing(const Instance& instance) {
  double total = 0.0;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    total += instance.min_processing(static_cast<JobId>(j));
  }
  return total;
}

std::optional<double> lb_srpt_preemptive_single_machine(
    const Instance& instance) {
  if (instance.num_machines() != 1) return std::nullopt;
  const std::size_t n = instance.num_jobs();

  // (remaining, id) ordered set; simulate between arrival breakpoints.
  std::set<std::pair<Work, JobId>> active;
  double flow = 0.0;
  Time now = 0.0;
  std::size_t next = 0;

  while (next < n || !active.empty()) {
    if (active.empty()) {
      now = std::max(now, instance.job(static_cast<JobId>(next)).release);
    }
    // Admit everything released by now.
    while (next < n &&
           instance.job(static_cast<JobId>(next)).release <= now + kTimeEps) {
      const auto j = static_cast<JobId>(next);
      active.insert({instance.processing(0, j), j});
      ++next;
    }
    OSCHED_CHECK(!active.empty());
    const Time horizon = next < n
                             ? instance.job(static_cast<JobId>(next)).release
                             : kTimeInfinity;
    auto it = active.begin();
    const auto [remaining, job] = *it;
    if (now + remaining <= horizon + kTimeEps) {
      // Runs to completion before the next arrival.
      now += remaining;
      flow += now - instance.job(job).release;
      active.erase(it);
    } else {
      // Preempted at the next arrival.
      active.erase(it);
      active.insert({remaining - (horizon - now), job});
      now = horizon;
    }
  }
  return flow;
}

namespace {

class ExactFlowSearch {
 public:
  /// `weighted` switches the objective to sum w_j F_j; the search (orders of
  /// start-as-early-as-possible executions) is identical.
  ExactFlowSearch(const Instance& instance, bool weighted)
      : instance_(instance), weighted_(weighted) {
    const std::size_t n = instance.num_jobs();
    order_.reserve(n);
    for (std::size_t j = 0; j < n; ++j) order_.push_back(static_cast<JobId>(j));
    // Candidate order for early good incumbents: SPT, or weighted
    // shortest-processing-time (Smith's rule) in the weighted case.
    std::sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      if (!weighted) {
        return instance.processing(0, a) < instance.processing(0, b);
      }
      return instance.processing(0, a) * instance.job(b).weight <
             instance.processing(0, b) * instance.job(a).weight;
    });
    used_.assign(n, false);
  }

  double run() {
    dfs(0, 0.0, 0.0);
    return best_;
  }

 private:
  double weight_of(JobId j) const {
    return weighted_ ? instance_.job(j).weight : 1.0;
  }

  void dfs(std::size_t depth, Time now, double flow) {
    const std::size_t n = instance_.num_jobs();
    if (depth == n) {
      best_ = std::min(best_, flow);
      return;
    }
    // Admissible bound: every remaining job starts no earlier than
    // max(now, release).
    double bound = flow;
    for (std::size_t k = 0; k < n; ++k) {
      if (used_[k]) continue;
      const auto j = order_[k];
      const Time r = instance_.job(j).release;
      bound += weight_of(j) *
               (std::max(now, r) + instance_.processing(0, j) - r);
    }
    if (bound >= best_) return;

    for (std::size_t k = 0; k < n; ++k) {
      if (used_[k]) continue;
      const auto j = order_[k];
      const Time r = instance_.job(j).release;
      const Time start = std::max(now, r);
      const Time end = start + instance_.processing(0, j);
      used_[k] = true;
      dfs(depth + 1, end, flow + weight_of(j) * (end - r));
      used_[k] = false;
    }
  }

  const Instance& instance_;
  const bool weighted_;
  std::vector<JobId> order_;
  std::vector<bool> used_;
  double best_ = std::numeric_limits<double>::infinity();
};

}  // namespace

std::optional<double> exact_optimal_flow_single_machine(
    const Instance& instance, std::size_t max_jobs) {
  if (instance.num_machines() != 1) return std::nullopt;
  if (instance.num_jobs() > max_jobs) return std::nullopt;
  if (instance.num_jobs() == 0) return 0.0;
  ExactFlowSearch search(instance, /*weighted=*/false);
  return search.run();
}

std::optional<double> exact_optimal_weighted_flow_single_machine(
    const Instance& instance, std::size_t max_jobs) {
  if (instance.num_machines() != 1) return std::nullopt;
  if (instance.num_jobs() > max_jobs) return std::nullopt;
  if (instance.num_jobs() == 0) return 0.0;
  ExactFlowSearch search(instance, /*weighted=*/true);
  return search.run();
}

std::optional<double> exact_optimal_flow_unrelated(
    const Instance& instance, std::size_t max_assignments) {
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  if (n == 0) return 0.0;
  if (m == 1) return exact_optimal_flow_single_machine(instance, n);

  // Count assignments (respecting eligibility) and bail out if too many.
  double assignment_count = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t eligible =
        instance.eligible_machines(static_cast<JobId>(j)).size();
    assignment_count *= static_cast<double>(eligible);
    if (assignment_count > static_cast<double>(max_assignments)) {
      return std::nullopt;
    }
  }

  std::vector<MachineId> assignment(n, 0);
  double best = std::numeric_limits<double>::infinity();

  // Per-machine sub-instance solve for the current assignment.
  auto evaluate_assignment = [&]() {
    double total = 0.0;
    for (std::size_t i = 0; i < m && total < best; ++i) {
      std::vector<std::pair<Time, Work>> jobs;
      for (std::size_t j = 0; j < n; ++j) {
        if (assignment[j] == static_cast<MachineId>(i)) {
          jobs.push_back({instance.job(static_cast<JobId>(j)).release,
                          instance.processing(static_cast<MachineId>(i),
                                              static_cast<JobId>(j))});
        }
      }
      if (jobs.empty()) continue;
      const Instance sub = single_machine_instance(jobs);
      const auto sub_opt = exact_optimal_flow_single_machine(sub, jobs.size());
      OSCHED_CHECK(sub_opt.has_value());
      total += *sub_opt;
    }
    best = std::min(best, total);
  };

  // Odometer over eligible machines per job.
  std::vector<std::vector<MachineId>> choices(n);
  for (std::size_t j = 0; j < n; ++j) {
    const EligibleMachines eligible =
        instance.eligible_machines(static_cast<JobId>(j));
    choices[j].assign(eligible.begin(), eligible.end());
  }
  std::vector<std::size_t> index(n, 0);
  for (;;) {
    for (std::size_t j = 0; j < n; ++j) assignment[j] = choices[j][index[j]];
    evaluate_assignment();
    std::size_t pos = 0;
    while (pos < n && ++index[pos] == choices[pos].size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

double best_flow_lower_bound(const Instance& instance, double dual_bound) {
  double best = std::max(0.0, dual_bound);
  best = std::max(best, lb_sum_min_processing(instance));
  if (const auto srpt = lb_srpt_preemptive_single_machine(instance)) {
    best = std::max(best, *srpt);
  }
  return best;
}

}  // namespace osched
