// Immediate-rejection policy: the class of algorithms Lemma 1 proves
// non-competitive.
//
// The policy must decide accept/reject AT ARRIVAL and can never revisit the
// decision (in particular it can never interrupt a running job). This
// representative uses the natural heuristic: reject an arriving job when
// the wait it would face exceeds `patience` times its own size — subject to
// the running budget of eps * (jobs seen so far). Accepted jobs are
// dispatched to the machine giving the earliest estimated completion and
// served SPT.
//
// Lemma 1 says EVERY policy of this class is Omega(sqrt(Delta))-competitive;
// experiment E2 exhibits the blow-up on the adaptive two-phase instance and
// contrasts it with Theorem 1's (late-rejection) algorithm staying flat.
#pragma once

#include "instance/instance.hpp"
#include "sim/fleet.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct ImmediateRejectionOptions {
  double eps = 0.2;       ///< rejection budget as a fraction of arrivals
  double patience = 3.0;  ///< reject when estimated wait > patience * p_ij
  /// Dynamic fleet membership; empty = static fleet (see sim/fleet.hpp).
  /// Fault rejections live OUTSIDE the eps budget: the immediate decision
  /// happened at arrival; a machine failure afterwards is not this policy's
  /// admission call.
  FleetPlan fleet = {};
};

struct ImmediateRejectionResult {
  Schedule schedule;
  std::size_t rejections = 0;
  /// Fleet-membership counters (all zero for an empty plan).
  FleetStats fleet;
};

ImmediateRejectionResult run_immediate_rejection(
    const Instance& instance, const ImmediateRejectionOptions& options = {});

}  // namespace osched
