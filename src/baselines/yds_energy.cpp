#include "baselines/yds_energy.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace osched {

namespace {

struct LiveJob {
  JobId id;
  Time release;
  Time deadline;
  Work volume;
  /// Original-timeline span, for reporting rounds before collapses.
  Time original_release;
  Time original_deadline;
};

}  // namespace

std::optional<YdsResult> yds_optimal_energy(const Instance& instance,
                                            double alpha) {
  OSCHED_CHECK_GE(alpha, 1.0);
  if (instance.num_machines() != 1) return std::nullopt;
  for (const Job& job : instance.jobs()) {
    if (!job.has_deadline()) return std::nullopt;
  }

  std::vector<LiveJob> live;
  live.reserve(instance.num_jobs());
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = instance.job(j);
    OSCHED_CHECK_GT(job.deadline, job.release);
    live.push_back(LiveJob{j, job.release, job.deadline,
                           instance.processing(0, j), job.release,
                           job.deadline});
  }

  YdsResult result;
  while (!live.empty()) {
    // Candidate endpoints: releases (left) x deadlines (right).
    Time best_t1 = 0.0, best_t2 = 0.0;
    double best_intensity = -1.0;
    for (const LiveJob& a : live) {
      for (const LiveJob& b : live) {
        const Time t1 = a.release;
        const Time t2 = b.deadline;
        if (t2 <= t1 + kTimeEps) continue;
        Work volume = 0.0;
        for (const LiveJob& j : live) {
          if (j.release >= t1 - kTimeEps && j.deadline <= t2 + kTimeEps) {
            volume += j.volume;
          }
        }
        const double intensity = volume / (t2 - t1);
        if (intensity > best_intensity + 1e-12) {
          best_intensity = intensity;
          best_t1 = t1;
          best_t2 = t2;
        }
      }
    }
    OSCHED_CHECK_GT(best_intensity, 0.0) << "no critical interval found";

    // Peel the critical interval: its jobs run at the intensity, filling it.
    YdsRound round;
    round.speed = best_intensity;
    const Time length = best_t2 - best_t1;
    result.energy += std::pow(best_intensity, alpha) * length;

    Time original_t1 = kTimeInfinity;
    Time original_t2 = 0.0;
    std::vector<LiveJob> survivors;
    survivors.reserve(live.size());
    for (const LiveJob& j : live) {
      if (j.release >= best_t1 - kTimeEps && j.deadline <= best_t2 + kTimeEps) {
        round.jobs.push_back(j.id);
        original_t1 = std::min(original_t1, j.original_release);
        original_t2 = std::max(original_t2, j.original_deadline);
      } else {
        survivors.push_back(j);
      }
    }
    OSCHED_CHECK(!round.jobs.empty());
    round.begin = original_t1;
    round.end = original_t2;
    result.rounds.push_back(std::move(round));

    // Collapse [t1, t2] out of the timeline for the survivors: the critical
    // interval is fully booked at the maximum intensity, so no other job
    // will run there in the optimum.
    for (LiveJob& j : survivors) {
      const auto collapse = [&](Time t) {
        if (t >= best_t2 - kTimeEps) return t - length;
        if (t > best_t1) return best_t1;
        return t;
      };
      j.release = collapse(j.release);
      j.deadline = collapse(j.deadline);
      OSCHED_CHECK_GT(j.deadline, j.release - kTimeEps);
    }
    live = std::move(survivors);
  }
  return result;
}

}  // namespace osched
