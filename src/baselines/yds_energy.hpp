// YDS (Yao–Demers–Shenker, FOCS'95 [17]): the OPTIMAL preemptive
// speed-scaling schedule for deadline-constrained jobs on a single machine
// with convex power P(s) = s^alpha.
//
// The classical critical-interval peeling: repeatedly find the interval
// I = [t1, t2] maximizing the intensity
//     g(I) = (sum of volumes of jobs whose [r_j, d_j] fits inside I) / |I|,
// run exactly those jobs in I at constant speed g(I) (EDF inside I), remove
// them, collapse I out of the timeline, and recurse. The result is the
// minimum-energy PREEMPTIVE schedule; preemption is a relaxation of the
// paper's non-preemptive model, so
//
//     yds_energy <= OPT_preemptive <= OPT_non-preemptive,
//
// making this the repository's strongest certified lower bound for the
// Theorem 3 experiments on single-machine instances — valid for CONTINUOUS
// speeds, hence also for any discretized strategy space, and cheap enough
// (O(n^3) per round, n rounds) to run at sizes where the branch-and-bound
// witness is hopeless.
#pragma once

#include <optional>
#include <vector>

#include "instance/instance.hpp"

namespace osched {

struct YdsRound {
  Time begin = 0.0;      ///< critical interval in the ORIGINAL timeline
  Time end = 0.0;
  Speed speed = 0.0;     ///< the interval's intensity
  std::vector<JobId> jobs;  ///< jobs scheduled in this round
};

struct YdsResult {
  Energy energy = 0.0;   ///< total energy of the optimal preemptive schedule
  std::vector<YdsRound> rounds;  ///< peeling order (speeds non-increasing)
};

/// Runs YDS. Requires a single-machine instance in which every job has a
/// deadline; returns nullopt otherwise (the caller decides whether that is
/// an error). `alpha` is the power exponent P(s) = s^alpha, alpha >= 1.
std::optional<YdsResult> yds_optimal_energy(const Instance& instance,
                                            double alpha);

}  // namespace osched
