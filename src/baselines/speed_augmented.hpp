// The prior-art comparator: speed augmentation + rejection (Lucarelli,
// Thang, Srivastav, Trystram, ESA 2016 — reference [5] of the paper).
//
// [5] gives an O(1/(eps_r * eps_s))-competitive algorithm whose machines
// run at speed (1 + eps_s) while rejecting an eps_r fraction of jobs. The
// present paper's headline claim is that the speed advantage can be dropped
// entirely (Theorem 1). This baseline reuses the same dual-based dispatch
// and rejection skeleton but grants the machines the (1 + eps_s) speed
// advantage, which is exactly how [5]'s algorithm relates to Theorem 1's.
// Comparing the two on identical workloads (experiment E6) isolates what
// the speed advantage buys.
#pragma once

#include "core/flow/rejection_flow.hpp"

namespace osched {

struct SpeedAugmentedOptions {
  double eps_rejection = 0.2;  ///< rejection budget parameter
  double eps_speed = 0.2;      ///< machines run at (1 + eps_speed)
};

inline RejectionFlowResult run_speed_augmented_flow(
    const Instance& instance, const SpeedAugmentedOptions& options = {}) {
  RejectionFlowOptions flow_options;
  flow_options.epsilon = options.eps_rejection;
  flow_options.speed = 1.0 + options.eps_speed;
  return run_rejection_flow(instance, flow_options);
}

/// [5]'s competitive guarantee O(1/(eps_s * eps_r)) (constant suppressed).
inline double speed_augmented_ratio_envelope(const SpeedAugmentedOptions& o) {
  return 1.0 / (o.eps_rejection * o.eps_speed);
}

}  // namespace osched
