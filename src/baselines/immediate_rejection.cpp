#include "baselines/immediate_rejection.hpp"

#include "baselines/immediate_rejection_policy.hpp"
#include "instance/processing_store.hpp"
#include "sim/engine.hpp"

namespace osched {

ImmediateRejectionResult run_immediate_rejection(
    const Instance& instance, const ImmediateRejectionOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  // One full instantiation per storage backend (see processing_store.hpp).
  return with_store_view(instance, [&](const auto& view) {
    using Store = std::decay_t<decltype(view)>;
    SimEngineFor<Store> engine(view, &options.fleet);
    Schedule schedule(view.num_jobs());
    ImmediateRejectionPolicy<Store, Schedule> policy(view, schedule,
                                                     engine.events(), options);
    engine.run(policy);

    ImmediateRejectionResult result;
    result.schedule = std::move(schedule);
    result.rejections = policy.rejections();
    result.fleet = policy.fleet_stats();
    return result;
  });
}

}  // namespace osched
