#include "baselines/immediate_rejection.hpp"

#include "baselines/immediate_rejection_policy.hpp"
#include "sim/engine.hpp"

namespace osched {

ImmediateRejectionResult run_immediate_rejection(
    const Instance& instance, const ImmediateRejectionOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  SimEngine engine(instance);
  Schedule schedule(instance.num_jobs());
  ImmediateRejectionPolicy<Instance, Schedule> policy(instance, schedule,
                                                      engine.events(), options);
  engine.run(policy);

  ImmediateRejectionResult result;
  result.schedule = std::move(schedule);
  result.rejections = policy.rejections();
  return result;
}

}  // namespace osched
