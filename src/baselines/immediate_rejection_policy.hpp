// Immediate-rejection policy as a resumable, store-generic state machine
// (see immediate_rejection.hpp for the Lemma 1 context and the batch entry
// point, and rejection_flow_policy.hpp for the Store/Rec contract).
#pragma once

#include <limits>
#include <set>

#include "baselines/immediate_rejection.hpp"
#include "sim/engine.hpp"

namespace osched {

namespace immediate_rejection_detail {

struct SptKey {
  Work p;
  Time r;
  JobId id;
  bool operator<(const SptKey& other) const {
    if (p != other.p) return p < other.p;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<SptKey> pending;
  Work pending_work = 0.0;
  JobId running = kInvalidJob;
  Time running_end = 0.0;
};

}  // namespace immediate_rejection_detail

template <class Store, class Rec>
class ImmediateRejectionPolicy final : public SimulationHooks {
  using SptKey = immediate_rejection_detail::SptKey;
  using MachineState = immediate_rejection_detail::MachineState;

 public:
  ImmediateRejectionPolicy(const Store& store, Rec& rec, EventQueue& events,
                           const ImmediateRejectionOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        machines_(store.num_machines()) {
    OSCHED_CHECK_GT(options.eps, 0.0);
    OSCHED_CHECK_LT(options.eps, 1.0);
    OSCHED_CHECK_GE(options.patience, 0.0);
  }

  void on_arrival(JobId j, Time now) override {
    ++arrived_;
    // Best machine by estimated wait (remaining + queued work ahead in SPT).
    MachineId best = kInvalidMachine;
    double best_wait = std::numeric_limits<double>::infinity();
    for (const MachineId machine : store_.eligible_machines(j)) {
      const MachineState& ms = machines_[static_cast<std::size_t>(machine)];
      const Work p = store_.processing_unchecked(machine, j);
      double wait =
          ms.running != kInvalidJob ? std::max(0.0, ms.running_end - now) : 0.0;
      for (const SptKey& key : ms.pending) {
        if (key.p <= p) wait += key.p;
      }
      if (wait < best_wait) {
        best_wait = wait;
        best = machine;
      }
    }
    OSCHED_CHECK(best != kInvalidMachine) << "job " << j << " has no eligible machine";

    // The IMMEDIATE decision: this is the only moment the policy may reject.
    const Work p_best = store_.processing(best, j);
    const bool budget_available =
        static_cast<double>(rejections_ + 1) <=
        options_.eps * static_cast<double>(arrived_);
    if (budget_available && best_wait > options_.patience * p_best) {
      rec_.mark_rejected_pending(j, now);
      ++rejections_;
      return;
    }

    MachineState& ms = machines_[static_cast<std::size_t>(best)];
    rec_.mark_dispatched(j, best);
    ms.pending.insert(SptKey{p_best, store_.job(j).release, j});
    ms.pending_work += p_best;
    if (ms.running == kInvalidJob) start_next(best, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

  std::size_t rejections() const { return rejections_; }

 private:
  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    if (ms.pending.empty()) return;
    const SptKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());
    ms.pending_work -= key.p;
    ms.running = key.id;
    ms.running_end = now + key.p;
    rec_.mark_started(key.id, now, 1.0);
    events_.schedule(ms.running_end, i, key.id);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  ImmediateRejectionOptions options_;
  std::vector<MachineState> machines_;
  std::size_t arrived_ = 0;
  std::size_t rejections_ = 0;
};

}  // namespace osched
