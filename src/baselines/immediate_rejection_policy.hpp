// Immediate-rejection policy as a resumable, store-generic state machine
// (see immediate_rejection.hpp for the Lemma 1 context and the batch entry
// point, and rejection_flow_policy.hpp for the Store/Rec contract).
#pragma once

#include <limits>
#include <set>

#include "baselines/immediate_rejection.hpp"
#include "sim/engine.hpp"

namespace osched {

namespace immediate_rejection_detail {

struct SptKey {
  Work p;
  Time r;
  JobId id;
  bool operator<(const SptKey& other) const {
    if (p != other.p) return p < other.p;
    if (r != other.r) return r < other.r;
    return id < other.id;
  }
};

struct MachineState {
  std::set<SptKey> pending;
  Work pending_work = 0.0;
  JobId running = kInvalidJob;
  Time running_end = 0.0;
  std::uint64_t completion_event = 0;
};

}  // namespace immediate_rejection_detail

template <class Store, class Rec>
class ImmediateRejectionPolicy final : public SimulationHooks {
  using SptKey = immediate_rejection_detail::SptKey;
  using MachineState = immediate_rejection_detail::MachineState;

 public:
  ImmediateRejectionPolicy(const Store& store, Rec& rec, EventQueue& events,
                           const ImmediateRejectionOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        machines_(store.num_machines()) {
    OSCHED_CHECK_GT(options.eps, 0.0);
    OSCHED_CHECK_LT(options.eps, 1.0);
    OSCHED_CHECK_GE(options.patience, 0.0);
    fleet_.init(store.num_machines(), options.fleet);
    fleet_speed_ = fleet_.has_speed_events();
  }

  void on_arrival(JobId j, Time now) override {
    ++arrived_;
    double best_wait = std::numeric_limits<double>::infinity();
    const MachineId best = pick_machine(j, now, &best_wait);
    if (best == kInvalidMachine) {
      // Fleet mode: no active eligible machine. This shed is forced by the
      // fleet, not an admission call — it stays OUT of the eps budget.
      OSCHED_CHECK(fleet_.enabled())
          << "job " << j << " has no eligible machine";
      rec_.mark_rejected_pending(j, now);
      fleet_.note_forced_rejection();
      return;
    }

    // The IMMEDIATE decision: this is the only moment the policy may reject.
    // Under kSpeedChange plans the wait estimate and p_best are both in
    // wall-clock terms at the CURRENT multiplier, so the patience ratio
    // compares like with like on a throttled machine.
    const Work p_best = effective_processing(best, j);
    const bool budget_available =
        static_cast<double>(rejections_ + 1) <=
        options_.eps * static_cast<double>(arrived_);
    if (budget_available && best_wait > options_.patience * p_best) {
      rec_.mark_rejected_pending(j, now);
      ++rejections_;
      return;
    }

    MachineState& ms = machines_[static_cast<std::size_t>(best)];
    rec_.mark_dispatched(j, best);
    ms.pending.insert(SptKey{p_best, store_.job(j).release, j});
    ms.pending_work += p_best;
    if (ms.running == kInvalidJob) start_next(best, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  void on_fleet(const FleetEvent& event, Time now) override {
    switch (event.kind) {
      case FleetEventKind::kJoin:
        fleet_.on_join(event.machine);
        break;
      case FleetEventKind::kDrain:
        fleet_.on_drain(event.machine);
        break;
      case FleetEventKind::kFail:
        fleet_.on_fail(event.machine);
        handle_fail(event.machine, now);
        break;
      case FleetEventKind::kSpeedChange:
        // Future wait estimates and starts see the new multiplier; the
        // running job keeps its frozen start-time speed, and pending keys
        // keep their dispatch-time effective p.
        fleet_.on_speed_change(event.machine, event.speed);
        break;
    }
  }

  /// Overload shed (see SimulationHooks): rejects the lowest-value pending
  /// job — smallest weight, ties to largest queued p, then largest id —
  /// across every machine. Outside the eps-of-arrivals budget (rejections_
  /// counts only admission calls); the caller accounts the shed.
  JobId on_shed(Time now) override {
    std::size_t victim_machine = 0;
    const SptKey* victim = nullptr;
    Weight victim_weight = 0.0;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      for (const SptKey& key : machines_[i].pending) {
        const Weight w = store_.job(key.id).weight;
        if (victim == nullptr || w < victim_weight ||
            (w == victim_weight &&
             (key.p > victim->p ||
              (key.p == victim->p && key.id > victim->id)))) {
          victim = &key;
          victim_weight = w;
          victim_machine = i;
        }
      }
    }
    if (victim == nullptr) return kInvalidJob;
    const SptKey key = *victim;
    MachineState& ms = machines_[victim_machine];
    ms.pending.erase(key);
    ms.pending_work -= key.p;
    rec_.mark_rejected_pending(key.id, now);
    return key.id;
  }

  /// The immediate-rejection baseline charges its ε-fraction arrival
  /// rejections; ε-charged sheds fall back to the fixed victim rule and
  /// the session books them against the same derived budget.
  std::size_t charged_rejections() const override { return rejections_; }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

  std::size_t rejections() const { return rejections_; }
  const FleetStats& fleet_stats() const { return fleet_.stats; }

 private:
  /// Processing time in wall-clock terms under the machine's CURRENT
  /// multiplier. Exactly p when no plan scripts speed events.
  Work effective_processing(MachineId i, JobId j) const {
    const Work p = store_.processing_unchecked(i, j);
    if (!fleet_speed_) return p;
    const double s = fleet_.speed_multiplier(static_cast<std::size_t>(i));
    return s == 1.0 ? p : p / s;
  }

  /// Best ACTIVE eligible machine by estimated wait (remaining + queued
  /// work ahead in SPT); kInvalidMachine when the fleet mask leaves none.
  MachineId pick_machine(JobId j, Time now, double* best_wait_out) const {
    MachineId best = kInvalidMachine;
    double best_wait = std::numeric_limits<double>::infinity();
    for (const MachineId machine : store_.eligible_machines(j)) {
      if (!fleet_.active(static_cast<std::size_t>(machine))) continue;
      const MachineState& ms = machines_[static_cast<std::size_t>(machine)];
      const Work p = effective_processing(machine, j);
      double wait =
          ms.running != kInvalidJob ? std::max(0.0, ms.running_end - now) : 0.0;
      for (const SptKey& key : ms.pending) {
        if (key.p <= p) wait += key.p;
      }
      if (wait < best_wait) {
        best_wait = wait;
        best = machine;
      }
    }
    *best_wait_out = best_wait;
    return best;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    if (ms.pending.empty()) return;
    const SptKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());
    ms.pending_work -= key.p;
    ms.running = key.id;
    if (!fleet_speed_) {
      ms.running_end = now + key.p;
      rec_.mark_started(key.id, now, 1.0);
    } else {
      // Duration resolves at START from the current multiplier (the key's
      // p is the dispatch-time estimate, possibly from another epoch).
      const double s = fleet_.speed_multiplier(static_cast<std::size_t>(i));
      const Work p = store_.processing_unchecked(i, key.id);
      ms.running_end = now + (s == 1.0 ? p : p / s);
      rec_.mark_started(key.id, now, s);
    }
    ms.completion_event = events_.schedule(ms.running_end, i, key.id);
  }

  // ---- fleet failure handling (fault sheds stay OUT of rejections_: that
  // total is the policy's eps-of-arrivals admission budget) ----

  void handle_fail(MachineId machine, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(machine)];

    orphans_.assign(ms.pending.begin(), ms.pending.end());  // SPT order
    ms.pending.clear();
    ms.pending_work = 0.0;

    const JobId killed = ms.running;
    if (killed != kInvalidJob) {
      events_.cancel(ms.completion_event);
      ms.running = kInvalidJob;
      if (fleet_.shed_killed_running() && fleet_.try_spend_budget()) {
        rec_.mark_rejected_running(killed, now);
        ++fleet_.stats.fault_rejections;
      } else {
        redecide(killed, now, /*was_running=*/true);
      }
    }

    for (const SptKey& key : orphans_) {
      redecide(key.id, now, /*was_running=*/false);
    }
  }

  /// Re-places one orphan. The patience test does NOT re-apply: the
  /// immediate accept decision was made at arrival and this class of
  /// policies never revisits it — only the fleet can force a shed here.
  void redecide(JobId j, Time now, bool was_running) {
    double wait = 0.0;
    const MachineId target = pick_machine(j, now, &wait);
    if (target == kInvalidMachine) {
      if (was_running) {
        rec_.mark_rejected_running(j, now);
      } else {
        rec_.mark_rejected_pending(j, now);
      }
      fleet_.note_forced_rejection();
      return;
    }
    rec_.mark_requeued(j, target);  // resets `started` for a killed runner
    MachineState& ms = machines_[static_cast<std::size_t>(target)];
    const Work p = effective_processing(target, j);
    ms.pending.insert(SptKey{p, store_.job(j).release, j});
    ms.pending_work += p;
    ++fleet_.stats.redispatched;
    if (ms.running == kInvalidJob) start_next(target, now);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  ImmediateRejectionOptions options_;
  std::vector<MachineState> machines_;
  FleetState fleet_;
  bool fleet_speed_ = false;  ///< plan scripts kSpeedChange events
  std::vector<SptKey> orphans_;  ///< handle_fail scratch
  std::size_t arrived_ = 0;
  std::size_t rejections_ = 0;
};

}  // namespace osched
