// EXTENSION (not in the paper): online non-preemptive WEIGHTED total
// flow-time minimization with rejections.
//
// The paper proves Theorem 1 for unit weights and handles weights only
// jointly with energy (Theorem 2); pure weighted non-preemptive flow time is
// exactly the regime where [2] (Chekuri–Khanna–Zhu) shows an Omega(n) lower
// bound without relaxations, and the paper's conclusion names such
// extensions as the open direction. This module transplants the paper's
// machinery to that setting:
//
//   * pending order: highest density first (delta_ij = w_j / p_ij, the order
//     Theorem 2 uses), ties by earliest release then id;
//   * dispatch: argmin_i lambda_ij with the weighted marginal estimate
//       lambda_ij = w_j p_ij / eps + w_j sum_{l <= j} p_il
//                   + p_ij sum_{l > j} w_l,
//     the unit-speed specialization of Theorem 2's lambda;
//   * Rule 1w (Theorem 2's rejection rule at unit speed): a counter v_k
//     accumulates the WEIGHT dispatched to the machine during job k's
//     execution; k is interrupted and rejected the first time v_k > w_k/eps.
//     Each rejection charges w_k <= eps * (weight arrived during k), and the
//     charged windows are disjoint, so rejected weight <= eps * W.
//   * Rule 2w (new, budget-safe generalization of Rule 2): a per-machine
//     counter c_i accumulates all dispatched weight since its last reset;
//     whenever c_i >= w_v / eps, where v is the pending job with the largest
//     processing time, v is rejected and c_i resets. At the firing moment
//     w_v <= eps * c_i, and the windows are again disjoint, so Rule 2w also
//     rejects at most eps * W of weight — total budget 2 * eps * W, matching
//     Theorem 1's shape. With unit weights it degenerates to "reject the
//     largest pending every ~1/eps dispatches", i.e. the paper's Rule 2.
//
// NO competitive-ratio theorem is claimed here. The E14 experiment measures
// the policy against the weighted time-indexed LP certificate
// (lp/flow_time_lp.hpp with use_weights) and the classical no-rejection
// baselines; DESIGN.md records it as an extension.
#pragma once

#include <cstdint>

#include "instance/instance.hpp"
#include "sim/fleet.hpp"
#include "sim/schedule.hpp"

namespace osched {

struct WeightedFlowOptions {
  /// Rejection parameter in (0, 1); the budget is 2*eps of total weight.
  double epsilon = 0.2;
  /// Ablation switches, mirroring the Theorem 1 scheduler's.
  bool enable_rule1 = true;
  bool enable_rule2 = true;
  /// kIndexed (default) dispatches through the cached-lower-bound machine
  /// index; kLinearScan is the reference full scan. Both are bit-identical
  /// (tests/dispatch_index_test.cpp).
  DispatchMode dispatch = DispatchMode::kIndexed;
  /// Dynamic fleet membership; empty = static fleet (see sim/fleet.hpp).
  FleetPlan fleet = {};
};

struct WeightedFlowResult {
  Schedule schedule;
  std::size_t rule1_rejections = 0;
  std::size_t rule2_rejections = 0;
  Weight rejected_weight = 0.0;
  /// Fleet-membership counters (all zero for an empty plan).
  FleetStats fleet;
};

WeightedFlowResult run_weighted_rejection_flow(
    const Instance& instance, const WeightedFlowOptions& options = {});

}  // namespace osched
