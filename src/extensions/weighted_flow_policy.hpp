// Weighted-flow extension policy as a resumable, store-generic state
// machine (see weighted_flow.hpp for the algorithm notes and the batch
// entry point, and rejection_flow_policy.hpp for the Store/Rec contract).
#pragma once

#include <limits>
#include <set>

#include "extensions/weighted_flow.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace osched {

namespace weighted_flow_detail {

/// Highest density first: larger w/p precedes; ties by release then id.
struct DensityKey {
  double density = 0.0;
  Time release = 0.0;
  JobId id = kInvalidJob;
  Work p = 0.0;     ///< processing time on the owning machine
  Weight w = 0.0;

  bool operator<(const DensityKey& other) const {
    if (density != other.density) return density > other.density;
    if (release != other.release) return release < other.release;
    return id < other.id;
  }
};

struct MachineState {
  std::set<DensityKey> pending;
  JobId running = kInvalidJob;
  Weight running_weight = 0.0;
  Time running_end = 0.0;
  std::uint64_t completion_event = 0;
  Weight v_counter = 0.0;  ///< Rule 1w: weight dispatched during execution
  Weight c_counter = 0.0;  ///< Rule 2w: weight dispatched since last reset
};

}  // namespace weighted_flow_detail

template <class Store, class Rec>
class WeightedFlowPolicy final : public SimulationHooks {
  using DensityKey = weighted_flow_detail::DensityKey;
  using MachineState = weighted_flow_detail::MachineState;

 public:
  WeightedFlowPolicy(const Store& store, Rec& rec, EventQueue& events,
                     const WeightedFlowOptions& options)
      : store_(store),
        rec_(rec),
        events_(events),
        options_(options),
        machines_(store.num_machines()) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
  }

  void on_arrival(JobId j, Time now) override {
    const Weight w = store_.job(j).weight;

    // Dispatch to argmin lambda_ij (ties to the lowest machine index; the
    // eligibility adjacency scans machines in ascending index order).
    double best_lambda = std::numeric_limits<double>::infinity();
    MachineId best = kInvalidMachine;
    for (const MachineId machine : store_.eligible_machines(j)) {
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda) {
        best_lambda = lambda;
        best = machine;
      }
    }
    OSCHED_CHECK(best != kInvalidMachine) << "job " << j << " has no eligible machine";

    MachineState& ms = machines_[static_cast<std::size_t>(best)];
    rec_.mark_dispatched(j, best);
    ms.pending.insert(make_key(best, j));

    if (options_.enable_rule1 && ms.running != kInvalidJob) {
      ms.v_counter += w;
      if (ms.v_counter > ms.running_weight / options_.epsilon) {
        reject_running(best, now);
      }
    }
    if (options_.enable_rule2) {
      ms.c_counter += w;
      maybe_fire_rule2(best, now);
    }
    if (ms.running == kInvalidJob) start_next(best, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    MachineState& ms = machines_[static_cast<std::size_t>(event.machine)];
    OSCHED_CHECK_EQ(ms.running, event.job);
    rec_.mark_completed(event.job, now);
    ms.running = kInvalidJob;
    start_next(event.machine, now);
  }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

  std::size_t rule1_rejections() const { return rule1_rejections_; }
  std::size_t rule2_rejections() const { return rule2_rejections_; }
  Weight rejected_weight() const { return rejected_weight_; }

 private:
  DensityKey make_key(MachineId i, JobId j) const {
    const Work p = store_.processing_unchecked(i, j);
    const Job& job = store_.job(j);
    return DensityKey{job.weight / p, job.release, j, p, job.weight};
  }

  /// lambda_ij = w_j p_ij / eps + w_j sum_{l <= j} p_il + p_ij sum_{l > j} w_l
  /// over the density order with j virtually inserted, running job excluded.
  double lambda_ij(MachineId i, JobId j) const {
    const MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const DensityKey key = make_key(i, j);
    double work_before = 0.0;
    double weight_after = 0.0;
    for (const DensityKey& other : ms.pending) {
      if (other < key) {
        work_before += other.p;
      } else {
        weight_after += other.w;
      }
    }
    return key.w * key.p / options_.epsilon + key.w * (work_before + key.p) +
           key.p * weight_after;
  }

  void start_next(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    OSCHED_CHECK_EQ(ms.running, kInvalidJob);
    if (ms.pending.empty()) return;
    const DensityKey key = *ms.pending.begin();
    ms.pending.erase(ms.pending.begin());
    ms.running = key.id;
    ms.running_weight = key.w;
    ms.running_end = now + key.p;
    ms.v_counter = 0.0;
    rec_.mark_started(key.id, now, 1.0);
    ms.completion_event = events_.schedule(ms.running_end, i, key.id);
  }

  void reject_running(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    const JobId k = ms.running;
    OSCHED_CHECK(k != kInvalidJob);
    events_.cancel(ms.completion_event);
    rec_.mark_rejected_running(k, now);
    rejected_weight_ += ms.running_weight;
    ms.running = kInvalidJob;
    ++rule1_rejections_;
  }

  /// Rule 2w firing check: compare the accumulated weight against the
  /// largest-processing pending job's weight threshold. At most one firing
  /// per dispatch — the reset to zero cannot clear a second threshold.
  void maybe_fire_rule2(MachineId i, Time now) {
    MachineState& ms = machines_[static_cast<std::size_t>(i)];
    if (ms.pending.empty()) return;
    auto victim = ms.pending.begin();
    for (auto it = ms.pending.begin(); it != ms.pending.end(); ++it) {
      if (it->p > victim->p || (it->p == victim->p && it->id < victim->id)) {
        victim = it;
      }
    }
    if (ms.c_counter < victim->w / options_.epsilon) return;
    rec_.mark_rejected_pending(victim->id, now);
    rejected_weight_ += victim->w;
    ms.pending.erase(victim);
    ms.c_counter = 0.0;
    ++rule2_rejections_;
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  WeightedFlowOptions options_;
  std::vector<MachineState> machines_;
  std::size_t rule1_rejections_ = 0;
  std::size_t rule2_rejections_ = 0;
  Weight rejected_weight_ = 0.0;
};

}  // namespace osched
