// Weighted-flow extension policy as a resumable, store-generic state
// machine (see weighted_flow.hpp for the algorithm notes and the batch
// entry point, and rejection_flow_policy.hpp for the Store/Rec contract).
//
// Machine state is structure-of-arrays: the lambda inputs the dispatch
// needs per machine (pending count, pending minimum processing time and
// weight) live in contiguous arrays, maintained only when the owning
// machine's queue is touched. The dispatch index evaluates the exact
// lambda — an O(pending) walk of the density-ordered set — only for
// candidates whose cheap lower bound
//   lb_i = margin * (w p/eps + w p + n_i * min(w * pmin_i, p * wmin_i))
// survives best-first ordering through a min-heap; every pending job
// contributes either w * p_l (ordered before j, p_l >= pmin_i) or
// p * w_l (ordered after, w_l >= wmin_i) to the queue term, so the bound
// never exceeds the rounded exact lambda (kDispatchBoundMargin). The
// result is the same lexicographic (lambda, machine id) argmin as the
// reference scan (DispatchMode::kLinearScan), bit for bit — the
// differential wall in tests/dispatch_index_test.cpp pins that down.
#pragma once

#include <algorithm>
#include <limits>
#include <set>

#ifdef OSCHED_DISPATCH_VERIFY
#include <cstdio>
#endif

#include "extensions/weighted_flow.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/dispatch_heap.hpp"

namespace osched {

namespace weighted_flow_detail {

/// Highest density first: larger w/p precedes; ties by release then id.
struct DensityKey {
  double density = 0.0;
  Time release = 0.0;
  JobId id = kInvalidJob;
  Work p = 0.0;     ///< processing time on the owning machine
  Weight w = 0.0;

  bool operator<(const DensityKey& other) const {
    if (density != other.density) return density > other.density;
    if (release != other.release) return release < other.release;
    return id < other.id;
  }
};

}  // namespace weighted_flow_detail

template <class Store, class Rec>
class WeightedFlowPolicy final : public SimulationHooks {
  using DensityKey = weighted_flow_detail::DensityKey;

 public:
  WeightedFlowPolicy(const Store& store, Rec& rec, EventQueue& events,
                     const WeightedFlowOptions& options)
      : store_(store), rec_(rec), events_(events), options_(options) {
    OSCHED_CHECK_GT(options.epsilon, 0.0);
    OSCHED_CHECK_LT(options.epsilon, 1.0);
    const std::size_t m = store.num_machines();
    fleet_.init(m, options.fleet);
    fleet_speed_ = fleet_.has_speed_events();
    pending_.resize(m);
    running_.assign(m, kInvalidJob);
    running_weight_.assign(m, 0.0);
    running_end_.assign(m, 0.0);
    completion_event_.assign(m, 0);
    v_counter_.assign(m, 0.0);
    c_counter_.assign(m, 0.0);
    pend_n_.assign(m, 0.0);
    pend_min_p_.assign(m, 0.0);  // 0 = empty-queue sentinel (see
    pend_min_w_.assign(m, 0.0);  // pending_insert/pending_removed)
    lb_.assign(m, 0.0);
    heap_.reserve(m);
  }

  void on_arrival(JobId j, Time now) override {
    const Weight w = store_.job(j).weight;

    double best_lambda = 0.0;
    const MachineId best =
        options_.dispatch == DispatchMode::kIndexed
            ? dispatch_indexed(j, &best_lambda)
            : dispatch_linear_scan(j, &best_lambda);
    if (best == kInvalidMachine) {
      // Fleet mode: no active eligible machine — forced rejection at
      // arrival, outside the weight counters and budget accounting.
      OSCHED_CHECK(fleet_.enabled())
          << "job " << j << " has no eligible machine";
      rec_.mark_rejected_pending(j, now);
      fleet_.note_forced_rejection();
      return;
    }

    const auto b = static_cast<std::size_t>(best);
    rec_.mark_dispatched(j, best);
    pending_insert(b, make_key(best, j));

    if (options_.enable_rule1 && running_[b] != kInvalidJob) {
      v_counter_[b] += w;
      if (v_counter_[b] > running_weight_[b] / options_.epsilon) {
        reject_running(best, now);
      }
    }
    if (options_.enable_rule2) {
      c_counter_[b] += w;
      maybe_fire_rule2(best, now);
    }
    if (running_[b] == kInvalidJob) start_next(best, now);
  }

  void on_event(const SimEvent& event, Time now) override {
    const auto i = static_cast<std::size_t>(event.machine);
    OSCHED_CHECK_EQ(running_[i], event.job);
    rec_.mark_completed(event.job, now);
    running_[i] = kInvalidJob;
    start_next(event.machine, now);
  }

  void on_fleet(const FleetEvent& event, Time now) override {
    switch (event.kind) {
      case FleetEventKind::kJoin:
        fleet_.on_join(event.machine);
        break;
      case FleetEventKind::kDrain:
        fleet_.on_drain(event.machine);
        break;
      case FleetEventKind::kFail:
        fleet_.on_fail(event.machine);
        handle_fail(event.machine, now);
        break;
      case FleetEventKind::kSpeedChange:
        // Scales jobs STARTED from now on (start_next re-resolves the
        // duration); pending keys keep their dispatch-time effective p so
        // queue order never shifts under a live queue.
        fleet_.on_speed_change(event.machine, event.speed);
        break;
    }
  }

  /// Overload shed (see SimulationHooks): rejects the lowest-value pending
  /// job — smallest weight, ties to largest queued p, then largest id —
  /// across every machine. Outside the weight counters and
  /// rejected_weight_ (that total is the 2*eps*W budget accounting); the
  /// caller accounts the shed.
  JobId on_shed(Time now) override {
    std::size_t victim_machine = 0;
    const DensityKey* victim = nullptr;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      for (const DensityKey& key : pending_[i]) {
        if (victim == nullptr || key.w < victim->w ||
            (key.w == victim->w &&
             (key.p > victim->p ||
              (key.p == victim->p && key.id > victim->id)))) {
          victim = &key;
          victim_machine = i;
        }
      }
    }
    if (victim == nullptr) return kInvalidJob;
    const DensityKey key = *victim;
    pending_[victim_machine].erase(key);
    pending_removed(victim_machine);
    rec_.mark_rejected_pending(key.id, now);
    return key.id;
  }

  /// ε-charged shed (see SimulationHooks): the Rule-2-style victim — the
  /// globally largest queued effective processing time, ties to the largest
  /// id — matching Theorem 1's charged rule. The weighted extension keeps
  /// no dual ledger, so there is nothing further to book; the session
  /// charges the shed against the derived budget next to the rule counters.
  JobId on_shed_charged(Time now) override {
    std::size_t victim_machine = 0;
    const DensityKey* victim = nullptr;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      for (const DensityKey& key : pending_[i]) {
        if (victim == nullptr || key.p > victim->p ||
            (key.p == victim->p && key.id > victim->id)) {
          victim = &key;
          victim_machine = i;
        }
      }
    }
    if (victim == nullptr) return kInvalidJob;
    const DensityKey key = *victim;
    pending_[victim_machine].erase(key);
    pending_removed(victim_machine);
    rec_.mark_rejected_pending(key.id, now);
    return key.id;
  }

  std::size_t charged_rejections() const override {
    return rule1_rejections_ + rule2_rejections_;
  }

  /// The policy keeps no per-job state of its own — nothing to release.
  void retire_below(JobId /*frontier*/) {}

  std::size_t rule1_rejections() const { return rule1_rejections_; }
  std::size_t rule2_rejections() const { return rule2_rejections_; }
  Weight rejected_weight() const { return rejected_weight_; }
  const FleetStats& fleet_stats() const { return fleet_.stats; }

 private:
  /// p_ij scaled by the machine's CURRENT speed multiplier (kSpeedChange
  /// plans); the speed-free path returns the raw value untouched.
  Work effective_processing(MachineId i, JobId j) const {
    const Work p = store_.processing_unchecked(i, j);
    if (!fleet_speed_) return p;
    const double s = fleet_.speed_multiplier(static_cast<std::size_t>(i));
    return s == 1.0 ? p : p / s;
  }

  DensityKey make_key(MachineId i, JobId j) const {
    const Work p = effective_processing(i, j);
    const Job& job = store_.job(j);
    return DensityKey{job.weight / p, job.release, j, p, job.weight};
  }

  /// lambda_ij = w_j p_ij / eps + w_j sum_{l <= j} p_il + p_ij sum_{l > j} w_l
  /// over the density order with j virtually inserted, running job excluded.
  double lambda_ij(MachineId i, JobId j) const {
    const auto& pending = pending_[static_cast<std::size_t>(i)];
    const DensityKey key = make_key(i, j);
    double work_before = 0.0;
    double weight_after = 0.0;
    for (const DensityKey& other : pending) {
      if (other < key) {
        work_before += other.p;
      } else {
        weight_after += other.w;
      }
    }
    return key.w * key.p / options_.epsilon + key.w * (work_before + key.p) +
           key.p * weight_after;
  }

  /// Reference dispatch: exact lambda for every eligible machine, ascending
  /// machine id, strict-less keeps the first (= smallest id on ties).
  MachineId dispatch_linear_scan(JobId j, double* best_lambda_out) const {
    double best_lambda = std::numeric_limits<double>::infinity();
    MachineId best = kInvalidMachine;
    for (const MachineId machine : store_.eligible_machines(j)) {
      if (!fleet_.active(static_cast<std::size_t>(machine))) continue;
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda) {
        best_lambda = lambda;
        best = machine;
      }
    }
    *best_lambda_out = best_lambda;
    return best;
  }

  /// Sound lower bound on lambda_ij from the cached per-machine aggregates
  /// (see the header comment for the derivation).
  double lambda_lower_bound(Work p, Weight w, std::size_t i) const {
    const double queue_term =
        pend_n_[i] * std::min(w * pend_min_p_[i], p * pend_min_w_[i]);
    return kDispatchBoundMargin *
           (w * p / options_.epsilon + w * p + queue_term);
  }

  /// Indexed dispatch: bounds for every eligible machine, best-first exact
  /// evaluation until the next bound exceeds the incumbent. Returns the
  /// same (lambda, machine) as dispatch_linear_scan, bit for bit.
  MachineId dispatch_indexed(JobId j, double* best_lambda_out) {
    const auto eligible = store_.eligible_machines(j);
    const std::size_t count = eligible.size();
    OSCHED_CHECK(count > 0) << "job " << j << " has no eligible machine";
    const Work* row = store_.processing_row(j);
    const Weight w = store_.job(j).weight;

    std::size_t seed_k = 0;
    double seed_lb = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < count; ++k) {
      const auto i = static_cast<std::size_t>(eligible.first[k]);
      if (!fleet_.active(i)) {
        lb_[k] = std::numeric_limits<double>::infinity();
        continue;
      }
      // Under a speed multiplier the bound's candidate p must be the SAME
      // effective value the exact lambda uses (make_key performs the
      // identical division), so no extra rounding slack is needed.
      const double s = fleet_speed_ ? fleet_.speed_multiplier(i) : 1.0;
      lb_[k] = lambda_lower_bound(s == 1.0 ? row[i] : row[i] / s, w, i);
      if (lb_[k] < seed_lb) {
        seed_lb = lb_[k];
        seed_k = k;
      }
    }

    const MachineId seed_machine = eligible.first[seed_k];
    if (!fleet_.active(static_cast<std::size_t>(seed_machine))) {
      // Every eligible machine is masked: the reference scan settles it
      // (returns kInvalidMachine, the caller force-rejects).
      return dispatch_linear_scan(j, best_lambda_out);
    }
    double best_lambda = lambda_ij(seed_machine, j);
    MachineId best_machine = seed_machine;

    heap_.reset();
    for (std::size_t k = 0; k < count; ++k) {
      if (k == seed_k || lb_[k] > best_lambda) continue;
      heap_.push(lb_[k], static_cast<std::uint32_t>(eligible.first[k]));
    }
    while (!heap_.empty()) {
      const auto entry = heap_.pop_min();
      if (entry.key > best_lambda) break;
      const auto machine = static_cast<MachineId>(entry.id);
      const double lambda = lambda_ij(machine, j);
      if (lambda < best_lambda ||
          (lambda == best_lambda && machine < best_machine)) {
        best_lambda = lambda;
        best_machine = machine;
      }
    }
#ifdef OSCHED_DISPATCH_VERIFY
    {
      double ref_lambda = 0.0;
      const MachineId ref = dispatch_linear_scan(j, &ref_lambda);
      if (ref != best_machine || ref_lambda != best_lambda) {
        std::fprintf(stderr,
                     "VERIFY FAIL job %d: indexed (m=%d, l=%.17g) ref (m=%d, "
                     "l=%.17g)\n",
                     j, best_machine, best_lambda, ref, ref_lambda);
        for (const MachineId mm : {best_machine, ref}) {
          const auto ii = static_cast<std::size_t>(mm);
          std::fprintf(stderr,
                       "  machine %d: lambda=%.17g lb=%.17g n=%g pmin_p=%.17g "
                       "pmin_w=%.17g p=%.17g w=%.17g pend=%zu\n",
                       mm, lambda_ij(mm, j),
                       lambda_lower_bound(store_.processing_unchecked(mm, j), w, ii),
                       pend_n_[ii], pend_min_p_[ii], pend_min_w_[ii],
                       store_.processing_unchecked(mm, j), w,
                       pending_[ii].size());
        }
      }
    }
#endif
    *best_lambda_out = best_lambda;
    return best_machine;
  }

  // ---- pending mutations keep the cached lambda inputs in sync. The min
  // caches are monotone lower bounds: they tighten on insert and reset only
  // when the queue empties (a removal can leave them stale-but-sound, which
  // keeps every mutation O(log) without a rescan). ----

  void pending_insert(std::size_t i, const DensityKey& key) {
    pending_[i].insert(key);
    pend_n_[i] += 1.0;
    if (pending_[i].size() == 1) {
      // First entry RESETS the caches. The empty-queue sentinel is 0 (so
      // the bound's n * min(...) term is exactly 0, never 0 * inf = NaN),
      // which must not survive into a min-update.
      pend_min_p_[i] = key.p;
      pend_min_w_[i] = key.w;
      return;
    }
    if (key.p < pend_min_p_[i]) pend_min_p_[i] = key.p;
    if (key.w < pend_min_w_[i]) pend_min_w_[i] = key.w;
  }

  void pending_removed(std::size_t i) {
    pend_n_[i] -= 1.0;
    if (pending_[i].empty()) {
      pend_min_p_[i] = 0.0;
      pend_min_w_[i] = 0.0;
    }
  }

  void start_next(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    OSCHED_CHECK_EQ(running_[i], kInvalidJob);
    if (pending_[i].empty()) return;
    const DensityKey key = *pending_[i].begin();
    pending_[i].erase(pending_[i].begin());
    pending_removed(i);
    running_[i] = key.id;
    running_weight_[i] = key.w;
    if (!fleet_speed_) {
      running_end_[i] = now + key.p;
      rec_.mark_started(key.id, now, 1.0);
    } else {
      // Start-time speed governs the run; the key's dispatch-time p only
      // fixed the queue position (see on_fleet).
      const double s = fleet_.speed_multiplier(i);
      const Work p = store_.processing_unchecked(machine, key.id);
      running_end_[i] = now + (s == 1.0 ? p : p / s);
      rec_.mark_started(key.id, now, s);
    }
    v_counter_[i] = 0.0;
    completion_event_[i] = events_.schedule(running_end_[i], machine, key.id);
  }

  void reject_running(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    const JobId k = running_[i];
    OSCHED_CHECK(k != kInvalidJob);
    events_.cancel(completion_event_[i]);
    rec_.mark_rejected_running(k, now);
    rejected_weight_ += running_weight_[i];
    running_[i] = kInvalidJob;
    ++rule1_rejections_;
  }

  /// Rule 2w firing check: compare the accumulated weight against the
  /// largest-processing pending job's weight threshold. At most one firing
  /// per dispatch — the reset to zero cannot clear a second threshold.
  void maybe_fire_rule2(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);
    const auto& pending = pending_[i];
    if (pending.empty()) return;
    auto victim = pending.begin();
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->p > victim->p || (it->p == victim->p && it->id < victim->id)) {
        victim = it;
      }
    }
    if (c_counter_[i] < victim->w / options_.epsilon) return;
    rec_.mark_rejected_pending(victim->id, now);
    rejected_weight_ += victim->w;
    pending_[i].erase(victim);
    pending_removed(i);
    c_counter_[i] = 0.0;
    ++rule2_rejections_;
  }

  // ---- fleet failure handling (fault sheds stay OUT of rejected_weight_:
  // that total is the policy's 2*eps*W budget accounting; FleetStats holds
  // the fault counts) ----

  void handle_fail(MachineId machine, Time now) {
    const auto i = static_cast<std::size_t>(machine);

    orphans_.assign(pending_[i].begin(), pending_[i].end());  // density order
    pending_[i].clear();
    pend_n_[i] = 0.0;
    pend_min_p_[i] = 0.0;  // empty-queue sentinel
    pend_min_w_[i] = 0.0;

    const JobId killed = running_[i];
    if (killed != kInvalidJob) {
      events_.cancel(completion_event_[i]);
      running_[i] = kInvalidJob;
      if (fleet_.shed_killed_running() && fleet_.try_spend_budget()) {
        rec_.mark_rejected_running(killed, now);
        ++fleet_.stats.fault_rejections;
      } else {
        redecide(killed, now, /*was_running=*/true);
      }
    }
    v_counter_[i] = 0.0;
    c_counter_[i] = 0.0;

    for (const DensityKey& key : orphans_) {
      redecide(key.id, now, /*was_running=*/false);
    }
  }

  /// Re-decides one orphan: normal dispatch restricted to active machines,
  /// or a forced rejection. Skips the weight counters.
  void redecide(JobId j, Time now, bool was_running) {
    double lambda = 0.0;
    const MachineId target =
        options_.dispatch == DispatchMode::kIndexed
            ? dispatch_indexed(j, &lambda)
            : dispatch_linear_scan(j, &lambda);
    if (target == kInvalidMachine) {
      if (was_running) {
        rec_.mark_rejected_running(j, now);
      } else {
        rec_.mark_rejected_pending(j, now);
      }
      fleet_.note_forced_rejection();
      return;
    }
    rec_.mark_requeued(j, target);  // resets `started` for a killed runner
    const auto b = static_cast<std::size_t>(target);
    pending_insert(b, make_key(target, j));
    ++fleet_.stats.redispatched;
    if (running_[b] == kInvalidJob) start_next(target, now);
  }

  const Store& store_;
  Rec& rec_;
  EventQueue& events_;
  WeightedFlowOptions options_;

  // ---- machine state, structure-of-arrays (indexed by machine id) ----
  std::vector<std::set<DensityKey>> pending_;
  std::vector<JobId> running_;
  std::vector<Weight> running_weight_;
  std::vector<Time> running_end_;
  std::vector<std::uint64_t> completion_event_;
  std::vector<Weight> v_counter_;  ///< Rule 1w weight counters
  std::vector<Weight> c_counter_;  ///< Rule 2w weight counters
  /// Cached lambda inputs (written only for touched machines).
  std::vector<double> pend_n_;
  std::vector<double> pend_min_p_;
  std::vector<double> pend_min_w_;

  // ---- dispatch scratch, reused across arrivals ----
  std::vector<double> lb_;
  util::DispatchHeap heap_;
  FleetState fleet_;
  bool fleet_speed_ = false;  ///< the plan scripts kSpeedChange events
  std::vector<DensityKey> orphans_;  ///< handle_fail scratch

  std::size_t rule1_rejections_ = 0;
  std::size_t rule2_rejections_ = 0;
  Weight rejected_weight_ = 0.0;
};

}  // namespace osched
