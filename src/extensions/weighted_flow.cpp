#include "extensions/weighted_flow.hpp"

#include "extensions/weighted_flow_policy.hpp"
#include "instance/processing_store.hpp"
#include "sim/engine.hpp"

namespace osched {

WeightedFlowResult run_weighted_rejection_flow(
    const Instance& instance, const WeightedFlowOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  // One full instantiation per storage backend (see processing_store.hpp).
  return with_store_view(instance, [&](const auto& view) {
    using Store = std::decay_t<decltype(view)>;
    SimEngineFor<Store> engine(view, &options.fleet);
    Schedule schedule(view.num_jobs());
    WeightedFlowPolicy<Store, Schedule> policy(view, schedule, engine.events(),
                                               options);
    engine.run(policy);

    WeightedFlowResult result;
    result.rule1_rejections = policy.rule1_rejections();
    result.rule2_rejections = policy.rule2_rejections();
    result.rejected_weight = policy.rejected_weight();
    result.fleet = policy.fleet_stats();
    result.schedule = std::move(schedule);
    return result;
  });
}

}  // namespace osched
