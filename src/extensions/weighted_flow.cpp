#include "extensions/weighted_flow.hpp"

#include "extensions/weighted_flow_policy.hpp"
#include "sim/engine.hpp"

namespace osched {

WeightedFlowResult run_weighted_rejection_flow(
    const Instance& instance, const WeightedFlowOptions& options) {
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;

  SimEngine engine(instance);
  Schedule schedule(instance.num_jobs());
  WeightedFlowPolicy<Instance, Schedule> policy(instance, schedule,
                                                engine.events(), options);
  engine.run(policy);

  WeightedFlowResult result;
  result.rule1_rejections = policy.rule1_rejections();
  result.rule2_rejections = policy.rule2_rejections();
  result.rejected_weight = policy.rejected_weight();
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace osched
