// Lemma 7 verifier: the configuration-LP dual solution of the Theorem 3
// greedy is feasible.
//
// Two constraint families:
//  (a) delta_j <= beta_ijk for every strategy s_ijk — delta_j is defined as
//      the MINIMUM marginal over strategies divided by lambda, so this
//      checks that the greedy really did take the minimum (re-derived
//      through an independent add-then-integrate code path rather than
//      marginal_cost).
//  (b) gamma_i + sum_{(i,j,k) in A} beta_ijk <= f_i(A) for sampled
//      configurations A: random subsets of jobs assigned to machine i with
//      random strategies, where beta uses the profile at each job's arrival
//      (captured by replaying the algorithm with an observer) and
//      gamma_i = -(mu/lambda) f_i(A*_i final).
#pragma once

#include <cstdint>

#include "core/energy_min/config_primal_dual.hpp"
#include "duality/flow_dual_check.hpp"  // DualCheckReport
#include "instance/instance.hpp"

namespace osched {

struct ConfigDualCheckReport {
  /// (a): max over jobs/strategies of (delta_j - beta_ijk); <= tol feasible.
  double max_delta_violation = -1e300;
  /// (b): max over sampled configurations of
  /// (gamma_i + sum beta - f_i(A)) / max(1, f_i(A)); <= tol feasible.
  double max_config_violation = -1e300;
  std::size_t strategies_checked = 0;
  std::size_t configs_checked = 0;

  bool feasible(double tolerance = 1e-7) const {
    return max_delta_violation <= tolerance &&
           max_config_violation <= tolerance;
  }
};

ConfigDualCheckReport check_config_dual_feasibility(
    const Instance& instance, const ConfigPDOptions& options,
    std::size_t config_samples_per_machine = 64, std::uint64_t seed = 1);

}  // namespace osched
