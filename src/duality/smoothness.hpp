// Definition 1 / smooth-inequality probe for polynomial power functions.
//
// The proof of Theorem 3 uses the smooth inequality of Cohen, Durr and
// Thang [18]: for non-negative sequences {a_i}, {b_i} and alpha >= 1,
//   sum_i [ (b_i + A_i)^alpha - A_i^alpha ]
//     <= lambda(alpha) (sum_i b_i)^alpha + mu(alpha) (sum_i a_i)^alpha,
// with A_i = a_1 + ... + a_i, mu(alpha) = (alpha-1)/alpha and
// lambda(alpha) = Theta(alpha^{alpha-1}).
//
// The probe stresses the inequality on adversarially shaped random
// sequences and reports the smallest lambda that would have sufficed given
// mu = (alpha-1)/alpha — the empirical companion to the alpha^alpha ratio
// (experiment E10).
#pragma once

#include <cstdint>

#include "instance/power.hpp"

namespace osched {

struct SmoothnessProbe {
  double alpha = 0.0;
  double mu = 0.0;               ///< (alpha-1)/alpha, fixed
  double required_lambda = 0.0;  ///< max over trials of the implied lambda
  double claimed_lambda = 0.0;   ///< alpha^{alpha-1}
  std::size_t trials = 0;

  bool within_claim(double slack = 1.0) const {
    return required_lambda <= slack * claimed_lambda;
  }
};

SmoothnessProbe probe_polynomial_smoothness(double alpha, std::size_t trials,
                                            std::size_t sequence_length,
                                            std::uint64_t seed);

/// Direct evaluation of the smooth-inequality left-hand side.
double smooth_inequality_lhs(const std::vector<double>& a,
                             const std::vector<double>& b, double alpha);

}  // namespace osched
