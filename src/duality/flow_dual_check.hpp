// Lemma 4 verifier: the dual solution emitted by the Theorem 1 scheduler is
// feasible constraint by constraint.
//
// Dual constraint, for every machine i, job j and time t >= r_j:
//   lambda_j / p_ij  <=  (t - r_j)/p_ij + 1 + beta_i(t),
// with beta_i(t) = eps/(1+eps)^2 * (|U_i(t)| + |V_i(t)|). A job dispatched
// to machine i occupies U_i from its release to its completion/rejection and
// V_i from there to its definitive finish C~_j, so |U_i(t)| + |V_i(t)| is
// simply the count of jobs with r <= t < C~ on machine i.
//
// For fixed (i, j) the RHS grows linearly in t except at C~ breakpoints
// where beta steps down, so it suffices to check t = r_j and t = each C~
// (the instants just after each drop). The checker does exactly that — an
// INDEPENDENT re-derivation from the schedule record; it shares no state
// with the scheduler's own accounting.
#pragma once

#include "core/flow/rejection_flow.hpp"
#include "instance/instance.hpp"

namespace osched {

struct DualCheckReport {
  /// max over all checked constraints of (LHS - RHS); <= 0 means feasible.
  double max_violation = -1e300;
  std::size_t constraints_checked = 0;

  bool feasible(double tolerance = 1e-7) const {
    return max_violation <= tolerance;
  }
};

/// `eps` must be the epsilon the run used. For n*m*n larger than
/// max_constraints the (i, j) pairs are subsampled deterministically.
DualCheckReport check_flow_dual_feasibility(
    const Instance& instance, const RejectionFlowResult& result, double eps,
    std::size_t max_constraints = 2'000'000);

}  // namespace osched
