// Lemma 4 verifier: the dual solution emitted by the Theorem 1 scheduler is
// feasible constraint by constraint.
//
// Dual constraint, for every machine i, job j and time t >= r_j:
//   lambda_j / p_ij  <=  (t - r_j)/p_ij + 1 + beta_i(t),
// with beta_i(t) = eps/(1+eps)^2 * (|U_i(t)| + |V_i(t)|). A job dispatched
// to machine i occupies U_i from its release to its completion/rejection and
// V_i from there to its definitive finish C~_j, so |U_i(t)| + |V_i(t)| is
// simply the count of jobs with r <= t < C~ on machine i.
//
// For fixed (i, j) the RHS grows linearly in t except at C~ breakpoints
// where beta steps down, so it suffices to check t = r_j and t = each C~
// (the instants just after each drop). The checker does exactly that — an
// INDEPENDENT re-derivation from the schedule record; it shares no state
// with the scheduler's own accounting.
//
// The checker is a template over the Store it reads the instance through:
// the Instance façade of any storage backend, or one of the per-backend
// views of instance/processing_store.hpp — only job / eligible_machines /
// processing_unchecked are touched, the surface every store answers with
// identical values.
#pragma once

#include <algorithm>
#include <vector>

#include "core/flow/rejection_flow.hpp"
#include "instance/instance.hpp"

namespace osched {

struct DualCheckReport {
  /// max over all checked constraints of (LHS - RHS); <= 0 means feasible.
  double max_violation = -1e300;
  std::size_t constraints_checked = 0;

  bool feasible(double tolerance = 1e-7) const {
    return max_violation <= tolerance;
  }
};

/// `eps` must be the epsilon the run used. For n*m*n larger than
/// max_constraints the (i, j) pairs are subsampled deterministically.
template <class Store>
DualCheckReport check_flow_dual_feasibility(
    const Store& store, const RejectionFlowResult& result, double eps,
    std::size_t max_constraints = 2'000'000) {
  OSCHED_CHECK_EQ(result.schedule.num_jobs(), store.num_jobs());
  OSCHED_CHECK_EQ(result.lambda.size(), store.num_jobs());
  const std::size_t n = store.num_jobs();
  const std::size_t m = store.num_machines();
  const double beta_scale = eps / ((1.0 + eps) * (1.0 + eps));

  // Per machine: residence intervals [r, C~) of the jobs dispatched to it.
  struct Residence {
    Time begin;
    Time end;
  };
  std::vector<std::vector<Residence>> residence(m);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = result.schedule.record(j);
    OSCHED_CHECK(rec.machine != kInvalidMachine);
    residence[static_cast<std::size_t>(rec.machine)].push_back(
        Residence{store.job(j).release, result.definitive_finish[idx]});
  }

  // occupancy_i(t) = #{l on i : r_l <= t < C~_l}.
  auto occupancy = [&](MachineId i, Time t) {
    std::size_t count = 0;
    for (const Residence& res : residence[static_cast<std::size_t>(i)]) {
      if (res.begin <= t + kTimeEps && t < res.end - kTimeEps) ++count;
    }
    return count;
  };

  // Candidate times per machine: every C~ (just after the step-down) plus
  // each job's own release (handled per pair below).
  std::vector<std::vector<Time>> machine_breaks(m);
  for (std::size_t i = 0; i < m; ++i) {
    machine_breaks[i].reserve(residence[i].size());
    for (const Residence& res : residence[i]) {
      machine_breaks[i].push_back(res.end);
    }
    std::sort(machine_breaks[i].begin(), machine_breaks[i].end());
  }

  DualCheckReport report;
  // Deterministic subsampling of jobs when the full check is too large.
  const std::size_t checks_per_pair = 2 + n;  // r_j + all breakpoints (worst)
  std::size_t job_stride = 1;
  while (n / job_stride * m * checks_per_pair > max_constraints &&
         job_stride < n) {
    ++job_stride;
  }

  for (std::size_t idx = 0; idx < n; idx += job_stride) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = store.job(j);
    const double lambda_j = result.lambda[idx];
    for (const MachineId machine : store.eligible_machines(j)) {
      const auto i = static_cast<std::size_t>(machine);
      const Work p = store.processing_unchecked(machine, j);

      auto check_at = [&](Time t) {
        if (t < job.release) return;
        const double lhs = lambda_j / p;
        const double rhs =
            (t - job.release) / p + 1.0 +
            beta_scale * static_cast<double>(occupancy(machine, t));
        report.max_violation = std::max(report.max_violation, lhs - rhs);
        ++report.constraints_checked;
      };

      check_at(job.release);
      for (Time t : machine_breaks[i]) check_at(t);
    }
  }
  return report;
}

}  // namespace osched
