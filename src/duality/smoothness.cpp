#include "duality/smoothness.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace osched {

double smooth_inequality_lhs(const std::vector<double>& a,
                             const std::vector<double>& b, double alpha) {
  OSCHED_CHECK_EQ(a.size(), b.size());
  double lhs = 0.0;
  double prefix = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    prefix += a[i];
    lhs += std::pow(b[i] + prefix, alpha) - std::pow(prefix, alpha);
  }
  return lhs;
}

SmoothnessProbe probe_polynomial_smoothness(double alpha, std::size_t trials,
                                            std::size_t sequence_length,
                                            std::uint64_t seed) {
  OSCHED_CHECK_GE(alpha, 1.0);
  OSCHED_CHECK_GE(sequence_length, 1u);
  util::Rng rng(seed);

  SmoothnessProbe probe;
  probe.alpha = alpha;
  probe.mu = (alpha - 1.0) / alpha;
  probe.claimed_lambda = std::pow(alpha, alpha - 1.0);
  probe.trials = trials;

  double required = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::vector<double> a(sequence_length), b(sequence_length);
    // Adversarial shapes: mix tiny b against large accumulated a (and vice
    // versa), plus scale-free log-uniform magnitudes.
    const int shape = static_cast<int>(rng.uniform_int(0, 3));
    for (std::size_t i = 0; i < sequence_length; ++i) {
      const double log_scale = rng.uniform(-3.0, 3.0);
      const double mag = std::exp(log_scale);
      switch (shape) {
        case 0:  // balanced
          a[i] = mag * rng.next_double();
          b[i] = mag * rng.next_double();
          break;
        case 1:  // b spikes against a flat ramp
          a[i] = 1.0;
          b[i] = (i == sequence_length - 1) ? mag * 10.0 : 0.0;
          break;
        case 2:  // many small b against one huge early a
          a[i] = (i == 0) ? mag * 10.0 : 0.0;
          b[i] = rng.next_double();
          break;
        default:  // sparse both
          a[i] = rng.bernoulli(0.3) ? mag : 0.0;
          b[i] = rng.bernoulli(0.3) ? mag : 0.0;
          break;
      }
    }
    double sum_a = 0.0, sum_b = 0.0;
    for (std::size_t i = 0; i < sequence_length; ++i) {
      sum_a += a[i];
      sum_b += b[i];
    }
    if (sum_b <= 0.0) continue;
    const double lhs = smooth_inequality_lhs(a, b, alpha);
    const double needed =
        (lhs - probe.mu * std::pow(sum_a, alpha)) / std::pow(sum_b, alpha);
    required = std::max(required, needed);
  }
  probe.required_lambda = required;
  return probe;
}

}  // namespace osched
