#include "duality/flow_dual_check.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace osched {

DualCheckReport check_flow_dual_feasibility(const Instance& instance,
                                            const RejectionFlowResult& result,
                                            double eps,
                                            std::size_t max_constraints) {
  OSCHED_CHECK_EQ(result.schedule.num_jobs(), instance.num_jobs());
  OSCHED_CHECK_EQ(result.lambda.size(), instance.num_jobs());
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  const double beta_scale = eps / ((1.0 + eps) * (1.0 + eps));

  // Per machine: residence intervals [r, C~) of the jobs dispatched to it.
  struct Residence {
    Time begin;
    Time end;
  };
  std::vector<std::vector<Residence>> residence(m);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = result.schedule.record(j);
    OSCHED_CHECK(rec.machine != kInvalidMachine);
    residence[static_cast<std::size_t>(rec.machine)].push_back(
        Residence{instance.job(j).release, result.definitive_finish[idx]});
  }

  // occupancy_i(t) = #{l on i : r_l <= t < C~_l}.
  auto occupancy = [&](MachineId i, Time t) {
    std::size_t count = 0;
    for (const Residence& res : residence[static_cast<std::size_t>(i)]) {
      if (res.begin <= t + kTimeEps && t < res.end - kTimeEps) ++count;
    }
    return count;
  };

  // Candidate times per machine: every C~ (just after the step-down) plus
  // each job's own release (handled per pair below).
  std::vector<std::vector<Time>> machine_breaks(m);
  for (std::size_t i = 0; i < m; ++i) {
    machine_breaks[i].reserve(residence[i].size());
    for (const Residence& res : residence[i]) {
      machine_breaks[i].push_back(res.end);
    }
    std::sort(machine_breaks[i].begin(), machine_breaks[i].end());
  }

  DualCheckReport report;
  // Deterministic subsampling of jobs when the full check is too large.
  const std::size_t checks_per_pair = 2 + n;  // r_j + all breakpoints (worst)
  std::size_t job_stride = 1;
  while (n / job_stride * m * checks_per_pair > max_constraints && job_stride < n) {
    ++job_stride;
  }

  for (std::size_t idx = 0; idx < n; idx += job_stride) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = instance.job(j);
    const double lambda_j = result.lambda[idx];
    for (const MachineId machine : instance.eligible_machines(j)) {
      const auto i = static_cast<std::size_t>(machine);
      const Work p = instance.processing_unchecked(machine, j);

      auto check_at = [&](Time t) {
        if (t < job.release) return;
        const double lhs = lambda_j / p;
        const double rhs = (t - job.release) / p + 1.0 +
                           beta_scale * static_cast<double>(occupancy(machine, t));
        report.max_violation = std::max(report.max_violation, lhs - rhs);
        ++report.constraints_checked;
      };

      check_at(job.release);
      for (Time t : machine_breaks[i]) check_at(t);
    }
  }
  return report;
}

}  // namespace osched
