#include "duality/fractional_weight.hpp"

#include <algorithm>

namespace osched {

FractionalWeightProfile::FractionalWeightProfile(const Instance& instance,
                                                 const EnergyFlowResult& result) {
  OSCHED_CHECK_EQ(result.schedule.num_jobs(), instance.num_jobs());
  OSCHED_CHECK_EQ(result.definitive_finish.size(), instance.num_jobs());
  pieces_.reserve(instance.num_jobs());
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = result.schedule.record(j);
    const Job& job = instance.job(j);
    OSCHED_CHECK(rec.started);
    Piece piece;
    piece.machine = rec.machine;
    piece.release = job.release;
    piece.start = rec.start;
    piece.end = rec.end;
    piece.definitive = result.definitive_finish[idx];
    piece.w = job.weight;
    piece.p = instance.processing(rec.machine, j);
    piece.speed = rec.speed;
    piece.q_end =
        rec.completed()
            ? 0.0
            : std::max(0.0, piece.p - rec.speed * (rec.end - rec.start));
    pieces_.push_back(piece);
  }
}

double FractionalWeightProfile::job_weight_at(JobId j, Time t) const {
  const Piece& piece = pieces_[static_cast<std::size_t>(j)];
  if (t < piece.release || t >= piece.definitive) return 0.0;
  if (t < piece.start) return piece.w;
  if (t < piece.end) {
    const Work q = piece.p - piece.speed * (t - piece.start);
    return piece.w * std::max(0.0, q) / piece.p;
  }
  return piece.w * piece.q_end / piece.p;
}

double FractionalWeightProfile::machine_weight_at(MachineId i, Time t) const {
  double total = 0.0;
  for (std::size_t idx = 0; idx < pieces_.size(); ++idx) {
    if (pieces_[idx].machine == i) {
      total += job_weight_at(static_cast<JobId>(idx), t);
    }
  }
  return total;
}

double FractionalWeightProfile::total_weight_at(Time t) const {
  double total = 0.0;
  for (std::size_t idx = 0; idx < pieces_.size(); ++idx) {
    total += job_weight_at(static_cast<JobId>(idx), t);
  }
  return total;
}

std::vector<Time> FractionalWeightProfile::breakpoints() const {
  std::vector<Time> times;
  times.reserve(pieces_.size() * 4);
  for (const Piece& piece : pieces_) {
    times.push_back(piece.release);
    times.push_back(piece.start);
    times.push_back(piece.end);
    times.push_back(piece.definitive);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace osched
