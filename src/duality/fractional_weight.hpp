// Fractional-weight reconstruction for the Theorem 2 analysis (and the
// occupancy reconstruction for Theorem 1's Corollary 1).
//
// V_i(t) — the total fractional weight of jobs on machine i that are not
// yet definitively finished — is the quantity behind the dual variable
// u_i(t) (Lemma 6) and the monotonicity statement of Lemma 5. This helper
// re-derives it from a finished run's schedule records, independently of
// the scheduler's internal accounting, for use by the dual checker and the
// property tests.
#pragma once

#include <vector>

#include "core/energy_flow/energy_flow.hpp"
#include "instance/instance.hpp"

namespace osched {

class FractionalWeightProfile {
 public:
  FractionalWeightProfile(const Instance& instance,
                          const EnergyFlowResult& result);

  /// Fractional weight of job j at time t: w while waiting, w*q(t)/p while
  /// running, the frozen residue w*q_end/p until the definitive finish C~,
  /// then 0.
  double job_weight_at(JobId j, Time t) const;

  /// V_i(t): sum over the jobs dispatched to machine i.
  double machine_weight_at(MachineId i, Time t) const;

  /// Sum over all machines.
  double total_weight_at(Time t) const;

  /// All structural breakpoints (releases, starts, ends, definitive
  /// finishes), sorted and deduplicated — the times where V changes slope.
  std::vector<Time> breakpoints() const;

 private:
  struct Piece {
    MachineId machine;
    Time release, start, end, definitive;
    Weight w;
    Work p;
    Work q_end;
    Speed speed;
  };
  std::vector<Piece> pieces_;
};

}  // namespace osched
