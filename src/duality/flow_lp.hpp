// Time-indexed LP for total flow time (section 2 of the paper): primal
// value of a concrete schedule and the factor-2 relationship the analysis
// rests on.
//
// The primal objective charges each executed unit of job j at time t with
// ((t - r_j)/p_ij + 1) dt; for a non-preemptive execution of length p
// starting at S this integrates to (S - r_j) + p/2 + p = F_j + p/2, where
// F_j = S + p - r_j is the flow time. Hence for any schedule
//   primal = sum_j (F_j + p_j/2)  with  flow <= primal <= 2 * flow,
// which is exactly why a feasible dual value D certifies OPT >= D/2.
#pragma once

#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched {

/// Primal LP value of a completed schedule (jobs that were rejected do not
/// contribute: their coverage constraint is dropped in the rejection model).
double flow_lp_primal_value(const Schedule& schedule, const Instance& instance);

}  // namespace osched
