#include "duality/flow_lp.hpp"

namespace osched {

double flow_lp_primal_value(const Schedule& schedule, const Instance& instance) {
  double total = 0.0;
  for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = schedule.record(j);
    if (!rec.completed()) continue;
    const Job& job = instance.job(j);
    const Work p = instance.processing(rec.machine, j) / rec.speed;
    // integral over [S, S+p) of ((t - r)/p + 1) dt = (S - r) + p/2 + p.
    total += (rec.start - job.release) + 1.5 * p;
  }
  return total;
}

}  // namespace osched
