#include "duality/config_dual_check.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace osched {

ConfigDualCheckReport check_config_dual_feasibility(
    const Instance& instance, const ConfigPDOptions& options,
    std::size_t config_samples_per_machine, std::uint64_t seed) {
  const std::vector<double> alphas =
      resolve_machine_alphas(options, instance.num_machines());
  std::vector<PolynomialPower> powers;
  powers.reserve(alphas.size());
  for (double alpha : alphas) powers.emplace_back(alpha);
  const double alpha_max = *std::max_element(alphas.begin(), alphas.end());
  const SmoothnessParams smooth = polynomial_smoothness(alpha_max);

  // Replay the algorithm, capturing for every job the beta value of each of
  // its strategies against the machine profiles at the job's arrival.
  struct RecordedStrategy {
    Strategy strategy;
    double beta;  ///< marginal at arrival / lambda
  };
  std::vector<std::vector<RecordedStrategy>> recorded(instance.num_jobs());
  std::vector<double> delta(instance.num_jobs(), 0.0);

  ConfigDualCheckReport report;

  const auto observer = [&](const ArrivalObservation& obs) {
    const auto idx = static_cast<std::size_t>(obs.job);
    const Work dummy = 0.0;
    (void)dummy;
    recorded[idx].reserve(obs.strategies->size());
    double min_beta = 1e300;
    for (const Strategy& s : *obs.strategies) {
      const Work p = instance.processing(s.machine, obs.job);
      const Time end = s.start + s.duration(p);
      // Independent beta derivation: copy the profile, add, integrate —
      // deliberately NOT marginal_cost (the algorithm's own path).
      const SpeedProfile& pre =
          (*obs.profiles)[static_cast<std::size_t>(s.machine)];
      SpeedProfile with = pre;
      with.add(s.start, end, s.speed);
      const PolynomialPower& machine_power =
          powers[static_cast<std::size_t>(s.machine)];
      const double marginal =
          with.total_cost(machine_power) - pre.total_cost(machine_power);
      const double beta = marginal / smooth.lambda;
      recorded[idx].push_back({s, beta});
      min_beta = std::min(min_beta, beta);
    }
    delta[idx] = obs.chosen_marginal / smooth.lambda;
    // (a) delta_j <= beta_ijk for every strategy; tightest at the minimum.
    report.max_delta_violation =
        std::max(report.max_delta_violation, delta[idx] - min_beta);
    report.strategies_checked += recorded[idx].size();
  };

  const ConfigPDResult result =
      run_config_primal_dual(instance, options, observer);

  // (b) configuration constraints on sampled A per machine.
  util::Rng rng(seed);
  for (std::size_t i = 0; i < instance.num_machines(); ++i) {
    const double f_final = result.profiles[i].total_cost(powers[i]);
    const double gamma_i = -(smooth.mu / smooth.lambda) * f_final;
    for (std::size_t sample = 0; sample < config_samples_per_machine; ++sample) {
      SpeedProfile config_profile;
      double beta_sum = 0.0;
      bool any = false;
      for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
        if (!rng.bernoulli(0.5)) continue;
        // Candidate strategies of this job on machine i.
        std::vector<const RecordedStrategy*> on_machine;
        for (const RecordedStrategy& rs : recorded[idx]) {
          if (static_cast<std::size_t>(rs.strategy.machine) == i) {
            on_machine.push_back(&rs);
          }
        }
        if (on_machine.empty()) continue;
        const RecordedStrategy& pick = *on_machine[rng.index(on_machine.size())];
        const Work p = instance.processing(pick.strategy.machine,
                                           static_cast<JobId>(idx));
        config_profile.add(pick.strategy.start,
                           pick.strategy.start + pick.strategy.duration(p),
                           pick.strategy.speed);
        beta_sum += pick.beta;
        any = true;
      }
      if (!any) continue;
      const double f_a = config_profile.total_cost(powers[i]);
      const double violation = (gamma_i + beta_sum - f_a) / std::max(1.0, f_a);
      report.max_config_violation =
          std::max(report.max_config_violation, violation);
      ++report.configs_checked;
    }
  }
  return report;
}

}  // namespace osched
