// Lemma 6 verifier: the dual solution of the Theorem 2 scheduler is
// feasible.
//
// Dual constraint, for every machine i, job j and time t >= r_j:
//   lambda_j / p_ij <= delta_ij (t - r_j + p_ij) + alpha u_i(t)^{alpha-1}
//                      + alpha/(gamma(alpha-1)) w_j^{(alpha-1)/alpha},
// with delta_ij = w_j / p_ij and
//   u_i(t) = (eps / (gamma (1+eps)(alpha-1)))^{1/(alpha-1)} V_i(t)^{1/alpha},
// where V_i(t) is the machine's total fractional weight: a job contributes
// its full weight while waiting, w * q(t)/p while running (q = remaining
// volume) and its frozen residue w * q_end/p from completion/rejection to
// its definitive finish C~.
//
// Unlike Lemma 4's beta, u_i(t) is not monotone in t (completions drain V),
// so the checker samples all structural breakpoints (releases, starts,
// completions, definitive finishes) plus deterministic pseudo-random times.
#pragma once

#include "core/energy_flow/energy_flow.hpp"
#include "duality/flow_dual_check.hpp"  // DualCheckReport
#include "instance/instance.hpp"

namespace osched {

DualCheckReport check_energy_flow_dual_feasibility(
    const Instance& instance, const EnergyFlowResult& result,
    const EnergyFlowOptions& options, std::size_t random_samples_per_machine = 64,
    std::size_t max_constraints = 2'000'000);

}  // namespace osched
