// Lemma 6 verifier: the dual solution of the Theorem 2 scheduler is
// feasible.
//
// Dual constraint, for every machine i, job j and time t >= r_j:
//   lambda_j / p_ij <= delta_ij (t - r_j + p_ij) + alpha u_i(t)^{alpha-1}
//                      + alpha/(gamma(alpha-1)) w_j^{(alpha-1)/alpha},
// with delta_ij = w_j / p_ij and
//   u_i(t) = (eps / (gamma (1+eps)(alpha-1)))^{1/(alpha-1)} V_i(t)^{1/alpha},
// where V_i(t) is the machine's total fractional weight: a job contributes
// its full weight while waiting, w * q(t)/p while running (q = remaining
// volume) and its frozen residue w * q_end/p from completion/rejection to
// its definitive finish C~.
//
// Unlike Lemma 4's beta, u_i(t) is not monotone in t (completions drain V),
// so the checker samples all structural breakpoints (releases, starts,
// completions, definitive finishes) plus deterministic pseudo-random times.
//
// Templated over the Store like check_flow_dual_feasibility: any storage
// backend's Instance façade or per-backend view works — the checker only
// touches the shared accessor surface.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/energy_flow/energy_flow.hpp"
#include "duality/flow_dual_check.hpp"  // DualCheckReport
#include "instance/instance.hpp"
#include "util/rng.hpp"

namespace osched {

template <class Store>
DualCheckReport check_energy_flow_dual_feasibility(
    const Store& store, const EnergyFlowResult& result,
    const EnergyFlowOptions& options,
    std::size_t random_samples_per_machine = 64,
    std::size_t max_constraints = 2'000'000) {
  OSCHED_CHECK_EQ(result.schedule.num_jobs(), store.num_jobs());
  const std::size_t n = store.num_jobs();
  const std::size_t m = store.num_machines();
  const double alpha = options.alpha;
  const double gamma = result.gamma;
  const double u_coeff = std::pow(
      options.epsilon / (gamma * (1.0 + options.epsilon) * (alpha - 1.0)),
      1.0 / (alpha - 1.0));

  // Fractional-weight pieces per machine.
  struct Piece {
    Time release, start, end, definitive;
    Weight w;
    Work p;        ///< volume on its machine
    Work q_end;    ///< remaining volume at completion/rejection
    Speed speed;
  };
  std::vector<std::vector<Piece>> pieces(m);
  std::vector<std::vector<Time>> breaks(m);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = result.schedule.record(j);
    const Job& job = store.job(j);
    const Work p = store.processing(rec.machine, j);
    Piece piece;
    piece.release = job.release;
    piece.start = rec.start;
    piece.end = rec.end;
    piece.definitive = result.definitive_finish[idx];
    piece.w = job.weight;
    piece.p = p;
    piece.speed = rec.speed;
    piece.q_end = rec.completed()
                      ? 0.0
                      : std::max(0.0, p - rec.speed * (rec.end - rec.start));
    const auto machine = static_cast<std::size_t>(rec.machine);
    pieces[machine].push_back(piece);
    breaks[machine].push_back(piece.release);
    breaks[machine].push_back(piece.start);
    breaks[machine].push_back(piece.end);
    breaks[machine].push_back(piece.definitive);
  }

  auto fractional_weight_at = [&](const Piece& piece, Time t) -> double {
    if (t < piece.release || t >= piece.definitive) return 0.0;
    if (t < piece.start) return piece.w;
    if (t < piece.end) {
      const Work q = piece.p - piece.speed * (t - piece.start);
      return piece.w * std::max(0.0, q) / piece.p;
    }
    return piece.w * piece.q_end / piece.p;
  };
  auto v_at = [&](std::size_t i, Time t) {
    double v = 0.0;
    for (const Piece& piece : pieces[i]) v += fractional_weight_at(piece, t);
    return v;
  };

  // Sample times per machine: breakpoints + deterministic pseudo-random.
  util::Rng rng(0xD0A1ULL);
  Time horizon = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (Time t : breaks[i]) horizon = std::max(horizon, t);
  }
  std::vector<std::vector<Time>> sample_times(m);
  for (std::size_t i = 0; i < m; ++i) {
    sample_times[i] = breaks[i];
    for (std::size_t s = 0; s < random_samples_per_machine; ++s) {
      sample_times[i].push_back(rng.uniform(0.0, horizon + 1.0));
    }
    std::sort(sample_times[i].begin(), sample_times[i].end());
    sample_times[i].erase(
        std::unique(sample_times[i].begin(), sample_times[i].end()),
        sample_times[i].end());
  }

  DualCheckReport report;
  std::size_t job_stride = 1;
  {
    std::size_t per_pair = 0;
    for (std::size_t i = 0; i < m; ++i) per_pair += sample_times[i].size();
    while (job_stride < n && (n / job_stride) * per_pair > max_constraints) {
      ++job_stride;
    }
  }

  const double w_term_coeff = alpha / (gamma * (alpha - 1.0));
  for (std::size_t idx = 0; idx < n; idx += job_stride) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = store.job(j);
    const double lambda_j = result.lambda[idx];
    const double w_term =
        w_term_coeff * std::pow(job.weight, (alpha - 1.0) / alpha);
    for (const MachineId machine : store.eligible_machines(j)) {
      const auto i = static_cast<std::size_t>(machine);
      const Work p = store.processing_unchecked(machine, j);
      const double delta_ij = job.weight / p;
      const double lhs = lambda_j / p;
      for (Time t : sample_times[i]) {
        if (t < job.release) continue;
        const double u = u_coeff * std::pow(v_at(i, t), 1.0 / alpha);
        const double rhs = delta_ij * (t - job.release + p) +
                           alpha * std::pow(u, alpha - 1.0) + w_term;
        report.max_violation = std::max(report.max_violation, lhs - rhs);
        ++report.constraints_checked;
      }
      // Also the job's own release instant.
      const double u = u_coeff * std::pow(v_at(i, job.release), 1.0 / alpha);
      const double rhs =
          delta_ij * p + alpha * std::pow(u, alpha - 1.0) + w_term;
      report.max_violation = std::max(report.max_violation, lhs - rhs);
      ++report.constraints_checked;
    }
  }
  return report;
}

}  // namespace osched
