#include "metrics/ratio.hpp"

#include <cmath>

namespace osched {

double theorem1_ratio_bound(double eps) {
  OSCHED_CHECK_GT(eps, 0.0);
  const double factor = (1.0 + eps) / eps;
  return 2.0 * factor * factor;
}

double theorem1_rejection_budget(double eps) {
  OSCHED_CHECK_GT(eps, 0.0);
  return 2.0 * eps;
}

double theorem2_ratio_bound(double eps, double alpha) {
  OSCHED_CHECK_GT(eps, 0.0);
  OSCHED_CHECK_GT(alpha, 1.0);
  // The closed form in the proof of Theorem 2 (with the paper's choice of
  // gamma) degenerates for alpha <= 2 (its denominator contains
  // ln(alpha-1)). The stated guarantee is the asymptotic envelope
  // O((1+1/eps)^{alpha/(alpha-1)}); we report the exact closed form where it
  // is meaningful and the envelope otherwise.
  const double envelope = std::pow(1.0 + 1.0 / eps, alpha / (alpha - 1.0));
  if (alpha > 2.0 + 1e-9) {
    const double frac = eps / (1.0 + eps);
    const double numerator = 2.0 + 2.0 * std::pow((1.0 + eps) / eps, 1.0 / (alpha - 1.0)) +
                             frac * frac;
    const double denominator =
        frac * std::log(alpha - 1.0) / (alpha - 1.0 + std::log(alpha - 1.0));
    if (denominator > 0.0) return numerator / denominator;
  }
  return envelope;
}

}  // namespace osched
