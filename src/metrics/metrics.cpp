#include "metrics/metrics.hpp"

#include <sstream>

namespace osched {

ObjectiveReport evaluate(const Schedule& schedule, const Instance& instance,
                         const PowerFunction* power) {
  ObjectiveReport report;
  report.num_jobs = instance.num_jobs();
  report.num_completed = schedule.num_completed();
  report.num_rejected = schedule.num_rejected();
  if (report.num_jobs > 0) {
    report.rejected_fraction = static_cast<double>(report.num_rejected) /
                               static_cast<double>(report.num_jobs);
  }
  const Weight total_weight = instance.total_weight();
  if (total_weight > 0.0) {
    report.rejected_weight_fraction =
        schedule.rejected_weight(instance) / total_weight;
  }
  report.total_flow = schedule.total_flow(instance, /*include_rejected=*/true);
  report.completed_flow = schedule.total_flow(instance, /*include_rejected=*/false);
  report.total_weighted_flow =
      schedule.total_weighted_flow(instance, /*include_rejected=*/true);
  report.max_flow = schedule.max_flow(instance, /*include_rejected=*/true);
  report.makespan = schedule.makespan();
  if (power != nullptr) {
    report.energy = compute_energy(schedule, instance, *power);
  }
  return report;
}

std::string to_string(const ObjectiveReport& report) {
  std::ostringstream out;
  out << "jobs=" << report.num_jobs << " completed=" << report.num_completed
      << " rejected=" << report.num_rejected << " (" << report.rejected_fraction
      << " by count, " << report.rejected_weight_fraction << " by weight)"
      << " flow=" << report.total_flow << " wflow=" << report.total_weighted_flow
      << " maxflow=" << report.max_flow << " energy=" << report.energy;
  return out.str();
}

}  // namespace osched
