// Competitive-ratio estimation.
//
// The true offline OPT is NP-hard at scale, so measured ratios are computed
// against the strongest available *certified lower bound*. Because the bound
// never exceeds OPT, the measured ratio ALG/LB upper-bounds ALG/OPT: when the
// measurement is below the theorem's bound, the theorem's claim is confirmed
// on that instance (the sound direction for a reproduction).
#pragma once

#include <string>

#include "util/check.hpp"

namespace osched {

struct RatioEstimate {
  double algorithm_cost = 0.0;
  double lower_bound = 0.0;  ///< certified LB on OPT (dual/2, witness, or exact)
  std::string lower_bound_kind;

  double ratio() const {
    OSCHED_CHECK_GT(lower_bound, 0.0) << "ratio against a zero lower bound";
    return algorithm_cost / lower_bound;
  }
};

/// Theorem 1's bound 2((1+eps)/eps)^2.
double theorem1_ratio_bound(double eps);

/// Theorem 1's rejection budget: at most 2*eps*n jobs.
double theorem1_rejection_budget(double eps);

/// Theorem 2's bound: the paper's closed form
///   (2 + alpha/(gamma(alpha-1)) + gamma^alpha... ) simplified to
///   O((1+1/eps)^{alpha/(alpha-1)}). We expose the explicit ratio the
///   paper derives right before choosing gamma:
///   numerator 2 + 2((1+eps)/eps)^{1/(alpha-1)} + (eps/(1+eps))^2 over
///   denominator (eps/(1+eps)) * ln(alpha-1)/(alpha-1+ln(alpha-1)).
double theorem2_ratio_bound(double eps, double alpha);

}  // namespace osched
