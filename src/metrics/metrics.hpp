// Objective reports computed from a Schedule + Instance pair.
#pragma once

#include <string>

#include "instance/instance.hpp"
#include "instance/power.hpp"
#include "sim/schedule.hpp"

namespace osched {

/// Everything the experiment harnesses report about one run.
struct ObjectiveReport {
  std::size_t num_jobs = 0;
  std::size_t num_completed = 0;
  std::size_t num_rejected = 0;
  double rejected_fraction = 0.0;         ///< by count
  double rejected_weight_fraction = 0.0;  ///< by weight

  Time total_flow = 0.0;           ///< includes rejected jobs' partial flow
  Time completed_flow = 0.0;       ///< completed jobs only
  Time total_weighted_flow = 0.0;  ///< includes rejected
  Time max_flow = 0.0;
  Time makespan = 0.0;

  Energy energy = 0.0;  ///< 0 unless computed with a power function
  double flow_plus_energy() const { return total_weighted_flow + energy; }
};

/// Computes the report; pass a power function for speed-scaling problems.
ObjectiveReport evaluate(const Schedule& schedule, const Instance& instance,
                         const PowerFunction* power = nullptr);

std::string to_string(const ObjectiveReport& report);

}  // namespace osched
