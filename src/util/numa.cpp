#include "util/numa.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace osched::util {

namespace {

/// Parses one decimal id chunk; returns -1 on anything non-numeric.
int parse_cpu_id(std::string_view chunk) {
  int value = 0;
  bool any = false;
  for (const char c : chunk) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
    any = true;
    if (value > 1 << 22) return -1;  // implausible id; corrupt input
  }
  return any ? value : -1;
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

NumaTopology probe_topology() {
  NumaTopology topology;
#if defined(__linux__)
  // Nodes are numbered densely from 0 in every kernel this targets; a gap
  // simply ends the walk (offline nodes beyond it cannot host workers
  // anyway). Probing by open() avoids a directory-listing dependency.
  for (int node = 0;; ++node) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in.is_open()) break;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<int> cpus = parse_cpulist(buffer.str());
    if (!cpus.empty()) topology.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topology.node_cpus.empty()) {
    // Masked sysfs or non-Linux: one node covering every CPU the runtime
    // reports (>= 1 by definition), where pinning degenerates to a no-op.
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> cpus(n);
    for (unsigned i = 0; i < n; ++i) cpus[i] = static_cast<int>(i);
    topology.node_cpus.push_back(std::move(cpus));
  }
  return topology;
}

}  // namespace

std::vector<int> parse_cpulist(std::string_view text) {
  std::vector<int> cpus;
  std::string_view rest = trimmed(text);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view chunk = trimmed(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (chunk.empty()) continue;
    const std::size_t dash = chunk.find('-');
    if (dash == std::string_view::npos) {
      const int id = parse_cpu_id(chunk);
      if (id >= 0) cpus.push_back(id);
      continue;
    }
    const int lo = parse_cpu_id(chunk.substr(0, dash));
    const int hi = parse_cpu_id(chunk.substr(dash + 1));
    if (lo < 0 || hi < lo) continue;  // malformed range: skip, keep the rest
    for (int id = lo; id <= hi; ++id) cpus.push_back(id);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

const NumaTopology& numa_topology() {
  static const NumaTopology topology = probe_topology();
  return topology;
}

bool pin_current_thread_to_node(std::size_t node) {
  const NumaTopology& topology = numa_topology();
  if (node >= topology.num_nodes()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : topology.node_cpus[node]) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (CPU_COUNT(&set) == 0) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace osched::util
