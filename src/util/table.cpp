#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/check.hpp"

namespace osched::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == '%' || c == 'x')) {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::add_row(std::vector<std::string> cells) {
  OSCHED_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_line = [&](const std::vector<std::string>& cells, bool align_right) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      out << ' ';
      const bool right = align_right && looks_numeric(cells[c]);
      if (right) out << std::string(pad, ' ');
      out << cells[c];
      if (!right) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  print_line(headers_, /*align_right=*/false);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) print_line(row, /*align_right=*/true);
  out << '\n';
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n### " << title << "\n\n";
}

}  // namespace osched::util
