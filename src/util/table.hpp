// Console table rendering for the experiment harnesses.
//
// Every bench binary prints its result as one or more of these tables, in
// the same rows/series layout recorded in EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace osched::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Variadic convenience accepting strings and numbers.
  template <typename... Ts>
  void row(const Ts&... cells) {
    add_row({cell(cells)...});
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns, a header separator, and a trailing blank
  /// line. Numeric-looking cells are right-aligned.
  void print(std::ostream& out) const;

  /// Formats a double with `digits` significant digits (used by harnesses
  /// for uniform numeric formatting).
  static std::string num(double v, int digits = 4);

 private:
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(double v) { return num(v); }
  static std::string cell(int v) { return std::to_string(v); }
  static std::string cell(long v) { return std::to_string(v); }
  static std::string cell(long long v) { return std::to_string(v); }
  static std::string cell(unsigned v) { return std::to_string(v); }
  static std::string cell(unsigned long v) { return std::to_string(v); }
  static std::string cell(unsigned long long v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "### title" section header the harnesses use between tables.
void print_section(std::ostream& out, const std::string& title);

}  // namespace osched::util
