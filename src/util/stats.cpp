#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace osched::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  OSCHED_CHECK_GT(n_, 0u) << "min of empty sample";
  return min_;
}

double RunningStats::max() const {
  OSCHED_CHECK_GT(n_, 0u) << "max of empty sample";
  return max_;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Summary::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::min() const {
  OSCHED_CHECK(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Summary::max() const {
  OSCHED_CHECK(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Summary::quantile(double q) const {
  OSCHED_CHECK(!values_.empty());
  OSCHED_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    OSCHED_CHECK_GT(v, 0.0) << "geometric mean requires positive values";
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  OSCHED_CHECK_EQ(x.size(), y.size());
  OSCHED_CHECK_GE(x.size(), 2u);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    OSCHED_CHECK_GT(x[i], 0.0);
    OSCHED_CHECK_GT(y[i], 0.0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  OSCHED_CHECK_GT(std::abs(denom), 1e-12) << "degenerate x sample";
  return (n * sxy - sx * sy) / denom;
}

}  // namespace osched::util
