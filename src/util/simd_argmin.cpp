#include "util/simd_argmin.hpp"

#include <immintrin.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace osched::util {

const char* to_string(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "?";
}

bool simd_tier_supported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return true;
    case SimdTier::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case SimdTier::kAvx512: return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
}

namespace {

SimdTier detect_tier() {
  SimdTier tier = SimdTier::kScalar;
  if (simd_tier_supported(SimdTier::kAvx512)) {
    tier = SimdTier::kAvx512;
  } else if (simd_tier_supported(SimdTier::kAvx2)) {
    tier = SimdTier::kAvx2;
  }
  // OSCHED_SIMD caps the tier (it can never enable what the CPU lacks):
  // "scalar" pins the reference path, "avx2" keeps 256-bit kernels on
  // AVX-512 hardware. Unrecognized values are ignored — a typo must not
  // silently change the perf tier to scalar.
  if (const char* env = std::getenv("OSCHED_SIMD")) {
    SimdTier cap = tier;
    if (std::strcmp(env, "scalar") == 0) cap = SimdTier::kScalar;
    else if (std::strcmp(env, "avx2") == 0) cap = SimdTier::kAvx2;
    else if (std::strcmp(env, "avx512") == 0) cap = SimdTier::kAvx512;
    if (static_cast<int>(cap) < static_cast<int>(tier)) tier = cap;
  }
  return tier;
}

/// Horizontal min of 4 floats (SSE baseline — callable from every tier).
inline float hmin128(__m128 v) {
  v = _mm_min_ps(v, _mm_movehl_ps(v, v));
  v = _mm_min_ss(v, _mm_shuffle_ps(v, v, 1));
  return _mm_cvtss_f32(v);
}

}  // namespace

SimdTier active_simd_tier() {
  static const SimdTier tier = detect_tier();
  return tier;
}

namespace simd {

// ---------------------------------------------------------------- lb_fill

void lb_fill_scalar(const float* row, const float* pcm, const float* pmp,
                    float coeff, float* lb, std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) {
    const float p = row[i];
    lb[i] = p * coeff + pcm[i] * std::min(p, pmp[i]);
  }
}

__attribute__((target("avx2"))) void lb_fill_avx2(const float* row,
                                                  const float* pcm,
                                                  const float* pmp, float coeff,
                                                  float* lb, std::size_t m) {
  const __m256 vc = _mm256_set1_ps(coeff);
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 p = _mm256_loadu_ps(row + i);
    // mul + add kept separate (no FMA): per-lane identical to the scalar
    // operation sequence.
    const __m256 a = _mm256_mul_ps(p, vc);
    const __m256 b = _mm256_mul_ps(_mm256_loadu_ps(pcm + i),
                                   _mm256_min_ps(p, _mm256_loadu_ps(pmp + i)));
    _mm256_storeu_ps(lb + i, _mm256_add_ps(a, b));
  }
  lb_fill_scalar(row + i, pcm + i, pmp + i, coeff, lb + i, m - i);
}

__attribute__((target("avx512f"))) void lb_fill_avx512(
    const float* row, const float* pcm, const float* pmp, float coeff,
    float* lb, std::size_t m) {
  const __m512 vc = _mm512_set1_ps(coeff);
  std::size_t i = 0;
  for (; i + 16 <= m; i += 16) {
    const __m512 p = _mm512_loadu_ps(row + i);
    const __m512 a = _mm512_mul_ps(p, vc);
    const __m512 b = _mm512_mul_ps(_mm512_loadu_ps(pcm + i),
                                   _mm512_min_ps(p, _mm512_loadu_ps(pmp + i)));
    _mm512_storeu_ps(lb + i, _mm512_add_ps(a, b));
  }
  lb_fill_scalar(row + i, pcm + i, pmp + i, coeff, lb + i, m - i);
}

void lb_fill(const float* row, const float* pcm, const float* pmp, float coeff,
             float* lb, std::size_t m) {
  switch (active_simd_tier()) {
    case SimdTier::kAvx512: return lb_fill_avx512(row, pcm, pmp, coeff, lb, m);
    case SimdTier::kAvx2: return lb_fill_avx2(row, pcm, pmp, coeff, lb, m);
    case SimdTier::kScalar: break;
  }
  return lb_fill_scalar(row, pcm, pmp, coeff, lb, m);
}

// ------------------------------------------------- block_minima_argmin

namespace {

/// Shared locate step: the minimum VALUE is tier-independent (min is exact
/// over NaN-free floats), so every tier resolves the first attaining index
/// with the same block-skipping scan — earlier blocks whose bmin exceeds
/// the minimum cannot contain it.
ArgminResult locate_first(const float* lb, std::size_t m, const float* bmin,
                          std::size_t full, float gmin) {
  for (std::size_t b = 0; b < full; ++b) {
    if (bmin[b] == gmin) {
      std::size_t i = b * 8;
      while (lb[i] != gmin) ++i;
      return ArgminResult{gmin, i};
    }
  }
  for (std::size_t i = full * 8; i < m; ++i) {
    if (lb[i] == gmin) return ArgminResult{gmin, i};
  }
  // Only reachable when no entry equals the FLT_MAX seed (an all-+inf row):
  // index m tells the caller there is no candidate.
  return ArgminResult{gmin, m};
}

}  // namespace

ArgminResult block_minima_argmin_scalar(const float* lb, std::size_t m,
                                        float* bmin) {
  const std::size_t full = m / 8;
  for (std::size_t b = 0; b < full; ++b) {
    const float* chunk = lb + b * 8;
    const float v0 = std::min(chunk[0], chunk[1]);
    const float v1 = std::min(chunk[2], chunk[3]);
    const float v2 = std::min(chunk[4], chunk[5]);
    const float v3 = std::min(chunk[6], chunk[7]);
    bmin[b] = std::min(std::min(v0, v1), std::min(v2, v3));
  }
  float gmin = std::numeric_limits<float>::max();
  for (std::size_t i = full * 8; i < m; ++i) gmin = std::min(gmin, lb[i]);
  for (std::size_t b = 0; b < full; ++b) gmin = std::min(gmin, bmin[b]);
  return locate_first(lb, m, bmin, full, gmin);
}

__attribute__((target("avx2"))) ArgminResult block_minima_argmin_avx2(
    const float* lb, std::size_t m, float* bmin) {
  const std::size_t full = m / 8;
  __m256 acc = _mm256_set1_ps(std::numeric_limits<float>::max());
  for (std::size_t b = 0; b < full; ++b) {
    const __m256 v = _mm256_loadu_ps(lb + b * 8);
    acc = _mm256_min_ps(acc, v);
    const __m128 h = _mm_min_ps(_mm256_castps256_ps128(v),
                                _mm256_extractf128_ps(v, 1));
    bmin[b] = hmin128(h);
  }
  float gmin = hmin128(_mm_min_ps(_mm256_castps256_ps128(acc),
                                  _mm256_extractf128_ps(acc, 1)));
  for (std::size_t i = full * 8; i < m; ++i) gmin = std::min(gmin, lb[i]);
  return locate_first(lb, m, bmin, full, gmin);
}

__attribute__((target("avx512f"))) ArgminResult block_minima_argmin_avx512(
    const float* lb, std::size_t m, float* bmin) {
  const std::size_t full = m / 8;
  const std::size_t pairs = full / 2;  // 16-lane iterations = 2 blocks each
  __m512 acc = _mm512_set1_ps(std::numeric_limits<float>::max());
  for (std::size_t pair = 0; pair < pairs; ++pair) {
    const __m512 v = _mm512_loadu_ps(lb + pair * 16);
    acc = _mm512_min_ps(acc, v);
    const __m128 q0 = _mm512_castps512_ps128(v);
    const __m128 q1 = _mm512_extractf32x4_ps(v, 1);
    const __m128 q2 = _mm512_extractf32x4_ps(v, 2);
    const __m128 q3 = _mm512_extractf32x4_ps(v, 3);
    bmin[pair * 2] = hmin128(_mm_min_ps(q0, q1));
    bmin[pair * 2 + 1] = hmin128(_mm_min_ps(q2, q3));
  }
  float gmin = _mm512_reduce_min_ps(acc);
  if (full % 2 != 0) {  // odd trailing full block: 256-bit-free 8-lane min
    const float* chunk = lb + (full - 1) * 8;
    const __m128 h = _mm_min_ps(_mm_loadu_ps(chunk), _mm_loadu_ps(chunk + 4));
    bmin[full - 1] = hmin128(h);
    gmin = std::min(gmin, bmin[full - 1]);
  }
  for (std::size_t i = full * 8; i < m; ++i) gmin = std::min(gmin, lb[i]);
  return locate_first(lb, m, bmin, full, gmin);
}

ArgminResult block_minima_argmin(const float* lb, std::size_t m, float* bmin) {
  switch (active_simd_tier()) {
    case SimdTier::kAvx512: return block_minima_argmin_avx512(lb, m, bmin);
    case SimdTier::kAvx2: return block_minima_argmin_avx2(lb, m, bmin);
    case SimdTier::kScalar: break;
  }
  return block_minima_argmin_scalar(lb, m, bmin);
}

// --------------------------------------------------- idle_lambda_argmin

IdleArgmin idle_lambda_argmin_scalar(const double* row,
                                     const std::uint32_t* pend_n,
                                     std::size_t m, double epsilon) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = m;
  for (std::size_t i = 0; i < m; ++i) {
    if (pend_n[i] != 0) continue;
    const double p = row[i];
    const double lambda = p / epsilon + p;
    // Strict less + ascending scan = first index attaining the minimum,
    // the lexicographic (lambda, id) rule of the exact idle scan.
    if (lambda < best) {
      best = lambda;
      best_i = i;
    }
  }
  return IdleArgmin{best, best_i};
}

__attribute__((target("avx2"))) IdleArgmin idle_lambda_argmin_avx2(
    const double* row, const std::uint32_t* pend_n, std::size_t m,
    double epsilon) {
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d veps = _mm256_set1_pd(epsilon);
  const __m128i zero32 = _mm_setzero_si128();
  __m256d best = inf;
  __m256i bidx = _mm256_set1_epi64x(-1);
  __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i step = _mm256_set1_epi64x(4);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128i n32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pend_n + i));
    const __m256i idle = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(n32, zero32));
    const __m256d p = _mm256_loadu_pd(row + i);
    // div then add, per-lane the scalar operation sequence (no FMA, no
    // reciprocal-multiply).
    __m256d lambda = _mm256_add_pd(_mm256_div_pd(p, veps), p);
    lambda = _mm256_blendv_pd(inf, lambda, _mm256_castsi256_pd(idle));
    const __m256d lt = _mm256_cmp_pd(lambda, best, _CMP_LT_OQ);
    best = _mm256_blendv_pd(best, lambda, lt);
    bidx = _mm256_castpd_si256(_mm256_blendv_pd(
        _mm256_castsi256_pd(bidx), _mm256_castsi256_pd(idx), lt));
    idx = _mm256_add_epi64(idx, step);
  }
  // Per-lane strict-less kept each lane's FIRST attaining index; the
  // smallest index among the lanes attaining the global minimum is the
  // global first index.
  double vals[4];
  long long idxs[4];
  _mm256_storeu_pd(vals, best);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(idxs), bidx);
  double bl = std::numeric_limits<double>::infinity();
  std::size_t bi = m;
  for (int lane = 0; lane < 4; ++lane) {
    const auto lane_i = static_cast<std::size_t>(idxs[lane]);
    if (vals[lane] < bl || (vals[lane] == bl && lane_i < bi)) {
      bl = vals[lane];
      bi = lane_i;
    }
  }
  for (; i < m; ++i) {  // tail indices exceed every vector index
    if (pend_n[i] != 0) continue;
    const double p = row[i];
    const double lambda = p / epsilon + p;
    if (lambda < bl) {
      bl = lambda;
      bi = i;
    }
  }
  return IdleArgmin{bl, bi};
}

__attribute__((target("avx512f"))) IdleArgmin idle_lambda_argmin_avx512(
    const double* row, const std::uint32_t* pend_n, std::size_t m,
    double epsilon) {
  const __m512d inf = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  const __m512d veps = _mm512_set1_pd(epsilon);
  __m512d best = inf;
  __m512i bidx = _mm512_set1_epi64(-1);
  __m512i idx = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i step = _mm512_set1_epi64(8);
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256i n32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pend_n + i));
    const __mmask8 idle = _mm512_cmpeq_epi64_mask(_mm512_cvtepu32_epi64(n32),
                                                  _mm512_setzero_si512());
    const __m512d p = _mm512_loadu_pd(row + i);
    __m512d lambda = _mm512_add_pd(_mm512_div_pd(p, veps), p);
    lambda = _mm512_mask_blend_pd(idle, inf, lambda);
    const __mmask8 lt = _mm512_cmp_pd_mask(lambda, best, _CMP_LT_OQ);
    best = _mm512_mask_blend_pd(lt, best, lambda);
    bidx = _mm512_mask_blend_epi64(lt, bidx, idx);
    idx = _mm512_add_epi64(idx, step);
  }
  double vals[8];
  long long idxs[8];
  _mm512_storeu_pd(vals, best);
  _mm512_storeu_si512(idxs, bidx);
  double bl = std::numeric_limits<double>::infinity();
  std::size_t bi = m;
  for (int lane = 0; lane < 8; ++lane) {
    const auto lane_i = static_cast<std::size_t>(idxs[lane]);
    if (vals[lane] < bl || (vals[lane] == bl && lane_i < bi)) {
      bl = vals[lane];
      bi = lane_i;
    }
  }
  for (; i < m; ++i) {
    if (pend_n[i] != 0) continue;
    const double p = row[i];
    const double lambda = p / epsilon + p;
    if (lambda < bl) {
      bl = lambda;
      bi = i;
    }
  }
  return IdleArgmin{bl, bi};
}

IdleArgmin idle_lambda_argmin(const double* row, const std::uint32_t* pend_n,
                              std::size_t m, double epsilon) {
  switch (active_simd_tier()) {
    case SimdTier::kAvx512:
      return idle_lambda_argmin_avx512(row, pend_n, m, epsilon);
    case SimdTier::kAvx2:
      return idle_lambda_argmin_avx2(row, pend_n, m, epsilon);
    case SimdTier::kScalar: break;
  }
  return idle_lambda_argmin_scalar(row, pend_n, m, epsilon);
}

}  // namespace simd
}  // namespace osched::util
