// Lock-free multi-producer single-consumer queue of batches.
//
// The shard driver's submission path: producers push whole batches (one
// heap node per batch, never per item) onto a Treiber stack with a single
// CAS; the consumer takes the entire stack with one exchange and reverses
// it, which restores FIFO order per producer. With one producer — the
// driver's documented threading model — the consumer therefore sees
// batches in exactly the order they were pushed, which is what keeps
// sharded outcomes invariant to the worker count.
//
// Parking is the caller's business: the queue itself never blocks, so the
// consumer can poll several queues round-robin and sleep on its own
// condition variable when all of them are empty.
#pragma once

#include <atomic>
#include <utility>
#include <vector>

namespace osched::util {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  ~MpscQueue() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Pushes one value. Lock-free; safe from any number of producer threads.
  void push(T value) {
    Node* node = new Node{nullptr, std::move(value)};
    node->next = head_.load(std::memory_order_relaxed);
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
  }

  /// True when nothing is queued (racy by nature; producers may push at any
  /// moment — callers use it only as a parking heuristic).
  bool empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  /// Single consumer only: appends every queued value to `out` in push
  /// order (per producer) and returns how many were taken.
  std::size_t drain(std::vector<T>& out) {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    // The stack is newest-first; reverse to recover push order.
    Node* reversed = nullptr;
    while (node != nullptr) {
      Node* next = node->next;
      node->next = reversed;
      reversed = node;
      node = next;
    }
    std::size_t taken = 0;
    while (reversed != nullptr) {
      out.push_back(std::move(reversed->value));
      Node* next = reversed->next;
      delete reversed;
      reversed = next;
      ++taken;
    }
    return taken;
  }

 private:
  struct Node {
    Node* next;
    T value;
  };

  std::atomic<Node*> head_{nullptr};
};

}  // namespace osched::util
