// Order-statistic treap augmented with subtree weight sums, stored in a
// contiguous arena.
//
// The flow-time algorithm (Theorem 1) keeps each machine's pending jobs in
// shortest-processing-time order and, per arrival, needs
//   sum of p_il over pending jobs ordered before j, and
//   the count of pending jobs ordered after j,
// to evaluate the dispatch quantity lambda_ij on every machine. This treap
// answers both in O(log n) via (count, weight) subtree augmentation, serves
// the scheduling policy (pop smallest), Rule 2 (find largest) and the random
// victim ablation (kth order statistic).
//
// Hot-path layout: nodes live in one std::vector<Node> addressed by uint32
// indices, with a free list threaded through released slots — an insert
// never calls the allocator once the arena has warmed up, an erase never
// runs a recursive unique_ptr destructor chain, and descents walk memory
// that stays dense in cache. All restructuring (split/merge/erase/pop) is
// iterative.
//
// Priorities come from a deterministic SplitMix64 stream, one draw per
// insert, so runs are exactly reproducible. A treap's shape is a canonical
// function of its (key, priority) set, which makes every aggregate —
// including the floating-point summation order inside stats_less — a pure
// function of the insert/erase history, independent of the restructuring
// algorithm. The arena rewrite is therefore bit-identical to the previous
// pointer-based implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace osched::util {

/// Key must be strictly-totally-ordered by operator< (ties must be broken
/// inside the key, e.g. by job id). WeightFn: double operator()(const Key&).
template <typename Key, typename WeightFn>
class AugmentedTreap {
 public:
  struct PrefixStats {
    std::size_t count = 0;  ///< number of keys strictly less
    double weight = 0.0;    ///< total weight of keys strictly less
  };

  explicit AugmentedTreap(WeightFn weight_fn = WeightFn{},
                          std::uint64_t seed = 0x5eed5eedULL)
      : weight_fn_(std::move(weight_fn)), prio_state_(seed) {}

  std::size_t size() const { return size_; }
  bool empty() const { return root_ == kNull; }
  double total_weight() const {
    return root_ == kNull ? 0.0 : nodes_[root_].weight_sum;
  }

  /// Pre-sizes the arena (and the scratch path stacks) for n keys.
  void reserve(std::size_t n) {
    nodes_.reserve(n);
    path_.reserve(64);
    merge_path_.reserve(64);
  }

  /// Number of arena slots ever allocated (live + free-listed). Exposed so
  /// tests can verify that churn reuses slots instead of growing the arena.
  std::size_t arena_slots() const { return nodes_.size(); }

  /// Address of the root node (nullptr when empty) — a prefetch target for
  /// callers that know a descent is imminent. Valid until the next mutation.
  const void* root_address() const {
    return root_ == kNull ? nullptr : &nodes_[root_];
  }

  /// Inserts a key; aborts on duplicates (keys must be unique).
  void insert(const Key& key) {
    const std::uint32_t fresh = acquire(key);
    // Descend while the existing nodes out-prioritize the new one (ties keep
    // the incumbent on top, matching merge's strict comparison).
    const std::uint64_t prio = nodes_[fresh].priority;
    std::uint32_t* slot = &root_;
    path_.clear();
    while (*slot != kNull && nodes_[*slot].priority >= prio) {
      Node& node = nodes_[*slot];
      if (!(key < node.key)) {
        OSCHED_CHECK(node.key < key) << "duplicate treap key";
        path_.push_back(*slot);
        slot = &node.right;
      } else {
        path_.push_back(*slot);
        slot = &node.left;
      }
    }
    // The new node takes this position; the displaced subtree splits around
    // the key into its children.
    split(*slot, key, &nodes_[fresh].left, &nodes_[fresh].right);
    *slot = fresh;
    pull(fresh);
    pull_path();
    ++size_;
  }

  /// Removes a key; returns false if absent.
  bool erase(const Key& key) {
    std::uint32_t* slot = &root_;
    path_.clear();
    while (*slot != kNull) {
      Node& node = nodes_[*slot];
      if (key < node.key) {
        path_.push_back(*slot);
        slot = &node.left;
      } else if (node.key < key) {
        path_.push_back(*slot);
        slot = &node.right;
      } else {
        break;
      }
    }
    if (*slot == kNull) return false;
    const std::uint32_t victim = *slot;
    *slot = merge(nodes_[victim].left, nodes_[victim].right);
    release(victim);
    pull_path();
    --size_;
    return true;
  }

  bool contains(const Key& key) const {
    std::uint32_t node = root_;
    while (node != kNull) {
      if (key < nodes_[node].key) {
        node = nodes_[node].left;
      } else if (nodes_[node].key < key) {
        node = nodes_[node].right;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Count and weight of keys strictly less than `key`.
  PrefixStats stats_less(const Key& key) const {
    PrefixStats stats;
    std::uint32_t node = root_;
    while (node != kNull) {
      const Node& nd = nodes_[node];
      if (nd.key < key) {
        stats.count += 1 + count_of(nd.left);
        stats.weight += nd.self_weight + weight_of(nd.left);
        node = nd.right;
      } else {
        node = nd.left;
      }
    }
    return stats;
  }

  std::optional<Key> min() const {
    if (root_ == kNull) return std::nullopt;
    std::uint32_t node = root_;
    while (nodes_[node].left != kNull) node = nodes_[node].left;
    return nodes_[node].key;
  }

  std::optional<Key> max() const {
    if (root_ == kNull) return std::nullopt;
    std::uint32_t node = root_;
    while (nodes_[node].right != kNull) node = nodes_[node].right;
    return nodes_[node].key;
  }

  /// The index-th smallest key (0-based order statistic) in O(log n).
  /// Requires index < size().
  const Key& kth(std::size_t index) const {
    OSCHED_CHECK_LT(index, size_) << "kth out of range";
    std::uint32_t node = root_;
    for (;;) {
      const Node& nd = nodes_[node];
      const std::size_t left_count = count_of(nd.left);
      if (index < left_count) {
        node = nd.left;
      } else if (index == left_count) {
        return nd.key;
      } else {
        index -= left_count + 1;
        node = nd.right;
      }
    }
  }

  /// Removes and returns the smallest key. Requires non-empty.
  Key pop_min() {
    const Key* next = nullptr;
    return pop_min_peek_next(&next);
  }

  /// pop_min() that also reports the NEW minimum through `next` (nullptr
  /// when the treap became empty) — the successor is adjacent to the pop
  /// path, so this saves the caller a fresh root descent. The pointer is
  /// valid until the next mutation.
  Key pop_min_peek_next(const Key** next) {
    OSCHED_CHECK(root_ != kNull) << "pop_min on empty treap";
    std::uint32_t* slot = &root_;
    path_.clear();
    while (nodes_[*slot].left != kNull) {
      path_.push_back(*slot);
      slot = &nodes_[*slot].left;
    }
    const std::uint32_t victim = *slot;
    const Key key = nodes_[victim].key;
    *slot = nodes_[victim].right;  // the minimum has no left child
    release(victim);
    pull_path();
    --size_;
    // New minimum: leftmost of the promoted right subtree, else the pop
    // path's last node (the victim's parent).
    std::uint32_t succ = *slot;
    if (succ != kNull) {
      while (nodes_[succ].left != kNull) succ = nodes_[succ].left;
      *next = &nodes_[succ].key;
    } else if (!path_.empty()) {
      *next = &nodes_[path_.back()].key;
    } else {
      *next = nullptr;
    }
    return key;
  }

  /// In-order traversal. Recursive (expected O(log n) depth under the
  /// random priorities) so the read path allocates nothing — it runs per
  /// Rule-1 rejection.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_node(root_, fn);
  }

  void clear() {
    nodes_.clear();
    root_ = kNull;
    free_head_ = kNull;
    size_ = 0;
  }

 private:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

  struct NodeLayout {
    Key key;
    std::uint64_t priority;
    double self_weight;
    double weight_sum;
    std::uint32_t count;
    std::uint32_t left;
    std::uint32_t right;
  };
  // Cache-line aligned when a node fits in one line, so a descent touches
  // exactly one line per node. Larger keys keep natural alignment: padding
  // an over-64-byte node to 128 would burn arena memory without reducing
  // the lines a descent touches.
  static constexpr std::size_t kNodeAlignment =
      sizeof(NodeLayout) <= 64 ? 64 : alignof(NodeLayout);
  struct alignas(kNodeAlignment) Node : NodeLayout {};

  std::size_t count_of(std::uint32_t node) const {
    return node == kNull ? 0 : nodes_[node].count;
  }
  double weight_of(std::uint32_t node) const {
    return node == kNull ? 0.0 : nodes_[node].weight_sum;
  }

  void pull(std::uint32_t index) {
    Node& node = nodes_[index];
    node.count = static_cast<std::uint32_t>(1 + count_of(node.left) +
                                            count_of(node.right));
    node.weight_sum =
        node.self_weight + weight_of(node.left) + weight_of(node.right);
  }

  template <typename Fn>
  void for_each_node(std::uint32_t node, Fn& fn) const {
    if (node == kNull) return;
    for_each_node(nodes_[node].left, fn);
    fn(nodes_[node].key);
    for_each_node(nodes_[node].right, fn);
  }

  /// Recomputes aggregates bottom-up along the descent recorded in path_.
  void pull_path() {
    for (auto it = path_.rbegin(); it != path_.rend(); ++it) pull(*it);
  }

  /// Splits `node` into (< key, >= key), writing the roots through the two
  /// out-slots. Aborts on a key equal to `key` (only insert splits, and its
  /// key must be absent). Does not touch path_; callers pull their own path.
  void split(std::uint32_t node, const Key& key, std::uint32_t* less_slot,
             std::uint32_t* geq_slot) {
    merge_path_.clear();
    while (node != kNull) {
      Node& nd = nodes_[node];
      merge_path_.push_back(node);
      if (nd.key < key) {
        *less_slot = node;
        less_slot = &nd.right;
        node = nd.right;
      } else {
        OSCHED_CHECK(key < nd.key) << "duplicate treap key";
        *geq_slot = node;
        geq_slot = &nd.left;
        node = nd.left;
      }
    }
    *less_slot = kNull;
    *geq_slot = kNull;
    for (auto it = merge_path_.rbegin(); it != merge_path_.rend(); ++it) {
      pull(*it);
    }
  }

  /// Merges two trees where every key of `a` precedes every key of `b`.
  /// Does not touch path_ (erase interleaves merge with its own descent).
  std::uint32_t merge(std::uint32_t a, std::uint32_t b) {
    std::uint32_t result = kNull;
    std::uint32_t* slot = &result;
    merge_path_.clear();
    while (a != kNull && b != kNull) {
      if (nodes_[a].priority > nodes_[b].priority) {
        *slot = a;
        merge_path_.push_back(a);
        slot = &nodes_[a].right;
        a = nodes_[a].right;
      } else {
        *slot = b;
        merge_path_.push_back(b);
        slot = &nodes_[b].left;
        b = nodes_[b].left;
      }
    }
    *slot = (a != kNull) ? a : b;
    for (auto it = merge_path_.rbegin(); it != merge_path_.rend(); ++it) {
      pull(*it);
    }
    return result;
  }

  /// Takes a slot from the free list (or grows the arena) and initializes it
  /// as a leaf. Must be called before any pointer into nodes_ is formed: the
  /// vector may reallocate here.
  std::uint32_t acquire(const Key& key) {
    std::uint32_t index;
    if (free_head_ != kNull) {
      index = free_head_;
      free_head_ = nodes_[index].left;
    } else {
      index = static_cast<std::uint32_t>(nodes_.size());
      OSCHED_CHECK_LT(nodes_.size(), static_cast<std::size_t>(kNull))
          << "treap arena exceeds uint32 addressing";
      nodes_.emplace_back();
    }
    Node& node = nodes_[index];
    node.key = key;
    node.priority = next_priority();
    node.self_weight = weight_fn_(key);
    node.weight_sum = node.self_weight;
    node.count = 1;
    node.left = kNull;
    node.right = kNull;
    return index;
  }

  /// Returns a slot to the free list (threaded through the left link).
  void release(std::uint32_t index) {
    nodes_[index].left = free_head_;
    free_head_ = index;
  }

  std::uint64_t next_priority() { return splitmix64(prio_state_); }

  WeightFn weight_fn_;
  std::uint64_t prio_state_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = kNull;
  std::uint32_t free_head_ = kNull;
  std::size_t size_ = 0;
  // Scratch descent stacks, reused across operations so the hot path never
  // allocates. path_ records the outer descent (insert/erase/pop_min);
  // merge_path_ belongs to the inner split/merge restructuring.
  std::vector<std::uint32_t> path_;
  std::vector<std::uint32_t> merge_path_;
};

}  // namespace osched::util
