// Order-statistic treap augmented with subtree weight sums.
//
// The flow-time algorithm (Theorem 1) keeps each machine's pending jobs in
// shortest-processing-time order and, per arrival, needs
//   sum of p_il over pending jobs ordered before j, and
//   the count of pending jobs ordered after j,
// to evaluate the dispatch quantity lambda_ij on every machine. This treap
// answers both in O(log n) via (count, weight) subtree augmentation, and
// also serves the scheduling policy (pop smallest) and Rule 2 (find
// largest). Priorities come from a deterministic SplitMix64 stream so runs
// are exactly reproducible.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace osched::util {

/// Key must be strictly-totally-ordered by operator< (ties must be broken
/// inside the key, e.g. by job id). WeightFn: double operator()(const Key&).
template <typename Key, typename WeightFn>
class AugmentedTreap {
 public:
  struct PrefixStats {
    std::size_t count = 0;  ///< number of keys strictly less
    double weight = 0.0;    ///< total weight of keys strictly less
  };

  explicit AugmentedTreap(WeightFn weight_fn = WeightFn{},
                          std::uint64_t seed = 0x5eed5eedULL)
      : weight_fn_(std::move(weight_fn)), prio_state_(seed) {}

  std::size_t size() const { return root_ ? root_->count : 0; }
  bool empty() const { return !root_; }
  double total_weight() const { return root_ ? root_->weight_sum : 0.0; }

  /// Inserts a key; aborts on duplicates (keys must be unique).
  void insert(const Key& key) {
    auto [less, geq] = split(std::move(root_), key);
    OSCHED_CHECK(!min_of(geq) || key < *min_of(geq)) << "duplicate treap key";
    auto node = std::make_unique<Node>(key, weight_fn_(key), next_priority());
    root_ = merge(std::move(less), merge(std::move(node), std::move(geq)));
  }

  /// Removes a key; returns false if absent.
  bool erase(const Key& key) {
    auto [less, geq] = split(std::move(root_), key);
    auto [equal, greater] = split_first(std::move(geq), key);
    const bool found = equal != nullptr;
    root_ = merge(std::move(less), std::move(greater));
    return found;
  }

  bool contains(const Key& key) const {
    const Node* node = root_.get();
    while (node) {
      if (key < node->key) {
        node = node->left.get();
      } else if (node->key < key) {
        node = node->right.get();
      } else {
        return true;
      }
    }
    return false;
  }

  /// Count and weight of keys strictly less than `key`.
  PrefixStats stats_less(const Key& key) const {
    PrefixStats stats;
    const Node* node = root_.get();
    while (node) {
      if (node->key < key) {
        stats.count += 1 + count_of(node->left);
        stats.weight += weight_fn_(node->key) + weight_of(node->left);
        node = node->right.get();
      } else {
        node = node->left.get();
      }
    }
    return stats;
  }

  std::optional<Key> min() const {
    const Node* node = root_.get();
    if (!node) return std::nullopt;
    while (node->left) node = node->left.get();
    return node->key;
  }

  std::optional<Key> max() const {
    const Node* node = root_.get();
    if (!node) return std::nullopt;
    while (node->right) node = node->right.get();
    return node->key;
  }

  /// Removes and returns the smallest key. Requires non-empty.
  Key pop_min() {
    auto smallest = min();
    OSCHED_CHECK(smallest.has_value()) << "pop_min on empty treap";
    OSCHED_CHECK(erase(*smallest));
    return *smallest;
  }

  /// In-order traversal.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_node(root_.get(), fn);
  }

  void clear() { root_.reset(); }

 private:
  struct Node {
    Node(const Key& k, double w, std::uint64_t p)
        : key(k), priority(p), self_weight(w), weight_sum(w) {}
    Key key;
    std::uint64_t priority;
    double self_weight;
    std::size_t count = 1;
    double weight_sum;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };
  using NodePtr = std::unique_ptr<Node>;

  static std::size_t count_of(const NodePtr& node) {
    return node ? node->count : 0;
  }
  static double weight_of(const NodePtr& node) {
    return node ? node->weight_sum : 0.0;
  }
  static void pull(Node* node) {
    node->count = 1 + count_of(node->left) + count_of(node->right);
    node->weight_sum =
        node->self_weight + weight_of(node->left) + weight_of(node->right);
  }

  static const Key* min_of(const NodePtr& node) {
    const Node* cur = node.get();
    if (!cur) return nullptr;
    while (cur->left) cur = cur->left.get();
    return &cur->key;
  }

  /// Splits into (< key, >= key).
  static std::pair<NodePtr, NodePtr> split(NodePtr node, const Key& key) {
    if (!node) return {nullptr, nullptr};
    if (node->key < key) {
      auto [mid, right] = split(std::move(node->right), key);
      node->right = std::move(mid);
      pull(node.get());
      return {std::move(node), std::move(right)};
    }
    auto [left, mid] = split(std::move(node->left), key);
    node->left = std::move(mid);
    pull(node.get());
    return {std::move(left), std::move(node)};
  }

  /// From a tree whose keys are all >= key, detaches the node equal to key
  /// (if present). Returns (equal-node-with-children-detached, rest).
  static std::pair<NodePtr, NodePtr> split_first(NodePtr node, const Key& key) {
    if (!node) return {nullptr, nullptr};
    if (!(key < node->key) && !(node->key < key)) {
      NodePtr rest = merge(std::move(node->left), std::move(node->right));
      node->left.reset();
      node->right.reset();
      pull(node.get());
      return {std::move(node), std::move(rest)};
    }
    auto [equal, rest_left] = split_first(std::move(node->left), key);
    node->left = std::move(rest_left);
    pull(node.get());
    return {std::move(equal), std::move(node)};
  }

  static NodePtr merge(NodePtr a, NodePtr b) {
    if (!a) return b;
    if (!b) return a;
    if (a->priority > b->priority) {
      a->right = merge(std::move(a->right), std::move(b));
      pull(a.get());
      return a;
    }
    b->left = merge(std::move(a), std::move(b->left));
    pull(b.get());
    return b;
  }

  template <typename Fn>
  static void for_each_node(const Node* node, Fn& fn) {
    if (!node) return;
    for_each_node(node->left.get(), fn);
    fn(node->key);
    for_each_node(node->right.get(), fn);
  }

  std::uint64_t next_priority() { return splitmix64(prio_state_); }

  WeightFn weight_fn_;
  std::uint64_t prio_state_;
  NodePtr root_;
};

}  // namespace osched::util
