// Minimal CSV reading/writing for experiment outputs and trace files.
//
// The dialect is deliberately simple: comma separator, quoting with '"' when
// a field contains a comma/quote/newline, '"' escaped by doubling. This is
// enough for numeric experiment tables and the job-trace format.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace osched::util {

class CsvWriter {
 public:
  /// Writes to an externally-owned stream (file or string stream).
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience for mixed string/number rows.
  template <typename... Ts>
  void row(const Ts&... fields) {
    write_row({to_field(fields)...});
  }

  static std::string escape(std::string_view field);

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(double v);
  static std::string to_field(int v) { return std::to_string(v); }
  static std::string to_field(long v) { return std::to_string(v); }
  static std::string to_field(long long v) { return std::to_string(v); }
  static std::string to_field(unsigned v) { return std::to_string(v); }
  static std::string to_field(unsigned long v) { return std::to_string(v); }
  static std::string to_field(unsigned long long v) { return std::to_string(v); }

  std::ostream& out_;
};

/// Parses CSV text into rows of fields. Returns nullopt on malformed quoting.
std::optional<std::vector<std::vector<std::string>>> parse_csv(
    std::string_view text);

}  // namespace osched::util
