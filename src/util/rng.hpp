// Deterministic random number generation.
//
// Every stochastic component in the library draws from util::Rng, seeded
// explicitly, so that each experiment is exactly reproducible from the seed
// printed in its output. The generator is xoshiro256** (Blackman & Vigna),
// seeded through SplitMix64 — both implemented here so the library has zero
// dependence on the (implementation-defined) standard library distributions.
// All distributions are implemented on top of next_double() with documented
// algorithms, which keeps results identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace osched::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer for
/// deriving independent per-task seeds in parallel sweeps.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derives a child seed from (root seed, stream index). Used to give each
/// task of a parallel sweep an independent, reproducible stream.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0, 1). 53-bit resolution.
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Exponential with the given rate (mean 1/rate). rate > 0.
  double exponential(double rate);

  /// Pareto (Lomax-style heavy tail): minimum `scale`, shape `alpha` > 0.
  /// P(X > x) = (scale/x)^alpha for x >= scale.
  double pareto(double scale, double alpha);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Standard normal via Box–Muller (no cached spare: keeps the stream
  /// position a pure function of the draw count).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Current internal state, for debugging/serialization in tests.
  std::array<std::uint64_t, 4> state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace osched::util
