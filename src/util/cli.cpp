#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace osched::util {

Cli& Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
  OSCHED_CHECK(flags_.find(name) == flags_.end()) << "duplicate flag --" << name;
  flags_[name] = Flag{default_value, help, std::nullopt};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cerr, argv[0]);
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "error: positional arguments are not supported: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::cerr << "error: unknown flag --" << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return false;
    }
    if (eq == std::string::npos) {
      // --flag value, or bare boolean --flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

const Cli::Flag& Cli::find(const std::string& name) const {
  auto it = flags_.find(name);
  OSCHED_CHECK(it != flags_.end()) << "flag --" << name << " was never declared";
  return it->second;
}

std::string Cli::str(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

double Cli::num(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  OSCHED_CHECK(end != v.c_str() && *end == '\0')
      << "flag --" << name << " is not a number: " << v;
  return parsed;
}

std::int64_t Cli::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  OSCHED_CHECK(end != v.c_str() && *end == '\0')
      << "flag --" << name << " is not an integer: " << v;
  return parsed;
}

bool Cli::boolean(const std::string& name) const {
  const std::string v = str(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  OSCHED_CHECK(false) << "flag --" << name << " is not a boolean: " << v;
  return false;
}

std::vector<double> Cli::num_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(str(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    OSCHED_CHECK(end != item.c_str() && *end == '\0')
        << "flag --" << name << " has a non-numeric element: " << item;
    out.push_back(parsed);
  }
  return out;
}

void Cli::print_usage(std::ostream& out, const std::string& program) const {
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, f] : flags_) {
    out << "  --" << name << " (default: " << f.default_value << ")  " << f.help
        << "\n";
  }
}

}  // namespace osched::util
