// Min-heap over (lower bound, machine id) used by the dispatch index.
//
// The argmin-lambda dispatch of every policy evaluates candidate machines
// in ascending order of a cheap per-machine lambda lower bound and stops as
// soon as the next bound exceeds the best exact lambda found — a classic
// best-first tournament. The heap is the ordering structure: keys compare
// lexicographically by (bound, machine id), so the pop order — and with it
// every tie-break — is a pure function of the bounds, independent of the
// insertion order and of the platform.
//
// The backing storage is owned by the caller and reused across arrivals;
// the hot path never allocates once the first arrival has sized it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace osched::util {

/// Binary min-heap of (key, id) with deterministic (key, id) ordering.
/// Not a container: reset() + push() rebuild it per dispatch.
class DispatchHeap {
 public:
  struct Entry {
    double key = 0.0;
    std::uint32_t id = 0;

    bool operator<(const Entry& other) const {
      if (key != other.key) return key < other.key;
      return id < other.id;
    }
  };

  void reserve(std::size_t n) { entries_.reserve(n); }
  void reset() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  void push(double key, std::uint32_t id) {
    entries_.push_back(Entry{key, id});
    std::size_t child = entries_.size() - 1;
    while (child > 0) {
      const std::size_t parent = (child - 1) / 2;
      if (!(entries_[child] < entries_[parent])) break;
      std::swap(entries_[child], entries_[parent]);
      child = parent;
    }
  }

  const Entry& min() const {
    OSCHED_CHECK(!entries_.empty()) << "min() on empty DispatchHeap";
    return entries_.front();
  }

  Entry pop_min() {
    OSCHED_CHECK(!entries_.empty()) << "pop_min() on empty DispatchHeap";
    const Entry top = entries_.front();
    entries_.front() = entries_.back();
    entries_.pop_back();
    std::size_t parent = 0;
    const std::size_t n = entries_.size();
    for (;;) {
      const std::size_t left = 2 * parent + 1;
      if (left >= n) break;
      std::size_t best = left;
      const std::size_t right = left + 1;
      if (right < n && entries_[right] < entries_[left]) best = right;
      if (!(entries_[best] < entries_[parent])) break;
      std::swap(entries_[parent], entries_[best]);
      parent = best;
    }
    return top;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace osched::util
