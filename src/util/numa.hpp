// NUMA topology detection and thread placement, without libnuma/hwloc.
//
// The shard driver's workers each own a fixed subset of sessions whose
// state (job store, event queue, policy arrays) is allocated lazily while
// the worker applies operations. On a multi-socket host the default
// first-touch policy therefore already places a shard's pages on whichever
// node its worker HAPPENS to run on — but an unpinned worker migrates, and
// after a migration every hot array is remote. Pinning each worker to one
// node (ShardDriverOptions::numa_policy) makes first-touch deterministic:
// the worker's node is the shard's node, for the lifetime of the fleet.
//
// Topology comes from /sys/devices/system/node/node*/cpulist (present on
// every modern Linux, no extra library); hosts without the node directory
// — containers with masked sysfs, non-Linux builds — degrade to a single
// node covering every CPU, where pinning is a no-op. Placement never
// changes scheduling DECISIONS: sessions are bit-identical for any
// placement, worker count, or policy (the worker-count invariance wall of
// tests/streaming_test.cpp also covers pinned runs).
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace osched::util {

/// One entry per NUMA node, each listing the node's online CPU ids in
/// ascending order. Nodes with no CPUs (memory-only nodes) are dropped —
/// they cannot host a worker.
struct NumaTopology {
  std::vector<std::vector<int>> node_cpus;

  std::size_t num_nodes() const { return node_cpus.size(); }
  bool multi_node() const { return node_cpus.size() > 1; }
};

/// Parses the kernel's cpulist format: comma-separated ids and ranges
/// ("0-3,8,10-11"), arbitrary whitespace/newline tail. Malformed chunks
/// are skipped (the kernel never emits them; a truncated read just yields
/// fewer CPUs). Exposed for unit tests.
std::vector<int> parse_cpulist(std::string_view text);

/// The host topology, probed once (sysfs walk) and cached. Always has at
/// least one node with at least one CPU.
const NumaTopology& numa_topology();

/// Pins the CALLING thread to every CPU of `node` (an index into
/// numa_topology()). Returns false — leaving affinity untouched — for an
/// out-of-range node or when the platform refuses (non-Linux, restricted
/// container). Callers treat failure as "run unpinned": placement is an
/// optimization, never a correctness requirement.
bool pin_current_thread_to_node(std::size_t node);

}  // namespace osched::util
