// Tournament-tree event queue: the completion queue of the simulation
// drivers, shaped like the dispatch index instead of a binary heap.
//
// The schedulers keep at most a handful of outstanding events per machine
// (the policies: exactly one scheduled completion), so the natural index is
// per-machine, not per-event: each machine owns a tiny bucket of its queued
// events, a leaf array holds every machine's best (time, seq) key, and a
// winner tree over the leaves yields the global minimum. peek is O(1) with
// no lazy-cancel skipping, schedule/cancel/pop replay one root path —
// O(log m) in the MACHINE count, which the dispatch index already bounds,
// instead of O(log live events) heap sifts plus deferred tombstone pops.
// Cancellation is eager: Rule 1's interrupt removes the entry outright, so
// a churn-heavy run never carries a tombstone backlog.
//
// Ordering is (time, insertion sequence) — identical to the binary-heap
// implementation it replaces (sim/event_queue.hpp keeps that one as
// HeapEventQueue), which tests/event_queue_diff_test.cpp pins down with a
// lockstep fuzz differential. Handles are generation-stamped slots with the
// same encoding and the same double-cancel/stale-handle CHECKs as the heap
// version.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

struct SimEvent {
  Time time = 0.0;
  std::uint64_t id = 0;  ///< insertion sequence (unique, monotone)
  MachineId machine = kInvalidMachine;
  JobId job = kInvalidJob;
};

}  // namespace osched

namespace osched::util {

class TournamentEventQueue {
 public:
  /// Schedules an event and returns its cancellation handle.
  std::uint64_t schedule(Time time, MachineId machine, JobId job) {
    OSCHED_CHECK_GE(machine, 0);
    ensure_capacity(static_cast<std::size_t>(machine) + 1);
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{1, machine});
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot].machine = machine;
    }
    const std::uint64_t seq = next_seq_++;
    const auto i = static_cast<std::size_t>(machine);
    buckets_[i].push_back(Entry{time, seq, job, slot});
    if (key_less(time, seq, best_time_[i], best_seq_[i])) {
      best_time_[i] = time;
      best_seq_[i] = seq;
      replay(i);
    }
    ++live_;
    return handle_of(slot, slots_[slot].generation);
  }

  /// Cancels a previously scheduled event. Cancelling a handle twice or
  /// after it fired is a programming error.
  void cancel(std::uint64_t handle) {
    const auto slot = static_cast<std::uint32_t>(handle >> 32);
    const auto generation = static_cast<std::uint32_t>(handle);
    OSCHED_CHECK(slot < slots_.size() &&
                 slots_[slot].generation == generation && generation != 0)
        << "event handle " << handle << " is not live (double cancel?)";
    const auto i = static_cast<std::size_t>(slots_[slot].machine);
    std::vector<Entry>& bucket = buckets_[i];
    std::size_t at = 0;
    while (at < bucket.size() && bucket[at].slot != slot) ++at;
    OSCHED_CHECK_LT(at, bucket.size());
    bucket[at] = bucket.back();
    bucket.pop_back();
    rescan(i);
    retire(slot);
    OSCHED_CHECK_GT(live_, 0u);
    --live_;
  }

  bool empty() const { return live_ == 0; }

  /// Time of the next live event, if any. O(1): the root winner is always
  /// current (no tombstones to skip).
  std::optional<Time> peek_time() const {
    if (live_ == 0) return std::nullopt;
    return best_time_[winner()];
  }

  /// Pops the next live event. Requires !empty().
  SimEvent pop() {
    OSCHED_CHECK_GT(live_, 0u);
    const std::size_t i = winner();
    std::vector<Entry>& bucket = buckets_[i];
    std::size_t at = 0;
    while (bucket[at].seq != best_seq_[i]) ++at;
    const Entry entry = bucket[at];
    bucket[at] = bucket.back();
    bucket.pop_back();
    rescan(i);
    retire(entry.slot);
    --live_;
    return SimEvent{entry.time, entry.seq, static_cast<MachineId>(i),
                    entry.job};
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    JobId job;
    std::uint32_t slot;
  };

  struct Slot {
    std::uint32_t generation;
    MachineId machine;
  };

  static constexpr Time kNoTime = std::numeric_limits<Time>::infinity();
  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

  static bool key_less(Time ta, std::uint64_t sa, Time tb, std::uint64_t sb) {
    if (ta != tb) return ta < tb;
    return sa < sb;
  }

  static std::uint64_t handle_of(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(slot) << 32) | generation;
  }

  std::size_t winner() const { return cap_ > 1 ? tree_[1] : 0; }

  /// Invalidates the slot's outstanding handle and recycles it; generation
  /// 0 is never live, so a zero handle can't match.
  void retire(std::uint32_t slot) {
    if (++slots_[slot].generation == 0) ++slots_[slot].generation;
    free_slots_.push_back(slot);
  }

  /// Recomputes machine i's best key from its bucket and replays its path.
  void rescan(std::size_t i) {
    Time time = kNoTime;
    std::uint64_t seq = kNoSeq;
    for (const Entry& entry : buckets_[i]) {
      if (key_less(entry.time, entry.seq, time, seq)) {
        time = entry.time;
        seq = entry.seq;
      }
    }
    best_time_[i] = time;
    best_seq_[i] = seq;
    replay(i);
  }

  /// Replays the winner path from leaf i to the root.
  void replay(std::size_t i) {
    if (cap_ <= 1) return;
    for (std::size_t node = (cap_ + i) >> 1; node >= 1; node >>= 1) {
      tree_[node] = fight(node << 1, (node << 1) | 1);
    }
  }

  /// Winner (machine index) between two tree positions; positions >= cap_
  /// are leaves (machine = position - cap_).
  std::size_t fight(std::size_t a, std::size_t b) const {
    const std::size_t ma = a >= cap_ ? a - cap_ : tree_[a];
    const std::size_t mb = b >= cap_ ? b - cap_ : tree_[b];
    return key_less(best_time_[mb], best_seq_[mb], best_time_[ma],
                    best_seq_[ma])
               ? mb
               : ma;
  }

  void ensure_capacity(std::size_t machines) {
    if (machines <= buckets_.size()) return;
    std::size_t cap = cap_ > 0 ? cap_ : 1;
    while (cap < machines) cap <<= 1;
    buckets_.resize(cap);
    best_time_.resize(cap, kNoTime);
    best_seq_.resize(cap, kNoSeq);
    if (cap != cap_) {
      cap_ = cap;
      tree_.assign(cap_, 0);
      if (cap_ > 1) {
        for (std::size_t node = cap_ - 1; node >= 1; --node) {
          tree_[node] = fight(node << 1, (node << 1) | 1);
        }
      }
    }
  }

  std::vector<std::vector<Entry>> buckets_;  ///< queued events per machine
  std::vector<Time> best_time_;  ///< leaf keys: machine's min (time, seq)
  std::vector<std::uint64_t> best_seq_;
  std::vector<std::uint32_t> tree_;  ///< winner tree over the leaves
  std::size_t cap_ = 0;              ///< leaf count (power of two)

  std::vector<Slot> slots_;  ///< generation stamp + machine per handle slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace osched::util
