// Small command-line flag parser used by the examples and bench harnesses.
//
// Supports --name=value, --name value, and bare --flag booleans. Unknown
// flags are an error (surfacing typos in experiment scripts immediately).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace osched::util {

class Cli {
 public:
  /// Declares a flag with a default and help text; returns *this for chaining.
  Cli& flag(const std::string& name, const std::string& default_value,
            const std::string& help);

  /// Parses argv. Returns false (and prints usage + error to stderr) on
  /// unknown flags or malformed input. `--help` prints usage and returns
  /// false with help_requested() set.
  bool parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  std::string str(const std::string& name) const;
  double num(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Parses comma-separated doubles ("0.1,0.2,0.5").
  std::vector<double> num_list(const std::string& name) const;

  void print_usage(std::ostream& out, const std::string& program) const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  const Flag& find(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace osched::util
