// Core scalar types shared by every module.
//
// Time and processing volumes are continuous (double): the flow-time and
// flow+energy algorithms (Theorems 1 and 2 of the paper) are stated in
// continuous time. The energy-minimization algorithm (Theorem 3) uses its
// own discretized time grid on top of these scalars, exactly as the paper
// discretizes in §4.
#pragma once

#include <cstdint>
#include <limits>

namespace osched {

/// Continuous time (seconds, arbitrary unit).
using Time = double;

/// Processing time (T1) or processing volume (T2/T3) of a job on a machine.
using Work = double;

/// Job weight (T2); 1.0 for unweighted problems.
using Weight = double;

/// Machine speed in the speed-scaling model.
using Speed = double;

/// Energy (integral of power over time).
using Energy = double;

/// Index of a job within an Instance. Jobs are numbered 0..n-1 in release
/// order (ties broken by index).
using JobId = std::int32_t;

/// Index of a machine within an Instance.
using MachineId = std::int32_t;

inline constexpr JobId kInvalidJob = -1;
inline constexpr MachineId kInvalidMachine = -1;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Absolute slack used when comparing continuous times that were produced by
/// arithmetically equivalent but differently-ordered computations.
inline constexpr double kTimeEps = 1e-9;

}  // namespace osched
