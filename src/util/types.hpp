// Core scalar types shared by every module.
//
// Time and processing volumes are continuous (double): the flow-time and
// flow+energy algorithms (Theorems 1 and 2 of the paper) are stated in
// continuous time. The energy-minimization algorithm (Theorem 3) uses its
// own discretized time grid on top of these scalars, exactly as the paper
// discretizes in §4.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace osched {

/// Continuous time (seconds, arbitrary unit).
using Time = double;

/// Processing time (T1) or processing volume (T2/T3) of a job on a machine.
using Work = double;

/// Job weight (T2); 1.0 for unweighted problems.
using Weight = double;

/// Machine speed in the speed-scaling model.
using Speed = double;

/// Energy (integral of power over time).
using Energy = double;

/// Index of a job within an Instance. Jobs are numbered 0..n-1 in release
/// order (ties broken by index).
using JobId = std::int32_t;

/// Index of a machine within an Instance.
using MachineId = std::int32_t;

inline constexpr JobId kInvalidJob = -1;
inline constexpr MachineId kInvalidMachine = -1;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Absolute slack used when comparing continuous times that were produced by
/// arithmetically equivalent but differently-ordered computations.
inline constexpr double kTimeEps = 1e-9;

/// How the argmin-lambda dispatch of the online policies enumerates
/// candidate machines. Both modes return the exact lexicographic
/// (lambda, machine id) argmin and are bit-identical to each other —
/// tests/dispatch_index_test.cpp pins that down differentially.
enum class DispatchMode {
  /// Production path: per-machine cached lambda lower bounds ordered by a
  /// best-first min-heap; exact lambda is evaluated only until the next
  /// bound exceeds the incumbent.
  kIndexed,
  /// Reference path: evaluate lambda for every eligible machine in
  /// ascending machine-id order, no pruning.
  kLinearScan,
};

/// Margin applied to the dispatch index's lower bounds before they prune an
/// exact lambda evaluation. The bounds are true lower bounds in real
/// arithmetic; the exact lambda is computed with O(pending) floating-point
/// operations whose accumulated relative error is far below 2^-20, so
/// scaling the bound by (1 - 2^-20) keeps it a sound lower bound on the
/// *rounded* lambda value — a pruned machine can never be the argmin.
inline constexpr double kDispatchBoundMargin = 1.0 - 1.0 / (1 << 20);

/// The float32 counterpart for the shadow-bounds sweep (half the memory
/// traffic of the double row). Float evaluation adds at most a few 2^-24
/// relative roundings on top of inputs that are themselves rounded DOWN
/// (float_lower), so a 2^-16 margin keeps the bound sound with room to
/// spare while giving up a negligible sliver of pruning power.
inline constexpr float kDispatchBoundMarginF = 1.0f - 1.0f / (1 << 16);

/// Largest float <= x for finite non-negative x; +infinity maps to
/// FLT_MAX. This is the rounded-down double-to-float conversion behind the
/// dispatch index's shadow bounds: the float shadow never exceeds the
/// double it stands in for, which is what keeps the float bounds sound.
/// One ulp toward zero is an integer decrement of the IEEE representation
/// for positive floats — nextafterf is a libm call, too slow for a
/// per-queue-touch operation.
inline float float_lower(double x) {
  float f = static_cast<float>(x);
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  // Branchless one-ulp step toward zero whenever the nearest-rounding went
  // up (or x was +inf): the conversion runs per matrix entry on streaming
  // appends, where a 50/50 branch would mispredict constantly.
  bits -= static_cast<std::uint32_t>(
      static_cast<double>(f) > x ||
      !(f < std::numeric_limits<float>::infinity()));
  std::memcpy(&f, &bits, sizeof(bits));
  return f;
}

/// Smallest float >= x for non-negative x (+infinity stays +infinity): the
/// UP-rounded conversion for thresholds that must never under-approximate.
inline float float_upper(double x) {
  float f = static_cast<float>(x);
  if (static_cast<double>(f) < x) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    bits += 1;
    std::memcpy(&f, &bits, sizeof(bits));
  }
  return f;
}

namespace detail {

/// Packed sort key for the per-job (p, id) machine orders: the IEEE bit
/// pattern of a non-negative double orders exactly like its value, so one
/// integer compare replaces a double compare plus an id tie-break chase.
/// IdT is the order table's machine-id width — uint16 below 65536 machines
/// (2-byte entries, the compact default), uint32 at and above it (the
/// huge-m tier; same ordering semantics, wider ids).
template <class IdT>
struct POrderKeyT {
  std::uint64_t pbits = 0;
  IdT id = 0;

  static POrderKeyT make(double p, IdT machine) {
    POrderKeyT key;
    std::memcpy(&key.pbits, &p, sizeof(key.pbits));
    key.id = machine;
    return key;
  }

  bool operator<(const POrderKeyT& other) const {
    if (pbits != other.pbits) return pbits < other.pbits;
    return id < other.id;
  }
};

using POrderKey = POrderKeyT<std::uint16_t>;

}  // namespace detail

/// Next float above f for non-negative finite f (+infinity stays put).
inline float float_next_up(float f) {
  if (!(f < std::numeric_limits<float>::infinity())) return f;
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  bits += 1;
  std::memcpy(&f, &bits, sizeof(bits));
  return f;
}

}  // namespace osched
