#include "util/rng.hpp"

#include <cmath>

namespace osched::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  // Mix the stream index into the root through two SplitMix64 steps; the
  // golden-ratio increment guarantees distinct streams for distinct indices.
  std::uint64_t s = root ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(s);
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** reference update.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OSCHED_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform(double lo, double hi) {
  OSCHED_CHECK_LE(lo, hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) {
  OSCHED_CHECK_GT(rate, 0.0);
  // Inversion; 1 - U in (0,1] avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

double Rng::pareto(double scale, double alpha) {
  OSCHED_CHECK_GT(scale, 0.0);
  OSCHED_CHECK_GT(alpha, 0.0);
  return scale / std::pow(1.0 - next_double(), 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draws exactly two uniforms per call.
  const double u1 = 1.0 - next_double();  // (0, 1]
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * 3.14159265358979323846 * u2);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::size_t Rng::index(std::size_t n) {
  OSCHED_CHECK_GT(n, 0u);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace osched::util
