// Fixed-size thread pool with a parallel_for helper.
//
// The pool parallelizes *across* independent simulation runs in parameter
// sweeps (each run is single-threaded and deterministic); results are
// written to pre-sized output slots so no synchronization is needed beyond
// the task queue itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace osched::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw (the library reports failures
  /// through return values and OSCHED_CHECK).
  void submit(std::function<void()> task);

  /// Enqueues a batch of tasks under ONE lock acquisition and a single
  /// broadcast — parallel_for used to take the queue mutex once per chunk,
  /// which serializes producers exactly when the pool is busiest.
  void submit_bulk(std::vector<std::function<void()>> tasks);

  /// Enqueues a value-returning task and hands back its future. The futures
  /// form of submit(): callers collect results in submission order, which
  /// keeps parallel experiment output deterministic regardless of which
  /// worker ran which task.
  template <typename Fn>
  auto submit_task(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n) on the pool, blocking until all complete.
/// Iterations are distributed in contiguous chunks to limit queue traffic.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Convenience: map a function over [0, n) in parallel, collecting results
/// into a vector (slot i belongs exclusively to iteration i).
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace osched::util
