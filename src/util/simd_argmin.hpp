// Explicitly vectorized dispatch kernels with runtime CPU dispatch.
//
// The dense dispatch sweep of rejection_flow_policy.hpp is three loops over
// machine-indexed arrays: the float32 lower-bound fill, the kBlock=8 block
// minima + first-index argmin, and (on the ordered path without an order
// table) the exact idle-machine lambda argmin over the double row. The
// scalar versions are straight-line code the autovectorizer USUALLY
// handles; this module makes the vector shape explicit — AVX2 and AVX-512
// kernels selected per process by cpuid — with the scalar loop kept as the
// always-available reference and fallback.
//
// Bit-identity contract (the whole point — compare_bench.py gates
// deterministic metrics across binaries AND tiers):
//  * Elementwise kernels (lb_fill, the per-lane lambda evaluation) use
//    separate multiply and add intrinsics, never FMA: each lane performs
//    exactly the scalar operation sequence, and IEEE-754 arithmetic is
//    correctly rounded per operation, so every lane result equals the
//    scalar result bit for bit. (The scalar build cannot silently contract
//    to FMA: the portable baseline has no FMA instruction, and
//    OSCHED_NATIVE adds -ffp-contract=off. The AVX-512 target attribute
//    DOES enable FMA and GCC's default -ffp-contract=fast fuses even
//    separate mul/add intrinsics, so CMake compiles this module's TU with
//    -ffp-contract=off — the fuzz wall caught exactly that divergence on
//    denormals.)
//  * Min-reductions reassociate freely: inputs are NaN-free by the dispatch
//    contract (finite positive p, +inf for masked machines, and the
//    float_lower shadow maps +inf to FLT_MAX) and never -0.0 (products and
//    sums of non-negative finite values), so min is exactly associative and
//    commutative — any lane split yields the same minimum VALUE.
//  * Index selection is first-index-of-minimum, the lexicographic
//    (value, id) tie-break the scalar loops implement: vector paths either
//    locate the first equal lane after a value-only reduction, or carry a
//    per-lane first-index and resolve the smallest index among the lanes
//    attaining the minimum — both yield the global first index.
// tests/simd_argmin_test.cpp fuzzes all tiers in lockstep against the
// scalar reference (±inf, denormals, all-infinity rows).
//
// The kernels are compiled UNCONDITIONALLY (function-level target
// attributes, no special compile flags needed) and executed only when
// __builtin_cpu_supports allows; OSCHED_SIMD=scalar|avx2|avx512 caps the
// selected tier from the environment (ops runbook: docs/OPERATIONS.md).
#pragma once

#include <cstddef>
#include <cstdint>

namespace osched::util {

/// The dispatch kernel tier runtime dispatch selected. Ordered: a CPU (or
/// OSCHED_SIMD cap) supporting a tier supports every tier below it.
enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* to_string(SimdTier tier);

/// The tier this process dispatches to: the widest the CPU supports, capped
/// by OSCHED_SIMD when set. Probed once (cpuid + getenv), then cached.
SimdTier active_simd_tier();

/// Whether the running CPU can execute `tier`'s kernels (ignores the
/// OSCHED_SIMD cap) — the gate the differential wall uses to run every
/// executable tier, scalar-only hardware included.
bool simd_tier_supported(SimdTier tier);

namespace simd {

/// lb[i] = row[i] * coeff + pcm[i] * min(row[i], pmp[i]) for i in [0, m) —
/// the dense lower-bound fill of dispatch_indexed, per-lane identical to
/// the scalar loop (mul/min/mul/add, no FMA).
void lb_fill(const float* row, const float* pcm, const float* pmp,
             float coeff, float* lb, std::size_t m);

/// (minimum value, first index attaining it) over values[0, n). n == 0
/// returns {FLT_MAX, 0}; an all-greater row (every entry above FLT_MAX,
/// i.e. +inf) returns index n. NaN-free input contract.
struct ArgminResult {
  float value = 0.0f;
  std::size_t index = 0;
};

/// Fills bmin[b] = min(lb[8b .. 8b+8)) for every FULL block b < m/8 (the
/// rival screen's block minima) and returns the global minimum over all of
/// lb[0, m) — tail included — with the first index attaining it. Matches
/// the scalar two-level argmin of dispatch_indexed exactly: the minimum is
/// seeded at FLT_MAX, so an all-+inf row reports {FLT_MAX, m}.
ArgminResult block_minima_argmin(const float* lb, std::size_t m, float* bmin);

/// Exact idle-machine argmin of the ordered dispatch path without an order
/// table: over machines i in [0, m) with pend_n[i] == 0, minimize
/// lambda = row[i] / epsilon + row[i] (the empty-queue lambda, evaluated
/// with the scalar operation sequence per lane — double division then
/// addition), ties to the smallest i. Returns index m when no machine is
/// idle; lambda is then +infinity.
struct IdleArgmin {
  double lambda = 0.0;
  std::size_t index = 0;
};

IdleArgmin idle_lambda_argmin(const double* row, const std::uint32_t* pend_n,
                              std::size_t m, double epsilon);

// ---- per-tier entry points (the differential wall's surface; the
// dispatched wrappers above route to the active tier's version). The AVX
// variants must only be CALLED when simd_tier_supported says so — they are
// always compiled (target attributes), never executed blind. ----

void lb_fill_scalar(const float* row, const float* pcm, const float* pmp,
                    float coeff, float* lb, std::size_t m);
void lb_fill_avx2(const float* row, const float* pcm, const float* pmp,
                  float coeff, float* lb, std::size_t m);
void lb_fill_avx512(const float* row, const float* pcm, const float* pmp,
                    float coeff, float* lb, std::size_t m);

ArgminResult block_minima_argmin_scalar(const float* lb, std::size_t m,
                                        float* bmin);
ArgminResult block_minima_argmin_avx2(const float* lb, std::size_t m,
                                      float* bmin);
ArgminResult block_minima_argmin_avx512(const float* lb, std::size_t m,
                                        float* bmin);

IdleArgmin idle_lambda_argmin_scalar(const double* row,
                                     const std::uint32_t* pend_n,
                                     std::size_t m, double epsilon);
IdleArgmin idle_lambda_argmin_avx2(const double* row,
                                   const std::uint32_t* pend_n, std::size_t m,
                                   double epsilon);
IdleArgmin idle_lambda_argmin_avx512(const double* row,
                                     const std::uint32_t* pend_n,
                                     std::size_t m, double epsilon);

}  // namespace simd
}  // namespace osched::util
