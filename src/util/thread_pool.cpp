#include "util/thread_pool.hpp"

#include <algorithm>

namespace osched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    OSCHED_CHECK(!stop_) << "submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::submit_bulk(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const bool broadcast = tasks.size() > 1;
  {
    std::unique_lock lock(mutex_);
    OSCHED_CHECK(!stop_) << "submit after shutdown";
    for (auto& task : tasks) {
      queue_.push(std::move(task));
    }
    in_flight_ += tasks.size();
  }
  if (broadcast) {
    work_available_.notify_all();
  } else {
    work_available_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Chunking: a few chunks per worker balances load without flooding the
  // queue for very large n. The whole chunk set is enqueued with one
  // submit_bulk — one lock, one broadcast.
  const std::size_t target_chunks = pool.thread_count() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    tasks.push_back([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.submit_bulk(std::move(tasks));
  pool.wait_idle();
}

}  // namespace osched::util
