// Vector over a monotonically growing id space whose prefix can be retired.
//
// The streaming scheduler sessions keep per-job state (schedule records,
// dual-accounting entries, processing rows) keyed by JobId. Ids only grow,
// and once every job below some frontier has reached a terminal fate its
// state is never read again — so the container can hand that prefix's
// memory back instead of growing without bound. SlidingVector is exactly
// that: extend_to() appends value-initialized slots at the high end,
// retire_below() declares a prefix dead, and compaction erases the dead
// prefix once it outweighs the live window (amortized O(1) per element;
// each element is moved at most twice over its lifetime, and capacity
// stays bounded by ~2x the live window).
//
// Batch callers that never retire get plain-vector behavior and layout.
// References are invalidated by extend_to() and retire_below(), like
// vector::push_back — callers must not hold references across growth or
// retirement.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace osched::util {

template <typename T>
class SlidingVector {
 public:
  /// First id still stored (everything below has been retired).
  std::size_t begin_index() const { return begin_; }
  /// One past the largest id ever created.
  std::size_t end_index() const { return base_ + data_.size(); }
  /// Live slots currently held (retired-but-not-yet-compacted excluded).
  std::size_t live_size() const { return end_index() - begin_; }
  bool empty() const { return live_size() == 0; }

  void reserve(std::size_t n) { data_.reserve(n); }

  /// Grows the id space to [begin_index, n), value-initializing new slots.
  /// No-op when n <= end_index().
  void extend_to(std::size_t n) {
    if (n > end_index()) data_.resize(n - base_);
  }

  /// Unchecked access for validated hot loops: `id` must be live.
  T& operator[](std::size_t id) { return data_[id - base_]; }
  const T& operator[](std::size_t id) const { return data_[id - base_]; }

  /// Checked access: aborts on a retired or never-created id.
  T& at(std::size_t id) {
    OSCHED_CHECK(id >= begin_ && id < end_index())
        << "SlidingVector id " << id << " outside live window [" << begin_
        << ", " << end_index() << ")";
    return data_[id - base_];
  }
  const T& at(std::size_t id) const {
    return const_cast<SlidingVector*>(this)->at(id);
  }

  bool is_live(std::size_t id) const {
    return id >= begin_ && id < end_index();
  }

  /// Retires every id below `frontier` (clamped to the created range) and
  /// compacts when the dead prefix dominates the storage.
  void retire_below(std::size_t frontier) {
    if (frontier <= begin_) return;
    begin_ = frontier < end_index() ? frontier : end_index();
    const std::size_t dead = begin_ - base_;
    if (dead >= kCompactMin && dead >= data_.size() - dead) {
      data_.erase(data_.begin(),
                  data_.begin() + static_cast<std::ptrdiff_t>(dead));
      // No shrink_to_fit: the next extend_to would immediately reallocate
      // and copy the live window a third time. Capacity stays bounded by
      // the pre-compaction size (~2x the live window) regardless.
      base_ = begin_;
    }
  }

 private:
  /// Compaction threshold: small windows are not worth the memmove.
  static constexpr std::size_t kCompactMin = 1024;

  std::vector<T> data_;    ///< ids [base_, base_ + size)
  std::size_t base_ = 0;   ///< id of data_[0]
  std::size_t begin_ = 0;  ///< first non-retired id (>= base_)
};

}  // namespace osched::util
