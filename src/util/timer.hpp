// Wall-clock timing helpers for the throughput experiment (E8) and harness
// progress reporting.
#pragma once

#include <chrono>
#include <string>

namespace osched::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// "12.3 ms" / "4.56 s" style human-readable duration.
std::string format_duration(double seconds);

}  // namespace osched::util
