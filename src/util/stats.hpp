// Streaming and batch statistics used by the metrics module and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace osched::util {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
/// Suitable for one-pass aggregation over large simulation outputs.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a stored sample: adds exact quantiles to RunningStats.
class Summary {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// Quantile in [0,1] with linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& values() const { return values_; }

 private:
  /// Sorts lazily; const because sorting does not change the multiset.
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Geometric mean of strictly positive values (0 if any value <= 0 slipped
/// in, with a check in debug). Used for aggregating competitive ratios.
double geometric_mean(const std::vector<double>& values);

/// Least-squares slope of log(y) against log(x): the empirical growth
/// exponent. Used by the lower-bound experiments (E2) to verify that the
/// measured ratio grows like sqrt(Delta).
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace osched::util
