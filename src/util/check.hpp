// Invariant-checking macros.
//
// Programming errors (broken invariants, out-of-range indices, violated
// preconditions) abort with a message; they are never used for recoverable
// conditions. OSCHED_CHECK stays on in release builds: every scheduler in
// this library is a reference implementation of a published algorithm and
// silent state corruption would invalidate the experimental results.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace osched::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::fprintf(stderr, "OSCHED_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

// Lazy message builder so the streaming operands are only evaluated on
// failure.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessage() { check_failed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace osched::detail

#define OSCHED_CHECK(cond)                                              \
  if (cond) {                                                           \
  } else                                                                \
    ::osched::detail::CheckMessage(__FILE__, __LINE__, #cond)

#define OSCHED_CHECK_LE(a, b) OSCHED_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OSCHED_CHECK_LT(a, b) OSCHED_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OSCHED_CHECK_GE(a, b) OSCHED_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OSCHED_CHECK_GT(a, b) OSCHED_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OSCHED_CHECK_EQ(a, b) OSCHED_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OSCHED_CHECK_NE(a, b) OSCHED_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)
