// Lemma 1 adaptive adversary: immediate-rejection policies cannot be
// competitive.
//
// The construction (paper, proof of Lemma 1), single machine:
//   Phase 1: ceil(1/eps) jobs of length L released at time 0. The policy
//   can immediately reject at most one of them.
//   Observe t*, the earliest time the policy starts a (non-rejected) big
//   job.
//   - If t* > L^2 the adversary stops: the policy idled too long, its flow
//     is Omega(L^2/eps) while scheduling the big jobs back-to-back costs
//     Theta(L/eps^2).
//   - Otherwise, starting at t* a job of length 1/L is released every 1/L
//     time units until t* + L (Theta(L^2) small jobs). The policy committed
//     non-preemptively to the running big job and cannot reject it anymore;
//     the small jobs it keeps (at least a 1-eps fraction) wait Omega(L)
//     each: Omega(L^3) total. The adversary serves every small job at its
//     release and the big jobs afterwards: Theta(L^2).
//   Either way the ratio is Omega(L) = Omega(sqrt(Delta)), Delta = L^2.
//
// The driver works against ANY deterministic online policy (supplied as a
// function Instance -> Schedule): determinism + online-ness guarantee the
// policy behaves identically on the phase-1 prefix of the final instance,
// so observing it on phase 1 alone is sound.
#pragma once

#include <functional>

#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched::workload {

using PolicyRunner = std::function<Schedule(const Instance&)>;

struct Lemma1Config {
  /// The policy's rejection budget parameter (fraction of jobs).
  double eps = 0.25;
  /// Big-job length; small jobs have length 1/L, so Delta = L^2.
  double L = 16.0;
};

struct Lemma1Outcome {
  Instance instance;          ///< the final adaptive instance
  Time first_big_start = 0.0; ///< observed t*
  bool algorithm_waited = false;  ///< t* > L^2 (case 1 of the proof)
  std::size_t num_big = 0;
  std::size_t num_small = 0;
  /// The adversary's explicit witness schedule on the final instance and
  /// its total flow time (an upper bound on OPT).
  Schedule adversary_schedule;
  double adversary_flow = 0.0;
  double delta = 0.0;  ///< p_max / p_min of the final instance
};

Lemma1Outcome run_lemma1_adversary(const PolicyRunner& policy,
                                   const Lemma1Config& config = {});

}  // namespace osched::workload
