// Closed-form workload family: the same instance under any storage backend.
//
// The storage refactor (instance/processing_store.hpp) needs workload
// families whose p_ij is a PURE function of (seed, j, i) — then the dense
// matrix, the sparse CSR and the on-demand generator all hold/produce the
// same doubles bit for bit, and the differential wall can assert that the
// schedulers cannot tell the backends apart. generate_workload() cannot do
// this: it samples rows from one shared RNG stream, so entry (j, i) depends
// on every draw before it.
//
// The family here is the e16 "dense" shape restated in closed form:
// Poisson-ish arrivals at a target load, Pareto(min_size, shape) base sizes,
// log-uniform unrelated machine factors in [1/spread, spread], and an
// optional Bernoulli eligibility mask (restricted assignment) with a
// guaranteed fallback machine per job. Every random quantity derives from a
// SplitMix64 hash of (seed, j, i) — no sequential state.
//
// Releases ARE sequential (a cumulative arrival process) but live in the
// materialized jobs vector that every backend carries anyway.
#pragma once

#include <cstdint>
#include <memory>

#include "instance/instance.hpp"

namespace osched::workload {

struct ClosedFormConfig {
  std::size_t num_jobs = 100000;
  std::size_t num_machines = 256;
  std::uint64_t seed = 1;
  /// Target utilization: the arrival rate is load * m / E[size].
  double load = 1.1;
  /// Pareto base sizes: scale min_size, shape pareto_shape.
  double min_size = 0.5;
  double pareto_shape = 1.8;
  /// Machine factor u_ij log-uniform in [1/speed_spread, speed_spread].
  double speed_spread = 4.0;
  /// Per-(j, i) eligibility probability; machine hash(j) % m is always
  /// eligible so every job has at least one. 1.0 = fully eligible — the
  /// only setting the generator backend accepts (its adjacency is implicit).
  double eligibility = 1.0;
};

/// p_ij of the family, pure in (config.seed, j, i); kTimeInfinity where the
/// eligibility mask excludes the machine. Exposed for tests.
Work closed_form_entry(const ClosedFormConfig& config, JobId j, MachineId i);

/// Builds the family's instance under `backend`. All backends hold the same
/// jobs and the same p values bit for bit:
///  * kDense     — materializes the full n×m matrix.
///  * kSparseCsr — materializes eligible entries only (never the matrix).
///  * kGenerator — materializes nothing; requires eligibility == 1.0.
Instance make_closed_form_instance(const ClosedFormConfig& config,
                                   StorageBackend backend);

/// The family's closed form as a standalone shared RowGenerator — the value
/// for SessionOptions::generator (and SchedulerSession::restore) when
/// streaming this family into generator-backed sessions. Requires
/// eligibility == 1.0, the generator contract. Equal configs produce
/// bit-identical generators, so a restored session does not need the
/// original pointer, just the config.
std::shared_ptr<const RowGenerator> make_closed_form_generator(
    const ClosedFormConfig& config);

}  // namespace osched::workload
