#include "workload/perturb.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace osched::workload {

Instance perturb_instance(const Instance& instance,
                          const PerturbConfig& config) {
  OSCHED_CHECK_GE(config.release_jitter, 0.0);
  OSCHED_CHECK_GE(config.size_noise, 0.0);
  OSCHED_CHECK_GE(config.drop_fraction, 0.0);
  OSCHED_CHECK_LT(config.drop_fraction, 1.0);
  util::Rng rng(config.seed);

  // Mean interarrival gap sets the jitter scale; a single job gets scale 1.
  double gap = 1.0;
  if (instance.num_jobs() > 1) {
    const Time span = instance.jobs().back().release -
                      instance.jobs().front().release;
    gap = std::max(span, 1e-9) /
          static_cast<double>(instance.num_jobs() - 1);
  }

  std::vector<Job> jobs;
  std::vector<std::vector<Work>> processing(instance.num_machines());
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    // Every job draws the same number of variates whether kept or dropped,
    // so the perturbation of job k does not depend on which other jobs
    // survived.
    const bool dropped = rng.bernoulli(config.drop_fraction);
    const double shift =
        rng.uniform(-config.release_jitter, config.release_jitter) * gap;
    const double size_factor =
        config.size_noise > 0.0 ? rng.lognormal(0.0, config.size_noise) : 1.0;
    if (dropped) continue;

    Job job = instance.job(j);
    const Time original_release = job.release;
    job.release = std::max(0.0, job.release + shift);
    if (job.has_deadline()) {
      // Keep the window length: the deadline follows the release.
      job.deadline += job.release - original_release;
    }
    jobs.push_back(job);
    for (std::size_t i = 0; i < instance.num_machines(); ++i) {
      const Work p = instance.processing(static_cast<MachineId>(i), j);
      processing[i].push_back(p < kTimeInfinity ? p * size_factor : p);
    }
  }
  // Degenerate all-dropped case: keep one job so the instance stays valid.
  if (jobs.empty() && instance.num_jobs() > 0) {
    jobs.push_back(instance.job(0));
    for (std::size_t i = 0; i < instance.num_machines(); ++i) {
      processing[i].push_back(instance.processing(static_cast<MachineId>(i), 0));
    }
  }
  return Instance(std::move(jobs), std::move(processing));
}

}  // namespace osched::workload
