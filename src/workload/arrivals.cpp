#include "workload/arrivals.hpp"

#include "util/check.hpp"

namespace osched::workload {

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kBatch: return "batch";
  }
  return "?";
}

std::vector<Time> generate_arrivals(util::Rng& rng, std::size_t n,
                                    const ArrivalConfig& config) {
  OSCHED_CHECK_GT(config.rate, 0.0);
  std::vector<Time> arrivals;
  arrivals.reserve(n);
  Time t = 0.0;
  switch (config.kind) {
    case ArrivalKind::kPoisson:
      for (std::size_t j = 0; j < n; ++j) {
        t += rng.exponential(config.rate);
        arrivals.push_back(t);
      }
      break;
    case ArrivalKind::kBursty: {
      OSCHED_CHECK_GT(config.burst_factor, 1.0);
      OSCHED_CHECK_GE(config.burst_length, 1.0);
      // Alternate burst/idle so the long-run rate matches config.rate:
      // inside a burst arrivals come at rate burst_factor * rate; after an
      // expected burst_length jobs, insert an idle gap that restores the
      // average inter-arrival time.
      const double burst_rate = config.burst_factor * config.rate;
      const double mean_gap_deficit =
          (1.0 / config.rate - 1.0 / burst_rate) * config.burst_length;
      std::size_t burst_remaining = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (burst_remaining == 0) {
          burst_remaining =
              1 + static_cast<std::size_t>(rng.exponential(1.0 / config.burst_length));
          if (j > 0) t += rng.exponential(1.0 / mean_gap_deficit);
        }
        t += rng.exponential(burst_rate);
        --burst_remaining;
        arrivals.push_back(t);
      }
      break;
    }
    case ArrivalKind::kUniform:
      for (std::size_t j = 0; j < n; ++j) {
        arrivals.push_back(static_cast<double>(j) / config.rate);
      }
      break;
    case ArrivalKind::kBatch:
      arrivals.assign(n, 0.0);
      break;
  }
  return arrivals;
}

}  // namespace osched::workload
