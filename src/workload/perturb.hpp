// Instance perturbation for robustness experiments (E15).
//
// The paper's guarantees are worst-case; the reproduction's measured ratios
// come from specific generated instances. Perturbation quantifies how much
// those measurements depend on instance details: jitter the release times,
// multiply job sizes by lognormal noise (per JOB, preserving each job's
// relative machine speeds — the unrelated structure is the experiment's
// subject, not the noise's), and drop a random fraction of jobs. A policy
// whose measured ratio is stable under all three is being measured, not
// lucky.
#pragma once

#include <cstdint>

#include "instance/instance.hpp"

namespace osched::workload {

struct PerturbConfig {
  /// Each release is shifted by U[-j, +j] * (mean interarrival gap) and
  /// clamped at 0. 0 disables.
  double release_jitter = 0.0;
  /// Each job's processing row is multiplied by exp(N(0, size_noise)),
  /// median-preserving. 0 disables.
  double size_noise = 0.0;
  /// Each job is independently dropped with this probability.
  double drop_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Returns the perturbed instance (job ids are re-assigned by the Instance
/// constructor's release-order sort; dropped jobs simply vanish). Deadlines,
/// weights and eligibility (infinite entries) are preserved.
Instance perturb_instance(const Instance& instance, const PerturbConfig& config);

}  // namespace osched::workload
