// Machine heterogeneity models: how a job's base size expands into the
// unrelated-machines p_ij row.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace osched::workload {

enum class MachineModel {
  /// p_ij = base_j on every machine.
  kIdentical,
  /// Uniformly related: machine i has speed s_i in [1, speed_spread];
  /// p_ij = base_j / s_i.
  kRelated,
  /// Fully unrelated: p_ij = base_j * u_ij with u_ij log-uniform in
  /// [1/speed_spread, speed_spread].
  kUnrelated,
  /// Restricted assignment: p_ij = base_j on eligible machines (each with
  /// probability eligibility, at least one guaranteed), +inf elsewhere.
  kRestricted,
};

const char* to_string(MachineModel model);

struct MachineModelConfig {
  MachineModel model = MachineModel::kUnrelated;
  double speed_spread = 4.0;   ///< heterogeneity breadth (>= 1)
  double eligibility = 0.5;    ///< kRestricted: per-machine eligibility prob
};

/// Per-machine speed factors for kRelated (size m); 1.0 for other models.
std::vector<double> sample_machine_speeds(util::Rng& rng, std::size_t machines,
                                          const MachineModelConfig& config);

/// Expands one job's base size into its p_ij row. `speeds` must come from
/// sample_machine_speeds with the same config.
std::vector<Work> expand_processing_row(util::Rng& rng, double base,
                                        const std::vector<double>& speeds,
                                        const MachineModelConfig& config);

}  // namespace osched::workload
