// Lemma 2 adaptive adversary: deterministic non-preemptive energy
// minimization is at least (alpha/9)^alpha-competitive.
//
// The construction (paper, proof of Lemma 2), single machine:
//   Job 1: r = 0, d = 3^{alpha+1}, volume p = (d - r)/3.
//   After the algorithm commits job j to start S_j and complete at C_j, the
//   adversary releases job j+1 with r = S_j + 1, d = C_j and volume
//   (d - r)/3 — squarely inside job j's execution, forcing overlap in the
//   algorithm's schedule. The instance ends when alpha jobs are out or the
//   next window drops below 1.
//   Every job overlaps all others in ALG's schedule (total speed stacks to
//   ~alpha/3), while the adversary can serve the jobs cheaply — here the
//   witness is an offline branch-and-bound schedule over the same strategy
//   space, so the reported ratio ALG/witness is a certified lower bound on
//   ALG/OPT for this instance.
//
// The driver runs against a pluggable deterministic policy; the speed grid
// is FIXED from job 1's parameters so that the policy's prefix behaviour
// does not depend on later arrivals.
//
// Two policies are provided:
//   * kConfigPrimalDual — the Theorem 3 greedy. It stretches jobs at the
//     lowest feasible speed, which keeps the stacked profile flat; on the
//     few-job instances reachable at small alpha the greedy is essentially
//     optimal and the measured ratio sits at ~1. This is itself a finding:
//     the (alpha/9)^alpha bound is vacuous until alpha > 9 and the
//     construction only punishes policies that concentrate speed.
//   * kEagerSpeedOne — starts every job immediately at speed 1 (the paper's
//     normalized fast policy). Windows then shrink geometrically, every job
//     overlaps its predecessor, speeds stack to ~alpha, and the measured
//     ratio against the offline witness grows with alpha — the lemma's
//     mechanism made visible.
#pragma once

#include <vector>

#include "core/energy_min/strategy.hpp"
#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched::workload {

enum class Lemma2Policy {
  kConfigPrimalDual,  ///< Theorem 3 greedy (slow, flat profiles)
  kEagerSpeedOne,     ///< start at r_j with speed 1 (fast, stacking profiles)
};

struct Lemma2Config {
  double alpha = 3.0;
  Lemma2Policy policy = Lemma2Policy::kConfigPrimalDual;
  /// Speed grid resolution for both the online policy and the witness.
  std::size_t speed_levels = 10;
  Time start_grid = 1.0;
  /// Stop releasing when the next window is at most this (paper: 1).
  Time min_window = 1.0;
  /// Start grid for the offline witness search only. Coarser than the
  /// policy's grid keeps the branch-and-bound tractable at larger alpha;
  /// the witness stays a feasible schedule, hence still a sound OPT upper
  /// bound (the reported ratio only becomes more conservative).
  Time witness_start_grid = 4.0;
  /// Node budget for the witness search.
  std::size_t witness_node_budget = 5'000'000;
};

struct Lemma2Outcome {
  Instance instance;  ///< the released jobs (single machine)
  std::vector<Strategy> commitments;  ///< the policy's choices, in order
  Schedule algorithm_schedule;
  double algorithm_energy = 0.0;
  double witness_energy = 0.0;  ///< feasible offline schedule (>= OPT bound)
  bool witness_certified = false;  ///< witness search ran to completion
  std::size_t jobs_released = 0;

  /// Certified lower bound on the policy's competitive ratio on this
  /// instance (witness_energy upper-bounds OPT).
  double ratio() const { return algorithm_energy / witness_energy; }
};

Lemma2Outcome run_lemma2_adversary(const Lemma2Config& config = {});

}  // namespace osched::workload
