// The classical instance family showing why rejection (or another
// relaxation) is REQUIRED: any deterministic online non-preemptive algorithm
// that must complete every job has competitive ratio Omega(Delta) for total
// flow time on a single machine, where Delta = p_max / p_min.
//
// Construction (folklore; the paper cites the stronger Omega(n) bound of
// Chekuri, Khanna, Zhu [2] for the weighted case):
//   * One long job of length L is released at time 0.
//   * A deterministic algorithm with no rejection option must eventually
//     start it, say at time t*. (If it never starts while jobs keep
//     arriving, its flow is unbounded; if it waits past L^2 it already
//     loses.) The moment it commits, the adversary releases a stream of
//     unit jobs, one per time unit, for the next L time units.
//   * The algorithm holds every unit job behind the long job: total flow
//     Omega(L^2). The adversary instead serves the unit jobs at release and
//     the long job last: total flow O(L).
//
// Unlike Lemmas 1 and 2, this driver does not need to adapt to the policy
// beyond observing t* — the released stream depends only on the committed
// start, exactly like the Lemma 1 phase-2 trigger. The experiments (E2, E6)
// run it against the no-rejection baselines to exhibit the blow-up and
// against the Theorem 1 scheduler to show rejection removes it.
#pragma once

#include <functional>

#include "instance/instance.hpp"
#include "sim/schedule.hpp"

namespace osched::workload {

struct NoRejectLbConfig {
  /// Long-job length; unit jobs have length 1, so Delta = L.
  double L = 32.0;
  /// Maximum time the adversary waits for the policy to start the long job
  /// before declaring the "waited too long" case; the paper's analyses use
  /// L^2, kept configurable for experiments. 0 means L^2.
  Time patience = 0.0;
};

struct NoRejectLbOutcome {
  Instance instance;            ///< the final adaptive instance
  Time long_job_start = 0.0;    ///< observed t*
  bool algorithm_waited = false;  ///< t* exceeded the patience bound
  std::size_t num_unit_jobs = 0;
  /// Adversary witness: unit jobs at release, long job afterwards.
  Schedule adversary_schedule;
  double adversary_flow = 0.0;
  double delta = 0.0;  ///< p_max / p_min = L
};

/// Runs the adversary against a deterministic online policy (supplied as a
/// function Instance -> Schedule, same contract as the Lemma 1 driver).
using PolicyRunner = std::function<Schedule(const Instance&)>;

NoRejectLbOutcome run_no_reject_lower_bound(const PolicyRunner& policy,
                                            const NoRejectLbConfig& config = {});

}  // namespace osched::workload
