#include "workload/trace_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace osched::workload {

namespace {

std::string format_value(double v) {
  if (v >= kTimeInfinity) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::optional<double> parse_value(const std::string& s) {
  if (s == "inf") return kTimeInfinity;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

// ---------------------------------------------------------------- writer

TraceStreamWriter::TraceStreamWriter(std::ostream& out,
                                     std::size_t num_machines)
    : out_(out), num_machines_(num_machines) {
  util::CsvWriter writer(out_);
  std::vector<std::string> header{"release", "weight", "deadline"};
  for (std::size_t i = 0; i < num_machines; ++i) {
    header.push_back("p_" + std::to_string(i));
  }
  writer.write_row(header);
}

void TraceStreamWriter::write_job(const StreamJob& job) {
  OSCHED_CHECK_EQ(job.processing.size(), num_machines_)
      << "trace row arity mismatch";
  util::CsvWriter writer(out_);
  std::vector<std::string> row{format_value(job.release),
                               format_value(job.weight),
                               format_value(job.deadline)};
  for (const Work p : job.processing) row.push_back(format_value(p));
  writer.write_row(row);
  ++rows_written_;
}

// ---------------------------------------------------------------- reader

TraceStreamReader::TraceStreamReader(std::istream& in) : in_(in) {
  std::vector<std::string> header;
  line_number_ = static_cast<std::size_t>(-1);  // header becomes line 0
  if (!next_row(header)) {
    if (ok()) fail("empty trace");
    return;
  }
  if (header.size() < 4 || header[0] != "release") {
    fail("bad header (expected release,weight,deadline,p_0,...)");
    return;
  }
  num_machines_ = header.size() - 3;
}

bool TraceStreamReader::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
  return false;
}

bool TraceStreamReader::next_row(std::vector<std::string>& fields) {
  if (!ok()) return false;
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank separator lines are tolerated
    const auto rows = util::parse_csv(line);
    if (!rows.has_value() || rows->size() != 1) return fail("malformed CSV");
    fields = std::move((*rows)[0]);
    if (fields.size() == 1 && fields[0].empty()) continue;
    return true;
  }
  return false;  // clean EOF
}

std::size_t TraceStreamReader::next_chunk(std::size_t max_jobs,
                                          std::vector<StreamJob>& out) {
  out.clear();
  std::vector<std::string> row;
  while (out.size() < max_jobs && next_row(row)) {
    if (row.size() != num_machines_ + 3) {
      fail("row " + std::to_string(line_number_) + " has wrong arity");
      out.clear();
      return 0;
    }
    StreamJob job;
    const auto release = parse_value(row[0]);
    const auto weight = parse_value(row[1]);
    const auto deadline = parse_value(row[2]);
    if (!release || !weight || !deadline) {
      fail("row " + std::to_string(line_number_) +
           " has non-numeric job fields");
      out.clear();
      return 0;
    }
    job.release = *release;
    job.weight = *weight;
    job.deadline = *deadline;
    job.processing.reserve(num_machines_);
    for (std::size_t i = 0; i < num_machines_; ++i) {
      const auto p = parse_value(row[3 + i]);
      if (!p) {
        fail("row " + std::to_string(line_number_) + " has non-numeric p_ij");
        out.clear();
        return 0;
      }
      job.processing.push_back(*p);
    }
    out.push_back(std::move(job));
    ++rows_read_;
  }
  return out.size();
}

// ------------------------------------------------------ whole-file helpers

std::string instance_to_csv(const Instance& instance) {
  std::ostringstream out;
  TraceStreamWriter writer(out, instance.num_machines());
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    writer.write_job(job);
  }
  return out.str();
}

std::optional<Instance> instance_from_csv(const std::string& text,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Instance> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::istringstream in(text);
  TraceStreamReader reader(in);
  if (!reader.ok()) return fail(reader.error());

  const std::size_t machines = reader.num_machines();
  std::vector<Job> jobs;
  std::vector<std::vector<Work>> processing(machines);
  std::vector<StreamJob> chunk;
  while (reader.next_chunk(4096, chunk) > 0) {
    for (const StreamJob& sj : chunk) {
      Job job;
      job.id = static_cast<JobId>(jobs.size());
      job.release = sj.release;
      job.weight = sj.weight;
      job.deadline = sj.deadline;
      jobs.push_back(job);
      for (std::size_t i = 0; i < machines; ++i) {
        processing[i].push_back(sj.processing[i]);
      }
    }
  }
  if (!reader.ok()) return fail(reader.error());

  Instance instance(std::move(jobs), std::move(processing));
  const std::string problems = instance.validate();
  if (!problems.empty()) return fail("invalid instance: " + problems);
  return instance;
}

bool save_instance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << instance_to_csv(instance);
  return static_cast<bool>(out);
}

std::optional<Instance> load_instance(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_csv(buffer.str(), error);
}

}  // namespace osched::workload
