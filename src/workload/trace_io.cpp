#include "workload/trace_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace osched::workload {

namespace {

std::string format_value(double v) {
  if (v >= kTimeInfinity) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::optional<double> parse_value(const std::string& s) {
  if (s == "inf") return kTimeInfinity;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

std::string instance_to_csv(const Instance& instance) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  std::vector<std::string> header{"release", "weight", "deadline"};
  for (std::size_t i = 0; i < instance.num_machines(); ++i) {
    header.push_back("p_" + std::to_string(i));
  }
  writer.write_row(header);
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = instance.job(j);
    std::vector<std::string> row{format_value(job.release),
                                 format_value(job.weight),
                                 format_value(job.deadline)};
    for (std::size_t i = 0; i < instance.num_machines(); ++i) {
      row.push_back(format_value(instance.processing(static_cast<MachineId>(i), j)));
    }
    writer.write_row(row);
  }
  return out.str();
}

std::optional<Instance> instance_from_csv(const std::string& text,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Instance> {
    if (error) *error = msg;
    return std::nullopt;
  };
  const auto rows = util::parse_csv(text);
  if (!rows.has_value()) return fail("malformed CSV");
  if (rows->empty()) return fail("empty trace");
  const auto& header = (*rows)[0];
  if (header.size() < 4 || header[0] != "release") {
    return fail("bad header (expected release,weight,deadline,p_0,...)");
  }
  const std::size_t machines = header.size() - 3;

  std::vector<Job> jobs;
  std::vector<std::vector<Work>> processing(machines);
  for (std::size_t r = 1; r < rows->size(); ++r) {
    const auto& row = (*rows)[r];
    if (row.empty() || (row.size() == 1 && row[0].empty())) continue;
    if (row.size() != header.size()) {
      return fail("row " + std::to_string(r) + " has wrong arity");
    }
    Job job;
    job.id = static_cast<JobId>(jobs.size());
    const auto release = parse_value(row[0]);
    const auto weight = parse_value(row[1]);
    const auto deadline = parse_value(row[2]);
    if (!release || !weight || !deadline) {
      return fail("row " + std::to_string(r) + " has non-numeric job fields");
    }
    job.release = *release;
    job.weight = *weight;
    job.deadline = *deadline;
    jobs.push_back(job);
    for (std::size_t i = 0; i < machines; ++i) {
      const auto p = parse_value(row[3 + i]);
      if (!p) return fail("row " + std::to_string(r) + " has non-numeric p_ij");
      processing[i].push_back(*p);
    }
  }

  Instance instance(std::move(jobs), std::move(processing));
  const std::string problems = instance.validate();
  if (!problems.empty()) return fail("invalid instance: " + problems);
  return instance;
}

bool save_instance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << instance_to_csv(instance);
  return static_cast<bool>(out);
}

std::optional<Instance> load_instance(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_csv(buffer.str(), error);
}

}  // namespace osched::workload
