#include "workload/trace_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace osched::workload {

namespace {

std::string format_value(double v) {
  if (v >= kTimeInfinity) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::optional<double> parse_value(const std::string& s) {
  if (s == "inf") return kTimeInfinity;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

// ---------------------------------------------------------------- writer

TraceStreamWriter::TraceStreamWriter(std::ostream& out,
                                     std::size_t num_machines,
                                     TraceFormat format)
    : out_(out), num_machines_(num_machines), format_(format) {
  util::CsvWriter writer(out_);
  std::vector<std::string> header{"release", "weight", "deadline"};
  if (format_ == TraceFormat::kSparse) {
    // No row spells the machine count out in the sparse dialect, so the
    // header carries it. "eligible:" cannot collide with a dense header,
    // whose fourth column is always "p_0".
    header.push_back("eligible:" + std::to_string(num_machines));
  } else {
    for (std::size_t i = 0; i < num_machines; ++i) {
      header.push_back("p_" + std::to_string(i));
    }
  }
  writer.write_row(header);
}

void TraceStreamWriter::write_job(const StreamJob& job) {
  const bool has_dense = !job.processing.empty();
  OSCHED_CHECK(has_dense || !job.entries.empty())
      << "metadata-only jobs carry no payload to serialize";
  if (has_dense) {
    OSCHED_CHECK_EQ(job.processing.size(), num_machines_)
        << "trace row arity mismatch";
  }
  util::CsvWriter writer(out_);
  std::vector<std::string> row{format_value(job.release),
                               format_value(job.weight),
                               format_value(job.deadline)};
  if (format_ == TraceFormat::kSparse) {
    // Eligible entries only, `i:p` pairs — converting a dense payload just
    // drops its infinities.
    std::string field;
    auto append = [&field](MachineId i, Work p) {
      if (!field.empty()) field += ' ';
      field += std::to_string(i);
      field += ':';
      field += format_value(p);
    };
    if (has_dense) {
      for (std::size_t i = 0; i < job.processing.size(); ++i) {
        if (job.processing[i] < kTimeInfinity) {
          append(static_cast<MachineId>(i), job.processing[i]);
        }
      }
    } else {
      for (const SparseEntry& entry : job.entries) {
        OSCHED_CHECK(static_cast<std::size_t>(entry.machine) < num_machines_)
            << "trace row machine id out of range";
        append(entry.machine, entry.p);
      }
    }
    row.push_back(std::move(field));
  } else if (has_dense) {
    for (const Work p : job.processing) row.push_back(format_value(p));
  } else {
    // Sparse payload into the dense dialect: scatter over an all-"inf" row.
    std::vector<std::string> dense(num_machines_, "inf");
    for (const SparseEntry& entry : job.entries) {
      OSCHED_CHECK(static_cast<std::size_t>(entry.machine) < num_machines_)
          << "trace row machine id out of range";
      dense[static_cast<std::size_t>(entry.machine)] = format_value(entry.p);
    }
    row.insert(row.end(), std::make_move_iterator(dense.begin()),
               std::make_move_iterator(dense.end()));
  }
  writer.write_row(row);
  ++rows_written_;
}

// ---------------------------------------------------------------- reader

TraceStreamReader::TraceStreamReader(std::istream& in) : in_(in) {
  std::vector<std::string> header;
  line_number_ = static_cast<std::size_t>(-1);  // header becomes line 0
  if (!next_row(header)) {
    if (ok()) fail("empty trace");
    return;
  }
  if (header.size() == 4 && header[3].rfind("eligible:", 0) == 0 &&
      header[0] == "release") {
    // Sparse dialect: the machine count rides in the header field.
    const std::string count = header[3].substr(9);
    char* end = nullptr;
    const unsigned long long m = std::strtoull(count.c_str(), &end, 10);
    if (count.empty() || end == count.c_str() || *end != '\0' || m == 0) {
      fail("bad header (malformed machine count in eligible:<m>)");
      return;
    }
    num_machines_ = static_cast<std::size_t>(m);
    format_ = TraceFormat::kSparse;
    return;
  }
  if (header.size() < 4 || header[0] != "release") {
    fail("bad header (expected release,weight,deadline,p_0,... or "
         "release,weight,deadline,eligible:<m>)");
    return;
  }
  num_machines_ = header.size() - 3;
}

bool TraceStreamReader::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
  return false;
}

bool TraceStreamReader::next_row(std::vector<std::string>& fields) {
  if (!ok()) return false;
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank separator lines are tolerated
    const auto rows = util::parse_csv(line);
    if (!rows.has_value() || rows->size() != 1) return fail("malformed CSV");
    fields = std::move((*rows)[0]);
    if (fields.size() == 1 && fields[0].empty()) continue;
    return true;
  }
  return false;  // clean EOF
}

std::size_t TraceStreamReader::next_chunk(std::size_t max_jobs,
                                          std::vector<StreamJob>& out) {
  out.clear();
  std::vector<std::string> row;
  const std::size_t arity =
      format_ == TraceFormat::kSparse ? 4 : num_machines_ + 3;
  while (out.size() < max_jobs && next_row(row)) {
    if (row.size() != arity) {
      fail("row " + std::to_string(line_number_) + " has wrong arity");
      out.clear();
      return 0;
    }
    StreamJob job;
    const auto release = parse_value(row[0]);
    const auto weight = parse_value(row[1]);
    const auto deadline = parse_value(row[2]);
    if (!release || !weight || !deadline) {
      fail("row " + std::to_string(line_number_) +
           " has non-numeric job fields");
      out.clear();
      return 0;
    }
    job.release = *release;
    job.weight = *weight;
    job.deadline = *deadline;
    if (format_ == TraceFormat::kSparse) {
      // Space-separated `i:p` pairs. Traces are external input, so the
      // structural demands from_sparse_rows/validate_job would make —
      // in-range, strictly ascending machine ids — are diagnosed here with
      // the row number rather than trusted downstream.
      const std::string& field = row[3];
      MachineId previous = kInvalidMachine;
      std::size_t pos = 0;
      while (pos < field.size()) {
        const std::size_t space = field.find(' ', pos);
        const std::size_t token_end =
            space == std::string::npos ? field.size() : space;
        const std::string token = field.substr(pos, token_end - pos);
        pos = token_end + 1;
        if (token.empty()) continue;  // tolerate doubled separators
        const std::size_t colon = token.find(':');
        if (colon == 0 || colon == std::string::npos) {
          fail("row " + std::to_string(line_number_) +
               " has a malformed i:p entry '" + token + "'");
          out.clear();
          return 0;
        }
        const std::string id_text = token.substr(0, colon);
        char* end = nullptr;
        const unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
        const auto p = parse_value(token.substr(colon + 1));
        if (end != id_text.c_str() + id_text.size() || !p) {
          fail("row " + std::to_string(line_number_) +
               " has a malformed i:p entry '" + token + "'");
          out.clear();
          return 0;
        }
        if (id >= num_machines_) {
          fail("row " + std::to_string(line_number_) + " names machine " +
               std::to_string(id) + " but the trace has " +
               std::to_string(num_machines_) + " machines");
          out.clear();
          return 0;
        }
        const auto machine = static_cast<MachineId>(id);
        if (previous != kInvalidMachine && machine <= previous) {
          fail("row " + std::to_string(line_number_) +
               " entries are not strictly ascending by machine");
          out.clear();
          return 0;
        }
        previous = machine;
        job.entries.push_back(SparseEntry{machine, *p});
      }
    } else {
      job.processing.reserve(num_machines_);
      for (std::size_t i = 0; i < num_machines_; ++i) {
        const auto p = parse_value(row[3 + i]);
        if (!p) {
          fail("row " + std::to_string(line_number_) + " has non-numeric p_ij");
          out.clear();
          return 0;
        }
        job.processing.push_back(*p);
      }
    }
    out.push_back(std::move(job));
    ++rows_read_;
  }
  return out.size();
}

// ------------------------------------------------------ whole-file helpers

std::string instance_to_csv(const Instance& instance) {
  std::ostringstream out;
  const TraceFormat format = instance.backend() == StorageBackend::kSparseCsr
                                 ? TraceFormat::kSparse
                                 : TraceFormat::kDense;
  TraceStreamWriter writer(out, instance.num_machines(), format);
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    writer.write_job(job);
  }
  return out.str();
}

std::optional<Instance> instance_from_csv(const std::string& text,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Instance> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::istringstream in(text);
  TraceStreamReader reader(in);
  if (!reader.ok()) return fail(reader.error());

  const std::size_t machines = reader.num_machines();
  const bool sparse = reader.format() == TraceFormat::kSparse;
  std::vector<Job> jobs;
  std::vector<std::vector<Work>> processing(sparse ? 0 : machines);
  std::vector<std::vector<SparseEntry>> rows;
  std::vector<StreamJob> chunk;
  while (reader.next_chunk(4096, chunk) > 0) {
    for (StreamJob& sj : chunk) {
      Job job;
      job.id = static_cast<JobId>(jobs.size());
      job.release = sj.release;
      job.weight = sj.weight;
      job.deadline = sj.deadline;
      jobs.push_back(job);
      if (sparse) {
        rows.push_back(std::move(sj.entries));
      } else {
        for (std::size_t i = 0; i < machines; ++i) {
          processing[i].push_back(sj.processing[i]);
        }
      }
    }
  }
  if (!reader.ok()) return fail(reader.error());

  // The reader already vetted the sparse structural demands (in-range,
  // strictly ascending ids), so from_sparse_rows' aborts are unreachable
  // from trace input; value problems (non-positive, non-finite, empty rows)
  // surface through validate() exactly as for dense traces.
  Instance instance =
      sparse ? Instance::from_sparse_rows(std::move(jobs), machines,
                                          std::move(rows))
             : Instance(std::move(jobs), std::move(processing));
  const std::string problems = instance.validate();
  if (!problems.empty()) return fail("invalid instance: " + problems);
  return instance;
}

bool save_instance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << instance_to_csv(instance);
  return static_cast<bool>(out);
}

std::optional<Instance> load_instance(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_csv(buffer.str(), error);
}

}  // namespace osched::workload
