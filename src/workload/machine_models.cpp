#include "workload/machine_models.hpp"

#include <cmath>

#include "util/check.hpp"

namespace osched::workload {

const char* to_string(MachineModel model) {
  switch (model) {
    case MachineModel::kIdentical: return "identical";
    case MachineModel::kRelated: return "related";
    case MachineModel::kUnrelated: return "unrelated";
    case MachineModel::kRestricted: return "restricted";
  }
  return "?";
}

std::vector<double> sample_machine_speeds(util::Rng& rng, std::size_t machines,
                                          const MachineModelConfig& config) {
  OSCHED_CHECK_GE(config.speed_spread, 1.0);
  std::vector<double> speeds(machines, 1.0);
  if (config.model == MachineModel::kRelated) {
    for (auto& s : speeds) s = rng.uniform(1.0, config.speed_spread);
  }
  return speeds;
}

std::vector<Work> expand_processing_row(util::Rng& rng, double base,
                                        const std::vector<double>& speeds,
                                        const MachineModelConfig& config) {
  OSCHED_CHECK_GT(base, 0.0);
  const std::size_t m = speeds.size();
  std::vector<Work> row(m);
  switch (config.model) {
    case MachineModel::kIdentical:
      for (auto& p : row) p = base;
      break;
    case MachineModel::kRelated:
      for (std::size_t i = 0; i < m; ++i) row[i] = base / speeds[i];
      break;
    case MachineModel::kUnrelated: {
      const double log_spread = std::log(config.speed_spread);
      for (auto& p : row) {
        p = base * std::exp(rng.uniform(-log_spread, log_spread));
      }
      break;
    }
    case MachineModel::kRestricted: {
      bool any = false;
      for (auto& p : row) {
        if (rng.bernoulli(config.eligibility)) {
          p = base;
          any = true;
        } else {
          p = kTimeInfinity;
        }
      }
      if (!any) row[rng.index(m)] = base;  // guarantee eligibility
      break;
    }
  }
  return row;
}

}  // namespace osched::workload
