#include "workload/lemma1_adversary.hpp"

#include <cmath>

#include "instance/builders.hpp"
#include "sim/validator.hpp"
#include "util/check.hpp"

namespace osched::workload {

namespace {

Instance phase1_instance(std::size_t num_big, double L) {
  InstanceBuilder builder(1);
  for (std::size_t k = 0; k < num_big; ++k) {
    builder.add_identical_job(0.0, L);
  }
  return builder.build();
}

/// Earliest execution start among non-rejected big jobs; 0 if none started
/// (a policy that rejects everything gets the phase-2 flood immediately).
Time observe_first_big_start(const Schedule& schedule) {
  Time earliest = kTimeInfinity;
  for (const JobRecord& rec : schedule.records()) {
    if (rec.started && rec.completed()) {
      earliest = std::min(earliest, rec.start);
    }
  }
  return earliest < kTimeInfinity ? earliest : 0.0;
}

}  // namespace

Lemma1Outcome run_lemma1_adversary(const PolicyRunner& policy,
                                   const Lemma1Config& config) {
  OSCHED_CHECK_GT(config.eps, 0.0);
  OSCHED_CHECK_LT(config.eps, 1.0);
  OSCHED_CHECK_GT(config.L, 1.0);
  const double L = config.L;
  const auto num_big =
      static_cast<std::size_t>(std::ceil(1.0 / config.eps - 1e-9));

  // Phase 1 probe: a deterministic online policy behaves identically on the
  // phase-1 prefix of the final instance, so its observed start time is
  // binding.
  const Instance phase1 = phase1_instance(num_big, L);
  const Schedule probe = policy(phase1);
  OSCHED_CHECK_EQ(probe.num_jobs(), phase1.num_jobs());
  const Time t_star = observe_first_big_start(probe);

  Lemma1Outcome outcome;
  outcome.first_big_start = t_star;
  outcome.algorithm_waited = t_star > L * L;
  outcome.num_big = num_big;

  if (outcome.algorithm_waited) {
    // Case 1: no phase 2. Witness: big jobs back-to-back from time 0.
    outcome.instance = phase1;
    outcome.num_small = 0;
    Schedule witness(phase1.num_jobs());
    double flow = 0.0;
    for (std::size_t k = 0; k < num_big; ++k) {
      const auto j = static_cast<JobId>(k);
      witness.mark_dispatched(j, 0);
      witness.mark_started(j, static_cast<double>(k) * L, 1.0);
      witness.mark_completed(j, static_cast<double>(k + 1) * L);
      flow += static_cast<double>(k + 1) * L;
    }
    outcome.adversary_schedule = std::move(witness);
    outcome.adversary_flow = flow;
    outcome.delta = 1.0;  // only one job size in play
    return outcome;
  }

  // Case 2: flood with small jobs of length 1/L every 1/L units over
  // [t*, t* + L].
  const double small = 1.0 / L;
  const auto num_small = static_cast<std::size_t>(std::floor(L * L + 1e-9)) + 1;
  InstanceBuilder builder(1);
  for (std::size_t k = 0; k < num_big; ++k) {
    builder.add_identical_job(0.0, L);
  }
  for (std::size_t s = 0; s < num_small; ++s) {
    builder.add_identical_job(t_star + static_cast<double>(s) * small, small);
  }
  outcome.instance = builder.build();
  outcome.num_small = num_small;
  outcome.delta = L / small;  // = L^2

  // Witness: every small job runs at its release (they are spaced exactly
  // one service time apart); big jobs run back-to-back afterwards.
  Schedule witness(outcome.instance.num_jobs());
  double flow = 0.0;
  // Ids: the Instance sorts by (release, insertion id), so the big jobs are
  // 0..num_big-1 and the small jobs follow in release order.
  for (std::size_t s = 0; s < num_small; ++s) {
    const auto j = static_cast<JobId>(num_big + s);
    const Time r = outcome.instance.job(j).release;
    witness.mark_dispatched(j, 0);
    witness.mark_started(j, r, 1.0);
    witness.mark_completed(j, r + small);
    flow += small;
  }
  const Time bigs_start = t_star + static_cast<double>(num_small) * small;
  for (std::size_t k = 0; k < num_big; ++k) {
    const auto j = static_cast<JobId>(k);
    const Time start = bigs_start + static_cast<double>(k) * L;
    witness.mark_dispatched(j, 0);
    witness.mark_started(j, start, 1.0);
    witness.mark_completed(j, start + L);
    flow += start + L;  // release 0
  }
  check_schedule(witness, outcome.instance);  // adversary must be feasible
  outcome.adversary_schedule = std::move(witness);
  outcome.adversary_flow = flow;
  return outcome;
}

}  // namespace osched::workload
