#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "instance/builders.hpp"

namespace osched::workload {

const char* to_string(SizeDistribution dist) {
  switch (dist) {
    case SizeDistribution::kUniform: return "uniform";
    case SizeDistribution::kExponential: return "exponential";
    case SizeDistribution::kPareto: return "pareto";
    case SizeDistribution::kBimodal: return "bimodal";
    case SizeDistribution::kLognormal: return "lognormal";
  }
  return "?";
}

const char* to_string(WeightDistribution dist) {
  switch (dist) {
    case WeightDistribution::kUnit: return "unit";
    case WeightDistribution::kUniform: return "uniform";
    case WeightDistribution::kInverseSize: return "inverse-size";
    case WeightDistribution::kProportionalSize: return "proportional-size";
  }
  return "?";
}

double expected_size(const SizeConfig& config) {
  switch (config.dist) {
    case SizeDistribution::kUniform:
      return 0.5 * (config.min_size + config.max_size);
    case SizeDistribution::kExponential:
      return config.mean_size;
    case SizeDistribution::kPareto:
      // Mean of Pareto(scale, shape) = scale * shape / (shape - 1), infinite
      // for shape <= 1 (cap for rate derivation).
      if (config.pareto_shape <= 1.0) return 10.0 * config.min_size;
      return config.min_size * config.pareto_shape / (config.pareto_shape - 1.0);
    case SizeDistribution::kBimodal:
      return (1.0 - config.bimodal_fraction) * config.min_size +
             config.bimodal_fraction * config.max_size;
    case SizeDistribution::kLognormal:
      return config.mean_size;
  }
  return 1.0;
}

namespace {

double sample_size(util::Rng& rng, const SizeConfig& config) {
  switch (config.dist) {
    case SizeDistribution::kUniform:
      return rng.uniform(config.min_size, config.max_size);
    case SizeDistribution::kExponential:
      // Shifted slightly away from zero: zero-length jobs are degenerate.
      return std::max(1e-3 * config.mean_size,
                      rng.exponential(1.0 / config.mean_size));
    case SizeDistribution::kPareto:
      return rng.pareto(config.min_size, config.pareto_shape);
    case SizeDistribution::kBimodal:
      return rng.bernoulli(config.bimodal_fraction) ? config.max_size
                                                    : config.min_size;
    case SizeDistribution::kLognormal: {
      const double sigma = config.lognormal_sigma;
      const double mu = std::log(config.mean_size) - 0.5 * sigma * sigma;
      return rng.lognormal(mu, sigma);
    }
  }
  return 1.0;
}

Weight sample_weight(util::Rng& rng, double base, WeightDistribution dist) {
  switch (dist) {
    case WeightDistribution::kUnit: return 1.0;
    case WeightDistribution::kUniform: return rng.uniform(0.5, 4.0);
    case WeightDistribution::kInverseSize: return 1.0 / base;
    case WeightDistribution::kProportionalSize: return base;
  }
  return 1.0;
}

}  // namespace

Instance generate_workload(const WorkloadConfig& config) {
  OSCHED_CHECK_GT(config.num_machines, 0u);
  OSCHED_CHECK_GT(config.load, 0.0);
  util::Rng rng(config.seed);

  ArrivalConfig arrivals = config.arrivals;
  arrivals.rate = config.load * static_cast<double>(config.num_machines) /
                  expected_size(config.sizes);
  const std::vector<Time> releases =
      generate_arrivals(rng, config.num_jobs, arrivals);
  const std::vector<double> speeds =
      sample_machine_speeds(rng, config.num_machines, config.machines);

  InstanceBuilder builder(config.num_machines);
  for (std::size_t j = 0; j < config.num_jobs; ++j) {
    const double base = sample_size(rng, config.sizes);
    std::vector<Work> row =
        expand_processing_row(rng, base, speeds, config.machines);
    const Weight weight = sample_weight(rng, base, config.weights);
    Time deadline = kTimeInfinity;
    if (config.with_deadlines) {
      Work fastest = kTimeInfinity;
      for (Work p : row) fastest = std::min(fastest, p);
      deadline = releases[j] +
                 rng.uniform(config.slack_min, config.slack_max) * fastest;
    }
    builder.add_job(releases[j], std::move(row), weight, deadline);
  }
  return builder.build();
}

Instance generate_burst_trap(const BurstTrapConfig& config) {
  util::Rng rng(config.seed);
  InstanceBuilder builder(config.num_machines);
  Time t = 0.0;
  for (std::size_t round = 0; round < config.num_rounds; ++round) {
    builder.add_identical_job(t, config.long_size);
    // The tiny jobs land shortly after the elephant starts, spread over a
    // fraction of its run.
    const Time burst_start = t + 0.01 * config.long_size;
    const Time spread = 0.2 * config.long_size;
    for (std::size_t k = 0; k < config.burst_jobs; ++k) {
      builder.add_identical_job(
          burst_start + spread * static_cast<double>(k) /
                            std::max<std::size_t>(1, config.burst_jobs),
          config.small_size);
    }
    // Next round starts after this elephant would finish plus slack.
    t += config.long_size * (1.2 + 0.2 * rng.next_double());
  }
  return builder.build();
}

}  // namespace osched::workload
