// Instance (trace) serialization — whole-file and chunked-streaming forms.
//
// Two CSV dialects, one job per row, auto-detected by the reader off the
// header:
//
//   DENSE   release,weight,deadline,p_0,p_1,...,p_{m-1}
//           "inf" encodes ineligible machines and absent deadlines.
//   SPARSE  release,weight,deadline,eligible:<m>
//           the fourth column holds the job's ELIGIBLE entries only, as
//           space-separated `i:p` pairs in strictly ascending machine
//           order (e.g. "3:1.5 17:0.25"); the machine count lives in the
//           header since no row spells it out. A restricted-assignment
//           trace at m = 4096 is a few pairs per row instead of >99%
//           literal "inf" tokens.
//
// Both dialects round-trip every double exactly through %.17g formatting.
// The dense form is the compatibility dialect — every pre-existing trace
// parses unchanged; the writer picks the sparse form for sparse-CSR
// instances (and on request).
//
// The streaming pair is the production path: TraceStreamReader parses
// rows straight off an std::istream into StreamJob chunks — release order
// ready for SchedulerSession::submit — without ever holding the full CSV
// text or the full instance; TraceStreamWriter appends rows as jobs are
// produced. The whole-file helpers below are thin wrappers over them, so
// there is exactly one parser/formatter for the trace dialect.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "instance/instance.hpp"
#include "instance/stream_job.hpp"

namespace osched::workload {

/// The two trace dialects (header comment above). The reader detects the
/// dialect; the writer is told it at construction.
enum class TraceFormat {
  kDense,
  kSparse,
};

/// Incremental, bounded-memory trace writer: emits the header on
/// construction, then one row per write_job call.
class TraceStreamWriter {
 public:
  TraceStreamWriter(std::ostream& out, std::size_t num_machines,
                    TraceFormat format = TraceFormat::kDense);

  /// Appends one row. Accepts either StreamJob payload form (dense row of
  /// num_machines entries, or sparse entries with in-range ascending
  /// machine ids) and converts to the writer's dialect as needed —
  /// metadata-only jobs carry nothing to serialize and abort.
  void write_job(const StreamJob& job);

  std::size_t num_machines() const { return num_machines_; }
  TraceFormat format() const { return format_; }
  std::size_t rows_written() const { return rows_written_; }

 private:
  std::ostream& out_;
  std::size_t num_machines_;
  TraceFormat format_;
  std::size_t rows_written_ = 0;
};

/// Incremental, bounded-memory trace reader: parses the header on
/// construction, then hands out jobs in chunks of bounded size. A malformed
/// trace sets error() (never aborts — traces are external input).
class TraceStreamReader {
 public:
  explicit TraceStreamReader(std::istream& in);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  std::size_t num_machines() const { return num_machines_; }
  /// The dialect the header announced. Jobs from a sparse trace come back
  /// in the sparse StreamJob payload form (entries), dense traces in the
  /// dense form (processing) — both are accepted by every submission path.
  TraceFormat format() const { return format_; }
  /// Data rows successfully parsed so far.
  std::size_t rows_read() const { return rows_read_; }

  /// Reads up to max_jobs further jobs into `out` (cleared first). Returns
  /// out.size(); 0 means end of trace or error — distinguish with ok().
  std::size_t next_chunk(std::size_t max_jobs, std::vector<StreamJob>& out);

 private:
  bool fail(const std::string& message);
  /// Reads the next non-blank data line; false at EOF/error.
  bool next_row(std::vector<std::string>& fields);

  std::istream& in_;
  std::string error_;
  std::size_t num_machines_ = 0;
  TraceFormat format_ = TraceFormat::kDense;
  std::size_t rows_read_ = 0;
  std::size_t line_number_ = 0;  ///< physical line index (header = 0)
};

/// Serializes in the instance's natural dialect: sparse-CSR instances emit
/// the sparse form, dense and generator instances the dense form.
std::string instance_to_csv(const Instance& instance);

/// Returns nullopt (with a message in *error if given) on malformed input.
std::optional<Instance> instance_from_csv(const std::string& text,
                                          std::string* error = nullptr);

/// File convenience wrappers. save returns false on IO failure.
bool save_instance(const Instance& instance, const std::string& path);
std::optional<Instance> load_instance(const std::string& path,
                                      std::string* error = nullptr);

}  // namespace osched::workload
