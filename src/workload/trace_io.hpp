// Instance (trace) serialization.
//
// CSV layout, one job per row:
//   release,weight,deadline,p_0,p_1,...,p_{m-1}
// with a header row naming the columns; "inf" encodes ineligible machines
// and absent deadlines. Round-trips exactly through %.17g formatting.
#pragma once

#include <optional>
#include <string>

#include "instance/instance.hpp"

namespace osched::workload {

std::string instance_to_csv(const Instance& instance);

/// Returns nullopt (with a message in *error if given) on malformed input.
std::optional<Instance> instance_from_csv(const std::string& text,
                                          std::string* error = nullptr);

/// File convenience wrappers. save returns false on IO failure.
bool save_instance(const Instance& instance, const std::string& path);
std::optional<Instance> load_instance(const std::string& path,
                                      std::string* error = nullptr);

}  // namespace osched::workload
