// Arrival-time processes for synthetic workloads.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace osched::workload {

enum class ArrivalKind {
  /// Memoryless arrivals with the given rate.
  kPoisson,
  /// On/off bursts: exponentially long busy periods with `burst_factor`
  /// times the base rate, separated by idle periods (models flash crowds
  /// and the "many jobs arrive during one long job" pattern the rejection
  /// rules are designed for).
  kBursty,
  /// Deterministic equal spacing (rate jobs per unit time).
  kUniform,
  /// Everything at time zero (the pathological batch the lower bounds use).
  kBatch,
};

const char* to_string(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Average arrival rate (jobs per time unit).
  double rate = 1.0;
  /// kBursty only: rate multiplier inside bursts (> 1).
  double burst_factor = 8.0;
  /// kBursty only: expected number of jobs per burst.
  double burst_length = 20.0;
};

/// Generates `n` non-decreasing release times starting at 0.
std::vector<Time> generate_arrivals(util::Rng& rng, std::size_t n,
                                    const ArrivalConfig& config);

}  // namespace osched::workload
