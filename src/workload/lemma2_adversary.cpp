#include "workload/lemma2_adversary.hpp"

#include <cmath>

#include "core/energy_min/bruteforce.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "instance/builders.hpp"
#include "instance/power.hpp"
#include "util/check.hpp"

namespace osched::workload {

namespace {

struct Pending {
  Time release;
  Time deadline;
  Work volume;
};

Instance build_instance(const std::vector<Pending>& jobs) {
  InstanceBuilder builder(1);
  for (const Pending& job : jobs) {
    builder.add_job(job.release, {job.volume}, 1.0, job.deadline);
  }
  return builder.build();
}

/// The paper's normalized "fast" policy: commit every job to start at its
/// release with speed 1 (feasible: duration = window/3 <= window). Being
/// prefix-deterministic by construction, the adaptive loop only needs one
/// pass. Returns the result in the same shape run_config_primal_dual does.
ConfigPDResult run_eager_speed_one(const Instance& instance, double alpha) {
  ConfigPDResult result;
  result.schedule = Schedule(instance.num_jobs());
  SpeedProfile profile;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = instance.job(j);
    Strategy strategy{MachineId{0}, job.release, 1.0};
    const Time end = strategy.start + strategy.duration(instance.processing(0, j));
    OSCHED_CHECK_LE(end, job.deadline + kTimeEps);
    profile.add(strategy.start, end, strategy.speed);
    result.chosen.push_back(strategy);
    result.schedule.mark_dispatched(j, 0);
    result.schedule.mark_started(j, strategy.start, strategy.speed);
    result.schedule.mark_completed(j, end);
  }
  const PolynomialPower power(alpha);
  result.algorithm_energy = profile.total_cost(power);
  result.profiles.push_back(std::move(profile));
  return result;
}

}  // namespace

Lemma2Outcome run_lemma2_adversary(const Lemma2Config& config) {
  OSCHED_CHECK_GT(config.alpha, 1.0);
  const double alpha = config.alpha;
  const auto max_jobs =
      std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(alpha)));

  const Time d1 = std::pow(3.0, alpha + 1.0);
  std::vector<Pending> jobs{{0.0, d1, d1 / 3.0}};

  // Fixed speed grid spanning "stretch across the window" (density 1/3) up
  // to a generous 2*alpha: prefix-deterministic because it never changes.
  std::vector<Speed> speeds;
  {
    const double lo = 1.0 / 3.0;
    const double hi = 2.0 * alpha;
    const std::size_t levels = std::max<std::size_t>(2, config.speed_levels);
    const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(levels - 1));
    double v = lo;
    for (std::size_t k = 0; k < levels; ++k) {
      speeds.push_back(v);
      v *= ratio;
    }
  }

  ConfigPDOptions policy_options;
  policy_options.alpha = alpha;
  policy_options.speeds = speeds;
  policy_options.start_grid = config.start_grid;

  const auto run_policy = [&](const Instance& instance) {
    switch (config.policy) {
      case Lemma2Policy::kEagerSpeedOne:
        return run_eager_speed_one(instance, alpha);
      case Lemma2Policy::kConfigPrimalDual:
        break;
    }
    return run_config_primal_dual(instance, policy_options);
  };

  // Adaptive release loop: re-running the deterministic policy on each
  // prefix reproduces its previous commitments exactly, so only the newest
  // job's commitment is "new information" per round.
  ConfigPDResult policy_result;
  for (;;) {
    const Instance instance = build_instance(jobs);
    policy_result = run_policy(instance);
    if (jobs.size() >= max_jobs) break;

    const Strategy& last = policy_result.chosen.back();
    const Work last_volume = jobs.back().volume;
    const Time start = last.start;
    const Time completion = start + last.duration(last_volume);
    const Time next_release = start + 1.0;
    const Time next_deadline = completion;
    const Time window = next_deadline - next_release;
    if (window <= config.min_window) break;
    jobs.push_back({next_release, next_deadline, window / 3.0});
  }

  Lemma2Outcome outcome;
  outcome.instance = build_instance(jobs);
  outcome.commitments = policy_result.chosen;
  outcome.algorithm_schedule = policy_result.schedule;
  outcome.algorithm_energy = policy_result.algorithm_energy;
  outcome.jobs_released = jobs.size();

  BruteForceOptions witness_options;
  witness_options.alpha = alpha;
  witness_options.speeds = speeds;
  witness_options.start_grid = config.witness_start_grid;
  witness_options.node_budget = config.witness_node_budget;
  const auto witness = brute_force_energy(outcome.instance, witness_options);
  OSCHED_CHECK(witness.has_value()) << "witness search found no schedule";
  outcome.witness_energy = witness->optimal_energy;
  outcome.witness_certified = witness->certified_optimal;
  return outcome;
}

}  // namespace osched::workload
