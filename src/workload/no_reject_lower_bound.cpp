#include "workload/no_reject_lower_bound.hpp"

#include <cmath>

#include "instance/builders.hpp"
#include "util/check.hpp"

namespace osched::workload {

namespace {

Instance phase1_instance(double L) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, L);
  return builder.build();
}

Instance final_instance(double L, Time t_star, std::size_t num_units) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, L);
  for (std::size_t k = 1; k <= num_units; ++k) {
    builder.add_identical_job(t_star + static_cast<Time>(k), 1.0);
  }
  return builder.build();
}

}  // namespace

NoRejectLbOutcome run_no_reject_lower_bound(const PolicyRunner& policy,
                                            const NoRejectLbConfig& config) {
  OSCHED_CHECK_GT(config.L, 1.0);
  const double L = config.L;
  const Time patience = config.patience > 0.0 ? config.patience : L * L;

  // Observe the policy's commitment on the one-job prefix. Determinism plus
  // online-ness make this sound: the policy cannot behave differently on the
  // prefix of the final instance, because every other job is released
  // strictly after the observed start.
  const Instance prefix = phase1_instance(L);
  const Schedule prefix_schedule = policy(prefix);
  const JobRecord& rec = prefix_schedule.record(0);
  OSCHED_CHECK(rec.started)
      << "the no-reject lower-bound driver requires a policy that starts the "
         "long job (it was "
      << to_string(rec.fate) << ")";
  const Time t_star = rec.start;

  NoRejectLbOutcome outcome;
  outcome.long_job_start = t_star;
  outcome.delta = L;

  if (t_star > patience) {
    // Case 1: the policy idled past the patience bound. The single-job
    // instance already certifies a ratio of at least (t* + L)/L >= L.
    outcome.algorithm_waited = true;
    outcome.instance = prefix;
    outcome.num_unit_jobs = 0;
    outcome.adversary_schedule = Schedule(1);
    outcome.adversary_schedule.mark_dispatched(0, 0);
    outcome.adversary_schedule.mark_started(0, 0.0, 1.0);
    outcome.adversary_schedule.mark_completed(0, L);
    outcome.adversary_flow = L;
    return outcome;
  }

  // Case 2: unit jobs released one per time unit strictly inside the long
  // job's execution window (t*, t* + L].
  const auto num_units = static_cast<std::size_t>(std::floor(L));
  outcome.num_unit_jobs = num_units;
  outcome.instance = final_instance(L, t_star, num_units);

  // Witness: every unit job at its release (they never overlap: consecutive
  // releases are one unit apart), the long job after the last unit.
  outcome.adversary_schedule = Schedule(outcome.instance.num_jobs());
  double flow = 0.0;
  Time last_unit_end = 0.0;
  for (std::size_t idx = 0; idx < outcome.instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const Job& job = outcome.instance.job(j);
    const Work p = outcome.instance.processing(0, j);
    if (p >= L) continue;  // the long job is placed below
    outcome.adversary_schedule.mark_dispatched(j, 0);
    outcome.adversary_schedule.mark_started(j, job.release, 1.0);
    outcome.adversary_schedule.mark_completed(j, job.release + p);
    last_unit_end = std::max(last_unit_end, job.release + p);
    flow += p;
  }
  for (std::size_t idx = 0; idx < outcome.instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (outcome.instance.processing(0, j) < L) continue;
    outcome.adversary_schedule.mark_dispatched(j, 0);
    outcome.adversary_schedule.mark_started(j, last_unit_end, 1.0);
    outcome.adversary_schedule.mark_completed(j, last_unit_end + L);
    flow += last_unit_end + L - outcome.instance.job(j).release;
  }
  outcome.adversary_flow = flow;
  return outcome;
}

}  // namespace osched::workload
