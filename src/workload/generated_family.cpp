#include "workload/generated_family.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace osched::workload {

namespace {

/// SplitMix64 finalizer as a stateless hash: the per-(seed, j, i) source of
/// every closed-form quantity. Distinct salts give independent streams for
/// base size, machine factor and eligibility mask.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) with 53-bit resolution, same conversion Rng uses.
double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltBase = 0xBA5EBA5EBA5EBA5EULL;
constexpr std::uint64_t kSaltSpeed = 0x5EEDFACE5EEDFACEULL;
constexpr std::uint64_t kSaltMask = 0xE1161B1E0F00D000ULL;
constexpr std::uint64_t kSaltFallback = 0xFA11BACCFA11BACCULL;

std::uint64_t key(std::uint64_t seed, std::uint64_t salt, std::uint64_t j,
                  std::uint64_t i) {
  // Decorrelate the coordinates before the final mix: multiplying by large
  // odd constants keeps (j, i) and (i, j) collisions out of the lattice.
  return mix(seed ^ salt ^ (j * 0x9e3779b97f4a7c15ULL) ^
             (i * 0xc2b2ae3d27d4eb4fULL));
}

/// Pareto(min_size, shape) base size of job j — inverse-CDF of one hash.
double base_size(const ClosedFormConfig& config, std::uint64_t j) {
  const double u = u01(key(config.seed, kSaltBase, j, 0));
  return config.min_size * std::pow(1.0 - u, -1.0 / config.pareto_shape);
}

/// The machine that is eligible for j regardless of the mask draws.
MachineId fallback_machine(const ClosedFormConfig& config, std::uint64_t j) {
  return static_cast<MachineId>(key(config.seed, kSaltFallback, j, 0) %
                                config.num_machines);
}

bool mask_eligible(const ClosedFormConfig& config, std::uint64_t j,
                   std::uint64_t i) {
  if (config.eligibility >= 1.0) return true;
  if (static_cast<MachineId>(i) == fallback_machine(config, j)) return true;
  return u01(key(config.seed, kSaltMask, j, i)) < config.eligibility;
}

/// Finite p_ij (no mask): base_j times a log-uniform unrelated factor.
Work finite_entry(const ClosedFormConfig& config, std::uint64_t j,
                  std::uint64_t i) {
  const double ln_spread = std::log(config.speed_spread);
  const double u = u01(key(config.seed, kSaltSpeed, j, i));
  return base_size(config, j) * std::exp(ln_spread * (2.0 * u - 1.0));
}

class ClosedFormGenerator final : public RowGenerator {
 public:
  explicit ClosedFormGenerator(const ClosedFormConfig& config)
      : config_(config) {}

  Work entry(JobId j, MachineId i) const override {
    return closed_form_entry(config_, j, i);
  }

  void fill_row(JobId j, std::size_t num_machines, Work* out) const override {
    // Hoist the job-only factors out of the machine loop — the whole point
    // of the override (entry() would recompute the Pareto inverse per
    // machine). base * exp(x) is evaluated in exactly the same operation
    // order as finite_entry, so the doubles match entry() bit for bit.
    const double base = base_size(config_, static_cast<std::uint64_t>(j));
    const double ln_spread = std::log(config_.speed_spread);
    const auto jj = static_cast<std::uint64_t>(j);
    for (std::size_t i = 0; i < num_machines; ++i) {
      const double u = u01(key(config_.seed, kSaltSpeed, jj, i));
      out[i] = base * std::exp(ln_spread * (2.0 * u - 1.0));
    }
  }

 private:
  ClosedFormConfig config_;
};

/// Release-sorted jobs of the family: a cumulative exponential arrival
/// process at rate load * m / E[size] (E of Pareto = scale*shape/(shape-1)).
std::vector<Job> make_jobs(const ClosedFormConfig& config) {
  const double mean_size = config.pareto_shape > 1.0
                               ? config.min_size * config.pareto_shape /
                                     (config.pareto_shape - 1.0)
                               : 10.0 * config.min_size;
  const double rate =
      config.load * static_cast<double>(config.num_machines) / mean_size;
  util::Rng rng(config.seed);
  std::vector<Job> jobs(config.num_jobs);
  Time t = 0.0;
  for (std::size_t j = 0; j < config.num_jobs; ++j) {
    t += rng.exponential(rate);
    jobs[j].id = static_cast<JobId>(j);
    jobs[j].release = t;
    jobs[j].weight = 1.0;
    jobs[j].deadline = kTimeInfinity;
  }
  return jobs;
}

}  // namespace

Work closed_form_entry(const ClosedFormConfig& config, JobId j, MachineId i) {
  const auto jj = static_cast<std::uint64_t>(j);
  const auto ii = static_cast<std::uint64_t>(i);
  if (!mask_eligible(config, jj, ii)) return kTimeInfinity;
  return finite_entry(config, jj, ii);
}

std::shared_ptr<const RowGenerator> make_closed_form_generator(
    const ClosedFormConfig& config) {
  OSCHED_CHECK_GE(config.eligibility, 1.0)
      << "generator-backed sessions are fully eligible by contract; "
         "restricted families use the sparse backend";
  return std::make_shared<ClosedFormGenerator>(config);
}

Instance make_closed_form_instance(const ClosedFormConfig& config,
                                   StorageBackend backend) {
  OSCHED_CHECK_GT(config.num_machines, 0u);
  OSCHED_CHECK_GT(config.num_jobs, 0u);
  OSCHED_CHECK_GT(config.pareto_shape, 0.0);
  OSCHED_CHECK_GE(config.speed_spread, 1.0);
  std::vector<Job> jobs = make_jobs(config);
  const std::size_t n = config.num_jobs;
  const std::size_t m = config.num_machines;

  switch (backend) {
    case StorageBackend::kGenerator:
      OSCHED_CHECK_GE(config.eligibility, 1.0)
          << "generator-backed instances are fully eligible by contract; "
             "restricted families use the sparse backend";
      return Instance::from_generator(
          std::move(jobs), m, std::make_shared<ClosedFormGenerator>(config));
    case StorageBackend::kSparseCsr: {
      // Eligible entries only — the n×m matrix never exists.
      std::vector<std::vector<SparseEntry>> rows(n);
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < m; ++i) {
          const Work p = closed_form_entry(config, static_cast<JobId>(j),
                                           static_cast<MachineId>(i));
          if (p < kTimeInfinity) {
            rows[j].push_back(SparseEntry{static_cast<MachineId>(i), p});
          }
        }
      }
      return Instance::from_sparse_rows(std::move(jobs), m, std::move(rows));
    }
    case StorageBackend::kDense: {
      std::vector<std::vector<Work>> processing(m, std::vector<Work>(n));
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < m; ++i) {
          processing[i][j] = closed_form_entry(config, static_cast<JobId>(j),
                                               static_cast<MachineId>(i));
        }
      }
      return Instance(std::move(jobs), std::move(processing));
    }
  }
  OSCHED_CHECK(false) << "unreachable backend";
  return Instance{};
}

}  // namespace osched::workload
