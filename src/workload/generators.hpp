// Full synthetic workload generation: arrival process x size distribution x
// machine model x weights x (optional) deadlines.
//
// The paper evaluates nothing empirically, so these are the workload
// families its motivation section implies: Poisson/bursty arrivals of
// uniform or heavy-tailed (Pareto) jobs on heterogeneous clusters, plus the
// pathological patterns (batch fronts, long-job bursts) that the rejection
// rules exist to survive.
#pragma once

#include <cstdint>

#include "instance/instance.hpp"
#include "workload/arrivals.hpp"
#include "workload/machine_models.hpp"

namespace osched::workload {

enum class SizeDistribution {
  kUniform,      ///< U[min_size, max_size]
  kExponential,  ///< mean mean_size
  kPareto,       ///< scale min_size, shape pareto_shape (heavy tail)
  kBimodal,      ///< min_size w.p. 1-bimodal_fraction, else max_size
  kLognormal,    ///< exp(N(log(mean_size) - sigma^2/2, sigma))
};

const char* to_string(SizeDistribution dist);

struct SizeConfig {
  SizeDistribution dist = SizeDistribution::kUniform;
  double min_size = 0.5;
  double max_size = 2.0;
  double mean_size = 1.0;
  double pareto_shape = 1.8;
  double bimodal_fraction = 0.05;  ///< fraction of elephants
  double lognormal_sigma = 1.0;
};

enum class WeightDistribution {
  kUnit,              ///< all weights 1 (Theorem 1 setting)
  kUniform,           ///< U[0.5, 4]
  kInverseSize,       ///< w = 1/base: equalized densities
  kProportionalSize,  ///< w = base: big jobs matter more
};

const char* to_string(WeightDistribution dist);

struct WorkloadConfig {
  std::size_t num_jobs = 1000;
  std::size_t num_machines = 4;
  ArrivalConfig arrivals;       ///< arrivals.rate is DERIVED from load below
  /// Target utilization: arrival rate is set to
  /// load * num_machines / mean job size, so load ~ 1 saturates the cluster.
  double load = 0.9;
  SizeConfig sizes;
  MachineModelConfig machines;
  WeightDistribution weights = WeightDistribution::kUnit;
  /// When true, every job gets a deadline r + slack * (min_i p_ij) with
  /// slack uniform in [slack_min, slack_max] (Theorem 3 workloads).
  bool with_deadlines = false;
  double slack_min = 1.5;
  double slack_max = 6.0;
  std::uint64_t seed = 1;
};

/// Expected size of the configured size distribution (used to derive the
/// arrival rate from the target load).
double expected_size(const SizeConfig& config);

Instance generate_workload(const WorkloadConfig& config);

/// The pathological pattern of the paper's introduction: a handful of huge
/// jobs, each followed by a burst of tiny ones released while it runs.
/// Non-preemptive schedulers without rejection are forced to hold the tiny
/// jobs behind the elephant.
struct BurstTrapConfig {
  std::size_t num_rounds = 5;
  Work long_size = 100.0;
  std::size_t burst_jobs = 50;
  Work small_size = 0.1;
  std::size_t num_machines = 1;
  std::uint64_t seed = 1;
};

Instance generate_burst_trap(const BurstTrapConfig& config);

}  // namespace osched::workload
