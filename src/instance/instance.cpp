#include "instance/instance.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

namespace osched {

Instance::Instance(std::vector<Job> jobs,
                   std::vector<std::vector<Work>> processing)
    : jobs_(std::move(jobs)), processing_(std::move(processing)) {
  for (const auto& row : processing_) {
    OSCHED_CHECK_EQ(row.size(), jobs_.size())
        << "processing matrix row width must equal the number of jobs";
  }

  // Sort jobs by (release, id) and renumber, permuting matrix columns to
  // match. Release order is the order the online algorithms see arrivals.
  std::vector<std::size_t> perm(jobs_.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (jobs_[a].release != jobs_[b].release)
      return jobs_[a].release < jobs_[b].release;
    return jobs_[a].id < jobs_[b].id;
  });

  std::vector<Job> sorted_jobs(jobs_.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    sorted_jobs[pos] = jobs_[perm[pos]];
    sorted_jobs[pos].id = static_cast<JobId>(pos);
  }
  jobs_ = std::move(sorted_jobs);

  for (auto& row : processing_) {
    std::vector<Work> sorted_row(row.size());
    for (std::size_t pos = 0; pos < perm.size(); ++pos) {
      sorted_row[pos] = row[perm[pos]];
    }
    row = std::move(sorted_row);
  }
}

Work Instance::min_processing(JobId j) const {
  Work best = kTimeInfinity;
  for (std::size_t i = 0; i < processing_.size(); ++i) {
    best = std::min(best, processing(static_cast<MachineId>(i), j));
  }
  return best;
}

double Instance::processing_spread() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& row : processing_) {
    for (Work p : row) {
      if (p < kTimeInfinity) {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
    }
  }
  if (hi == 0.0) return 1.0;
  return hi / lo;
}

Weight Instance::total_weight() const {
  Weight total = 0.0;
  for (const Job& job : jobs_) total += job.weight;
  return total;
}

std::string Instance::validate() const {
  std::ostringstream problems;
  if (processing_.empty()) problems << "no machines; ";
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const Job& job = jobs_[j];
    if (job.release < 0.0) {
      problems << "job " << j << " has negative release; ";
    }
    if (job.weight <= 0.0) {
      problems << "job " << j << " has non-positive weight; ";
    }
    if (job.deadline <= job.release) {
      problems << "job " << j << " has deadline <= release; ";
    }
    bool any_eligible = false;
    for (std::size_t i = 0; i < processing_.size(); ++i) {
      const Work p = processing_[i][j];
      if (p < kTimeInfinity) {
        any_eligible = true;
        if (p <= 0.0) {
          problems << "p[" << i << "][" << j << "] is non-positive; ";
        }
      }
    }
    if (!processing_.empty() && !any_eligible) {
      problems << "job " << j << " has no eligible machine; ";
    }
  }
  return problems.str();
}

}  // namespace osched
