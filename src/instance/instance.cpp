#include "instance/instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace osched {

Instance::Instance(std::vector<Job> jobs,
                   std::vector<std::vector<Work>> processing)
    : jobs_(std::move(jobs)), num_machines_(processing.size()) {
  for (const auto& row : processing) {
    OSCHED_CHECK_EQ(row.size(), jobs_.size())
        << "processing matrix row width must equal the number of jobs";
  }

  // Sort jobs by (release, id) and renumber, permuting matrix columns to
  // match. Release order is the order the online algorithms see arrivals.
  std::vector<std::size_t> perm(jobs_.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (jobs_[a].release != jobs_[b].release)
      return jobs_[a].release < jobs_[b].release;
    return jobs_[a].id < jobs_[b].id;
  });

  std::vector<Job> sorted_jobs(jobs_.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    sorted_jobs[pos] = jobs_[perm[pos]];
    sorted_jobs[pos].id = static_cast<JobId>(pos);
  }
  jobs_ = std::move(sorted_jobs);

  const std::size_t n = jobs_.size();
  processing_.resize(num_machines_ * n);
  bounds_.resize(num_machines_ * n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    Work* job_slice = processing_.data() + pos * num_machines_;
    float* bounds_slice = bounds_.data() + pos * num_machines_;
    const std::size_t original = perm[pos];
    for (std::size_t i = 0; i < num_machines_; ++i) {
      job_slice[i] = processing[i][original];
      bounds_slice[i] = float_lower(job_slice[i]);
    }
  }

  // Per-job eligible-machine adjacency, ascending machine index. The same
  // full-matrix pass performs validation (KEEP the checks in sync with
  // service::StreamingJobStore::check_job): an Instance is immutable, so
  // the verdict is computed once here and validate() just returns it —
  // run_* entry points used to re-scan the whole matrix per run, which
  // showed up as ~15% of the measured scheduling time in the perf tier.
  std::ostringstream problems;
  if (num_machines_ == 0) problems << "no machines; ";
  eligible_offsets_.assign(n + 1, 0);
  eligible_flat_.reserve(num_machines_ > 0 ? n : 0);
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = jobs_[j];
    if (job.release < 0.0) {
      problems << "job " << j << " has negative release; ";
    } else if (!std::isfinite(job.release)) {
      // NaN compares false against everything, so it needs its own branch
      // or it would sail through all the ordering checks below.
      problems << "job " << j << " has non-finite release; ";
    }
    if (!(job.weight > 0.0)) {  // catches NaN weights too
      problems << "job " << j << " has non-positive weight; ";
    } else if (job.weight >= kTimeInfinity) {
      problems << "job " << j << " has infinite weight; ";
    }
    if (!(job.deadline > job.release)) {  // catches NaN deadlines too
      problems << "job " << j << " has deadline <= release; ";
    }
    const Work* job_slice = processing_.data() + j * num_machines_;
    bool any_eligible = false;
    for (std::size_t i = 0; i < num_machines_; ++i) {
      const Work p = job_slice[i];
      if (p < kTimeInfinity) {
        any_eligible = true;
        if (p <= 0.0) {
          problems << "p[" << i << "][" << j << "] is non-positive; ";
        }
        eligible_flat_.push_back(static_cast<MachineId>(i));
      } else if (std::isnan(p)) {
        problems << "p[" << i << "][" << j << "] is NaN; ";
      }
    }
    if (num_machines_ > 0 && !any_eligible) {
      problems << "job " << j << " has no eligible machine; ";
    }
    eligible_offsets_[j + 1] = eligible_flat_.size();
  }
  validation_problems_ = problems.str();

  // Per-job (p, id)-sorted eligible machines for the dispatch index's
  // idle-machine walk. uint16 ids keep the table at 2 bytes per matrix
  // entry; a store wider than the id type simply skips the table —
  // p_order_row() then returns nullptr and dispatch falls back to the
  // order-less idle scan, so huge machine counts degrade instead of abort.
  // Sorting runs over PACKED (p bit pattern, id) keys: the bit patterns of
  // non-negative IEEE doubles order exactly like the values, and value
  // compares beat a comparator that chases back into the matrix per call.
  if (num_machines_ >= 65536u) return;
  p_order_.resize(eligible_flat_.size());
  std::vector<detail::POrderKey> keys;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t begin = eligible_offsets_[j];
    const std::size_t end = eligible_offsets_[j + 1];
    const Work* job_slice = processing_.data() + j * num_machines_;
    keys.clear();
    for (std::size_t k = begin; k < end; ++k) {
      const auto id = static_cast<std::uint16_t>(eligible_flat_[k]);
      keys.push_back(detail::POrderKey::make(job_slice[id], id));
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t k = begin; k < end; ++k) {
      p_order_[k] = keys[k - begin].id;
    }
  }
}

Work Instance::min_processing(JobId j) const {
  Work best = kTimeInfinity;
  OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
  for (std::size_t i = 0; i < num_machines_; ++i) {
    best = std::min(best, processing_unchecked(static_cast<MachineId>(i), j));
  }
  return best;
}

double Instance::processing_spread() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (Work p : processing_) {
    if (p < kTimeInfinity) {
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  if (hi == 0.0) return 1.0;
  return hi / lo;
}

Weight Instance::total_weight() const {
  Weight total = 0.0;
  for (const Job& job : jobs_) total += job.weight;
  return total;
}

std::string Instance::validate() const {
  // Computed once in the matrix constructor (same pass that builds the
  // eligibility adjacency); an Instance is immutable afterwards. The
  // default-constructed empty Instance reports its machine-less state here.
  if (num_machines_ == 0 && jobs_.empty()) return "no machines; ";
  return validation_problems_;
}

}  // namespace osched
