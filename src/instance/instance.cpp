#include "instance/instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>

namespace osched {

const char* to_string(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kDense: return "dense";
    case StorageBackend::kSparseCsr: return "sparse-csr";
    case StorageBackend::kGenerator: return "generator";
  }
  return "?";
}

namespace {

/// The (release, id) job order every backend normalizes to — release order
/// is the order the online algorithms see arrivals.
std::vector<std::size_t> release_order(const std::vector<Job>& jobs) {
  std::vector<std::size_t> perm(jobs.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].release != jobs[b].release)
      return jobs[a].release < jobs[b].release;
    return jobs[a].id < jobs[b].id;
  });
  return perm;
}

std::vector<Job> apply_order(std::vector<Job> jobs,
                             const std::vector<std::size_t>& perm) {
  std::vector<Job> sorted(jobs.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    sorted[pos] = jobs[perm[pos]];
    sorted[pos].id = static_cast<JobId>(pos);
  }
  return sorted;
}

}  // namespace

void Instance::check_job_fields(const Job& job, std::size_t j,
                                std::ostream& problems) {
  if (job.release < 0.0) {
    problems << "job " << j << " has negative release; ";
  } else if (!std::isfinite(job.release)) {
    // NaN compares false against everything, so it needs its own branch
    // or it would sail through all the ordering checks below.
    problems << "job " << j << " has non-finite release; ";
  }
  if (!(job.weight > 0.0)) {  // catches NaN weights too
    problems << "job " << j << " has non-positive weight; ";
  } else if (job.weight >= kTimeInfinity) {
    problems << "job " << j << " has infinite weight; ";
  }
  if (!(job.deadline > job.release)) {  // catches NaN deadlines too
    problems << "job " << j << " has deadline <= release; ";
  }
}

Instance::Instance(std::vector<Job> jobs,
                   std::vector<std::vector<Work>> processing)
    : jobs_(std::move(jobs)),
      num_machines_(processing.size()),
      backend_(StorageBackend::kDense) {
  for (const auto& row : processing) {
    OSCHED_CHECK_EQ(row.size(), jobs_.size())
        << "processing matrix row width must equal the number of jobs";
  }

  // Sort jobs by (release, id) and renumber, permuting matrix columns to
  // match. Release order is the order the online algorithms see arrivals.
  const std::vector<std::size_t> perm = release_order(jobs_);
  jobs_ = apply_order(std::move(jobs_), perm);

  const std::size_t n = jobs_.size();
  processing_.resize(num_machines_ * n);
  bounds_.resize(num_machines_ * n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    Work* job_slice = processing_.data() + pos * num_machines_;
    float* bounds_slice = bounds_.data() + pos * num_machines_;
    const std::size_t original = perm[pos];
    for (std::size_t i = 0; i < num_machines_; ++i) {
      job_slice[i] = processing[i][original];
      bounds_slice[i] = float_lower(job_slice[i]);
    }
  }

  // Per-job eligible-machine adjacency, ascending machine index. The same
  // full-matrix pass performs validation (KEEP the checks in sync with
  // service::StreamingJobStore::check_job): an Instance is immutable, so
  // the verdict is computed once here and validate() just returns it —
  // run_* entry points used to re-scan the whole matrix per run, which
  // showed up as ~15% of the measured scheduling time in the perf tier.
  std::ostringstream problems;
  if (num_machines_ == 0) problems << "no machines; ";
  eligible_offsets_.assign(n + 1, 0);
  eligible_flat_.reserve(num_machines_ > 0 ? n : 0);
  for (std::size_t j = 0; j < n; ++j) {
    check_job_fields(jobs_[j], j, problems);
    const Work* job_slice = processing_.data() + j * num_machines_;
    bool any_eligible = false;
    for (std::size_t i = 0; i < num_machines_; ++i) {
      const Work p = job_slice[i];
      if (p < kTimeInfinity) {
        any_eligible = true;
        if (p <= 0.0) {
          problems << "p[" << i << "][" << j << "] is non-positive; ";
        }
        eligible_flat_.push_back(static_cast<MachineId>(i));
      } else if (std::isnan(p)) {
        problems << "p[" << i << "][" << j << "] is NaN; ";
      }
    }
    if (num_machines_ > 0 && !any_eligible) {
      problems << "job " << j << " has no eligible machine; ";
    }
    eligible_offsets_[j + 1] = eligible_flat_.size();
  }
  validation_problems_ = problems.str();
  build_p_order_dense();
}

Instance Instance::from_sparse_rows(std::vector<Job> jobs,
                                    std::size_t num_machines,
                                    std::vector<std::vector<SparseEntry>> rows) {
  OSCHED_CHECK_EQ(rows.size(), jobs.size())
      << "one sparse row per job is required";
  Instance instance;
  instance.backend_ = StorageBackend::kSparseCsr;
  instance.num_machines_ = num_machines;
  instance.jobs_ = std::move(jobs);

  const std::vector<std::size_t> perm = release_order(instance.jobs_);
  instance.jobs_ = apply_order(std::move(instance.jobs_), perm);

  const std::size_t n = instance.jobs_.size();
  std::ostringstream problems;
  if (num_machines == 0) problems << "no machines; ";
  std::size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  instance.eligible_offsets_.assign(n + 1, 0);
  instance.eligible_flat_.reserve(nnz);
  instance.csr_p_.reserve(nnz);
  instance.csr_bounds_.reserve(nnz);
  for (std::size_t j = 0; j < n; ++j) {
    check_job_fields(instance.jobs_[j], j, problems);
    const std::vector<SparseEntry>& row = rows[perm[j]];
    MachineId previous = kInvalidMachine;
    for (const SparseEntry& entry : row) {
      // Strictly ascending machine ids give the same adjacency order the
      // dense pass produces, and make processing_unchecked a binary search.
      OSCHED_CHECK(entry.machine > previous &&
                   static_cast<std::size_t>(entry.machine) < num_machines)
          << "sparse row " << j << ": machine " << entry.machine
          << " out of order or out of range";
      previous = entry.machine;
      if (!(entry.p > 0.0)) {  // catches NaN
        problems << "p[" << entry.machine << "][" << j
                 << "] is non-positive; ";
      } else if (!(entry.p < kTimeInfinity)) {
        // A sparse row lists ELIGIBLE entries; an infinite one is a
        // malformed row, not a compact way to say "ineligible".
        problems << "p[" << entry.machine << "][" << j
                 << "] is not finite (omit ineligible machines); ";
      }
      instance.eligible_flat_.push_back(entry.machine);
      instance.csr_p_.push_back(entry.p);
      instance.csr_bounds_.push_back(float_lower(entry.p));
    }
    if (num_machines > 0 && row.empty()) {
      problems << "job " << j << " has no eligible machine; ";
    }
    instance.eligible_offsets_[j + 1] = instance.eligible_flat_.size();
  }
  instance.validation_problems_ = problems.str();
  instance.build_p_order_csr();
  return instance;
}

Instance Instance::from_generator(
    std::vector<Job> jobs, std::size_t num_machines,
    std::shared_ptr<const RowGenerator> generator) {
  OSCHED_CHECK(generator != nullptr);
  Instance instance;
  instance.backend_ = StorageBackend::kGenerator;
  instance.num_machines_ = num_machines;
  instance.jobs_ = std::move(jobs);
  instance.generator_ = std::move(generator);

  std::ostringstream problems;
  if (num_machines == 0) problems << "no machines; ";
  for (std::size_t j = 0; j < instance.jobs_.size(); ++j) {
    // The generator is indexed by final job id: require release order
    // instead of silently permuting entries out from under the closed form.
    if (j > 0) {
      OSCHED_CHECK_GE(instance.jobs_[j].release, instance.jobs_[j - 1].release)
          << "generator-backed jobs must arrive release-sorted (job " << j
          << ")";
    }
    instance.jobs_[j].id = static_cast<JobId>(j);
    check_job_fields(instance.jobs_[j], j, problems);
  }
  instance.validation_problems_ = problems.str();
  instance.identity_machines_.resize(num_machines);
  std::iota(instance.identity_machines_.begin(),
            instance.identity_machines_.end(), MachineId{0});
  return instance;
}

Instance Instance::with_backend(StorageBackend target) const {
  if (target == backend_) return *this;
  OSCHED_CHECK(target != StorageBackend::kGenerator)
      << "a matrix has no closed form to recover; build generator instances "
         "with Instance::from_generator";
  const std::size_t n = jobs_.size();
  // The jobs are already release-sorted with ids 0..n-1, so the target
  // constructor's stable sort is the identity permutation and every p_ij
  // keeps its (i, j) address.
  std::vector<Job> jobs = jobs_;
  if (target == StorageBackend::kSparseCsr) {
    std::vector<std::vector<SparseEntry>> rows(n);
    for (std::size_t j = 0; j < n; ++j) {
      const auto job = static_cast<JobId>(j);
      rows[j].reserve(eligible_machines(job).size());
      for (const MachineId i : eligible_machines(job)) {
        rows[j].push_back(SparseEntry{i, processing_unchecked(i, job)});
      }
    }
    return from_sparse_rows(std::move(jobs), num_machines_, std::move(rows));
  }
  std::vector<std::vector<Work>> processing(
      num_machines_, std::vector<Work>(n, kTimeInfinity));
  for (std::size_t j = 0; j < n; ++j) {
    const auto job = static_cast<JobId>(j);
    for (const MachineId i : eligible_machines(job)) {
      processing[static_cast<std::size_t>(i)][j] = processing_unchecked(i, job);
    }
  }
  return Instance(std::move(jobs), std::move(processing));
}

std::size_t Instance::store_bytes() const {
  auto bytes = [](const auto& v) { return v.size() * sizeof(v[0]); };
  return bytes(jobs_) + bytes(processing_) + bytes(bounds_) + bytes(csr_p_) +
         bytes(csr_bounds_) + bytes(identity_machines_) + bytes(p_order_) +
         bytes(p_order32_) + bytes(eligible_flat_) + bytes(eligible_offsets_);
}

template <class IdT, class EntryP>
void Instance::build_p_order_into(std::vector<IdT>& table, EntryP&& entry_p) {
  // Per-job (p, id)-sorted eligible machines for the dispatch index's
  // idle-machine walk. Sorting runs over PACKED (p bit pattern, id) keys:
  // the bit patterns of non-negative IEEE doubles order exactly like the
  // values, and value compares beat a comparator that chases back into the
  // matrix per call. `entry_p(j, k, id)` is the backend's way to read the
  // adjacency entry's p value — one builder, so the dense and CSR order
  // tables can't drift. Construction is batched per job: the sort scratch
  // is one row's keys (capacity = the widest adjacency row, reused across
  // jobs), so huge-m builds never hold more than the finished table plus
  // one row of keys.
  const std::size_t n = jobs_.size();
  table.resize(eligible_flat_.size());
  std::vector<detail::POrderKeyT<IdT>> keys;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t begin = eligible_offsets_[j];
    const std::size_t end = eligible_offsets_[j + 1];
    keys.clear();
    for (std::size_t k = begin; k < end; ++k) {
      const auto id = static_cast<IdT>(eligible_flat_[k]);
      keys.push_back(detail::POrderKeyT<IdT>::make(entry_p(j, k, id), id));
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t k = begin; k < end; ++k) {
      table[k] = keys[k - begin].id;
    }
  }
}

template <class EntryP>
void Instance::build_p_order(EntryP&& entry_p) {
  // Narrowest id width that fits the machine count: uint16 keeps the table
  // at 2 bytes per adjacency entry for the common fleet sizes; uint32 is
  // the huge-m tier — the indexed idle-machine walk stays active instead of
  // degrading to the O(m) shadow sweep (the pre-uint32 behavior, retired).
  if (num_machines_ >= 65536u) {
    build_p_order_into(p_order32_, entry_p);
  } else {
    build_p_order_into(p_order_, entry_p);
  }
}

void Instance::build_p_order_dense() {
  build_p_order([this](std::size_t j, std::size_t /*k*/, std::size_t id) {
    return processing_[j * num_machines_ + id];
  });
}

void Instance::build_p_order_csr() {
  // The CSR values are adjacency-aligned already: slice entry k IS p.
  build_p_order([this](std::size_t /*j*/, std::size_t k, std::size_t /*id*/) {
    return csr_p_[k];
  });
}

Work Instance::sparse_lookup(MachineId i, JobId j) const {
  const std::size_t begin = eligible_offsets_[static_cast<std::size_t>(j)];
  const std::size_t end = eligible_offsets_[static_cast<std::size_t>(j) + 1];
  const MachineId* first = eligible_flat_.data() + begin;
  const MachineId* last = eligible_flat_.data() + end;
  const MachineId* hit = std::lower_bound(first, last, i);
  if (hit == last || *hit != i) return kTimeInfinity;
  return csr_p_[begin + static_cast<std::size_t>(hit - first)];
}

Work Instance::min_processing(JobId j) const {
  OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
  Work best = kTimeInfinity;
  switch (backend_) {
    case StorageBackend::kDense:
      for (std::size_t i = 0; i < num_machines_; ++i) {
        best =
            std::min(best, processing_unchecked(static_cast<MachineId>(i), j));
      }
      break;
    case StorageBackend::kSparseCsr: {
      const std::size_t begin = eligible_offsets_[static_cast<std::size_t>(j)];
      const std::size_t end =
          eligible_offsets_[static_cast<std::size_t>(j) + 1];
      for (std::size_t k = begin; k < end; ++k) {
        best = std::min(best, csr_p_[k]);
      }
      break;
    }
    case StorageBackend::kGenerator:
      for (std::size_t i = 0; i < num_machines_; ++i) {
        best = std::min(best, generator_->entry(j, static_cast<MachineId>(i)));
      }
      break;
  }
  return best;
}

double Instance::processing_spread() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  auto fold = [&](Work p) {
    if (p < kTimeInfinity) {
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  };
  switch (backend_) {
    case StorageBackend::kDense:
      for (Work p : processing_) fold(p);
      break;
    case StorageBackend::kSparseCsr:
      for (Work p : csr_p_) fold(p);
      break;
    case StorageBackend::kGenerator:
      // Full closed-form sweep: analysis-only (never on a scheduling path).
      for (std::size_t j = 0; j < jobs_.size(); ++j) {
        for (std::size_t i = 0; i < num_machines_; ++i) {
          fold(generator_->entry(static_cast<JobId>(j),
                                 static_cast<MachineId>(i)));
        }
      }
      break;
  }
  if (hi == 0.0) return 1.0;
  return hi / lo;
}

Weight Instance::total_weight() const {
  Weight total = 0.0;
  for (const Job& job : jobs_) total += job.weight;
  return total;
}

std::string Instance::validate() const {
  // Computed once at construction (for matrix backends, in the same pass
  // that builds the eligibility adjacency); an Instance is immutable
  // afterwards. The default-constructed empty Instance reports its
  // machine-less state here.
  if (num_machines_ == 0 && jobs_.empty()) return "no machines; ";
  return validation_problems_;
}

}  // namespace osched
