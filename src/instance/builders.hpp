// Convenience construction of instances.
//
// InstanceBuilder accumulates jobs together with their per-machine
// processing entries and produces a validated Instance. Helper functions
// cover the common identical-machine and single-machine cases used
// throughout the tests and the lower-bound constructions.
#pragma once

#include <tuple>
#include <utility>
#include <vector>

#include "instance/instance.hpp"

namespace osched {

class InstanceBuilder {
 public:
  explicit InstanceBuilder(std::size_t num_machines)
      : num_machines_(num_machines), processing_(num_machines) {}

  /// Adds a job with machine-dependent processing entries (size must equal
  /// num_machines). Returns the builder-local job index (pre-sort id).
  InstanceBuilder& add_job(Time release, std::vector<Work> processing,
                           Weight weight = 1.0, Time deadline = kTimeInfinity);

  /// Adds a job with the same processing time on every machine.
  InstanceBuilder& add_identical_job(Time release, Work processing,
                                     Weight weight = 1.0,
                                     Time deadline = kTimeInfinity);

  std::size_t num_jobs() const { return jobs_.size(); }

  /// Finalizes; aborts (OSCHED_CHECK) if the instance is structurally
  /// invalid, since builder misuse is a programming error.
  Instance build() const;

 private:
  std::size_t num_machines_;
  std::vector<Job> jobs_;
  std::vector<std::vector<Work>> processing_;  // [machine][job]
};

/// n jobs on a single machine: (release, processing) pairs.
Instance single_machine_instance(
    const std::vector<std::pair<Time, Work>>& jobs);

/// Weighted single-machine: (release, processing, weight).
Instance single_machine_weighted_instance(
    const std::vector<std::tuple<Time, Work, Weight>>& jobs);

}  // namespace osched
