// Unrelated-machines problem instance.
//
// Stores the jobs (sorted by release time; ties by id) and the dense
// p_ij matrix of per-machine processing requirements. A processing entry of
// +infinity means "job j cannot run on machine i" (restricted assignment).
//
// Hot-path layout: the matrix is one flat job-major buffer (a job's p_ij
// across machines is contiguous — the access pattern of the dispatch
// scans), `processing_unchecked` skips the bounds CHECKs for loops whose
// indices are validated once at entry, and each job carries a precomputed
// eligible-machine adjacency list so restricted-assignment dispatch scans
// only the machines that can actually run the job.
#pragma once

#include <string>
#include <vector>

#include "instance/job.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

/// Lightweight view over one job's eligible machines (ascending machine
/// index, the same order the dispatch loops used to scan). Iterable:
///   for (MachineId i : instance.eligible_machines(j)) ...
struct EligibleMachines {
  const MachineId* first = nullptr;
  const MachineId* last = nullptr;

  const MachineId* begin() const { return first; }
  const MachineId* end() const { return last; }
  std::size_t size() const { return static_cast<std::size_t>(last - first); }
  bool empty() const { return first == last; }
};

class Instance {
 public:
  Instance() = default;

  /// `processing[i][j]` is p_ij; every row must have `jobs.size()` entries.
  /// Jobs are re-sorted by (release, id) and re-numbered 0..n-1; the matrix
  /// columns are permuted accordingly, so callers can build in any order.
  Instance(std::vector<Job> jobs, std::vector<std::vector<Work>> processing);

  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t num_machines() const { return num_machines_; }

  const Job& job(JobId j) const {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    return jobs_[static_cast<std::size_t>(j)];
  }
  const std::vector<Job>& jobs() const { return jobs_; }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < num_machines_);
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    return processing_unchecked(i, j);
  }

  /// p_ij without bounds CHECKs, for validated inner loops (the dispatch
  /// scans, the duality checkers' constraint sweeps). Callers must have
  /// established 0 <= i < num_machines() and 0 <= j < num_jobs().
  Work processing_unchecked(MachineId i, JobId j) const {
    return processing_[static_cast<std::size_t>(j) * num_machines_ +
                       static_cast<std::size_t>(i)];
  }

  /// Job j's contiguous p_{., j} row (num_machines() entries, indexed by
  /// machine). The dispatch index's vectorized lower-bound sweep reads it
  /// directly instead of calling processing_unchecked per machine.
  const Work* processing_row(JobId j) const {
    return processing_.data() + static_cast<std::size_t>(j) * num_machines_;
  }

  /// Float32 shadow of processing_row: each entry rounded DOWN
  /// (float_lower), so a bound computed from it never exceeds one computed
  /// from the double row. The dispatch sweep reads this row — half the
  /// memory traffic of the double row, which is what the sweep is bound by.
  const float* bounds_row(JobId j) const {
    return bounds_.data() + static_cast<std::size_t>(j) * num_machines_;
  }

  /// Job j's eligible machines sorted by (p_ij, machine id) ascending —
  /// precomputed at construction. Aligned with eligible_machines(j): the
  /// slice has eligible_machines(j).size() entries. The dispatch index
  /// walks this prefix to find the best idle machine in O(live machines)
  /// instead of sweeping all m. nullptr when the table does not exist
  /// (65536+ machines exceed the uint16 ids) — dispatch then derives the
  /// idle argmin from the shadow row instead.
  const std::uint16_t* p_order_row(JobId j) const {
    if (p_order_.empty()) return nullptr;
    return p_order_.data() + eligible_offsets_[static_cast<std::size_t>(j)];
  }

  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }

  /// The machines that can run j (finite p_ij), ascending machine index.
  EligibleMachines eligible_machines(JobId j) const {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    const auto idx = static_cast<std::size_t>(j);
    const MachineId* base = eligible_flat_.data();
    return EligibleMachines{base + eligible_offsets_[idx],
                            base + eligible_offsets_[idx + 1]};
  }

  /// min_i p_ij — the fastest any machine can serve j. Used by lower bounds.
  Work min_processing(JobId j) const;

  /// max p_ij / min p_ij over all finite entries (the paper's Delta).
  double processing_spread() const;

  Weight total_weight() const;

  /// Structural sanity: n >= 0, every job has at least one eligible machine,
  /// finite entries positive, releases non-negative, deadlines after release.
  /// Returns an empty string when valid, else a description of the problem.
  /// O(1): the verdict is computed once, during construction, in the same
  /// full-matrix pass that builds the eligibility adjacency.
  std::string validate() const;

 private:
  std::vector<Job> jobs_;
  std::size_t num_machines_ = 0;
  /// Flat p_ij buffer, job-major ([job * m + machine]): the hot dispatch
  /// loops read p_{., j} for one job across machines, which this layout
  /// serves from m/8 cache lines instead of m scattered ones.
  std::vector<Work> processing_;
  /// Rounded-down float32 shadow of processing_, same layout (bounds_row).
  std::vector<float> bounds_;
  /// Per-job eligible machines sorted by (p_ij, id); eligible_offsets_
  /// slicing, machine ids as uint16 (construction checks m < 65536).
  std::vector<std::uint16_t> p_order_;
  /// Eligible-machine ids grouped by job; eligible_offsets_[j]..[j+1) is
  /// job j's slice of eligible_flat_.
  std::vector<MachineId> eligible_flat_;
  std::vector<std::size_t> eligible_offsets_;
  /// validate()'s cached verdict, filled by the matrix constructor.
  std::string validation_problems_;
};

}  // namespace osched
