// Unrelated-machines problem instance — a thin façade over a pluggable
// processing-time store.
//
// The paper states the model over an n×m matrix of per-machine processing
// requirements p_ij (+infinity marks "job j cannot run on machine i",
// restricted assignment). How that matrix is *stored* is a backend choice:
//
//  * kDense     — one flat job-major buffer (a job's p_ij across machines is
//                 contiguous, the access pattern of the dispatch scans) plus
//                 a rounded-down float32 shadow and a per-job (p, id) machine
//                 order. Today's hot-path layout, unchanged.
//  * kSparseCsr — eligible entries only: p, float shadow and (p, id) order
//                 are stored per job over the eligibility adjacency, so a
//                 restricted-assignment family at eligibility q costs ~q of
//                 the dense bytes instead of all of them.
//  * kGenerator — no matrix at all: p_ij is synthesized on demand from a
//                 workload family's closed form (RowGenerator). Fully
//                 eligible by contract; huge-m sweeps never materialize n×m.
//
// Every backend answers the same façade accessors (processing, eligibility,
// min_processing, ...) with identical values, and the schedulers make
// bit-identical decisions over all three — tests/storage_backend_test.cpp
// pins that down differentially. The *hot* accessor surface the policies
// are templated over (processing_row / bounds_row / p_order_row /
// processing_unchecked without branches) lives in the per-backend view
// classes of instance/processing_store.hpp; the dense view compiles to the
// exact loads Instance used to serve itself.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "instance/job.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

/// Lightweight view over one job's eligible machines (ascending machine
/// index, the same order the dispatch loops used to scan). Iterable:
///   for (MachineId i : instance.eligible_machines(j)) ...
struct EligibleMachines {
  const MachineId* first = nullptr;
  const MachineId* last = nullptr;

  const MachineId* begin() const { return first; }
  const MachineId* end() const { return last; }
  std::size_t size() const { return static_cast<std::size_t>(last - first); }
  bool empty() const { return first == last; }
};

/// Which representation an Instance keeps its p_ij matrix in. The choice
/// never changes any scheduling outcome — only memory footprint and the
/// constant factors of the accessors.
enum class StorageBackend {
  kDense,      ///< flat job-major n×m buffer (+ shadow + order tables)
  kSparseCsr,  ///< eligible entries only, CSR over the adjacency
  kGenerator,  ///< p_ij synthesized on demand from a closed form
};

const char* to_string(StorageBackend backend);

/// One eligible entry of a sparse job row: machine index + finite p_ij.
struct SparseEntry {
  MachineId machine = kInvalidMachine;
  Work p = 0.0;
};

/// Closed-form p_ij source for generator-backed instances.
///
/// Contract: entry(j, i) is a PURE function of (j, i) — no internal state —
/// returning a finite positive processing time for every machine (generator
/// instances are fully eligible; restricted families belong to the sparse
/// backend, whose adjacency is explicit). `j` is the final, release-sorted
/// job id. Purity is what makes the backend exchangeable: materializing the
/// same generator into a dense or sparse instance reproduces every double
/// bit for bit, which the storage differential wall asserts.
class RowGenerator {
 public:
  virtual ~RowGenerator() = default;

  virtual Work entry(JobId j, MachineId i) const = 0;

  /// Fills one whole row (m entries). Override when the family can batch
  /// per-row work (e.g. hoisting the job-dependent factors out of the
  /// machine loop); the default just loops entry().
  virtual void fill_row(JobId j, std::size_t num_machines, Work* out) const {
    for (std::size_t i = 0; i < num_machines; ++i) {
      out[i] = entry(j, static_cast<MachineId>(i));
    }
  }
};

class Instance {
 public:
  Instance() = default;

  /// Dense backend. `processing[i][j]` is p_ij; every row must have
  /// `jobs.size()` entries. Jobs are re-sorted by (release, id) and
  /// re-numbered 0..n-1; the matrix columns are permuted accordingly, so
  /// callers can build in any order.
  Instance(std::vector<Job> jobs, std::vector<std::vector<Work>> processing);

  /// Sparse-CSR backend. `rows[k]` lists job k's eligible machines with
  /// their finite p entries, strictly ascending by machine index. Jobs are
  /// re-sorted/re-numbered exactly like the dense constructor (rows are
  /// permuted along). The n×m matrix is never materialized: memory is
  /// O(total eligible entries).
  static Instance from_sparse_rows(std::vector<Job> jobs,
                                   std::size_t num_machines,
                                   std::vector<std::vector<SparseEntry>> rows);

  /// Generator backend. `jobs` must already be sorted by (release, id) —
  /// the generator is indexed by final job id, so there is no permutation
  /// to hide behind; ids are renumbered 0..n-1 in place. Entry validity
  /// (finite, positive, fully eligible) is the generator's contract and is
  /// NOT scanned here: scanning would materialize exactly the n×m work this
  /// backend exists to avoid. validate() covers the job fields only.
  static Instance from_generator(std::vector<Job> jobs,
                                 std::size_t num_machines,
                                 std::shared_ptr<const RowGenerator> generator);

  /// Rebuilds this instance under another backend, preserving every p_ij
  /// bit for bit (the conversion behind the differential wall). Conversions
  /// TO kGenerator are only legal when this instance already is one (there
  /// is no closed form to recover from a matrix).
  Instance with_backend(StorageBackend target) const;

  StorageBackend backend() const { return backend_; }

  /// Exact byte footprint of the stored representation (matrix payload,
  /// shadow/order tables, adjacency, job records). Deterministic for a
  /// given instance — bench reports treat it as an exact-match metric.
  std::size_t store_bytes() const;

  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t num_machines() const { return num_machines_; }

  const Job& job(JobId j) const {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    return jobs_[static_cast<std::size_t>(j)];
  }
  const std::vector<Job>& jobs() const { return jobs_; }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < num_machines_);
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    return processing_unchecked(i, j);
  }

  /// p_ij without bounds CHECKs, for validated loops (the duality checkers'
  /// constraint sweeps, metrics evaluation). Callers must have established
  /// 0 <= i < num_machines() and 0 <= j < num_jobs(). Dense: one load.
  /// Sparse: binary search of the job's adjacency slice (kTimeInfinity on a
  /// miss). Generator: one closed-form evaluation. Scheduling hot paths do
  /// NOT come through here — they run on the branch-free views of
  /// processing_store.hpp.
  Work processing_unchecked(MachineId i, JobId j) const {
    switch (backend_) {
      case StorageBackend::kDense:
        return processing_[static_cast<std::size_t>(j) * num_machines_ +
                           static_cast<std::size_t>(i)];
      case StorageBackend::kSparseCsr:
        return sparse_lookup(i, j);
      case StorageBackend::kGenerator:
        return generator_->entry(j, i);
    }
    return kTimeInfinity;  // unreachable
  }

  /// Job j's contiguous p_{., j} row. DENSE BACKEND ONLY (the other
  /// backends have no materialized row to point into — hot-path row access
  /// goes through the views in processing_store.hpp).
  const Work* processing_row(JobId j) const {
    OSCHED_CHECK(backend_ == StorageBackend::kDense);
    return processing_.data() + static_cast<std::size_t>(j) * num_machines_;
  }

  /// Float32 shadow of processing_row, each entry rounded DOWN
  /// (float_lower). DENSE BACKEND ONLY, like processing_row.
  const float* bounds_row(JobId j) const {
    OSCHED_CHECK(backend_ == StorageBackend::kDense);
    return bounds_.data() + static_cast<std::size_t>(j) * num_machines_;
  }

  /// Job j's eligible machines sorted by (p_ij, machine id) ascending —
  /// precomputed at construction for the dense and sparse backends (the
  /// table is CSR-shaped either way). Ids are stored at the narrowest width
  /// that fits the machine count: uint16 below 65536 machines (this
  /// accessor), uint32 at and above (p_order32_row). nullptr when THIS
  /// width's table does not exist — generator backend (sorting would
  /// materialize the row work the backend avoids), empty instances, or the
  /// other width being selected.
  const std::uint16_t* p_order_row(JobId j) const {
    if (p_order_.empty()) return nullptr;
    return p_order_.data() + eligible_offsets_[static_cast<std::size_t>(j)];
  }

  /// The wide (uint32-id) twin of p_order_row, selected automatically at
  /// m >= 65536 — machine ids there exceed uint16, and the huge-m tier
  /// keeps the indexed idle-machine walk instead of degrading to the O(m)
  /// shadow sweep.
  const std::uint32_t* p_order32_row(JobId j) const {
    if (p_order32_.empty()) return nullptr;
    return p_order32_.data() + eligible_offsets_[static_cast<std::size_t>(j)];
  }

  /// Machine-id width of the order table in bits: 16 (m < 65536), 32
  /// (m >= 65536), or 0 when no table exists (generator backend, empty
  /// instances). Surfaced through api::RunSummary::dispatch_order_width so
  /// perf baselines are attributable to the code path that produced them.
  int dispatch_order_width() const {
    if (!p_order_.empty()) return 16;
    if (!p_order32_.empty()) return 32;
    return 0;
  }

  /// Whether a (p, id) order table exists at either width, i.e. whether
  /// dispatch runs the indexed idle-machine walk rather than the O(m)
  /// shadow-row scan. False only for generator instances (the streaming /
  /// on-demand stores take the order-less sub-path by design) and empty
  /// instances. Surfaced through api::RunSummary::dispatch_index_active so
  /// the chosen path is attributable from results alone.
  bool dispatch_index_active() const {
    return !p_order_.empty() || !p_order32_.empty();
  }

  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }

  /// The machines that can run j (finite p_ij), ascending machine index.
  /// Dense/sparse: the precomputed adjacency. Generator: a shared
  /// 0..m-1 identity row (fully eligible by contract).
  EligibleMachines eligible_machines(JobId j) const {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    if (backend_ == StorageBackend::kGenerator) {
      const MachineId* base = identity_machines_.data();
      return EligibleMachines{base, base + num_machines_};
    }
    const auto idx = static_cast<std::size_t>(j);
    const MachineId* base = eligible_flat_.data();
    return EligibleMachines{base + eligible_offsets_[idx],
                            base + eligible_offsets_[idx + 1]};
  }

  /// min_i p_ij — the fastest any machine can serve j. Used by lower bounds.
  Work min_processing(JobId j) const;

  /// max p_ij / min p_ij over all finite entries (the paper's Delta).
  /// Generator backend: evaluates the closed form over the full n×m grid —
  /// an analysis-only accessor, not a scheduling path.
  double processing_spread() const;

  Weight total_weight() const;

  /// The closed-form source of a generator-backed instance.
  const RowGenerator& generator() const {
    OSCHED_CHECK(backend_ == StorageBackend::kGenerator);
    return *generator_;
  }

  /// The same closed form as a shareable handle — the value to hand to
  /// SessionOptions::generator / SchedulerSession::restore when streaming
  /// this instance's jobs into a generator-backed session.
  const std::shared_ptr<const RowGenerator>& shared_generator() const {
    OSCHED_CHECK(backend_ == StorageBackend::kGenerator);
    return generator_;
  }

  /// Structural sanity: n >= 0, every job has at least one eligible machine,
  /// finite entries positive, releases non-negative, deadlines after release.
  /// Returns an empty string when valid, else a description of the problem.
  /// O(1): the verdict is computed once, during construction (generator
  /// instances check job fields only — see from_generator).
  std::string validate() const;

 private:
  template <class OrderT>
  friend class DenseStoreViewT;
  template <class OrderT>
  friend class SparseStoreViewT;
  friend class GeneratorStoreView;

  /// Shared per-job field validation (release/weight/deadline), identical
  /// across backends. KEEP IN SYNC with service::StreamingJobStore's
  /// check_job.
  static void check_job_fields(const Job& job, std::size_t j,
                               std::ostream& problems);

  /// Build the per-job (p, id)-sorted machine order over the adjacency
  /// (CSR-shaped for every backend that has one; entry_p reads one entry's
  /// p value) into `table`, at whichever id width IdT names. The width is
  /// selected by build_p_order: uint16 below 65536 machines, uint32 at and
  /// above.
  template <class IdT, class EntryP>
  void build_p_order_into(std::vector<IdT>& table, EntryP&& entry_p);
  template <class EntryP>
  void build_p_order(EntryP&& entry_p);
  void build_p_order_dense();
  void build_p_order_csr();

  Work sparse_lookup(MachineId i, JobId j) const;

  std::vector<Job> jobs_;
  std::size_t num_machines_ = 0;
  StorageBackend backend_ = StorageBackend::kDense;

  // ---- dense backend ----
  /// Flat p_ij buffer, job-major ([job * m + machine]): the hot dispatch
  /// loops read p_{., j} for one job across machines, which this layout
  /// serves from m/8 cache lines instead of m scattered ones.
  std::vector<Work> processing_;
  /// Rounded-down float32 shadow of processing_, same layout (bounds_row).
  std::vector<float> bounds_;

  // ---- sparse-CSR backend (aligned with eligible_flat_ slices) ----
  std::vector<Work> csr_p_;
  std::vector<float> csr_bounds_;

  // ---- generator backend ----
  std::shared_ptr<const RowGenerator> generator_;
  /// 0..m-1, the shared eligible_machines row of the fully-eligible
  /// generator backend.
  std::vector<MachineId> identity_machines_;

  // ---- shared tables (dense + sparse) ----
  /// Per-job eligible machines sorted by (p_ij, id); eligible_offsets_
  /// slicing. Exactly one of the two widths is populated: uint16 ids below
  /// 65536 machines (2 bytes per adjacency entry, the compact default),
  /// uint32 ids at and above (the huge-m tier).
  std::vector<std::uint16_t> p_order_;
  std::vector<std::uint32_t> p_order32_;
  /// Eligible-machine ids grouped by job; eligible_offsets_[j]..[j+1) is
  /// job j's slice of eligible_flat_.
  std::vector<MachineId> eligible_flat_;
  std::vector<std::size_t> eligible_offsets_;
  /// validate()'s cached verdict, filled at construction.
  std::string validation_problems_;
};

}  // namespace osched
