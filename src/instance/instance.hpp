// Unrelated-machines problem instance.
//
// Stores the jobs (sorted by release time; ties by id) and the dense
// p_ij matrix of per-machine processing requirements. A processing entry of
// +infinity means "job j cannot run on machine i" (restricted assignment).
#pragma once

#include <string>
#include <vector>

#include "instance/job.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

class Instance {
 public:
  Instance() = default;

  /// `processing[i][j]` is p_ij; every row must have `jobs.size()` entries.
  /// Jobs are re-sorted by (release, id) and re-numbered 0..n-1; the matrix
  /// columns are permuted accordingly, so callers can build in any order.
  Instance(std::vector<Job> jobs, std::vector<std::vector<Work>> processing);

  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t num_machines() const { return processing_.size(); }

  const Job& job(JobId j) const {
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    return jobs_[static_cast<std::size_t>(j)];
  }
  const std::vector<Job>& jobs() const { return jobs_; }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < processing_.size());
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
    return processing_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }

  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }

  /// min_i p_ij — the fastest any machine can serve j. Used by lower bounds.
  Work min_processing(JobId j) const;

  /// max p_ij / min p_ij over all finite entries (the paper's Delta).
  double processing_spread() const;

  Weight total_weight() const;

  /// Structural sanity: n >= 0, every job has at least one eligible machine,
  /// finite entries positive, releases non-negative, deadlines after release.
  /// Returns an empty string when valid, else a description of the problem.
  std::string validate() const;

 private:
  std::vector<Job> jobs_;
  std::vector<std::vector<Work>> processing_;  // [machine][job]
};

}  // namespace osched
