// Job model shared by all three problems in the paper.
//
// A job carries a release time, a weight (1.0 in the unweighted flow-time
// problem of Theorem 1), an optional deadline (only the energy-minimization
// problem of Theorem 3 uses deadlines), and a per-machine processing
// requirement stored in the owning Instance:
//   * Theorem 1: p_ij is a processing *time* (machine runs at unit speed);
//   * Theorems 2/3: p_ij is a processing *volume* (time = volume / speed).
#pragma once

#include <string>

#include "util/types.hpp"

namespace osched {

struct Job {
  JobId id = kInvalidJob;
  Time release = 0.0;
  Weight weight = 1.0;
  /// +infinity when the problem has no deadlines.
  Time deadline = kTimeInfinity;

  bool has_deadline() const { return deadline < kTimeInfinity; }
};

std::string to_string(const Job& job);

}  // namespace osched
