#include "instance/power.hpp"

#include <sstream>

namespace osched {

std::string PolynomialPower::name() const {
  std::ostringstream out;
  out << "P(s)=";
  if (coefficient_ != 1.0) out << coefficient_ << "*";
  out << "s^" << alpha_;
  return out.str();
}

SmoothnessParams polynomial_smoothness(double alpha) {
  OSCHED_CHECK_GE(alpha, 1.0);
  // mu(alpha) = (alpha-1)/alpha as in the proof of Theorem 3.
  // lambda(alpha): the smooth inequality of Cohen–Durr–Thang holds with
  // lambda = Theta(alpha^{alpha-1}); alpha^{alpha-1} itself is the witness
  // the paper's ratio alpha^alpha = lambda/(1-mu) corresponds to:
  //   lambda/(1-mu) = alpha^{alpha-1} / (1/alpha) = alpha^alpha.
  return SmoothnessParams{std::pow(alpha, alpha - 1.0), (alpha - 1.0) / alpha};
}

double theorem3_ratio_bound(double alpha) {
  return std::pow(alpha, alpha);
}

}  // namespace osched
