// Per-backend store views: the hot accessor surface the policies are
// templated over.
//
// The scheduling policies (rejection_flow / energy_flow / weighted_flow and
// the baselines) are templates over a Store type providing
//   job(j), num_jobs(), num_machines(), processing(i, j),
//   processing_unchecked(i, j), processing_row(j), bounds_row(j),
//   p_order_row(j), eligible_machines(j), min_processing(j)
// with Instance's semantics. Instance itself now multiplexes three backends
// behind façade accessors that branch per call — fine for checkers and
// metrics, wrong for the dispatch inner loops. These views give each
// backend a branch-free surface:
//
//  * DenseStoreView     — raw pointers into the dense buffers; every
//    accessor compiles to the exact loads Instance used to serve when it
//    WAS the dense store, so RejectionFlowPolicy<DenseStoreView, ...> is
//    the same hot path as the pre-refactor
//    RejectionFlowPolicy<Instance, ...> instantiation.
//  * SparseStoreView    — CSR entries decompressed on demand into a small
//    direct-mapped tile of dense rows (the policies read machine-indexed
//    rows). The tiles are the view's working set: two rows per dispatch
//    (current job + lookahead), reused across arrivals, so the DRAM
//    footprint stays O(eligible entries) while the row reads stay O(1).
//  * GeneratorStoreView — rows synthesized from the closed form into the
//    same tile shape; the n×m matrix never exists.
//
// A view borrows its Instance: keep the Instance alive for the view's
// lifetime, and use one view per run (the tiles are deliberately not
// thread-safe — a view is as private to its policy as the policy's own
// scratch). with_store_view() is the batch entry points' dispatcher.
#pragma once

#include <array>
#include <cstdlib>
#include <limits>
#include <type_traits>
#include <vector>

#include "instance/instance.hpp"

namespace osched {

namespace store_detail {

/// The Instance order table matching OrderT's width (uint16 below 65536
/// machines, uint32 at and above — exactly one is populated); nullptr when
/// that width's table is absent. Called from the friended view templates,
/// so the uint16/uint32 instantiations differ only in the pointer type.
template <class OrderT>
const OrderT* order_table(const std::vector<std::uint16_t>& narrow,
                          const std::vector<std::uint32_t>& wide) {
  if constexpr (std::is_same_v<OrderT, std::uint16_t>) {
    return narrow.empty() ? nullptr : narrow.data();
  } else {
    static_assert(std::is_same_v<OrderT, std::uint32_t>,
                  "order tables come in uint16 and uint32 widths only");
    return wide.empty() ? nullptr : wide.data();
  }
}

}  // namespace store_detail

/// OrderT is the (p, id) order table's machine-id type: std::uint16_t for
/// m < 65536 (the compact default, alias DenseStoreView), std::uint32_t at
/// and above (alias DenseStoreView32 — the huge-m tier). with_store_view
/// instantiates whichever width the instance built.
template <class OrderT>
class DenseStoreViewT {
 public:
  explicit DenseStoreViewT(const Instance& instance)
      : instance_(&instance),
        p_(instance.processing_.data()),
        bounds_(instance.bounds_.data()),
        order_(store_detail::order_table<OrderT>(instance.p_order_,
                                                 instance.p_order32_)),
        eligible_(instance.eligible_flat_.data()),
        offsets_(instance.eligible_offsets_.data()),
        m_(instance.num_machines()) {
    OSCHED_CHECK(instance.backend() == StorageBackend::kDense);
  }

  std::size_t num_jobs() const { return instance_->num_jobs(); }
  std::size_t num_machines() const { return m_; }
  const Job& job(JobId j) const { return instance_->job(j); }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < m_);
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < num_jobs());
    return processing_unchecked(i, j);
  }
  Work processing_unchecked(MachineId i, JobId j) const {
    return p_[static_cast<std::size_t>(j) * m_ + static_cast<std::size_t>(i)];
  }
  const Work* processing_row(JobId j) const {
    return p_ + static_cast<std::size_t>(j) * m_;
  }
  const float* bounds_row(JobId j) const {
    return bounds_ + static_cast<std::size_t>(j) * m_;
  }
  const OrderT* p_order_row(JobId j) const {
    if (order_ == nullptr) return nullptr;
    return order_ + offsets_[static_cast<std::size_t>(j)];
  }
  EligibleMachines eligible_machines(JobId j) const {
    const auto idx = static_cast<std::size_t>(j);
    return EligibleMachines{eligible_ + offsets_[idx],
                            eligible_ + offsets_[idx + 1]};
  }
  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }
  Work min_processing(JobId j) const { return instance_->min_processing(j); }

 private:
  const Instance* instance_;
  const Work* p_;
  const float* bounds_;
  const OrderT* order_;
  const MachineId* eligible_;
  const std::size_t* offsets_;
  std::size_t m_;
};

using DenseStoreView = DenseStoreViewT<std::uint16_t>;
using DenseStoreView32 = DenseStoreViewT<std::uint32_t>;

namespace store_detail {

/// One decompressed/synthesized dense row (machine-indexed, m entries of p
/// plus the float_lower shadow) tagged with the job it holds. Four
/// direct-mapped slots (j & 3): a dispatch touches rows j and j+1, which
/// land in different slots, and re-touching either is a hit.
struct RowTile {
  JobId id = kInvalidJob;
  std::vector<Work> p;
  std::vector<float> bounds;
};

inline constexpr std::size_t kTileSlots = 4;

}  // namespace store_detail

/// Same OrderT convention as DenseStoreViewT (aliases SparseStoreView /
/// SparseStoreView32).
template <class OrderT>
class SparseStoreViewT {
 public:
  explicit SparseStoreViewT(const Instance& instance)
      : instance_(&instance),
        csr_p_(instance.csr_p_.data()),
        order_(store_detail::order_table<OrderT>(instance.p_order_,
                                                 instance.p_order32_)),
        eligible_(instance.eligible_flat_.data()),
        offsets_(instance.eligible_offsets_.data()),
        m_(instance.num_machines()) {
    OSCHED_CHECK(instance.backend() == StorageBackend::kSparseCsr);
  }

  std::size_t num_jobs() const { return instance_->num_jobs(); }
  std::size_t num_machines() const { return m_; }
  const Job& job(JobId j) const { return instance_->job(j); }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < m_);
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < num_jobs());
    return processing_unchecked(i, j);
  }
  Work processing_unchecked(MachineId i, JobId j) const {
    return tile(j).p[static_cast<std::size_t>(i)];
  }
  const Work* processing_row(JobId j) const { return tile(j).p.data(); }
  const float* bounds_row(JobId j) const { return tile(j).bounds.data(); }
  const OrderT* p_order_row(JobId j) const {
    if (order_ == nullptr) return nullptr;
    return order_ + offsets_[static_cast<std::size_t>(j)];
  }
  EligibleMachines eligible_machines(JobId j) const {
    const auto idx = static_cast<std::size_t>(j);
    return EligibleMachines{eligible_ + offsets_[idx],
                            eligible_ + offsets_[idx + 1]};
  }
  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }
  Work min_processing(JobId j) const { return instance_->min_processing(j); }

 private:
  const store_detail::RowTile& tile(JobId j) const {
    store_detail::RowTile& slot =
        tiles_[static_cast<std::size_t>(j) % store_detail::kTileSlots];
    if (slot.id != j) fill(slot, j);
    return slot;
  }

  void fill(store_detail::RowTile& slot, JobId j) const {
    // Ineligible entries read as +infinity / FLT_MAX — exactly the values
    // the dense buffers hold for them (float_lower(inf) == FLT_MAX), so a
    // policy sweeping the row sees bit-identical inputs.
    slot.p.assign(m_, kTimeInfinity);
    slot.bounds.assign(m_, std::numeric_limits<float>::max());
    const auto idx = static_cast<std::size_t>(j);
    const std::size_t begin = offsets_[idx];
    const std::size_t end = offsets_[idx + 1];
    const float* csr_bounds = instance_->csr_bounds_.data();
    for (std::size_t k = begin; k < end; ++k) {
      const auto i = static_cast<std::size_t>(eligible_[k]);
      slot.p[i] = csr_p_[k];
      slot.bounds[i] = csr_bounds[k];
    }
    slot.id = j;
  }

  const Instance* instance_;
  const Work* csr_p_;
  const OrderT* order_;
  const MachineId* eligible_;
  const std::size_t* offsets_;
  std::size_t m_;
  mutable std::array<store_detail::RowTile, store_detail::kTileSlots> tiles_;
};

using SparseStoreView = SparseStoreViewT<std::uint16_t>;
using SparseStoreView32 = SparseStoreViewT<std::uint32_t>;

class GeneratorStoreView {
 public:
  explicit GeneratorStoreView(const Instance& instance)
      : instance_(&instance),
        generator_(&instance.generator()),
        identity_(instance.identity_machines_.data()),
        m_(instance.num_machines()) {}

  std::size_t num_jobs() const { return instance_->num_jobs(); }
  std::size_t num_machines() const { return m_; }
  const Job& job(JobId j) const { return instance_->job(j); }

  Work processing(MachineId i, JobId j) const {
    OSCHED_CHECK(i >= 0 && static_cast<std::size_t>(i) < m_);
    OSCHED_CHECK(j >= 0 && static_cast<std::size_t>(j) < num_jobs());
    return processing_unchecked(i, j);
  }
  Work processing_unchecked(MachineId i, JobId j) const {
    return tile(j).p[static_cast<std::size_t>(i)];
  }
  const Work* processing_row(JobId j) const { return tile(j).p.data(); }
  const float* bounds_row(JobId j) const { return tile(j).bounds.data(); }
  /// No precomputed (p, id) order — sorting per row would sit exactly where
  /// the synthesis does; dispatch derives the idle argmin from the shadow
  /// row (the streaming store takes the same sub-path).
  const std::uint16_t* p_order_row(JobId /*j*/) const { return nullptr; }
  EligibleMachines eligible_machines(JobId /*j*/) const {
    // Fully eligible by the RowGenerator contract: the shared 0..m-1 row.
    return EligibleMachines{identity_, identity_ + m_};
  }
  bool eligible(MachineId i, JobId j) const {
    return processing(i, j) < kTimeInfinity;
  }
  Work min_processing(JobId j) const {
    const store_detail::RowTile& t = tile(j);
    Work best = kTimeInfinity;
    for (std::size_t i = 0; i < m_; ++i) best = std::min(best, t.p[i]);
    return best;
  }

 private:
  const store_detail::RowTile& tile(JobId j) const {
    store_detail::RowTile& slot =
        tiles_[static_cast<std::size_t>(j) % store_detail::kTileSlots];
    if (slot.id != j) {
      slot.p.resize(m_);
      slot.bounds.resize(m_);
      generator_->fill_row(j, m_, slot.p.data());
      for (std::size_t i = 0; i < m_; ++i) {
        slot.bounds[i] = float_lower(slot.p[i]);
      }
      slot.id = j;
    }
    return slot;
  }

  const Instance* instance_;
  const RowGenerator* generator_;
  const MachineId* identity_;
  std::size_t m_;
  mutable std::array<store_detail::RowTile, store_detail::kTileSlots> tiles_;
};

/// Runs `fn` with the view matching `instance.backend()` AND the order
/// table's id width (uint16 below 65536 machines, uint32 at and above).
/// The batch entry points route through this so each (backend, width)
/// combination gets its own full template instantiation of the policy +
/// engine — the dense uint16 one being the pre-refactor hot path,
/// unchanged. An instance with no order table at all (only the generator
/// backend, whose view ignores the width) takes the uint16 branch, whose
/// view then serves nullptr rows exactly as before.
template <class Fn>
decltype(auto) with_store_view(const Instance& instance, Fn&& fn) {
  const bool wide = instance.dispatch_order_width() == 32;
  switch (instance.backend()) {
    case StorageBackend::kDense: {
      if (wide) {
        const DenseStoreView32 view(instance);
        return fn(view);
      }
      const DenseStoreView view(instance);
      return fn(view);
    }
    case StorageBackend::kSparseCsr: {
      if (wide) {
        const SparseStoreView32 view(instance);
        return fn(view);
      }
      const SparseStoreView view(instance);
      return fn(view);
    }
    case StorageBackend::kGenerator: {
      const GeneratorStoreView view(instance);
      return fn(view);
    }
  }
  OSCHED_CHECK(false) << "unreachable storage backend";
  std::abort();
}

}  // namespace osched
