#include "instance/job.hpp"

#include <sstream>

namespace osched {

std::string to_string(const Job& job) {
  std::ostringstream out;
  out << "job{id=" << job.id << ", r=" << job.release << ", w=" << job.weight;
  if (job.has_deadline()) out << ", d=" << job.deadline;
  out << "}";
  return out.str();
}

}  // namespace osched
