// One job as submitted to a streaming consumer.
//
// A StreamJob is the row-at-a-time counterpart of an Instance row: the job
// fields plus its processing requirements in one of three payload forms.
// It is the unit of exchange between the chunked trace reader
// (workload/trace_io.hpp), the streaming job store, and
// SchedulerSession::submit — none of which ever need the whole instance in
// memory.
//
// Payload forms (exactly one of the two vectors may be non-empty):
//  * DENSE:    `processing` holds p_ij for every machine (size = m);
//              kTimeInfinity marks an ineligible machine, exactly as in the
//              Instance matrix. The compatibility form — every consumer
//              accepts it.
//  * SPARSE:   `entries` holds the eligible (machine, p) pairs only, in
//              strictly ascending machine order — the CSR backend's shape.
//              A restricted-assignment job eligible on 2 of 4096 machines
//              costs 2 entries, not 4096 doubles.
//  * METADATA: both vectors empty. Legal only toward a generator-backed
//              store, whose closed form already knows every p_ij — the
//              submission carries just release/weight/deadline.
#pragma once

#include <vector>

#include "instance/instance.hpp"
#include "util/types.hpp"

namespace osched {

struct StreamJob {
  Time release = 0.0;
  Weight weight = 1.0;
  /// +infinity when the job has no deadline.
  Time deadline = kTimeInfinity;
  /// Dense form: p_ij for every machine i (size = num_machines);
  /// kTimeInfinity where the job cannot run. Empty when the sparse or
  /// metadata form is used.
  std::vector<Work> processing;
  /// Sparse form: eligible (machine, p) entries only, strictly ascending by
  /// machine id. Empty when the dense or metadata form is used.
  std::vector<SparseEntry> entries;
};

/// Fills `out` from one Instance row, shifting the release by
/// `release_offset` (chunked feeders splice independently generated chunks
/// onto a monotone timeline with it). Reuses the payload vectors' storage,
/// so feed loops pay no per-job allocation. This is THE conversion — every
/// feeder (streamed_run, the trace writer, the benches) goes through it, so
/// a new StreamJob field has exactly one place to be wired.
///
/// The payload form follows the instance's backend: a sparse-CSR instance
/// emits the SPARSE form straight off its adjacency — O(eligible), never
/// O(m) — while dense and generator instances emit the dense row (a
/// generator row is fully eligible, so dense IS its compact form). Feeders
/// that share a closed form with a generator-backed session should submit
/// metadata-only jobs instead (fill_stream_job_meta below).
inline void fill_stream_job(const Instance& instance, JobId j,
                            Time release_offset, StreamJob* out) {
  const Job& src = instance.job(j);
  out->release = release_offset + src.release;
  out->weight = src.weight;
  out->deadline = src.deadline;
  if (instance.backend() == StorageBackend::kSparseCsr) {
    // Eligible entries only, already ascending in the adjacency. The
    // per-entry lookup is the CSR binary search, but over a single row the
    // branch history makes it effectively a pointer walk; crucially no
    // m-wide vector is ever touched.
    out->processing.clear();
    out->entries.clear();
    const EligibleMachines eligible = instance.eligible_machines(j);
    out->entries.reserve(eligible.size());
    for (const MachineId i : eligible) {
      out->entries.push_back(SparseEntry{i, instance.processing_unchecked(i, j)});
    }
    return;
  }
  out->entries.clear();
  if (instance.backend() == StorageBackend::kDense) {
    // Dense fast path (the feed loops' case): one contiguous row copy.
    const Work* row = instance.processing_row(j);
    out->processing.assign(row, row + instance.num_machines());
    return;
  }
  // Generator rows are fully eligible by contract: synthesize the dense row
  // through the closed form (O(m) is inherent in materializing it at all).
  out->processing.resize(instance.num_machines());
  instance.generator().fill_row(j, instance.num_machines(),
                                out->processing.data());
}

/// Metadata-only fill: job fields, no payload. The submission form for
/// generator-backed sessions (SessionOptions::generator), whose store
/// synthesizes every row from the shared closed form — the feeder never
/// materializes O(m) anything.
inline void fill_stream_job_meta(const Job& src, Time release_offset,
                                 StreamJob* out) {
  out->release = release_offset + src.release;
  out->weight = src.weight;
  out->deadline = src.deadline;
  out->processing.clear();
  out->entries.clear();
}

inline StreamJob make_stream_job(const Instance& instance, JobId j,
                                 Time release_offset = 0.0) {
  StreamJob out;
  fill_stream_job(instance, j, release_offset, &out);
  return out;
}

}  // namespace osched
