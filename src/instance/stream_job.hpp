// One job as submitted to a streaming consumer.
//
// A StreamJob is the row-at-a-time counterpart of an Instance row: the job
// fields plus its per-machine processing requirements (kTimeInfinity marks
// an ineligible machine, exactly as in the Instance matrix). It is the unit
// of exchange between the chunked trace reader (workload/trace_io.hpp), the
// streaming job store, and SchedulerSession::submit — none of which ever
// need the whole instance in memory.
#pragma once

#include <vector>

#include "instance/instance.hpp"
#include "util/types.hpp"

namespace osched {

struct StreamJob {
  Time release = 0.0;
  Weight weight = 1.0;
  /// +infinity when the job has no deadline.
  Time deadline = kTimeInfinity;
  /// p_ij for every machine i (size = num_machines); kTimeInfinity where
  /// the job cannot run.
  std::vector<Work> processing;
};

/// Fills `out` from one Instance row, shifting the release by
/// `release_offset` (chunked feeders splice independently generated chunks
/// onto a monotone timeline with it). Reuses out->processing's storage, so
/// feed loops pay no per-job allocation. This is THE conversion — every
/// feeder (streamed_run, the trace writer, the benches) goes through it, so
/// a new StreamJob field has exactly one place to be wired.
inline void fill_stream_job(const Instance& instance, JobId j,
                            Time release_offset, StreamJob* out) {
  const Job& src = instance.job(j);
  out->release = release_offset + src.release;
  out->weight = src.weight;
  out->deadline = src.deadline;
  if (instance.backend() == StorageBackend::kDense) {
    // Dense fast path (the feed loops' case): one contiguous row copy.
    const Work* row = instance.processing_row(j);
    out->processing.assign(row, row + instance.num_machines());
    return;
  }
  // Backend-agnostic row assembly: ineligible machines read as infinity in
  // every backend, so fill + scatter over the adjacency reproduces the
  // dense row exactly (and never asks a sparse store for an absent entry).
  out->processing.assign(instance.num_machines(), kTimeInfinity);
  for (const MachineId i : instance.eligible_machines(j)) {
    out->processing[static_cast<std::size_t>(i)] =
        instance.processing_unchecked(i, j);
  }
}

inline StreamJob make_stream_job(const Instance& instance, JobId j,
                                 Time release_offset = 0.0) {
  StreamJob out;
  fill_stream_job(instance, j, release_offset, &out);
  return out;
}

}  // namespace osched
