// Power functions for the speed-scaling model (Theorems 2 and 3).
//
// The canonical function is P(s) = s^alpha with alpha > 1 (the paper notes
// alpha in (1, 3] in practice). Theorem 3 only needs (lambda, mu)-smoothness
// (Definition 1), so the interface is a general monotone power function; the
// polynomial case carries its closed-form smoothness parameters
// mu(alpha) = (alpha-1)/alpha and lambda(alpha) = Theta(alpha^{alpha-1})
// (Cohen, Durr, Thang [18], as cited in the proof of Theorem 3).
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "util/check.hpp"
#include "util/types.hpp"

namespace osched {

class PowerFunction {
 public:
  virtual ~PowerFunction() = default;

  /// Instantaneous power at speed s >= 0.
  virtual double power(Speed s) const = 0;

  virtual std::string name() const = 0;

  /// Energy for running at constant speed s for `duration`.
  Energy energy(Speed s, Time duration) const { return power(s) * duration; }
};

/// P(s) = coefficient * s^alpha.
class PolynomialPower final : public PowerFunction {
 public:
  explicit PolynomialPower(double alpha, double coefficient = 1.0)
      : alpha_(alpha), coefficient_(coefficient) {
    OSCHED_CHECK_GE(alpha, 1.0);
    OSCHED_CHECK_GT(coefficient, 0.0);
  }

  double power(Speed s) const override {
    OSCHED_CHECK_GE(s, 0.0);
    return coefficient_ * std::pow(s, alpha_);
  }

  double alpha() const { return alpha_; }
  double coefficient() const { return coefficient_; }
  std::string name() const override;

 private:
  double alpha_;
  double coefficient_;
};

/// Smoothness parameters of Definition 1 for P(s) = s^alpha:
/// mu(alpha) = (alpha-1)/alpha, and the matching lambda(alpha) from the
/// smooth inequality of [18]. For integer-ish alpha the standard bound is
/// lambda(alpha) = Theta(alpha^{alpha-1}); we expose the concrete witness
/// lambda used in the analysis so the E10 experiment can compare the
/// empirically required lambda against it.
struct SmoothnessParams {
  double lambda = 0.0;
  double mu = 0.0;
};

SmoothnessParams polynomial_smoothness(double alpha);

/// The competitive ratio lambda/(1-mu) from Theorem 3 for P(s)=s^alpha,
/// which the paper simplifies to alpha^alpha.
double theorem3_ratio_bound(double alpha);

}  // namespace osched
