#include "instance/builders.hpp"

namespace osched {

InstanceBuilder& InstanceBuilder::add_job(Time release,
                                          std::vector<Work> processing,
                                          Weight weight, Time deadline) {
  OSCHED_CHECK_EQ(processing.size(), num_machines_);
  Job job;
  job.id = static_cast<JobId>(jobs_.size());
  job.release = release;
  job.weight = weight;
  job.deadline = deadline;
  jobs_.push_back(job);
  for (std::size_t i = 0; i < num_machines_; ++i) {
    processing_[i].push_back(processing[i]);
  }
  return *this;
}

InstanceBuilder& InstanceBuilder::add_identical_job(Time release,
                                                    Work processing,
                                                    Weight weight,
                                                    Time deadline) {
  return add_job(release, std::vector<Work>(num_machines_, processing), weight,
                 deadline);
}

Instance InstanceBuilder::build() const {
  Instance instance(jobs_, processing_);
  const std::string problems = instance.validate();
  OSCHED_CHECK(problems.empty()) << "invalid instance: " << problems;
  return instance;
}

Instance single_machine_instance(
    const std::vector<std::pair<Time, Work>>& jobs) {
  InstanceBuilder builder(1);
  for (const auto& [release, processing] : jobs) {
    builder.add_identical_job(release, processing);
  }
  return builder.build();
}

Instance single_machine_weighted_instance(
    const std::vector<std::tuple<Time, Work, Weight>>& jobs) {
  InstanceBuilder builder(1);
  for (const auto& [release, processing, weight] : jobs) {
    builder.add_identical_job(release, processing, weight);
  }
  return builder.build();
}

}  // namespace osched
