#include "analysis/sweep.hpp"

#include <algorithm>

#include "harness/runner.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osched::analysis {

const util::RunningStats& CaseResult::metric(const std::string& key) const {
  for (std::size_t i = 0; i < metric_order.size(); ++i) {
    if (metric_order[i] == key) return metrics[i];
  }
  OSCHED_CHECK(false) << "metric '" << key << "' missing from case " << label;
  return metrics.front();
}

SweepResult run_sweep(const std::vector<SweepCase>& cases,
                      const SweepOptions& options) {
  OSCHED_CHECK_GT(options.repetitions, 0u);

  // Pre-sized output slots: units write disjoint cells, no locking needed.
  // Execution goes through the harness runner's parallel substrate so ad-hoc
  // sweeps and registered scenarios share one thread-pool code path.
  std::vector<std::vector<MetricRow>> rows(cases.size());
  for (auto& per_case : rows) per_case.resize(options.repetitions);

  harness::run_parallel_units(
      cases.size() * options.repetitions, options.threads,
      [&rows, &cases, &options](std::size_t unit) {
        const std::size_t c = unit / options.repetitions;
        const std::size_t rep = unit % options.repetitions;
        const std::uint64_t seed =
            util::derive_seed(util::derive_seed(options.seed, c),
                              static_cast<std::uint64_t>(rep));
        rows[c][rep] = cases[c].run(seed);
      });

  SweepResult result;
  result.cases.reserve(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    CaseResult aggregated;
    aggregated.label = cases[c].label;
    for (const MetricRow& row : rows[c]) {
      for (const auto& [key, value] : row.entries()) {
        auto it = std::find(aggregated.metric_order.begin(),
                            aggregated.metric_order.end(), key);
        std::size_t index;
        if (it == aggregated.metric_order.end()) {
          aggregated.metric_order.push_back(key);
          aggregated.metrics.emplace_back();
          index = aggregated.metrics.size() - 1;
        } else {
          index = static_cast<std::size_t>(it - aggregated.metric_order.begin());
        }
        aggregated.metrics[index].add(value);
      }
    }
    result.cases.push_back(std::move(aggregated));
  }
  return result;
}

namespace {

/// Union of metric keys across cases, in first-seen order.
std::vector<std::string> all_metric_keys(const SweepResult& result) {
  std::vector<std::string> keys;
  for (const CaseResult& c : result.cases) {
    for (const std::string& key : c.metric_order) {
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }
  return keys;
}

}  // namespace

util::Table SweepResult::to_table(const std::string& label_header) const {
  const std::vector<std::string> keys = all_metric_keys(*this);
  std::vector<std::string> headers{label_header};
  headers.insert(headers.end(), keys.begin(), keys.end());
  util::Table table(std::move(headers));
  for (const CaseResult& c : cases) {
    std::vector<std::string> row{c.label};
    for (const std::string& key : keys) {
      const auto it = std::find(c.metric_order.begin(), c.metric_order.end(), key);
      row.push_back(it == c.metric_order.end()
                        ? "-"
                        : util::Table::num(
                              c.metrics[static_cast<std::size_t>(
                                            it - c.metric_order.begin())]
                                  .mean()));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table SweepResult::to_spread_table(const std::string& label_header) const {
  const std::vector<std::string> keys = all_metric_keys(*this);
  std::vector<std::string> headers{label_header};
  headers.insert(headers.end(), keys.begin(), keys.end());
  util::Table table(std::move(headers));
  for (const CaseResult& c : cases) {
    std::vector<std::string> row{c.label};
    for (const std::string& key : keys) {
      const auto it = std::find(c.metric_order.begin(), c.metric_order.end(), key);
      if (it == c.metric_order.end()) {
        row.push_back("-");
        continue;
      }
      const util::RunningStats& stats =
          c.metrics[static_cast<std::size_t>(it - c.metric_order.begin())];
      std::string cell = util::Table::num(stats.mean());
      if (stats.count() > 1) {
        cell += " ±" + util::Table::num(stats.stddev(), 2);
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table;
}

void SweepResult::write_csv(std::ostream& out) const {
  out << "case,metric,mean,stddev,min,max,count\n";
  for (const CaseResult& c : cases) {
    for (std::size_t i = 0; i < c.metric_order.size(); ++i) {
      const util::RunningStats& s = c.metrics[i];
      out << c.label << ',' << c.metric_order[i] << ',' << s.mean() << ','
          << s.stddev() << ',' << s.min() << ',' << s.max() << ',' << s.count()
          << '\n';
    }
  }
}

BootstrapInterval bootstrap_mean_ci(const std::vector<double>& values,
                                    double confidence, std::size_t resamples,
                                    std::uint64_t seed) {
  OSCHED_CHECK(!values.empty());
  OSCHED_CHECK_GT(confidence, 0.0);
  OSCHED_CHECK_LT(confidence, 1.0);

  double sum = 0.0;
  for (double v : values) sum += v;

  BootstrapInterval interval;
  interval.point = sum / static_cast<double>(values.size());
  if (values.size() == 1) {
    interval.lower = interval.upper = interval.point;
    return interval;
  }

  util::Rng rng(seed);
  util::Summary means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double resample_sum = 0.0;
    for (std::size_t k = 0; k < values.size(); ++k) {
      resample_sum += values[rng.index(values.size())];
    }
    means.add(resample_sum / static_cast<double>(values.size()));
  }
  const double tail = (1.0 - confidence) / 2.0;
  interval.lower = means.quantile(tail);
  interval.upper = means.quantile(1.0 - tail);
  return interval;
}

}  // namespace osched::analysis
