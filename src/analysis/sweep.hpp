// Parameter-sweep driver for ad-hoc experiments.
//
// Registered scenarios (harness/registry.hpp) are the primary way to run
// experiments; this module keeps the lighter closure-based shape for
// exploratory sweeps in examples and tests. Cases are labelled closures
// returning a MetricRow; the driver executes them through the harness
// runner's shared parallel substrate with per-(case, repetition) derived
// seeds — results are bit-identical regardless of thread count — and the
// aggregate can be rendered as a console table or CSV.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/metric_row.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace osched::analysis {

/// Shared with the scenario harness: ordered metric -> value pairs.
using MetricRow = harness::MetricRow;

/// A labelled cell of the sweep grid. The runner receives a derived seed and
/// must be a pure function of it (no shared mutable state) — the driver
/// calls it concurrently.
struct SweepCase {
  std::string label;
  std::function<MetricRow(std::uint64_t seed)> run;
};

struct SweepOptions {
  std::size_t repetitions = 5;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// Aggregate of one case across repetitions.
struct CaseResult {
  std::string label;
  /// Metric keys in first-seen order.
  std::vector<std::string> metric_order;
  /// Per-metric statistics across repetitions (aligned with metric_order).
  std::vector<util::RunningStats> metrics;

  const util::RunningStats& metric(const std::string& key) const;
};

struct SweepResult {
  std::vector<CaseResult> cases;

  /// Mean-value table: one row per case, one column per metric (the union of
  /// all metric keys, in first-seen order).
  util::Table to_table(const std::string& label_header = "case") const;
  /// Mean +/- stddev table (stddev shown when repetitions > 1).
  util::Table to_spread_table(const std::string& label_header = "case") const;
  /// CSV: label, metric, mean, stddev, min, max, count.
  void write_csv(std::ostream& out) const;
};

SweepResult run_sweep(const std::vector<SweepCase>& cases,
                      const SweepOptions& options = {});

/// Percentile-bootstrap confidence interval for the mean of `values`.
struct BootstrapInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};
BootstrapInterval bootstrap_mean_ci(const std::vector<double>& values,
                                    double confidence = 0.95,
                                    std::size_t resamples = 2000,
                                    std::uint64_t seed = 17);

}  // namespace osched::analysis
