// Scenario registry with static self-registration.
//
// Scenario translation units register themselves at static-initialization
// time via OSCHED_REGISTER_SCENARIO, so linking a scenario file into a
// binary is all it takes to make the scenario runnable there. The scenario
// files are built as a CMake OBJECT library (osched_scenarios): an archive
// would let the linker drop the registration objects.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace osched::harness {

class ScenarioRegistry {
 public:
  /// The process-wide registry that OSCHED_REGISTER_SCENARIO adds to.
  static ScenarioRegistry& global();

  /// Adds a scenario. Returns false (and registers nothing) if the scenario
  /// is malformed: empty name, duplicate name, no run_unit, empty grid, or
  /// zero repetitions.
  bool add(Scenario scenario);

  /// Scenario by exact name; nullptr if absent.
  const Scenario* find(const std::string& name) const;

  /// Every scenario, sorted by name (registration order is link order, which
  /// is not meaningful).
  std::vector<const Scenario*> all() const;

  /// Scenarios matching a comma-separated filter expression. A scenario
  /// matches a token when the token equals one of its tags or is a substring
  /// of its name; it matches the expression when it matches any positive
  /// token and no token prefixed with '-' (exclusion; "-slow" drops the
  /// slow-tagged perf scenarios). With only exclusion tokens, the positive
  /// selection defaults to everything. The empty filter matches everything.
  std::vector<const Scenario*> matching(const std::string& filter) const;

  std::size_t size() const { return scenarios_.size(); }

 private:
  // unique_ptr: pointers handed out stay valid as the vector grows.
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/// Static-registration helper; aborts loudly on a malformed registration so
/// a bad scenario file fails at startup, not at --list time.
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario scenario);
};

#define OSCHED_SCENARIO_CONCAT_INNER(a, b) a##b
#define OSCHED_SCENARIO_CONCAT(a, b) OSCHED_SCENARIO_CONCAT_INNER(a, b)

/// Registers the Scenario returned by `maker` (a callable) at static
/// initialization. Usage, at namespace scope in a scenario file:
///   OSCHED_REGISTER_SCENARIO(make_e1_scenario);
#define OSCHED_REGISTER_SCENARIO(maker)                     \
  static const ::osched::harness::ScenarioRegistrar         \
      OSCHED_SCENARIO_CONCAT(osched_scenario_registrar_,    \
                             __COUNTER__) {                 \
    (maker)()                                               \
  }

}  // namespace osched::harness
