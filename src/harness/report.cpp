#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace osched::harness {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest representation that round-trips a double; NaN/Inf become null
/// (JSON has no encoding for them).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::ostringstream& out) : out_(out) {}

  void indent() {
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }
  void open(char bracket) {
    out_ << bracket << '\n';
    ++depth_;
    first_ = true;
  }
  void close(char bracket) {
    out_ << '\n';
    --depth_;
    indent();
    out_ << bracket;
    first_ = false;
  }
  /// Starts the next member/element line (commas between siblings).
  void next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    indent();
  }
  void key(const std::string& name) {
    next();
    out_ << '"' << json_escape(name) << "\": ";
  }

  std::ostringstream& out() { return out_; }

 private:
  std::ostringstream& out_;
  int depth_ = 0;
  bool first_ = true;
};

void write_case_json(JsonWriter& w, const CaseResult& unit_case) {
  w.next();
  w.open('{');
  w.key("label");
  w.out() << '"' << json_escape(unit_case.spec.label) << '"';
  w.key("params");
  w.open('{');
  for (const auto& [name, value] : unit_case.spec.params) {
    w.key(name);
    w.out() << json_number(value);
  }
  w.close('}');
  w.key("metrics");
  w.open('{');
  for (std::size_t m = 0; m < unit_case.metric_order.size(); ++m) {
    const util::RunningStats& stats = unit_case.metrics[m];
    w.key(unit_case.metric_order[m]);
    w.out() << "{\"mean\": " << json_number(stats.mean())
            << ", \"stddev\": " << json_number(stats.stddev())
            << ", \"min\": " << json_number(stats.min())
            << ", \"max\": " << json_number(stats.max())
            << ", \"count\": " << stats.count() << '}';
  }
  w.close('}');
  w.close('}');
}

}  // namespace

std::string to_json(const BatchReport& batch, const JsonOptions& options) {
  std::ostringstream out;
  JsonWriter w(out);
  w.open('{');
  w.key("schema");
  out << '"' << kReportSchemaName << '"';
  w.key("schema_version");
  out << kReportSchemaVersion;
  w.key("root_seed");
  out << batch.seed;
  w.key("scale");
  out << json_number(batch.scale);
  w.key("passed");
  out << (batch.all_passed() ? "true" : "false");
  w.key("scenarios");
  w.open('[');
  for (const ScenarioReport& scenario : batch.scenarios) {
    w.next();
    w.open('{');
    w.key("name");
    out << '"' << json_escape(scenario.name) << '"';
    w.key("tags");
    out << '[';
    for (std::size_t t = 0; t < scenario.tags.size(); ++t) {
      out << (t ? ", " : "") << '"' << json_escape(scenario.tags[t]) << '"';
    }
    out << ']';
    w.key("passed");
    out << (scenario.verdict.pass ? "true" : "false");
    w.key("note");
    out << '"' << json_escape(scenario.verdict.note) << '"';
    w.key("cases");
    w.open('[');
    for (const CaseResult& unit_case : scenario.cases) {
      write_case_json(w, unit_case);
    }
    w.close(']');
    if (options.include_timing) {
      w.key("compute_seconds");
      out << json_number(scenario.compute_seconds);
    }
    w.close('}');
  }
  w.close(']');
  if (options.include_timing) {
    w.key("jobs");
    out << batch.jobs;
    w.key("wall_seconds");
    out << json_number(batch.wall_seconds);
  }
  w.close('}');
  out << '\n';
  return out.str();
}

void write_csv(const BatchReport& batch, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row(
      {"scenario", "case", "metric", "mean", "stddev", "min", "max", "count"});
  for (const ScenarioReport& scenario : batch.scenarios) {
    for (const CaseResult& unit_case : scenario.cases) {
      for (std::size_t m = 0; m < unit_case.metric_order.size(); ++m) {
        const util::RunningStats& stats = unit_case.metrics[m];
        writer.row(scenario.name, unit_case.spec.label,
                   unit_case.metric_order[m], stats.mean(), stats.stddev(),
                   stats.min(), stats.max(),
                   static_cast<unsigned long long>(stats.count()));
      }
    }
  }
}

void print_tables(const BatchReport& batch, std::ostream& out) {
  for (const ScenarioReport& scenario : batch.scenarios) {
    util::print_section(out, scenario.name);

    // Column union across cases, in first-seen order.
    std::vector<std::string> keys;
    for (const CaseResult& unit_case : scenario.cases) {
      for (const std::string& key : unit_case.metric_order) {
        if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
          keys.push_back(key);
        }
      }
    }

    std::vector<std::string> headers{"case"};
    headers.insert(headers.end(), keys.begin(), keys.end());
    util::Table table(std::move(headers));
    for (const CaseResult& unit_case : scenario.cases) {
      std::vector<std::string> row{unit_case.spec.label};
      for (const std::string& key : keys) {
        if (!unit_case.has_metric(key)) {
          row.push_back("-");
          continue;
        }
        const util::RunningStats& stats = unit_case.metric(key);
        std::string cell = util::Table::num(stats.mean());
        if (stats.count() > 1 && stats.stddev() > 0.0) {
          cell += " ±" + util::Table::num(stats.stddev(), 2);
        }
        row.push_back(std::move(cell));
      }
      table.add_row(std::move(row));
    }
    table.print(out);
    out << (scenario.verdict.pass ? "PASS" : "FAIL") << ": " << scenario.name;
    if (!scenario.verdict.note.empty()) out << " — " << scenario.verdict.note;
    out << "\n\n";
  }
}

}  // namespace osched::harness
