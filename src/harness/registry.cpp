#include "harness/registry.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace osched::harness {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();  // never freed
  return *registry;
}

bool ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty() || !scenario.run_unit || scenario.grid.empty() ||
      scenario.repetitions == 0) {
    return false;
  }
  if (find(scenario.name) != nullptr) return false;
  scenarios_.push_back(std::make_unique<Scenario>(std::move(scenario)));
  return true;
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->name == name) return scenario.get();
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) out.push_back(scenario.get());
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) { return a->name < b->name; });
  return out;
}

std::vector<const Scenario*> ScenarioRegistry::matching(
    const std::string& filter) const {
  if (filter.empty()) return all();

  std::vector<std::string> include;
  std::vector<std::string> exclude;
  std::istringstream in(filter);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    if (token[0] == '-') {
      if (token.size() > 1) exclude.push_back(token.substr(1));
    } else {
      include.push_back(token);
    }
  }

  const auto token_matches = [](const Scenario* scenario,
                                const std::string& t) {
    return scenario->has_tag(t) || scenario->name.find(t) != std::string::npos;
  };

  std::vector<const Scenario*> out;
  for (const Scenario* scenario : all()) {
    // With no positive tokens, start from everything (e.g. "-slow" selects
    // all scenarios except the slow-tagged ones).
    const bool included =
        include.empty() ||
        std::any_of(include.begin(), include.end(), [&](const std::string& t) {
          return token_matches(scenario, t);
        });
    const bool excluded =
        std::any_of(exclude.begin(), exclude.end(), [&](const std::string& t) {
          return token_matches(scenario, t);
        });
    if (included && !excluded) out.push_back(scenario);
  }
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(Scenario scenario) {
  const std::string name = scenario.name;
  OSCHED_CHECK(ScenarioRegistry::global().add(std::move(scenario)))
      << "invalid or duplicate scenario registration: '" << name << "'";
}

}  // namespace osched::harness
