#include "harness/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace osched::harness {

CaseSpec&& CaseSpec::with(const std::string& key, double value) && {
  for (auto& [existing, v] : params) {
    OSCHED_CHECK(existing != key) << "duplicate param '" << key << "'";
    (void)v;
  }
  params.emplace_back(key, value);
  return std::move(*this);
}

double CaseSpec::param(const std::string& key) const {
  for (const auto& [existing, v] : params) {
    if (existing == key) return v;
  }
  OSCHED_CHECK(false) << "param '" << key << "' missing from case '" << label
                      << "'";
  return 0.0;
}

double CaseSpec::param_or(const std::string& key, double fallback) const {
  for (const auto& [existing, v] : params) {
    if (existing == key) return v;
  }
  return fallback;
}

bool CaseSpec::has_param(const std::string& key) const {
  for (const auto& [existing, v] : params) {
    (void)v;
    if (existing == key) return true;
  }
  return false;
}

std::size_t UnitContext::scaled(std::size_t nominal) const {
  const double sized = std::ceil(static_cast<double>(nominal) * scale);
  return std::max<std::size_t>(1, static_cast<std::size_t>(sized));
}

void CaseResult::accumulate(const MetricRow& row) {
  for (const auto& [key, value] : row.entries()) {
    const auto it =
        std::find(metric_order.begin(), metric_order.end(), key);
    std::size_t index;
    if (it == metric_order.end()) {
      metric_order.push_back(key);
      metrics.emplace_back();
      index = metrics.size() - 1;
    } else {
      index = static_cast<std::size_t>(it - metric_order.begin());
    }
    metrics[index].add(value);
  }
}

bool CaseResult::has_metric(const std::string& key) const {
  return std::find(metric_order.begin(), metric_order.end(), key) !=
         metric_order.end();
}

const util::RunningStats& CaseResult::metric(const std::string& key) const {
  for (std::size_t i = 0; i < metric_order.size(); ++i) {
    if (metric_order[i] == key) return metrics[i];
  }
  OSCHED_CHECK(false) << "metric '" << key << "' missing from case '"
                      << spec.label << "'";
  return metrics.front();
}

const CaseResult& ScenarioReport::case_result(const std::string& label) const {
  for (const CaseResult& c : cases) {
    if (c.spec.label == label) return c;
  }
  OSCHED_CHECK(false) << "case '" << label << "' missing from scenario '"
                      << name << "'";
  return cases.front();
}

bool ScenarioReport::has_case(const std::string& label) const {
  for (const CaseResult& c : cases) {
    if (c.spec.label == label) return true;
  }
  return false;
}

bool Scenario::has_tag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

}  // namespace osched::harness
