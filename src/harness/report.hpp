// Report emission for batch runs: versioned JSON, CSV, console tables.
//
// The JSON schema is stable and versioned (kReportSchemaVersion) so CI can
// archive BENCH_*.json artifacts and diff metric trajectories across
// commits. Everything under "scenarios" is a deterministic function of
// (selection, seed, scale); timing lives in separate fields ("jobs",
// "*_seconds") that JsonOptions::include_timing can strip, which is how the
// determinism test compares a --jobs 1 run against a --jobs 8 run
// byte-for-byte. Exception: scenarios tagged "perf" (e8_throughput)
// measure wall-clock as their subject, so their metric VALUES vary run to
// run by design — exclude the "perf" tag from determinism diffs.
//
// Schema (version 1):
//   {
//     "schema": "osched.bench.report",
//     "schema_version": 1,
//     "root_seed": <uint>,
//     "scale": <number>,
//     "passed": <bool>,
//     "scenarios": [
//       {
//         "name": <string>, "tags": [<string>...],
//         "passed": <bool>, "note": <string>,
//         "cases": [
//           {
//             "label": <string>,
//             "params": {<name>: <number>, ...},
//             "metrics": {
//               <name>: {"mean":, "stddev":, "min":, "max":, "count":}, ...
//             }
//           }, ...
//         ],
//         "compute_seconds": <number>      // only with include_timing
//       }, ...
//     ],
//     "jobs": <uint>,                      // only with include_timing
//     "wall_seconds": <number>             // only with include_timing
//   }
#pragma once

#include <ostream>
#include <string>

#include "harness/runner.hpp"

namespace osched::harness {

inline constexpr int kReportSchemaVersion = 1;
inline constexpr const char* kReportSchemaName = "osched.bench.report";

struct JsonOptions {
  /// Strip the non-deterministic fields (timing, worker count).
  bool include_timing = true;
};

/// Serializes the batch as schema-versioned JSON (2-space indent, fields in
/// fixed order, shortest round-trip doubles; NaN/Inf become null).
std::string to_json(const BatchReport& batch, const JsonOptions& options = {});

/// Long-form CSV: scenario,case,metric,mean,stddev,min,max,count.
void write_csv(const BatchReport& batch, std::ostream& out);

/// Console rendering: one table per scenario (rows = cases, columns = metric
/// means ± stddev) plus the verdict lines, in the style the bench binaries
/// used to print.
void print_tables(const BatchReport& batch, std::ostream& out);

}  // namespace osched::harness
