// One run's outcome: ordered metric -> value pairs.
//
// Order is preserved so tables and reports read in the order the experiment
// author set the metrics. This is the unit of data exchanged between a
// scenario's run function and the batch runner; analysis::MetricRow is an
// alias of this type so sweep cases and registered scenarios share it.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace osched::harness {

class MetricRow {
 public:
  void set(const std::string& key, double value);
  /// Value of `key`; aborts if missing (experiment authoring error).
  double get(const std::string& key) const;
  bool contains(const std::string& key) const;

  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace osched::harness
