#include "harness/metric_row.hpp"

#include "util/check.hpp"

namespace osched::harness {

void MetricRow::set(const std::string& key, double value) {
  for (auto& [existing, v] : entries_) {
    if (existing == key) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

double MetricRow::get(const std::string& key) const {
  for (const auto& [existing, v] : entries_) {
    if (existing == key) return v;
  }
  OSCHED_CHECK(false) << "metric '" << key << "' missing from row";
  return 0.0;
}

bool MetricRow::contains(const std::string& key) const {
  for (const auto& [existing, v] : entries_) {
    (void)v;
    if (existing == key) return true;
  }
  return false;
}

}  // namespace osched::harness
