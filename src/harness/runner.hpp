// Parallel batch runner for registered scenarios.
//
// The runner flattens the selected scenarios into independent (scenario,
// case, repetition) units, executes them across the shared util::ThreadPool,
// and aggregates metric rows per case. Seeds are derived per unit from
// (root seed, scenario name, case index, repetition) — NOT from the unit's
// position in the flattened list — so a scenario's numbers are identical
// whether it runs alone, filtered, or in the full batch, and identical for
// any --jobs value.
//
// analysis::run_sweep routes through run_parallel_units, so ad-hoc sweeps
// (eps sweeps, victim ablations) and registered scenarios share one
// execution substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace osched::harness {

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 0;
  std::uint64_t seed = 1;
  /// Instance-size multiplier passed to every UnitContext.
  double scale = 1.0;
  /// Timing repetitions: every (case, repetition) unit runs this many
  /// times WITH THE SAME SEED and context. Deterministic metrics are
  /// unchanged (mean == min == max, stddev 0 — the exact-match contract of
  /// compare_bench.py holds for any repeat), while wall-clock metrics pick
  /// up a real sample count and stddev instead of count=1 single shots.
  std::size_t repeat = 1;
  /// When set, one line per finished scenario is written here.
  std::ostream* log = nullptr;
};

struct BatchReport {
  std::uint64_t seed = 1;
  double scale = 1.0;
  std::size_t jobs = 0;
  /// In selection order (the CLI selects in name-sorted registry order).
  std::vector<ScenarioReport> scenarios;
  double wall_seconds = 0.0;

  bool all_passed() const;
  const ScenarioReport& scenario(const std::string& name) const;
};

/// Stable per-scenario root seed: FNV-1a of the name mixed into the batch
/// root. Independent of the selection, so filtered runs reproduce full runs.
std::uint64_t scenario_seed(std::uint64_t root, const std::string& name);

/// Runs every (case, repetition) unit of the selected scenarios in parallel
/// and aggregates the verdicts. Null selection entries are not allowed.
BatchReport run_batch(const std::vector<const Scenario*>& selection,
                      const RunnerOptions& options = {});

/// Convenience: run one scenario.
ScenarioReport run_scenario(const Scenario& scenario,
                            const RunnerOptions& options = {});

/// Shared parallel substrate: runs body(i) for i in [0, count) on `threads`
/// workers (0 = hardware concurrency) and blocks until done. Each body(i)
/// must touch only state owned by unit i.
void run_parallel_units(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body);

}  // namespace osched::harness
