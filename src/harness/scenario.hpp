// Scenario model for the unified experiment harness.
//
// A scenario is a named, tagged experiment over a parameter grid: every
// (case, repetition) pair is an independent *unit* — a pure function of its
// derived seed — which the batch runner executes concurrently on the shared
// thread pool. After all units of a scenario finish, its metric rows are
// aggregated per case and an optional evaluate() function renders the
// pass/fail verdict that used to live in each bench binary's main().
//
// The former bench/bench_e*.cpp experiments are all expressed in this model
// and self-register through OSCHED_REGISTER_SCENARIO (see registry.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/metric_row.hpp"
#include "util/stats.hpp"

namespace osched::harness {

/// One cell of a scenario's parameter grid. Params are named doubles so the
/// grid is serializable into the JSON report as written.
struct CaseSpec {
  std::string label;
  std::vector<std::pair<std::string, double>> params;

  CaseSpec() = default;
  explicit CaseSpec(std::string case_label) : label(std::move(case_label)) {}

  /// Builder-style param attachment: CaseSpec("x").with("eps", 0.2).
  CaseSpec&& with(const std::string& key, double value) &&;
  double param(const std::string& key) const;  ///< aborts if missing
  double param_or(const std::string& key, double fallback) const;
  bool has_param(const std::string& key) const;
};

/// Everything a unit run may depend on. Units must be pure functions of this
/// context (no shared mutable state): the runner calls them concurrently and
/// the report must be identical for any --jobs value.
struct UnitContext {
  const CaseSpec& unit_case;
  /// Unique per (scenario, case, repetition); the unit's main seed.
  std::uint64_t seed = 0;
  /// Scenario-level root seed: derive shared streams from it when several
  /// cases must observe the SAME instance (e.g. ablations over one workload).
  std::uint64_t scenario_seed = 0;
  std::size_t case_index = 0;
  std::size_t repetition = 0;
  /// Size multiplier from --scale; smoke/CI runs shrink instances with it.
  double scale = 1.0;

  double param(const std::string& key) const { return unit_case.param(key); }
  double param_or(const std::string& key, double fallback) const {
    return unit_case.param_or(key, fallback);
  }
  /// max(1, nominal * scale): the canonical way to size instances.
  std::size_t scaled(std::size_t nominal) const;
};

struct Verdict {
  bool pass = true;
  std::string note;
};

/// Aggregate of one case across repetitions.
struct CaseResult {
  CaseSpec spec;
  /// Metric keys in first-seen order.
  std::vector<std::string> metric_order;
  /// Per-metric statistics across repetitions (aligned with metric_order).
  std::vector<util::RunningStats> metrics;

  void accumulate(const MetricRow& row);
  bool has_metric(const std::string& key) const;
  const util::RunningStats& metric(const std::string& key) const;
};

struct ScenarioReport {
  std::string name;
  std::vector<std::string> tags;
  std::vector<CaseResult> cases;
  Verdict verdict;
  /// Summed unit compute time (not wall time of the parallel section).
  double compute_seconds = 0.0;

  const CaseResult& case_result(const std::string& label) const;
  bool has_case(const std::string& label) const;
};

struct Scenario {
  std::string name;         ///< unique registry key, e.g. "e1_flow_ratio"
  std::string description;  ///< one line for --list
  std::vector<std::string> tags;
  std::size_t repetitions = 1;
  std::vector<CaseSpec> grid;
  std::function<MetricRow(const UnitContext&)> run_unit;
  /// Optional: verdict over the aggregated report; defaults to pass.
  std::function<Verdict(const ScenarioReport&)> evaluate;

  bool has_tag(const std::string& tag) const;
};

}  // namespace osched::harness
