#include "harness/runner.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace osched::harness {

bool BatchReport::all_passed() const {
  for (const ScenarioReport& report : scenarios) {
    if (!report.verdict.pass) return false;
  }
  return true;
}

const ScenarioReport& BatchReport::scenario(const std::string& name) const {
  for (const ScenarioReport& report : scenarios) {
    if (report.name == name) return report;
  }
  OSCHED_CHECK(false) << "scenario '" << name << "' missing from batch";
  return scenarios.front();
}

std::uint64_t scenario_seed(std::uint64_t root, const std::string& name) {
  // FNV-1a over the name: stable across platforms and runs, unlike
  // std::hash. The digest seeds a derive_seed stream off the batch root.
  std::uint64_t digest = 14695981039346656037ULL;
  for (const char c : name) {
    digest ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    digest *= 1099511628211ULL;
  }
  return util::derive_seed(root, digest);
}

namespace {

struct UnitResult {
  MetricRow row;
  double seconds = 0.0;
};

}  // namespace

BatchReport run_batch(const std::vector<const Scenario*>& selection,
                      const RunnerOptions& options) {
  util::Timer batch_timer;

  BatchReport batch;
  batch.seed = options.seed;
  batch.scale = options.scale;

  struct Unit {
    std::size_t scenario;
    std::size_t unit_case;
    std::size_t repetition;
    std::uint64_t seed;
    std::uint64_t scenario_root;
  };
  const std::size_t repeat = std::max<std::size_t>(1, options.repeat);
  std::vector<Unit> units;
  for (std::size_t s = 0; s < selection.size(); ++s) {
    const Scenario* scenario = selection[s];
    OSCHED_CHECK(scenario != nullptr) << "null scenario in selection";
    const std::uint64_t root = scenario_seed(options.seed, scenario->name);
    for (std::size_t c = 0; c < scenario->grid.size(); ++c) {
      for (std::size_t rep = 0; rep < scenario->repetitions; ++rep) {
        const std::uint64_t seed = util::derive_seed(
            util::derive_seed(root, c), static_cast<std::uint64_t>(rep));
        // --repeat: the SAME unit (same seed, same context) run `repeat`
        // times — timing samples, not new instances (see RunnerOptions).
        for (std::size_t t = 0; t < repeat; ++t) {
          units.push_back({s, c, rep, seed, root});
        }
      }
    }
  }

  util::ThreadPool pool(options.jobs);
  batch.jobs = pool.thread_count();

  // Futures in submission order: results are collected deterministically no
  // matter which worker finishes first.
  std::vector<std::future<UnitResult>> futures;
  futures.reserve(units.size());
  for (const Unit& unit : units) {
    const Scenario* scenario = selection[unit.scenario];
    futures.push_back(pool.submit_task([scenario, unit, &options] {
      UnitContext context{scenario->grid[unit.unit_case],
                          unit.seed,
                          unit.scenario_root,
                          unit.unit_case,
                          unit.repetition,
                          options.scale};
      util::Timer timer;
      UnitResult result;
      result.row = scenario->run_unit(context);
      result.seconds = timer.elapsed_seconds();
      return result;
    }));
  }

  // Aggregate in unit order (deterministic).
  std::vector<ScenarioReport> reports(selection.size());
  for (std::size_t s = 0; s < selection.size(); ++s) {
    reports[s].name = selection[s]->name;
    reports[s].tags = selection[s]->tags;
    reports[s].cases.resize(selection[s]->grid.size());
    for (std::size_t c = 0; c < selection[s]->grid.size(); ++c) {
      reports[s].cases[c].spec = selection[s]->grid[c];
    }
  }
  for (std::size_t i = 0; i < units.size(); ++i) {
    const Unit& unit = units[i];
    UnitResult result = futures[i].get();
    reports[unit.scenario].cases[unit.unit_case].accumulate(result.row);
    reports[unit.scenario].compute_seconds += result.seconds;
  }

  for (std::size_t s = 0; s < selection.size(); ++s) {
    ScenarioReport& report = reports[s];
    report.verdict = selection[s]->evaluate ? selection[s]->evaluate(report)
                                            : Verdict{};
    if (options.log != nullptr) {
      *options.log << (report.verdict.pass ? "PASS " : "FAIL ") << report.name
                   << " (" << util::format_duration(report.compute_seconds)
                   << " compute)"
                   << (report.verdict.note.empty() ? ""
                                                   : " — " + report.verdict.note)
                   << '\n';
    }
  }

  batch.scenarios = std::move(reports);
  batch.wall_seconds = batch_timer.elapsed_seconds();
  return batch;
}

ScenarioReport run_scenario(const Scenario& scenario,
                            const RunnerOptions& options) {
  BatchReport batch = run_batch({&scenario}, options);
  return std::move(batch.scenarios.front());
}

void run_parallel_units(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  util::ThreadPool pool(threads);
  util::parallel_for(pool, count, body);
}

}  // namespace osched::harness
