// osched_bench — the unified scenario runner.
//
// Replaces the fifteen bench_e* binaries with one CLI over the scenario
// registry:
//   osched_bench --list                     enumerate scenarios
//   osched_bench --filter smoke --jobs 4    run the smoke-tagged subset
//   osched_bench --out report.json          machine-readable report for CI
//   osched_bench --filter e12 --scale 0.25  quarter-size victim ablation
//
// Exit code 0 iff every selected scenario's verdict passed.
#include <fstream>
#include <iostream>

#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("list", "false", "list registered scenarios and exit")
      .flag("filter", "", "comma-separated tags / name substrings to run")
      .flag("jobs", "0", "worker threads (0 = hardware concurrency)")
      .flag("seed", "1", "root seed; every unit seed derives from it")
      .flag("scale", "1", "instance-size multiplier (0.25 = quarter size)")
      .flag("repeat", "1",
            "timing repetitions per unit (same seed; wall-clock metrics get "
            "real stddev, deterministic metrics are unchanged)")
      .flag("out", "", "write the JSON report here")
      .flag("csv", "", "write the long-form CSV here")
      .flag("timing", "true", "include timing fields in the JSON report")
      .flag("quiet", "false", "suppress per-scenario tables on stdout");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  auto& registry = harness::ScenarioRegistry::global();

  if (cli.boolean("list")) {
    util::Table table({"scenario", "tags", "cases", "reps", "description"});
    for (const harness::Scenario* scenario : registry.all()) {
      std::string tags;
      for (const std::string& tag : scenario->tags) {
        tags += (tags.empty() ? "" : ",") + tag;
      }
      table.row(scenario->name, tags,
                static_cast<unsigned long>(scenario->grid.size()),
                static_cast<unsigned long>(scenario->repetitions),
                scenario->description);
    }
    table.print(std::cout);
    std::cout << registry.size() << " scenarios registered\n";
    return 0;
  }

  const std::string filter = cli.str("filter");
  const auto selection = registry.matching(filter);
  if (selection.empty()) {
    std::cerr << "no scenario matches filter '" << filter << "' (see --list)\n";
    return 1;
  }

  const std::int64_t jobs = cli.integer("jobs");
  const double scale = cli.num("scale");
  const std::int64_t repeat = cli.integer("repeat");
  if (jobs < 0) {
    std::cerr << "error: --jobs must be >= 0 (got " << jobs << ")\n";
    return 1;
  }
  if (scale <= 0.0) {
    std::cerr << "error: --scale must be > 0 (got " << scale << ")\n";
    return 1;
  }
  if (repeat < 1) {
    std::cerr << "error: --repeat must be >= 1 (got " << repeat << ")\n";
    return 1;
  }

  harness::RunnerOptions options;
  options.jobs = static_cast<std::size_t>(jobs);
  options.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  options.scale = scale;
  options.repeat = static_cast<std::size_t>(repeat);
  options.log = &std::cerr;

  std::cerr << "running " << selection.size() << " scenario(s), seed "
            << options.seed << ", scale " << options.scale << "\n";
  const harness::BatchReport batch = harness::run_batch(selection, options);

  if (!cli.boolean("quiet")) harness::print_tables(batch, std::cout);

  const std::string out_path = cli.str("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open --out file: " << out_path << "\n";
      return 1;
    }
    harness::JsonOptions json_options;
    json_options.include_timing = cli.boolean("timing");
    out << harness::to_json(batch, json_options);
    std::cerr << "wrote " << out_path << "\n";
  }

  const std::string csv_path = cli.str("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot open --csv file: " << csv_path << "\n";
      return 1;
    }
    harness::write_csv(batch, out);
    std::cerr << "wrote " << csv_path << "\n";
  }

  std::size_t passed = 0;
  for (const auto& scenario : batch.scenarios) {
    if (scenario.verdict.pass) ++passed;
  }
  std::cerr << passed << "/" << batch.scenarios.size() << " scenarios passed in "
            << util::format_duration(batch.wall_seconds) << "\n";
  return batch.all_passed() ? 0 : 1;
}
