#include "api/scheduler_api.hpp"

#include <cctype>

#include "baselines/immediate_rejection.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "sim/validator.hpp"
#include "util/check.hpp"

namespace osched::api {

namespace {

/// Every algorithm, in the order algorithm_names() prints them. The parser
/// and the name list are driven by this one table, so they cannot drift.
constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kTheorem1,   Algorithm::kTheorem2, Algorithm::kTheorem3,
    Algorithm::kWeightedExt, Algorithm::kGreedySpt, Algorithm::kFifo,
    Algorithm::kImmediateReject,
};

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  // Case-insensitive match against exactly the names to_string emits (and
  // algorithm_names() prints): "Theorem1" and "GREEDY-SPT" parse, but
  // aliases or abbreviations do not.
  const std::string folded = to_lower(name);
  for (const Algorithm algorithm : kAllAlgorithms) {
    if (folded == to_string(algorithm)) return algorithm;
  }
  return std::nullopt;
}

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTheorem1: return "theorem1";
    case Algorithm::kTheorem2: return "theorem2";
    case Algorithm::kTheorem3: return "theorem3";
    case Algorithm::kWeightedExt: return "weighted-ext";
    case Algorithm::kGreedySpt: return "greedy-spt";
    case Algorithm::kFifo: return "fifo";
    case Algorithm::kImmediateReject: return "immediate-reject";
  }
  return "?";
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kAllAlgorithms));
  for (const Algorithm algorithm : kAllAlgorithms) {
    names.emplace_back(to_string(algorithm));
  }
  return names;
}

RunSummary run(Algorithm algorithm, const Instance& instance,
               const RunOptions& options) {
  RunSummary summary;
  summary.algorithm = algorithm;
  summary.dispatch_index_active = instance.dispatch_index_active();
  summary.dispatch_order_width = instance.dispatch_order_width();
  summary.dispatch_simd_tier = util::active_simd_tier();

  // Per-algorithm validation/report knobs.
  bool parallel_execution = false;
  bool require_deadlines = false;
  const PolynomialPower power(options.alpha);
  const PowerFunction* report_power = nullptr;

  switch (algorithm) {
    case Algorithm::kTheorem1: {
      const auto result = run_rejection_flow(
          instance, {.epsilon = options.epsilon, .fleet = options.fleet});
      summary.schedule = result.schedule;
      summary.certified_lower_bound = result.opt_lower_bound;
      summary.rule1_rejections = result.rule1_rejections;
      summary.rule2_rejections = result.rule2_rejections;
      summary.fleet = result.fleet;
      break;
    }
    case Algorithm::kTheorem2: {
      EnergyFlowOptions ef;
      ef.epsilon = options.epsilon;
      ef.alpha = options.alpha;
      ef.fleet = options.fleet;
      const auto result = run_energy_flow(instance, ef);
      summary.schedule = result.schedule;
      summary.rule1_rejections = result.rejections;
      summary.fleet = result.fleet;
      report_power = &power;
      break;
    }
    case Algorithm::kTheorem3: {
      // The configuration primal-dual solves an offline LP over a fixed
      // machine set — dynamic fleet membership has no meaning there.
      OSCHED_CHECK(options.fleet.empty())
          << "theorem3 does not support fleet plans";
      ConfigPDOptions pd;
      pd.alpha = options.alpha;
      pd.speed_levels = options.speed_levels;
      pd.start_grid = options.start_grid;
      const auto result = run_config_primal_dual(instance, pd);
      summary.schedule = result.schedule;
      summary.certified_lower_bound = result.opt_lower_bound;
      parallel_execution = true;
      require_deadlines = true;
      report_power = &power;
      break;
    }
    case Algorithm::kWeightedExt: {
      const auto result = run_weighted_rejection_flow(
          instance, {.epsilon = options.epsilon, .fleet = options.fleet});
      summary.schedule = result.schedule;
      summary.rule1_rejections = result.rule1_rejections;
      summary.rule2_rejections = result.rule2_rejections;
      summary.fleet = result.fleet;
      break;
    }
    case Algorithm::kGreedySpt: {
      ListSchedulerOptions ls{DispatchRule::kMinCompletion,
                              QueueDiscipline::kSpt, options.fleet};
      summary.schedule = run_list_scheduler(instance, ls, &summary.fleet);
      break;
    }
    case Algorithm::kFifo: {
      ListSchedulerOptions ls{DispatchRule::kMinBacklog,
                              QueueDiscipline::kFifo, options.fleet};
      summary.schedule = run_list_scheduler(instance, ls, &summary.fleet);
      break;
    }
    case Algorithm::kImmediateReject: {
      const auto result = run_immediate_rejection(
          instance, {.eps = options.epsilon, .fleet = options.fleet});
      summary.schedule = result.schedule;
      summary.rule1_rejections = result.rejections;
      summary.fleet = result.fleet;
      break;
    }
  }

  if (options.validate) {
    ValidationOptions validation;
    validation.allow_parallel_execution = parallel_execution;
    validation.require_deadlines = require_deadlines;
    check_schedule(summary.schedule, instance, validation);
  }
  summary.report = evaluate(summary.schedule, instance, report_power);
  return summary;
}

std::optional<RunSummary> run_by_name(const std::string& name,
                                      const Instance& instance,
                                      const RunOptions& options) {
  const auto algorithm = parse_algorithm(name);
  if (!algorithm.has_value()) return std::nullopt;
  return run(*algorithm, instance, options);
}

}  // namespace osched::api

