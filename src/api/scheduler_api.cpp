#include "api/scheduler_api.hpp"

#include "baselines/immediate_rejection.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "sim/validator.hpp"
#include "util/check.hpp"

namespace osched::api {

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  if (name == "theorem1") return Algorithm::kTheorem1;
  if (name == "theorem2") return Algorithm::kTheorem2;
  if (name == "theorem3") return Algorithm::kTheorem3;
  if (name == "weighted-ext") return Algorithm::kWeightedExt;
  if (name == "greedy-spt") return Algorithm::kGreedySpt;
  if (name == "fifo") return Algorithm::kFifo;
  if (name == "immediate-reject") return Algorithm::kImmediateReject;
  return std::nullopt;
}

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTheorem1: return "theorem1";
    case Algorithm::kTheorem2: return "theorem2";
    case Algorithm::kTheorem3: return "theorem3";
    case Algorithm::kWeightedExt: return "weighted-ext";
    case Algorithm::kGreedySpt: return "greedy-spt";
    case Algorithm::kFifo: return "fifo";
    case Algorithm::kImmediateReject: return "immediate-reject";
  }
  return "?";
}

std::vector<std::string> algorithm_names() {
  return {"theorem1", "theorem2",   "theorem3",        "weighted-ext",
          "greedy-spt", "fifo",     "immediate-reject"};
}

RunSummary run(Algorithm algorithm, const Instance& instance,
               const RunOptions& options) {
  RunSummary summary;
  summary.algorithm = algorithm;

  // Per-algorithm validation/report knobs.
  bool parallel_execution = false;
  bool require_deadlines = false;
  const PolynomialPower power(options.alpha);
  const PowerFunction* report_power = nullptr;

  switch (algorithm) {
    case Algorithm::kTheorem1: {
      const auto result =
          run_rejection_flow(instance, {.epsilon = options.epsilon});
      summary.schedule = result.schedule;
      summary.certified_lower_bound = result.opt_lower_bound;
      summary.rule1_rejections = result.rule1_rejections;
      summary.rule2_rejections = result.rule2_rejections;
      break;
    }
    case Algorithm::kTheorem2: {
      EnergyFlowOptions ef;
      ef.epsilon = options.epsilon;
      ef.alpha = options.alpha;
      const auto result = run_energy_flow(instance, ef);
      summary.schedule = result.schedule;
      summary.rule1_rejections = result.rejections;
      report_power = &power;
      break;
    }
    case Algorithm::kTheorem3: {
      ConfigPDOptions pd;
      pd.alpha = options.alpha;
      pd.speed_levels = options.speed_levels;
      pd.start_grid = options.start_grid;
      const auto result = run_config_primal_dual(instance, pd);
      summary.schedule = result.schedule;
      summary.certified_lower_bound = result.opt_lower_bound;
      parallel_execution = true;
      require_deadlines = true;
      report_power = &power;
      break;
    }
    case Algorithm::kWeightedExt: {
      const auto result =
          run_weighted_rejection_flow(instance, {.epsilon = options.epsilon});
      summary.schedule = result.schedule;
      summary.rule1_rejections = result.rule1_rejections;
      summary.rule2_rejections = result.rule2_rejections;
      break;
    }
    case Algorithm::kGreedySpt:
      summary.schedule = run_greedy_spt(instance);
      break;
    case Algorithm::kFifo:
      summary.schedule = run_fifo(instance);
      break;
    case Algorithm::kImmediateReject: {
      const auto result =
          run_immediate_rejection(instance, {.eps = options.epsilon});
      summary.schedule = result.schedule;
      summary.rule1_rejections = result.rejections;
      break;
    }
  }

  if (options.validate) {
    ValidationOptions validation;
    validation.allow_parallel_execution = parallel_execution;
    validation.require_deadlines = require_deadlines;
    check_schedule(summary.schedule, instance, validation);
  }
  summary.report = evaluate(summary.schedule, instance, report_power);
  return summary;
}

std::optional<RunSummary> run_by_name(const std::string& name,
                                      const Instance& instance,
                                      const RunOptions& options) {
  const auto algorithm = parse_algorithm(name);
  if (!algorithm.has_value()) return std::nullopt;
  return run(*algorithm, instance, options);
}

}  // namespace osched::api

