// The library's front door: one call to run any scheduler by name.
//
// Downstream users (and the repository's own trace workbench / examples)
// should not need to know which header each algorithm lives in or which
// options struct it takes. This facade names every online policy in the
// repository, normalizes their options into one struct, runs the chosen
// policy, validates the schedule with the independent validator, and returns
// the schedule together with the recomputed objective report and whatever
// certificate the policy emits (the Theorem 1 dual lower bound, rejection
// rule counters).
//
// The facade is intentionally a thin, allocation-light veneer: everything it
// does is available directly from the per-algorithm headers for callers that
// need the full result types.
//
// run() is the batch entry point: the whole Instance up front, one call to
// quiescence. The same policies are available as incremental streaming
// sessions — submit(job)/advance(t)/drain() over chunks, bit-identical
// decisions — via service::SchedulerSession (service/scheduler_session.hpp),
// whose drain() returns this header's RunSummary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "instance/instance.hpp"
#include "metrics/metrics.hpp"
#include "sim/fleet.hpp"
#include "sim/schedule.hpp"
#include "util/simd_argmin.hpp"

namespace osched::api {

enum class Algorithm {
  kTheorem1,          ///< flow time + rejections (the paper's main result)
  kTheorem2,          ///< weighted flow + energy, speed scaling
  kTheorem3,          ///< energy with deadlines, configuration primal-dual
  kWeightedExt,       ///< weighted flow extension (no theorem; see DESIGN.md)
  kGreedySpt,         ///< no-rejection list scheduler, SPT queues
  kFifo,              ///< no-rejection list scheduler, FIFO queues
  kImmediateReject,   ///< must accept/reject at arrival (Lemma 1's subject)
};

/// Parses "theorem1", "greedy-spt", ... (the names printed by list_names()).
std::optional<Algorithm> parse_algorithm(const std::string& name);
const char* to_string(Algorithm algorithm);
/// All recognized algorithm names, for CLI help text.
std::vector<std::string> algorithm_names();

/// Union of the per-algorithm options, with shared defaults. Fields that an
/// algorithm does not use are ignored (documented per field).
struct RunOptions {
  /// Rejection parameter for kTheorem1/kTheorem2/kWeightedExt/
  /// kImmediateReject.
  double epsilon = 0.2;
  /// Power exponent for kTheorem2/kTheorem3 (P(s) = s^alpha).
  double alpha = 2.0;
  /// Speed-grid resolution for kTheorem3.
  std::size_t speed_levels = 8;
  /// Start-grid step for kTheorem3.
  Time start_grid = 1.0;
  /// Validate the schedule with the independent validator (aborts on a
  /// violation — a scheduler bug, never an input property). Deadline
  /// enforcement and the parallel-execution model are chosen per algorithm.
  bool validate = true;
  /// Dynamic fleet membership (join/drain/fail events + fault rejection
  /// budget; see sim/fleet.hpp). Supported by every online policy except
  /// kTheorem3 (offline-configured deadline LP — run() aborts if a plan is
  /// given). With a non-empty plan certified_lower_bound is diagnostic only.
  FleetPlan fleet = {};
};

struct RunSummary {
  Algorithm algorithm = Algorithm::kTheorem1;
  Schedule schedule;
  /// Objectives recomputed from the schedule record (never the scheduler's
  /// own accounting). Energy is filled for the speed-scaling algorithms.
  ObjectiveReport report;
  /// Certified lower bound on OPT emitted by the policy's own dual fitting
  /// (kTheorem1 and kTheorem3 only; 0 otherwise). For kTheorem1 this bounds
  /// the optimal total flow time; for kTheorem3 the optimal energy within
  /// the discretized strategy space.
  double certified_lower_bound = 0.0;
  /// Rejection-rule counters where applicable.
  std::size_t rule1_rejections = 0;
  std::size_t rule2_rejections = 0;
  /// Fleet-membership counters (all zero for an empty RunOptions::fleet).
  FleetStats fleet;
  /// Whether the instance carried the (p, id) dispatch order table, i.e.
  /// dispatch ran the indexed idle-machine walk. False means the O(m)
  /// shadow-row scan was in effect — by design for generator instances and
  /// for streamed sessions, whose stores keep no order table. Here so a
  /// dispatch perf cliff is attributable from a result file alone.
  bool dispatch_index_active = false;
  /// Machine-id width of the order table in bits: 16 (m < 65536), 32
  /// (m >= 65536, the huge-m tier), 0 when no table exists (generator
  /// instances, streamed sessions). The "order16"/"order32" half of the
  /// dispatch tier; perf baselines record it so a number produced by one
  /// code path is never compared against another path unknowingly.
  int dispatch_order_width = 0;
  /// SIMD tier the dispatch kernels ran at (util::active_simd_tier():
  /// scalar / avx2 / avx512 — cpuid-dispatched, cappable via OSCHED_SIMD).
  /// All tiers are bit-identical by contract; the field is informational
  /// attribution, not a determinism input.
  util::SimdTier dispatch_simd_tier = util::SimdTier::kScalar;
};

/// Runs `algorithm` on `instance`. Aborts (OSCHED_CHECK) on structurally
/// invalid instances; deadline algorithms require every job to carry a
/// deadline, flow algorithms ignore deadlines.
RunSummary run(Algorithm algorithm, const Instance& instance,
               const RunOptions& options = {});

/// String-keyed convenience for CLIs and the scenario harness: runs the
/// algorithm named `name` (see algorithm_names()), or returns nullopt for
/// an unrecognized name.
std::optional<RunSummary> run_by_name(const std::string& name,
                                      const Instance& instance,
                                      const RunOptions& options = {});

}  // namespace osched::api
