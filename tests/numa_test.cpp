// NUMA topology detection and worker-placement invariance.
//
// Placement is an optimization, never a decision input: a ShardDriver
// under NumaPolicy::kInterleave must produce byte-identical session
// outcomes to kNone (and to inline mode) on ANY host — multi-node,
// single-node, or a container with masked sysfs. The cpulist parser is
// unit-tested against the kernel's format directly so topology code is
// exercised even on hosts where /sys has exactly one node.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/shard_driver.hpp"
#include "sim/schedule_io.hpp"
#include "util/numa.hpp"

namespace osched {
namespace {

TEST(Numa, ParseCpulistHandlesTheKernelFormat) {
  using util::parse_cpulist;
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("0-3,8,10-11\n"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpulist(" 2 , 0 "), (std::vector<int>{0, 2}));
  EXPECT_EQ(parse_cpulist(""), (std::vector<int>{}));
  EXPECT_EQ(parse_cpulist("\n"), (std::vector<int>{}));
  // Duplicates collapse; malformed chunks are skipped, the rest survives.
  EXPECT_EQ(parse_cpulist("1,1,1-2"), (std::vector<int>{1, 2}));
  EXPECT_EQ(parse_cpulist("x,3,4-x,5"), (std::vector<int>{3, 5}));
  EXPECT_EQ(parse_cpulist("7-4,9"), (std::vector<int>{9}));
}

TEST(Numa, TopologyIsSaneOnEveryHost) {
  const util::NumaTopology& topology = util::numa_topology();
  ASSERT_GE(topology.num_nodes(), 1u);
  for (const auto& cpus : topology.node_cpus) {
    EXPECT_FALSE(cpus.empty());
    for (std::size_t k = 1; k < cpus.size(); ++k) {
      EXPECT_LT(cpus[k - 1], cpus[k]);  // ascending, unique
    }
  }
  // Pinning to a node that exists either succeeds or reports failure
  // without side effects; out-of-range always reports failure.
  EXPECT_FALSE(util::pin_current_thread_to_node(topology.num_nodes()));
}

StreamJob stream_job(std::uint64_t k, std::size_t m) {
  StreamJob job;
  job.release = 0.25 * static_cast<double>(k);
  job.processing.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    job.processing[i] = 1.0 + static_cast<double>((3 * k + i) % 7);
  }
  return job;
}

TEST(Numa, InterleavePolicyIsPlacementOnly) {
  // Same workload through kNone and kInterleave drivers (with explicit
  // worker counts so BOTH modes — inline on small hosts, threaded
  // elsewhere — are exercised somewhere): every shard's drained summary
  // must match field for field. On this host kInterleave may be a no-op
  // (single node); the contract is exactly that callers cannot tell.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kMachines = 3;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    service::ShardDriverOptions base;
    base.threads = threads;
    service::ShardDriverOptions numa = base;
    numa.numa_policy = service::NumaPolicy::kInterleave;

    std::vector<api::RunSummary> results[2];
    int variant = 0;
    for (const auto* options : {&base, &numa}) {
      service::ShardDriver driver(api::Algorithm::kTheorem1, kShards,
                                  kMachines, *options);
      for (std::uint64_t k = 0; k < 40; ++k) {
        driver.submit(driver.shard_for(k), stream_job(k, kMachines));
        if (k % 8 == 7) driver.pump();
      }
      results[variant++] = driver.drain_all();
    }
    ASSERT_EQ(results[0].size(), results[1].size());
    for (std::size_t s = 0; s < kShards; ++s) {
      const std::string context =
          "threads=" + std::to_string(threads) + " shard=" + std::to_string(s);
      EXPECT_EQ(results[0][s].report.num_completed,
                results[1][s].report.num_completed) << context;
      EXPECT_EQ(results[0][s].report.total_flow,
                results[1][s].report.total_flow) << context;
      ScheduleDiffOptions strict;
      strict.time_tolerance = 0.0;
      const auto diffs = diff_schedules(results[0][s].schedule,
                                        results[1][s].schedule, strict);
      EXPECT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                                 << " diffs";
    }
  }
}

TEST(Numa, PinnedWorkerCountIsBounded) {
  service::ShardDriverOptions options;
  options.threads = 2;
  options.numa_policy = service::NumaPolicy::kInterleave;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 4, 2, options);
  // Give workers a chance to run their startup pin (any pump suffices —
  // sync() returns only after every worker processed its batches).
  driver.submit(0, stream_job(0, 2));
  driver.pump();
  EXPECT_LE(driver.pinned_workers(), driver.worker_count());
  if (!util::numa_topology().multi_node()) {
    EXPECT_EQ(driver.pinned_workers(), 0u) << "single-node hosts never pin";
  }
  (void)driver.drain_all();
}

}  // namespace
}  // namespace osched
