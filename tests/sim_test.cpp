// Tests for the simulation substrate: event queue, engine ordering,
// schedule record, objectives, energy integration and the independent
// validator.
#include <gtest/gtest.h>

#include <vector>

#include "instance/builders.hpp"
#include "instance/power.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/schedule.hpp"
#include "sim/validator.hpp"

namespace osched {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule(5.0, 0, 1);
  queue.schedule(1.0, 0, 2);
  queue.schedule(3.0, 1, 3);
  EXPECT_EQ(queue.pop().job, 2);
  EXPECT_EQ(queue.pop().job, 3);
  EXPECT_EQ(queue.pop().job, 1);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue;
  queue.schedule(2.0, 0, 10);
  queue.schedule(2.0, 0, 11);
  EXPECT_EQ(queue.pop().job, 10);
  EXPECT_EQ(queue.pop().job, 11);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue queue;
  const auto id1 = queue.schedule(1.0, 0, 1);
  queue.schedule(2.0, 0, 2);
  queue.cancel(id1);
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.pop().job, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, GenerationReuseNoStaleFire) {
  // Cancel, then re-schedule: the new event reuses the cancelled event's
  // slot, and the stale heap entry (same slot, older generation) must not
  // fire or shadow the replacement.
  EventQueue queue;
  const auto id1 = queue.schedule(1.0, 0, 1);
  queue.cancel(id1);
  const auto id2 = queue.schedule(2.0, 0, 2);  // reuses the slot
  EXPECT_NE(id1, id2);
  ASSERT_TRUE(queue.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.peek_time(), 2.0);
  EXPECT_EQ(queue.pop().job, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DeepSlotRecyclingStaysLive) {
  // Many cancel/re-schedule rounds through the same slot: every generation
  // must stay distinguishable from its predecessors.
  EventQueue queue;
  std::uint64_t handle = queue.schedule(1.0, 0, 0);
  for (int round = 1; round <= 100; ++round) {
    queue.cancel(handle);
    handle = queue.schedule(1.0 + round, 0, round);
  }
  const SimEvent fired = queue.pop();
  EXPECT_EQ(fired.job, 100);
  EXPECT_DOUBLE_EQ(fired.time, 101.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, InterleavedCancelKeepsScheduleOrder) {
  EventQueue queue;
  const auto a = queue.schedule(5.0, 0, 1);
  queue.schedule(5.0, 0, 2);
  const auto c = queue.schedule(5.0, 0, 3);
  queue.schedule(5.0, 0, 4);  // reuse era: no cancels yet
  queue.cancel(a);
  queue.cancel(c);
  queue.schedule(5.0, 0, 5);  // reuses a slot; still fires last (newest seq)
  EXPECT_EQ(queue.pop().job, 2);
  EXPECT_EQ(queue.pop().job, 4);
  EXPECT_EQ(queue.pop().job, 5);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue queue;
  const auto id1 = queue.schedule(1.0, 0, 1);
  queue.schedule(4.0, 0, 2);
  queue.cancel(id1);
  ASSERT_TRUE(queue.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.peek_time(), 4.0);
}

// ---------------------------------------------------------------- Engine

class RecordingHooks : public SimulationHooks {
 public:
  explicit RecordingHooks(SimEngine& engine) : engine_(engine) {}

  void on_arrival(JobId job, Time now) override {
    log.push_back({'A', job, now});
    if (schedule_on_arrival_.count(job) > 0) {
      engine_.events().schedule(schedule_on_arrival_[job], 0, job);
    }
  }
  void on_event(const SimEvent& event, Time now) override {
    log.push_back({'E', event.job, now});
  }

  void schedule_completion_at(JobId job, Time t) { schedule_on_arrival_[job] = t; }

  struct Entry {
    char kind;
    JobId job;
    Time time;
  };
  std::vector<Entry> log;

 private:
  SimEngine& engine_;
  std::map<JobId, Time> schedule_on_arrival_;
};

TEST(SimEngine, DeliversArrivalsInReleaseOrder) {
  const Instance instance =
      single_machine_instance({{3.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}});
  SimEngine engine(instance);
  RecordingHooks hooks(engine);
  engine.run(hooks);
  ASSERT_EQ(hooks.log.size(), 3u);
  EXPECT_DOUBLE_EQ(hooks.log[0].time, 1.0);
  EXPECT_DOUBLE_EQ(hooks.log[2].time, 3.0);
}

TEST(SimEngine, EventBeforeArrivalAtSameTime) {
  // Job 0 released at 0 schedules a completion at exactly job 1's release.
  const Instance instance = single_machine_instance({{0.0, 1.0}, {5.0, 1.0}});
  SimEngine engine(instance);
  RecordingHooks hooks(engine);
  hooks.schedule_completion_at(0, 5.0);
  engine.run(hooks);
  ASSERT_EQ(hooks.log.size(), 3u);
  EXPECT_EQ(hooks.log[0].kind, 'A');
  EXPECT_EQ(hooks.log[1].kind, 'E');  // completion fires before the arrival
  EXPECT_EQ(hooks.log[2].kind, 'A');
  EXPECT_DOUBLE_EQ(hooks.log[1].time, 5.0);
  EXPECT_DOUBLE_EQ(hooks.log[2].time, 5.0);
}

// ---------------------------------------------------------------- Schedule

TEST(Schedule, LifecycleAndFlow) {
  const Instance instance = single_machine_instance({{0.0, 4.0}, {1.0, 2.0}});
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 4.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 4.0, 1.0);
  schedule.mark_completed(1, 6.0);

  EXPECT_DOUBLE_EQ(schedule.flow_time(0, instance), 4.0);
  EXPECT_DOUBLE_EQ(schedule.flow_time(1, instance), 5.0);
  EXPECT_DOUBLE_EQ(schedule.total_flow(instance), 9.0);
  EXPECT_DOUBLE_EQ(schedule.max_flow(instance), 5.0);
  EXPECT_DOUBLE_EQ(schedule.makespan(), 6.0);
  EXPECT_EQ(schedule.num_completed(), 2u);
  EXPECT_EQ(schedule.num_rejected(), 0u);
}

TEST(Schedule, RejectedFlowCountsUntilRejection) {
  const Instance instance = single_machine_instance({{0.0, 4.0}, {1.0, 2.0}});
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_rejected_running(0, 3.0);  // interrupted at 3
  schedule.mark_dispatched(1, 0);
  schedule.mark_rejected_pending(1, 2.5);

  EXPECT_DOUBLE_EQ(schedule.flow_time(0, instance), 3.0);
  EXPECT_DOUBLE_EQ(schedule.flow_time(1, instance), 1.5);
  EXPECT_DOUBLE_EQ(schedule.total_flow(instance, true), 4.5);
  EXPECT_DOUBLE_EQ(schedule.total_flow(instance, false), 0.0);
  EXPECT_EQ(schedule.num_rejected(), 2u);
}

TEST(Schedule, WeightedFlowUsesWeights) {
  const Instance instance =
      single_machine_weighted_instance({{0.0, 2.0, 3.0}, {0.0, 2.0, 1.0}});
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 2.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 2.0, 1.0);
  schedule.mark_completed(1, 4.0);
  EXPECT_DOUBLE_EQ(schedule.total_weighted_flow(instance), 3.0 * 2.0 + 1.0 * 4.0);
  EXPECT_DOUBLE_EQ(schedule.rejected_weight(instance), 0.0);
}

// ---------------------------------------------------------------- Energy

TEST(Energy, SingleJobConstantSpeed) {
  const Instance instance = single_machine_instance({{0.0, 6.0}});
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 2.0);   // speed 2 => duration 3
  schedule.mark_completed(0, 3.0);
  PolynomialPower power(2.0);
  // Energy = s^2 * duration = 4 * 3.
  EXPECT_NEAR(compute_energy(schedule, instance, power), 12.0, 1e-9);
}

TEST(Energy, ParallelExecutionAddsSpeeds) {
  // Two jobs overlap on one machine for t in [1,2): profile 1 then 2 then 1.
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 2.0);  // speed 1, [0,2)
  builder.add_identical_job(0.0, 1.0);  // speed 1, [1,2)
  const Instance instance = builder.build();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 2.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 1.0, 1.0);
  schedule.mark_completed(1, 2.0);
  PolynomialPower power(2.0);
  // [0,1): 1^2; [1,2): 2^2 => 1 + 4 = 5. NOT 1+1+1 = 3 (superlinear power).
  EXPECT_NEAR(compute_energy(schedule, instance, power), 5.0, 1e-9);
}

TEST(Energy, InterruptedJobStillConsumedEnergy) {
  const Instance instance = single_machine_instance({{0.0, 10.0}});
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 2.0);
  schedule.mark_rejected_running(0, 1.5);
  PolynomialPower power(3.0);
  EXPECT_NEAR(compute_energy(schedule, instance, power), 8.0 * 1.5, 1e-9);
}

TEST(Energy, PerMachinePowerFunctions) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {1.0, 1.0});
  builder.add_job(0.0, {1.0, 1.0});
  const Instance instance = builder.build();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 1.0);
  schedule.mark_dispatched(1, 1);
  schedule.mark_started(1, 0.0, 1.0);
  schedule.mark_completed(1, 1.0);
  PolynomialPower p2(2.0), p3(3.0, 5.0);
  const std::vector<const PowerFunction*> powers{&p2, &p3};
  EXPECT_NEAR(compute_energy(schedule, instance, powers), 1.0 + 5.0, 1e-9);
}

// ---------------------------------------------------------------- Validator

Instance two_job_instance() {
  return single_machine_instance({{0.0, 3.0}, {1.0, 2.0}});
}

TEST(Validator, AcceptsFeasibleSchedule) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 3.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 3.0, 1.0);
  schedule.mark_completed(1, 5.0);
  EXPECT_TRUE(validate_schedule(schedule, instance).empty());
}

TEST(Validator, CatchesOverlap) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 3.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 2.0, 1.0);  // overlaps job 0
  schedule.mark_completed(1, 4.0);
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("overlap"), std::string::npos);
}

TEST(Validator, AllowsOverlapInParallelModel) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 3.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 2.0, 1.0);
  schedule.mark_completed(1, 4.0);
  ValidationOptions options;
  options.allow_parallel_execution = true;
  EXPECT_TRUE(validate_schedule(schedule, instance, options).empty());
}

TEST(Validator, CatchesStartBeforeRelease) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 0.5, 1.0);  // release is 1.0
  schedule.mark_completed(1, 2.5);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 2.5, 1.0);
  schedule.mark_completed(0, 5.5);
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("before release"), std::string::npos);
}

TEST(Validator, CatchesDurationMismatch) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 2.0);  // needs 3.0
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 2.0, 1.0);
  schedule.mark_completed(1, 4.0);
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("duration mismatch"), std::string::npos);
}

TEST(Validator, CatchesMissedDeadline) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 2.0, 1.0, /*deadline=*/3.0);
  const Instance instance = builder.build();
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 2.0, 1.0);
  schedule.mark_completed(0, 4.0);  // deadline 3
  ValidationOptions options;
  options.require_deadlines = true;
  const auto violations = validate_schedule(schedule, instance, options);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("deadline"), std::string::npos);
}

TEST(Validator, CatchesUndecidedJobs) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 3.0);
  // Job 1 left pending.
  schedule.mark_dispatched(1, 0);
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("undecided"), std::string::npos);
}

TEST(Validator, CatchesIneligibleAssignment) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {kTimeInfinity, 2.0});
  const Instance instance = builder.build();
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);  // machine 0 is ineligible
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 2.0);
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("ineligible"), std::string::npos);
}

TEST(Validator, RejectedRunningOverrunCaught) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_rejected_running(0, 5.0);  // ran 5 > p=3: should have finished
  schedule.mark_dispatched(1, 0);
  schedule.mark_rejected_pending(1, 5.0);
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("longer than its processing"), std::string::npos);
}

TEST(Validator, AcceptsRejectionAtArrivalWithoutDispatch) {
  // Immediate-rejection policies reject before choosing a machine: the
  // record carries no machine, which is legal for kRejectedPending only.
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.mark_rejected_pending(0, instance.job(0).release);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, instance.job(1).release, 1.0);
  schedule.mark_completed(1, instance.job(1).release +
                                 instance.processing(0, 1));
  EXPECT_TRUE(validate_schedule(schedule, instance).empty());
}

TEST(Validator, UndispatchedRejectionBeforeReleaseCaught) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  // Rejected before it was even released: impossible for an online policy.
  schedule.mark_rejected_pending(0, instance.job(0).release - 1.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, instance.job(1).release, 1.0);
  schedule.mark_completed(1, instance.job(1).release +
                                 instance.processing(0, 1));
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("rejected before release"), std::string::npos);
}

TEST(Validator, CompletedJobStillRequiresAMachine) {
  // The no-machine exemption is ONLY for rejected-pending records; a
  // "completed" job with no machine is still a violation.
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.record(0).fate = JobFate::kCompleted;
  schedule.record(0).started = true;
  schedule.record(0).end = 3.0;
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, instance.job(1).release, 1.0);
  schedule.mark_completed(1, instance.job(1).release +
                                 instance.processing(0, 1));
  const auto violations = validate_schedule(schedule, instance);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("invalid machine"), std::string::npos);
}

}  // namespace
}  // namespace osched
