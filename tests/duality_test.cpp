// Tests for the duality module: the LP primal identity, the Lemma 4 /
// Lemma 6 / Lemma 7 feasibility checkers (which must pass on the paper's
// algorithms and FAIL on corrupted duals), and the smoothness probe.
#include <gtest/gtest.h>

#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "duality/config_dual_check.hpp"
#include "duality/energy_flow_dual_check.hpp"
#include "duality/flow_dual_check.hpp"
#include "duality/flow_lp.hpp"
#include "duality/smoothness.hpp"
#include "instance/builders.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

// ---------------------------------------------------------------- primal LP

TEST(FlowLp, PrimalEqualsFlowPlusHalfProcessing) {
  const Instance instance = single_machine_instance({{0.0, 4.0}, {1.0, 2.0}});
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 4.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 4.0, 1.0);
  schedule.mark_completed(1, 6.0);
  // flows: 4 and 5; primal = (4 + 2) + (5 + 1) = 12.
  EXPECT_NEAR(flow_lp_primal_value(schedule, instance), 12.0, 1e-12);
  const double flow = schedule.total_flow(instance);
  EXPECT_LE(flow, flow_lp_primal_value(schedule, instance));
  EXPECT_LE(flow_lp_primal_value(schedule, instance), 2.0 * flow);
}

// ---------------------------------------------------------------- Lemma 4

Instance flow_instance(std::uint64_t seed, std::size_t n, std::size_t m,
                       double load) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.load = load;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  return workload::generate_workload(config);
}

class Lemma4Test : public ::testing::TestWithParam<double> {};

TEST_P(Lemma4Test, DualFeasibleOnRandomInstances) {
  const double eps = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance instance = flow_instance(seed * 100, 150, 3, 1.3);
    const auto result = run_rejection_flow(instance, {.epsilon = eps});
    const auto report = check_flow_dual_feasibility(instance, result, eps);
    EXPECT_GT(report.constraints_checked, 0u);
    EXPECT_TRUE(report.feasible())
        << "eps=" << eps << " seed=" << seed
        << " max violation=" << report.max_violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, Lemma4Test, ::testing::Values(0.1, 0.3, 0.6),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "eps" + std::to_string(int(i.param * 100));
                         });

TEST(Lemma4, DetectsCorruptedDual) {
  const Instance instance = flow_instance(7, 100, 2, 1.2);
  auto result = run_rejection_flow(instance, {.epsilon = 0.3});
  // Inflate one lambda: the constraint at t = r_j must now break.
  result.lambda[10] *= 50.0;
  const auto report = check_flow_dual_feasibility(instance, result, 0.3);
  EXPECT_FALSE(report.feasible());
  EXPECT_GT(report.max_violation, 0.1);
}

TEST(Lemma4, CorruptedResidenceDetected) {
  const Instance instance = flow_instance(9, 100, 2, 1.2);
  auto result = run_rejection_flow(instance, {.epsilon = 0.3});
  // Shrinking a definitive-finish time removes beta mass: may or may not
  // break feasibility, but inflating lambda along with truncating residence
  // definitely must.
  for (auto& lambda : result.lambda) lambda *= 10.0;
  for (auto& c : result.definitive_finish) c = 0.0;
  const auto report = check_flow_dual_feasibility(instance, result, 0.3);
  EXPECT_FALSE(report.feasible());
}

// ---------------------------------------------------------------- Lemma 6

Instance weighted_instance(std::uint64_t seed, std::size_t n, std::size_t m) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.load = 1.0;
  config.weights = workload::WeightDistribution::kUniform;
  config.seed = seed;
  return workload::generate_workload(config);
}

class Lemma6Test : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Lemma6Test, DualFeasibleOnRandomInstances) {
  const auto [eps, alpha] = GetParam();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const Instance instance = weighted_instance(seed * 10 + 1, 120, 2);
    EnergyFlowOptions options;
    options.epsilon = eps;
    options.alpha = alpha;
    const auto result = run_energy_flow(instance, options);
    const auto report =
        check_energy_flow_dual_feasibility(instance, result, options);
    EXPECT_GT(report.constraints_checked, 0u);
    EXPECT_TRUE(report.feasible(1e-6))
        << "eps=" << eps << " alpha=" << alpha << " seed=" << seed
        << " max violation=" << report.max_violation;
  }
}

std::string Lemma6Name(
    const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
  return "eps" + std::to_string(int(std::get<0>(info.param) * 100)) + "_a" +
         std::to_string(int(std::get<1>(info.param) * 10));
}

INSTANTIATE_TEST_SUITE_P(EpsAlpha, Lemma6Test,
                         ::testing::Combine(::testing::Values(0.3, 0.6),
                                            ::testing::Values(2.0, 3.0)),
                         Lemma6Name);

TEST(Lemma6, DetectsCorruptedDual) {
  const Instance instance = weighted_instance(77, 80, 2);
  EnergyFlowOptions options;
  options.epsilon = 0.4;
  options.alpha = 2.0;
  auto result = run_energy_flow(instance, options);
  for (auto& lambda : result.lambda) lambda *= 100.0;
  const auto report =
      check_energy_flow_dual_feasibility(instance, result, options);
  EXPECT_FALSE(report.feasible());
}

// ---------------------------------------------------------------- Lemma 7

Instance deadline_workload(std::uint64_t seed, std::size_t n, std::size_t m) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.with_deadlines = true;
  config.slack_min = 1.5;
  config.slack_max = 4.0;
  config.seed = seed;
  return workload::generate_workload(config);
}

class Lemma7Test : public ::testing::TestWithParam<double> {};

TEST_P(Lemma7Test, ConfigDualFeasible) {
  const double alpha = GetParam();
  const Instance instance = deadline_workload(5, 25, 2);
  ConfigPDOptions options;
  options.alpha = alpha;
  options.speed_levels = 5;
  const auto report = check_config_dual_feasibility(instance, options, 48, 99);
  EXPECT_GT(report.strategies_checked, 0u);
  EXPECT_GT(report.configs_checked, 0u);
  EXPECT_TRUE(report.feasible(1e-6))
      << "alpha=" << alpha << " delta viol=" << report.max_delta_violation
      << " config viol=" << report.max_config_violation;
}

INSTANTIATE_TEST_SUITE_P(Alphas, Lemma7Test, ::testing::Values(1.5, 2.0, 3.0),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "alpha" + std::to_string(int(i.param * 10));
                         });

// ---------------------------------------------------------------- smoothness

class SmoothnessTest : public ::testing::TestWithParam<double> {};

TEST_P(SmoothnessTest, PolynomialPowersAreLambdaMuSmooth) {
  const double alpha = GetParam();
  const auto probe = probe_polynomial_smoothness(alpha, 3000, 12, 2024);
  EXPECT_EQ(probe.trials, 3000u);
  EXPECT_DOUBLE_EQ(probe.mu, (alpha - 1.0) / alpha);
  // The smooth inequality of [18] holds with lambda = Theta(alpha^{alpha-1});
  // the probe must not require more than a small constant times that.
  EXPECT_LE(probe.required_lambda, 3.0 * probe.claimed_lambda)
      << "alpha=" << alpha << " required=" << probe.required_lambda;
  EXPECT_GT(probe.required_lambda, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, SmoothnessTest,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "alpha" + std::to_string(int(i.param * 10));
                         });

TEST(Smoothness, LhsHandComputed) {
  // a = {1, 1}, b = {1, 2}, alpha = 2:
  // (1+1)^2 - 1 + (2+2)^2 - 4 = 3 + 12 = 15.
  EXPECT_NEAR(smooth_inequality_lhs({1.0, 1.0}, {1.0, 2.0}, 2.0), 15.0, 1e-12);
}

TEST(Smoothness, MuAloneInsufficientWithoutLambda) {
  // With b > 0 the lambda term is genuinely needed: required_lambda > 0
  // already asserted; sanity that the inequality is tight-ish for alpha=2
  // (known lambda for alpha=2 can be computed: (b+A)^2-A^2 = b^2+2bA; sum
  // <= (sum b)^2 + 2 (sum b)(sum a) <= (1+1/c)(sum b)^2 + c... so required
  // lambda is at least 1).
  const auto probe = probe_polynomial_smoothness(2.0, 3000, 12, 7);
  EXPECT_GE(probe.required_lambda, 1.0);
}

}  // namespace
}  // namespace osched
