// Adaptive overload wall (PR 9): ε-charged shedding, cap auto-tuning and
// fair multi-tenant backpressure.
//
// Four layers of guarantees on top of tests/overload_test.cpp's PR 7 wall:
//  * budgets — the fixed rule's allowance arithmetic is exact at the
//    boundary (deficit == remaining sheds, deficit == remaining + 1
//    backpressures, including multi-shed deficits after an adaptive cap
//    drop), and make_room stays all-or-nothing: a refused submit sheds
//    nothing;
//  * ε-charging — kEpsilonCharged derives the shed budget from the paper's
//    rejection allowance floor(2·ε·n) shared with the policy's own Rule 1/2
//    rejections, evicts the globally largest queued processing time (Rule
//    2's victim, not the fixed rule's lowest-weight one), and the drained
//    schedule still validates — the sheds are booked as paper rejections;
//  * determinism — adaptive cap moves and ε-charged sheds are pure
//    functions of the accepted arrivals: per-job and chunked feeds agree,
//    checkpoint cuts restore to the uninterrupted run, wire v4 round-trips
//    the new configuration while v3 blobs restore under neutral defaults
//    and forged v4 fields come back as diagnostics;
//  * fairness — the shard driver's deficit-round-robin admission bounds a
//    hot tenant to 2×quantum staged ops per flush round, never starves a
//    cold sibling, and the whole try_* surface (StageOutcome) stays
//    thread-count invariant under inflight saturation and fleet chaos.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "fuzz_seed.hpp"
#include "service/checkpoint.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("adaptive_overload_test", 9);
}

const api::Algorithm kStreamable[] = {
    api::Algorithm::kTheorem1,    api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,        api::Algorithm::kImmediateReject,
};

StreamJob stream_job(Time release, Weight weight, std::vector<Work> p) {
  StreamJob job;
  job.release = release;
  job.weight = weight;
  job.processing = std::move(p);
  return job;
}

Instance make_workload(std::uint64_t seed, std::size_t n, std::size_t m) {
  workload::ClosedFormConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.5;  // heavy: the live window actually fills
  return workload::make_closed_form_instance(config, StorageBackend::kDense);
}

void expect_identical(const api::RunSummary& expected,
                      const api::RunSummary& actual,
                      const std::string& context) {
  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  const auto diffs = diff_schedules(expected.schedule, actual.schedule, strict);
  EXPECT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                             << " schedule diffs; first: " << diffs.front();
  EXPECT_EQ(expected.report.num_completed, actual.report.num_completed)
      << context;
  EXPECT_EQ(expected.report.num_rejected, actual.report.num_rejected)
      << context;
  EXPECT_EQ(expected.report.total_flow, actual.report.total_flow) << context;
  EXPECT_EQ(expected.report.total_weighted_flow,
            actual.report.total_weighted_flow)
      << context;
}

// ---------------------------------------------------------------------------
// Budget arithmetic at the boundary (satellite: the hardened
// shed_budget - sheds_spent subtraction).

TEST(AdaptiveOverload, FixedAllowanceIsExactAtTheBoundary) {
  // Cap 3, budget 1: the first over-cap arrival has deficit 1 == remaining
  // 1 and sheds; the second has deficit 1 == remaining + 1 and bounces.
  service::SessionOptions options;
  options.live_window_cap = 3;
  options.shed_budget = 1;
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 1, options);
  EXPECT_EQ(session.shed_allowance(), 1u);
  EXPECT_EQ(session.current_window_cap(), 3u);

  session.submit(stream_job(0.0, 1.0, {100.0}));  // running
  session.submit(stream_job(0.0, 1.0, {100.0}));
  session.submit(stream_job(0.0, 1.0, {100.0}));
  EXPECT_EQ(session.try_submit(stream_job(1.0, 1.0, {100.0})),
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 1u);
  EXPECT_EQ(session.shed_allowance(), 0u);
  EXPECT_EQ(session.try_submit(stream_job(2.0, 1.0, {100.0})),
            service::SubmitOutcome::kBackpressure);
  EXPECT_EQ(session.num_shed(), 1u);
  EXPECT_EQ(session.num_backpressured(), 1u);
}

// Shared scenario for the two adaptive-drop tests: one machine, p = 100
// everywhere, adaptive cap in [2, 6] over a 1.0 virtual-time window with
// sizing target 1.2. A t≈0 burst climbs the cap to 6 and fills the window;
// the lull before t = 10 then collapses the cap to 2, stranding live jobs
// above it — the only way a deficit can exceed 1.
service::SessionOptions adaptive_drop_options(std::size_t shed_budget) {
  service::SessionOptions options;
  options.live_window_cap = 6;
  options.shed_budget = shed_budget;
  options.adaptive_cap.enabled = true;
  options.adaptive_cap.min_cap = 2;
  options.adaptive_cap.max_cap = 6;
  options.adaptive_cap.window = 1.0;
  options.adaptive_cap.target_delay = 1.2;
  options.adaptive_cap.hysteresis = 0;
  return options;
}

TEST(AdaptiveOverload, CapTracksTheRateAndADropCanForceAMultiShed) {
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 1,
                                    adaptive_drop_options(6));
  // The burst: each accepted arrival raises the observed rate by one, and
  // with hysteresis 0 the cap follows ceil(rate * 1.2) exactly.
  session.submit(stream_job(0.00, 1.0, {100.0}));  // j0: rate 1 -> cap 2
  EXPECT_EQ(session.current_window_cap(), 2u);
  session.submit(stream_job(0.01, 1.0, {100.0}));  // j1: rate 2 -> cap 3
  session.submit(stream_job(0.02, 1.0, {100.0}));  // j2: rate 3 -> cap 4
  session.submit(stream_job(0.03, 1.0, {100.0}));  // j3: rate 4 -> cap 5
  session.submit(stream_job(0.04, 1.0, {100.0}));  // j4: rate 5 -> cap 6
  session.submit(stream_job(0.05, 1.0, {100.0}));  // j5: desired 8, clamp 6
  EXPECT_EQ(session.current_window_cap(), 6u);
  EXPECT_EQ(session.live_jobs(), 6u);

  // The lull: j6 is admitted against the OLD cap (deficit 1, shedding the
  // fixed rule's victim — largest id j5), and only then re-tunes the cap
  // down to 2: its window (9, 10] holds just itself.
  EXPECT_EQ(session.try_submit(stream_job(10.0, 1.0, {100.0})),
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 1u);
  EXPECT_EQ(session.current_window_cap(), 2u);
  EXPECT_EQ(session.live_jobs(), 6u);

  // j7 faces 6 live jobs above cap 2: deficit 5 == the remaining budget
  // (6 - 1), so all five pending jobs are shed in one admission.
  EXPECT_EQ(session.try_submit(stream_job(10.5, 1.0, {100.0})),
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 6u);
  EXPECT_EQ(session.shed_allowance(), 0u);
  EXPECT_EQ(session.live_jobs(), 2u);

  const api::RunSummary summary = session.drain();
  EXPECT_EQ(summary.report.num_completed, 2u);  // j0 and j7
  EXPECT_EQ(summary.report.num_rejected, 6u);
  EXPECT_EQ(summary.schedule.record(5).fate, JobFate::kRejectedPending);
  EXPECT_EQ(summary.schedule.record(5).rejection_time, 10.0);
}

TEST(AdaptiveOverload, MultiShedDeficitIsAllOrNothing) {
  // Same drop, budget 5: j7's deficit 5 exceeds the remaining 4 by exactly
  // one, so the submit is refused and NOT ONE of the five candidate sheds
  // fires — a refused submit must leave no trace, or checkpoint replay
  // could not reproduce the shed sequence.
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 1,
                                    adaptive_drop_options(5));
  for (std::size_t k = 0; k < 6; ++k) {
    session.submit(stream_job(0.01 * static_cast<Time>(k), 1.0, {100.0}));
  }
  ASSERT_EQ(session.try_submit(stream_job(10.0, 1.0, {100.0})),
            service::SubmitOutcome::kAccepted);
  ASSERT_EQ(session.num_shed(), 1u);

  EXPECT_EQ(session.try_submit(stream_job(10.5, 1.0, {100.0})),
            service::SubmitOutcome::kBackpressure);
  EXPECT_EQ(session.num_shed(), 1u);  // no partial shed
  EXPECT_EQ(session.live_jobs(), 6u);
  EXPECT_EQ(session.num_backpressured(), 1u);

  const api::RunSummary summary = session.drain();
  EXPECT_EQ(summary.report.num_completed, 6u);
  EXPECT_EQ(summary.report.num_rejected, 1u);
}

// ---------------------------------------------------------------------------
// ε-charged shedding.

TEST(AdaptiveOverload, EpsilonChargedBudgetAndVictimFollowThePaper) {
  // Theorem 1 at ε = 0.2, one machine, cap 3. The allowance for the k-th
  // arrival is floor(2·0.2·k): arrivals 4 and 5 may each charge one shed,
  // arrival 6 finds the allowance spent. The victim is Rule 2's — the
  // globally largest queued p — NOT the fixed rule's lowest weight, which
  // the weights below are rigged to distinguish. Five dispatches keep the
  // policy's own Rule 1 (threshold 5) and Rule 2 (threshold 6) silent, so
  // every charged rejection in this feed is a shed.
  service::SessionOptions charged;
  charged.run.epsilon = 0.2;
  charged.live_window_cap = 3;
  charged.shed_policy = service::ShedPolicy::kEpsilonCharged;
  charged.shed_budget = 0;  // ignored in this mode
  service::SchedulerSession session(api::Algorithm::kTheorem1, 1, charged);

  session.submit(stream_job(0.0, 1.0, {10.0}));  // j0: running
  session.submit(stream_job(0.0, 0.2, {2.0}));   // j1: lightest weight
  session.submit(stream_job(0.0, 5.0, {4.0}));   // j2: largest pending p
  EXPECT_EQ(session.try_submit(stream_job(1.0, 9.0, {1.0})),  // j3
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 1u);       // victim: j2 (p = 4)
  EXPECT_EQ(session.shed_allowance(), 1u); // floor(0.4 * 5) - 1
  EXPECT_EQ(session.try_submit(stream_job(2.0, 9.0, {1.0})),  // j4
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 2u);       // victim: j1 (p = 2 > j3's 1)
  EXPECT_EQ(session.try_submit(stream_job(3.0, 9.0, {1.0})),
            service::SubmitOutcome::kBackpressure);
  EXPECT_EQ(session.num_shed(), 2u);

  // The sheds are booked as paper rejections: the drained schedule (and
  // with it Theorem 1's dual accounting) validates.
  const api::RunSummary summary = session.drain();
  EXPECT_EQ(summary.report.num_completed, 3u);
  EXPECT_EQ(summary.report.num_rejected, 2u);
  EXPECT_EQ(summary.schedule.record(2).fate, JobFate::kRejectedPending);
  EXPECT_EQ(summary.schedule.record(2).rejection_time, 1.0);
  EXPECT_EQ(summary.schedule.record(1).rejection_time, 2.0);

  // The fixed rule on the same feed picks the OTHER victim first (lowest
  // weight j1, then j2) — the two policies are genuinely different rules.
  service::SessionOptions fixed;
  fixed.run.epsilon = 0.2;
  fixed.live_window_cap = 3;
  fixed.shed_budget = 2;
  service::SchedulerSession oracle(api::Algorithm::kTheorem1, 1, fixed);
  oracle.submit(stream_job(0.0, 1.0, {10.0}));
  oracle.submit(stream_job(0.0, 0.2, {2.0}));
  oracle.submit(stream_job(0.0, 5.0, {4.0}));
  ASSERT_EQ(oracle.try_submit(stream_job(1.0, 9.0, {1.0})),
            service::SubmitOutcome::kAccepted);
  const api::RunSummary oracle_summary = oracle.drain();
  EXPECT_EQ(oracle_summary.schedule.record(1).fate, JobFate::kRejectedPending);
  EXPECT_EQ(oracle_summary.schedule.record(1).rejection_time, 1.0);
}

// Drives `instance` through a session one try_submit at a time (refused
// jobs are dropped, as a shedding frontend would), advancing the clock at
// chunk boundaries, and reports everything the overload path decides.
struct DriveResult {
  api::RunSummary summary;
  std::size_t sheds = 0;
  std::size_t refused = 0;
  std::size_t final_cap = 0;
};

DriveResult drive(api::Algorithm algorithm, const Instance& instance,
                  const service::SessionOptions& options,
                  std::size_t chunk_size) {
  service::SchedulerSession session(algorithm, instance.num_machines(),
                                    options);
  StreamJob job;
  std::size_t in_chunk = 0;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    session.try_submit(job);
    if (++in_chunk == chunk_size) {
      session.advance(job.release);
      in_chunk = 0;
    }
  }
  DriveResult result;
  result.sheds = session.num_shed();
  result.refused = session.num_backpressured();
  result.final_cap = session.current_window_cap();
  result.summary = session.drain();
  return result;
}

TEST(AdaptiveOverload, EpsilonChargedShedsAreChunkInvariantForEveryPolicy) {
  // Every streamable algorithm supports kEpsilonCharged: policies without
  // their own charged victim (the list baselines) fall back to the fixed
  // victim under the derived budget. In all cases the shed/refusal pattern
  // is a function of the accepted arrivals alone — per-job and chunked
  // feeds agree exactly.
  const Instance instance = make_workload(base_seed() + 1, 120, 2);
  service::SessionOptions options;
  options.run.epsilon = 0.4;
  options.live_window_cap = 6;
  options.shed_policy = service::ShedPolicy::kEpsilonCharged;
  for (const api::Algorithm algorithm : kStreamable) {
    const std::string name = std::string(api::to_string(algorithm));
    const DriveResult per_job = drive(algorithm, instance, options, 1);
    const DriveResult chunked = drive(algorithm, instance, options, 7);
    const DriveResult spanned =
        drive(algorithm, instance, options, instance.num_jobs());
    EXPECT_EQ(per_job.sheds, chunked.sheds) << name;
    EXPECT_EQ(per_job.refused, chunked.refused) << name;
    EXPECT_EQ(per_job.sheds, spanned.sheds) << name;
    EXPECT_EQ(per_job.refused, spanned.refused) << name;
    expect_identical(per_job.summary, chunked.summary, name + " chunked");
    expect_identical(per_job.summary, spanned.summary, name + " spanned");
  }
}

// ---------------------------------------------------------------------------
// Adaptive determinism: chunking and checkpoint cuts.

service::SessionOptions adaptive_workload_options(const Instance& instance) {
  service::SessionOptions options;
  const Time span = instance.job(static_cast<JobId>(instance.num_jobs() - 1))
                        .release -
                    instance.job(static_cast<JobId>(0)).release;
  options.live_window_cap = 0;  // seed at min_cap
  options.shed_budget = 12;
  options.adaptive_cap.enabled = true;
  options.adaptive_cap.min_cap = 4;
  options.adaptive_cap.max_cap = 16;
  options.adaptive_cap.window = span / 8.0 + 1e-3;
  options.adaptive_cap.target_delay = span / 16.0 + 1e-3;
  options.adaptive_cap.hysteresis = 1;
  return options;
}

TEST(AdaptiveOverload, CapDecisionsAreChunkInvariant) {
  const Instance instance = make_workload(base_seed() + 2, 160, 2);
  const service::SessionOptions options = adaptive_workload_options(instance);
  const DriveResult per_job =
      drive(api::Algorithm::kGreedySpt, instance, options, 1);
  const DriveResult chunked =
      drive(api::Algorithm::kGreedySpt, instance, options, 7);
  const DriveResult spanned =
      drive(api::Algorithm::kGreedySpt, instance, options,
            instance.num_jobs());
  // Load 1.5 against max_cap 16 guarantees the window saturates: the cap
  // tuner and the shed budget are genuinely exercised, not vacuously equal.
  EXPECT_GT(per_job.sheds + per_job.refused, 0u);
  EXPECT_EQ(per_job.sheds, chunked.sheds);
  EXPECT_EQ(per_job.refused, chunked.refused);
  EXPECT_EQ(per_job.final_cap, chunked.final_cap);
  EXPECT_EQ(per_job.sheds, spanned.sheds);
  EXPECT_EQ(per_job.refused, spanned.refused);
  EXPECT_EQ(per_job.final_cap, spanned.final_cap);
  expect_identical(per_job.summary, chunked.summary, "chunked");
  expect_identical(per_job.summary, spanned.summary, "spanned");
}

TEST(AdaptiveOverload, CheckpointCutReproducesEveryCapAndShedDecision) {
  // Cut an adaptive ε-charged session mid-overload. The journal carries
  // configuration + accepted jobs only; replay must re-derive the rate
  // estimator, the cap trajectory and the charged-shed sequence, so the
  // restored session continues exactly like the original.
  const Instance instance = make_workload(base_seed() + 3, 160, 2);
  service::SessionOptions options = adaptive_workload_options(instance);
  options.shed_policy = service::ShedPolicy::kEpsilonCharged;
  options.run.epsilon = 0.3;
  service::SchedulerSession original(api::Algorithm::kTheorem1,
                                     instance.num_machines(), options);
  StreamJob job;
  const std::size_t cut = 80;
  for (std::size_t idx = 0; idx < cut; ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    original.try_submit(job);
  }

  std::string error;
  auto restored =
      service::SchedulerSession::restore(original.checkpoint(), &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->num_shed(), original.num_shed());
  EXPECT_EQ(restored->current_window_cap(), original.current_window_cap());
  EXPECT_EQ(restored->shed_allowance(), original.shed_allowance());

  for (std::size_t idx = cut; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    const auto a = original.try_submit(job);
    const auto b = restored->try_submit(job);
    EXPECT_EQ(a, b) << "job " << idx;
  }
  EXPECT_EQ(restored->num_shed(), original.num_shed());
  EXPECT_EQ(restored->current_window_cap(), original.current_window_cap());
  expect_identical(original.drain(), restored->drain(), "restored");
}

// ---------------------------------------------------------------------------
// Wire v4 compatibility.

TEST(AdaptiveOverload, Version3BlobsRestoreWithNeutralDefaults) {
  // A pre-PR-9 blob — hand-written exactly as the v3 writer emitted it —
  // must restore under the fixed shed rule with tuning disabled: the
  // allowance is the journalled shed_budget and the cap stays pinned.
  service::CheckpointWriter w;
  w.bytes(service::kSessionCheckpointMagic, 8);
  w.u32(3);
  w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
  w.u64(1);     // machines
  w.f64(0.2);   // epsilon
  w.f64(2.0);   // alpha
  w.u64(8);     // speed_levels
  w.f64(0.5);   // start_grid
  w.u8(1);      // validate
  w.u64(0);     // no fleet events
  w.u64(0);     // initially_down
  w.u64(0);     // rejection_budget
  w.u8(1);      // shed_killed_running
  w.u64(8192);  // retire_batch
  w.u64(5);     // live_window_cap
  w.u64(3);     // shed_budget
  w.u8(static_cast<std::uint8_t>(StorageBackend::kDense));
  // No shed policy / adaptive fields in v3.
  w.f64(0.0);  // clock
  w.u64(0);    // empty job journal

  std::string error;
  auto restored = service::SchedulerSession::restore(w.finish(), &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->current_window_cap(), 5u);
  EXPECT_EQ(restored->shed_allowance(), 3u);  // fixed budget, nothing spent
}

TEST(AdaptiveOverload, ForgedV4FieldsAreDiagnosed) {
  using service::CheckpointWriter;
  const auto begin_v4 = [](CheckpointWriter& w) {
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(4);
    w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
    w.u64(1);     // machines
    w.f64(0.2);   // epsilon
    w.f64(2.0);   // alpha
    w.u64(8);     // speed_levels
    w.f64(0.5);   // start_grid
    w.u8(0);      // validate off
    w.u64(0);     // no fleet events
    w.u64(0);     // initially_down
    w.u64(0);     // rejection_budget
    w.u8(1);      // shed_killed_running
    w.u64(8192);  // retire_batch
    w.u64(0);     // live_window_cap
    w.u64(0);     // shed_budget
    w.u8(static_cast<std::uint8_t>(StorageBackend::kDense));
  };
  const auto finish_empty = [](CheckpointWriter& w) {
    w.f64(0.0);  // clock
    w.u64(0);    // empty job journal
  };

  std::string error;
  {
    // A shed-policy id the enum does not name.
    CheckpointWriter w;
    begin_v4(w);
    w.u8(7);     // forged shed policy
    w.u8(0);     // tuning disabled
    w.u64(0);
    w.u64(0);
    w.f64(0.0);
    w.f64(0.0);
    w.u64(0);
    finish_empty(w);
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("unknown shed policy id 7"), std::string::npos)
        << error;
  }
  {
    // Tuning enabled with an impossible min_cap: the constructor would
    // abort on these, so restore must catch them recoverably first.
    CheckpointWriter w;
    begin_v4(w);
    w.u8(0);     // fixed policy
    w.u8(1);     // tuning enabled...
    w.u64(0);    // ...with min_cap 0
    w.u64(4);
    w.f64(1.0);
    w.f64(1.0);
    w.u64(0);
    finish_empty(w);
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("invalid adaptive-cap fields"), std::string::npos)
        << error;
  }
}

// ---------------------------------------------------------------------------
// Deficit-round-robin fairness in the shard driver.

TEST(AdaptiveOverload, DrrCreditsDeferCarryOverAndCapAtTwoQuanta) {
  service::ShardDriverOptions options;
  options.threads = 1;  // inline
  options.fair_quantum = 2;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 1, 1, options);
  ASSERT_EQ(driver.worker_count(), 0u);
  EXPECT_EQ(driver.fair_quantum(), 2u);

  using service::StageOutcome;
  EXPECT_EQ(driver.try_submit(0, stream_job(0.0, 1.0, {1.0})),
            StageOutcome::kAccepted);
  EXPECT_EQ(driver.try_submit(0, stream_job(0.1, 1.0, {1.0})),
            StageOutcome::kAccepted);
  EXPECT_EQ(driver.try_submit(0, stream_job(0.2, 1.0, {1.0})),
            StageOutcome::kDeferred);
  EXPECT_EQ(driver.try_advance(0, 0.2), StageOutcome::kDeferred);
  EXPECT_EQ(driver.shard_counters(0).deferred, 2u);

  driver.flush();  // round boundary: credit -> 2
  EXPECT_EQ(driver.try_submit(0, stream_job(0.2, 1.0, {1.0})),
            StageOutcome::kAccepted);

  // Two idle rounds: 1 leftover + 2 + 2 would be 5, but carry caps at one
  // extra quantum — exactly 4 ops clear before the next deferral.
  driver.flush();
  driver.flush();
  std::size_t accepted = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    const auto outcome =
        driver.try_submit(0, stream_job(1.0 + 0.1 * static_cast<Time>(k),
                                        1.0, {1.0}));
    if (service::stage_ok(outcome)) ++accepted;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(driver.shard_counters(0).deferred, 3u);
  EXPECT_EQ(driver.shard_counters(0).staged_ops, 7u);
  driver.drain_all();
}

TEST(AdaptiveOverload, DrrRefusalBurnsNoCreditOnSessionBackpressure) {
  // A kBackpressure refusal comes from the SESSION, after the fairness
  // gate passed — it must not consume the shard's credit, or a saturated
  // tenant would starve itself out of the retry the contract promises.
  service::ShardDriverOptions options;
  options.threads = 1;
  options.fair_quantum = 1;
  options.session.live_window_cap = 1;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 1, 1, options);

  using service::StageOutcome;
  EXPECT_EQ(driver.try_submit(0, stream_job(0.0, 1.0, {10.0})),
            StageOutcome::kAccepted);
  driver.flush();  // credit back to 1
  EXPECT_EQ(driver.try_submit(0, stream_job(1.0, 1.0, {10.0})),
            StageOutcome::kBackpressure);
  // The credit survived the backpressure: the retry at t = 10 (first job
  // done) is admitted without another round.
  EXPECT_EQ(driver.try_submit(0, stream_job(10.0, 1.0, {10.0})),
            StageOutcome::kAccepted);
  const auto counters = driver.shard_counters(0);
  EXPECT_EQ(counters.backpressured, 1u);
  EXPECT_EQ(counters.deferred, 0u);
  driver.drain_all();
}

TEST(AdaptiveOverload, DrrShieldsAColdTenantFromAHotOne) {
  // Worker mode, two shards, quantum 4. The hot tenant fires 10 submits a
  // round, the cold one 1. The hot tenant is clipped to its quantum every
  // round; the cold tenant is never deferred — its credit is untouchable
  // by its sibling's burst.
  service::ShardDriverOptions options;
  options.threads = 2;
  options.fair_quantum = 4;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 2, 2, options);
  ASSERT_GT(driver.worker_count(), 0u);

  using service::StageOutcome;
  std::size_t hot_staged = 0;
  for (std::size_t round = 0; round < 5; ++round) {
    const Time base = static_cast<Time>(round);
    std::size_t staged_this_round = 0;
    for (std::size_t k = 0; k < 10; ++k) {
      const auto outcome = driver.try_submit(
          0, stream_job(base + 0.01 * static_cast<Time>(k), 1.0, {0.5, 9.0}));
      if (service::stage_ok(outcome)) {
        ++hot_staged;
        ++staged_this_round;
      } else {
        EXPECT_EQ(outcome, StageOutcome::kDeferred);
      }
    }
    EXPECT_LE(staged_this_round, 2 * driver.fair_quantum());
    EXPECT_EQ(driver.try_submit(1, stream_job(base, 1.0, {9.0, 0.5})),
              StageOutcome::kStaged)
        << "cold tenant deferred in round " << round;
    driver.flush();
  }
  const auto hot = driver.shard_counters(0);
  const auto cold = driver.shard_counters(1);
  EXPECT_EQ(hot.staged_ops, hot_staged);
  EXPECT_EQ(hot.staged_ops, 20u);   // 4 per round
  EXPECT_EQ(hot.deferred, 30u);     // 6 per round
  EXPECT_EQ(cold.deferred, 0u);
  EXPECT_EQ(cold.staged_ops, 5u);
  EXPECT_EQ(hot.max_batch_ops, 4u);
  driver.drain_all();
}

TEST(AdaptiveOverload, SetFairQuantumArmsARestoredDriver) {
  // Checkpoints carry no runtime concerns, so a restored driver comes back
  // with fairness off; set_fair_quantum arms it in place.
  service::ShardDriverOptions options;
  options.threads = 1;
  options.fair_quantum = 2;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 2, 1, options);
  driver.submit(0, stream_job(0.0, 1.0, {1.0}));
  driver.pump();

  std::string error;
  auto restored = service::ShardDriver::restore(driver.checkpoint(), 1, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->fair_quantum(), 0u);
  restored->set_fair_quantum(1);

  using service::StageOutcome;
  EXPECT_EQ(restored->try_submit(0, stream_job(1.0, 1.0, {1.0})),
            StageOutcome::kAccepted);
  EXPECT_EQ(restored->try_submit(0, stream_job(2.0, 1.0, {1.0})),
            StageOutcome::kDeferred);
  restored->drain_all();
}

// ---------------------------------------------------------------------------
// Chaos: inflight saturation × fleet events, invariant across worker counts.

std::vector<api::RunSummary> chaos_run(const Instance& instance,
                                       std::size_t threads) {
  constexpr std::size_t kShards = 4;
  service::ShardDriverOptions options;
  options.threads = threads;
  options.max_inflight_batches = 1;  // saturates constantly
  options.session.live_window_cap = 8;
  options.session.shed_budget = instance.num_jobs();  // absorbing
  options.session.run.fleet.events = {
      {4.0, 1, FleetEventKind::kSpeedChange, 0.25},
      {8.0, 2, FleetEventKind::kFail},
  };
  service::ShardDriver driver(api::Algorithm::kGreedySpt, kShards,
                              instance.num_machines(), options);

  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    const std::size_t shard = idx % kShards;
    while (!service::stage_ok(driver.try_submit(shard, job))) {
      driver.sync();  // at the inflight cap: drain and retry
    }
    if (idx % 8 == 7) {
      while (!service::stage_ok(driver.try_advance(shard, job.release))) {
        driver.sync();
      }
      driver.flush();
    }
  }
  return driver.drain_all();
}

TEST(AdaptiveOverload, SaturatedChaosFleetIsWorkerCountInvariant) {
  // max_inflight_batches = 1 keeps every shard at the refusal boundary of
  // the try_*/sync retry contract while the fleet plan throttles machine 1
  // and kills machine 2 mid-run. The whole thing must neither deadlock nor
  // let the worker count leak into a single scheduling decision.
  const Instance instance = make_workload(base_seed() + 4, 160, 3);
  const auto inline_results = chaos_run(instance, 1);
  const auto two = chaos_run(instance, 2);
  const auto four = chaos_run(instance, 4);
  ASSERT_EQ(inline_results.size(), two.size());
  ASSERT_EQ(inline_results.size(), four.size());
  for (std::size_t s = 0; s < inline_results.size(); ++s) {
    const std::string tag = "shard " + std::to_string(s);
    expect_identical(inline_results[s], two[s], tag + " @2 workers");
    expect_identical(inline_results[s], four[s], tag + " @4 workers");
  }
}

}  // namespace
}  // namespace osched
