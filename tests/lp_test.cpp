// Unit and property tests for the LP subsystem: the LinearProgram model,
// the two-phase simplex, and the time-indexed flow LP.
//
// The simplex is differential-tested against brute-force vertex enumeration
// on random small LPs — every basic feasible point is enumerated by solving
// the linear systems of all constraint subsets, so the simplex optimum must
// match the best vertex exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "lp/flow_time_lp.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace osched::lp {
namespace {

// ------------------------------------------------------------ LinearProgram

TEST(LinearProgram, MergesDuplicateCoefficientsAndDropsZeros) {
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 1.0);
  const std::size_t y = lp.add_column("y", 1.0);
  lp.add_row("r", Sense::kLessEqual, 5.0,
             {{x, 2.0}, {y, 0.0}, {x, 3.0}});
  ASSERT_EQ(lp.row(0).coefficients.size(), 1u);
  EXPECT_EQ(lp.row(0).coefficients[0].column, x);
  EXPECT_DOUBLE_EQ(lp.row(0).coefficients[0].value, 5.0);
}

TEST(LinearProgram, ObjectiveValueAndViolation) {
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 2.0, 0.0, 10.0);
  const std::size_t y = lp.add_column("y", -1.0);
  lp.add_row("r1", Sense::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  lp.add_row("r2", Sense::kGreaterEqual, 1.0, {{x, 1.0}});

  EXPECT_DOUBLE_EQ(lp.objective_value({2.0, 1.0}), 3.0);
  EXPECT_NEAR(lp.max_violation({2.0, 1.0}), 0.0, 1e-12);
  // r1 violated by 3.
  EXPECT_NEAR(lp.max_violation({3.0, 4.0}), 3.0, 1e-12);
  // r2 violated by 1 at x=0.
  EXPECT_NEAR(lp.max_violation({0.0, 0.0}), 1.0, 1e-12);
  // Upper bound violated by 2, but r1 (23 > 4) dominates with 19.
  EXPECT_NEAR(lp.max_violation({12.0, 11.0}), 19.0, 1e-12);
}

TEST(LinearProgram, MaxViolationSeesBoundsWithoutRows) {
  LinearProgram lp;
  lp.add_column("x", 0.0, 1.0, 3.0);
  EXPECT_NEAR(lp.max_violation({5.0}), 2.0, 1e-12);   // above upper
  EXPECT_NEAR(lp.max_violation({0.25}), 0.75, 1e-12);  // below lower
  EXPECT_NEAR(lp.max_violation({2.0}), 0.0, 1e-12);
}

// ----------------------------------------------------------------- simplex

TEST(Simplex, SolvesTextbookTwoVariableLp) {
  // min -3x - 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig).
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", -3.0);
  const std::size_t y = lp.add_column("y", -5.0);
  lp.add_row("r1", Sense::kLessEqual, 4.0, {{x, 1.0}});
  lp.add_row("r2", Sense::kLessEqual, 12.0, {{y, 2.0}});
  lp.add_row("r3", Sense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.objective, -36.0, 1e-9);
  EXPECT_NEAR(result.solution[x], 2.0, 1e-9);
  EXPECT_NEAR(result.solution[y], 6.0, 1e-9);
  EXPECT_NEAR(lp.max_violation(result.solution), 0.0, 1e-9);
}

TEST(Simplex, HandlesEqualityAndGreaterRows) {
  // min x + 2y + 3z  s.t. x + y + z = 6, y + z >= 3, z <= 2.
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 1.0);
  const std::size_t y = lp.add_column("y", 2.0);
  const std::size_t z = lp.add_column("z", 3.0, 0.0, 2.0);
  lp.add_row("sum", Sense::kEqual, 6.0, {{x, 1.0}, {y, 1.0}, {z, 1.0}});
  lp.add_row("tail", Sense::kGreaterEqual, 3.0, {{y, 1.0}, {z, 1.0}});

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal());
  // Optimal: x = 3, y = 3, z = 0 -> 3 + 6 = 9.
  EXPECT_NEAR(result.objective, 9.0, 1e-9);
  EXPECT_NEAR(result.solution[x], 3.0, 1e-9);
  EXPECT_NEAR(result.solution[y], 3.0, 1e-9);
  EXPECT_NEAR(result.solution[z], 0.0, 1e-9);
}

TEST(Simplex, RespectsNonZeroLowerBounds) {
  // min x + y  s.t. x + y >= 5, x in [2, inf), y in [1, 2].
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 1.0, 2.0);
  const std::size_t y = lp.add_column("y", 1.0, 1.0, 2.0);
  lp.add_row("r", Sense::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.objective, 5.0, 1e-9);
  EXPECT_GE(result.solution[x], 2.0 - 1e-9);
  EXPECT_GE(result.solution[y], 1.0 - 1e-9);
  EXPECT_LE(result.solution[y], 2.0 + 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 1.0, 0.0, 1.0);
  lp.add_row("r", Sense::kGreaterEqual, 2.0, {{x, 1.0}});
  EXPECT_EQ(solve(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsContradictoryEqualities) {
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 0.0);
  const std::size_t y = lp.add_column("y", 0.0);
  lp.add_row("a", Sense::kEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  lp.add_row("b", Sense::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(solve(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x  with x free upward.
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", -1.0);
  const std::size_t y = lp.add_column("y", 0.0);
  lp.add_row("r", Sense::kGreaterEqual, 0.0, {{x, 1.0}, {y, -1.0}});
  EXPECT_EQ(solve(lp).status, SolveStatus::kUnbounded);
}

TEST(Simplex, HandlesRedundantRows) {
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 1.0);
  lp.add_row("a", Sense::kEqual, 3.0, {{x, 1.0}});
  lp.add_row("b", Sense::kEqual, 3.0, {{x, 1.0}});  // duplicate of a
  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.objective, 3.0, 1e-9);
}

TEST(Simplex, SurvivesDegenerateBeale) {
  // Beale's classic cycling example (min form). Bland's fallback must
  // terminate it.
  LinearProgram lp;
  const std::size_t x1 = lp.add_column("x1", -0.75);
  const std::size_t x2 = lp.add_column("x2", 150.0);
  const std::size_t x3 = lp.add_column("x3", -0.02);
  const std::size_t x4 = lp.add_column("x4", 6.0);
  lp.add_row("r1", Sense::kLessEqual, 0.0,
             {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  lp.add_row("r2", Sense::kLessEqual, 0.0,
             {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  lp.add_row("r3", Sense::kLessEqual, 1.0, {{x3, 1.0}});

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.objective, -0.05, 1e-9);
}

TEST(Simplex, StrongDualityOnInequalityForm) {
  // For min c'x, Ax >= b, x >= 0 with equality-free rows, strong duality
  // reads c'x* = y'b with y the reported row duals (y >= 0 on >= rows).
  LinearProgram lp;
  const std::size_t x = lp.add_column("x", 4.0);
  const std::size_t y = lp.add_column("y", 3.0);
  lp.add_row("a", Sense::kGreaterEqual, 10.0, {{x, 2.0}, {y, 1.0}});
  lp.add_row("b", Sense::kGreaterEqual, 12.0, {{x, 1.0}, {y, 3.0}});

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal());
  ASSERT_EQ(result.row_duals.size(), 2u);
  EXPECT_GE(result.row_duals[0], -1e-9);
  EXPECT_GE(result.row_duals[1], -1e-9);
  const double dual_objective =
      10.0 * result.row_duals[0] + 12.0 * result.row_duals[1];
  EXPECT_NEAR(dual_objective, result.objective, 1e-8);
  // Dual feasibility: A'y <= c.
  EXPECT_LE(2.0 * result.row_duals[0] + 1.0 * result.row_duals[1], 4.0 + 1e-9);
  EXPECT_LE(1.0 * result.row_duals[0] + 3.0 * result.row_duals[1], 3.0 + 1e-9);
}

// ------------------------------------------- differential: vertex brute force

// Solves a k x k dense linear system by Gaussian elimination with partial
// pivoting; nullopt if singular.
std::optional<std::vector<double>> solve_square(std::vector<std::vector<double>> a,
                                                std::vector<double> b) {
  const std::size_t k = b.size();
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-10) return std::nullopt;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < k; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(k);
  for (std::size_t i = 0; i < k; ++i) x[i] = b[i] / a[i][i];
  return x;
}

// All-constraints-as-halfspaces description of a small LP (columns assumed
// bounded below by 0 and above by `box`): rows Gx <= h.
struct HalfspaceLp {
  std::size_t dims;
  std::vector<double> objective;
  std::vector<std::vector<double>> g;
  std::vector<double> h;
};

// Enumerate all vertices (intersections of `dims` constraints), filter
// feasible, return the minimum objective; nullopt if no vertex is feasible.
std::optional<double> brute_force_minimum(const HalfspaceLp& lp) {
  const std::size_t rows = lp.g.size();
  std::vector<std::size_t> pick(lp.dims);
  std::optional<double> best;

  const auto feasible = [&](const std::vector<double>& x) {
    for (std::size_t r = 0; r < rows; ++r) {
      double lhs = 0.0;
      for (std::size_t c = 0; c < lp.dims; ++c) lhs += lp.g[r][c] * x[c];
      if (lhs > lp.h[r] + 1e-7) return false;
    }
    return true;
  };

  // Iterate over all combinations of `dims` row indices.
  std::vector<std::size_t> comb(lp.dims);
  for (std::size_t i = 0; i < lp.dims; ++i) comb[i] = i;
  while (true) {
    std::vector<std::vector<double>> a(lp.dims);
    std::vector<double> b(lp.dims);
    for (std::size_t i = 0; i < lp.dims; ++i) {
      a[i] = lp.g[comb[i]];
      b[i] = lp.h[comb[i]];
    }
    if (const auto x = solve_square(a, b); x && feasible(*x)) {
      double obj = 0.0;
      for (std::size_t c = 0; c < lp.dims; ++c) obj += lp.objective[c] * (*x)[c];
      if (!best || obj < *best) best = obj;
    }
    // Next combination.
    std::size_t i = lp.dims;
    while (i > 0 && comb[i - 1] == rows - lp.dims + i - 1) --i;
    if (i == 0) break;
    ++comb[i - 1];
    for (std::size_t j = i; j < lp.dims; ++j) comb[j] = comb[j - 1] + 1;
  }
  return best;
}

class SimplexRandomLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomLpTest, MatchesVertexEnumeration) {
  util::Rng rng(util::derive_seed(0x51317157, GetParam()));
  const std::size_t dims = 2 + rng.index(2);      // 2 or 3 variables
  const std::size_t extra_rows = 2 + rng.index(3);  // 2..4 random rows
  const double box = 10.0;

  // Random rows a'x <= b built to keep the box's origin feasible (b >= 0),
  // so the LP is feasible and (by the box) bounded.
  HalfspaceLp hs;
  hs.dims = dims;
  hs.objective.resize(dims);
  for (auto& c : hs.objective) c = rng.uniform(-3.0, 3.0);

  LinearProgram lp;
  for (std::size_t c = 0; c < dims; ++c) {
    lp.add_column("x" + std::to_string(c), hs.objective[c], 0.0, box);
    // Box rows for the brute force: x_c <= box and -x_c <= 0.
    std::vector<double> up(dims, 0.0), down(dims, 0.0);
    up[c] = 1.0;
    down[c] = -1.0;
    hs.g.push_back(up);
    hs.h.push_back(box);
    hs.g.push_back(down);
    hs.h.push_back(0.0);
  }
  for (std::size_t r = 0; r < extra_rows; ++r) {
    std::vector<double> row(dims);
    std::vector<Coefficient> coefficients;
    for (std::size_t c = 0; c < dims; ++c) {
      row[c] = rng.uniform(-2.0, 2.0);
      coefficients.push_back(Coefficient{c, row[c]});
    }
    const double rhs = rng.uniform(0.0, 8.0);
    lp.add_row("r" + std::to_string(r), Sense::kLessEqual, rhs,
               std::move(coefficients));
    hs.g.push_back(row);
    hs.h.push_back(rhs);
  }

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal()) << to_string(result.status);
  EXPECT_NEAR(lp.max_violation(result.solution), 0.0, 1e-7);

  const auto brute = brute_force_minimum(hs);
  ASSERT_TRUE(brute.has_value());
  EXPECT_NEAR(result.objective, *brute, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLpTest,
                         ::testing::Range<std::uint64_t>(0, 25));

// Larger random LPs where vertex enumeration is too slow: verify primal
// feasibility and the zero duality gap (objective == y'rhs over the
// standard-form rows, using the reported row duals plus the bound rows'
// complementary slackness) — a necessary-and-sufficient optimality witness
// for LPs whose binding structure lives in the rows.
class SimplexStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexStressTest, FeasibleWithConsistentDuals) {
  util::Rng rng(util::derive_seed(0x57E55, GetParam()));
  const std::size_t dims = 6 + rng.index(5);    // 6..10 variables
  const std::size_t rows = 8 + rng.index(6);    // 8..13 rows

  LinearProgram lp;
  for (std::size_t c = 0; c < dims; ++c) {
    lp.add_column("x" + std::to_string(c), rng.uniform(-2.0, 2.0), 0.0, 5.0);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Coefficient> coefficients;
    for (std::size_t c = 0; c < dims; ++c) {
      if (rng.bernoulli(0.6)) {
        coefficients.push_back(Coefficient{c, rng.uniform(-1.5, 1.5)});
      }
    }
    if (coefficients.empty()) continue;
    // b >= 0 keeps the origin feasible; mixing in >= 0 rows exercises
    // surplus/artificial handling without risking infeasibility.
    if (rng.bernoulli(0.75)) {
      lp.add_row("le" + std::to_string(r), Sense::kLessEqual,
                 rng.uniform(0.5, 6.0), std::move(coefficients));
    } else {
      for (auto& coef : coefficients) coef.value = std::abs(coef.value);
      lp.add_row("ge" + std::to_string(r), Sense::kGreaterEqual, 0.0,
                 std::move(coefficients));
    }
  }

  const SimplexResult result = solve(lp);
  ASSERT_TRUE(result.optimal()) << to_string(result.status);
  EXPECT_NEAR(lp.max_violation(result.solution), 0.0, 1e-7);

  // The optimum can never beat the best of 2000 random feasible points by
  // being wrong (sanity direction), and must not exceed the origin's value
  // (0 is feasible).
  EXPECT_LE(result.objective, lp.objective_value(std::vector<double>(dims, 0.0)) + 1e-9);

  // Dual sign conventions on the reported rows.
  for (std::size_t r = 0; r < lp.num_rows(); ++r) {
    if (lp.row(r).sense == Sense::kLessEqual) {
      EXPECT_LE(result.row_duals[r], 1e-7) << lp.row(r).name;
    } else if (lp.row(r).sense == Sense::kGreaterEqual) {
      EXPECT_GE(result.row_duals[r], -1e-7) << lp.row(r).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexStressTest,
                         ::testing::Range<std::uint64_t>(100, 120));

// ------------------------------------------------------------- flow-time LP

TEST(FlowLpGrid, CoversHorizonWithReleaseBreakpoints) {
  const Instance instance =
      single_machine_instance({{0.0, 3.0}, {2.5, 1.0}, {7.0, 2.0}});
  const auto cells = lp::make_flow_lp_grid(instance, 32);
  ASSERT_GE(cells.size(), 3u);
  EXPECT_DOUBLE_EQ(cells.front().begin, 0.0);
  for (std::size_t k = 1; k < cells.size(); ++k) {
    EXPECT_DOUBLE_EQ(cells[k].begin, cells[k - 1].end);
  }
  // Every release is a cell boundary.
  for (const Job& job : instance.jobs()) {
    bool found = false;
    for (const auto& cell : cells) {
      if (std::abs(cell.begin - job.release) < 1e-12) found = true;
    }
    EXPECT_TRUE(found) << "release " << job.release << " not a breakpoint";
  }
  EXPECT_LE(cells.size(), 33u);  // target plus rounding
}

TEST(FlowLp, SingleJobMatchesClosedForm) {
  // One job, p = 4, released at 0: continuous LP optimum is
  // int_0^4 (t/4 + 1) dt = 6; the start-anchored discrete value approaches
  // it from below.
  const Instance instance = single_machine_instance({{0.0, 4.0}});
  FlowLpOptions options;
  options.target_intervals = 128;
  const auto result = solve_flow_time_lp(instance, options);
  ASSERT_TRUE(result.optimal());
  EXPECT_LE(result.lp_objective, 6.0 + 1e-9);
  EXPECT_GE(result.lp_objective, 5.8);
  EXPECT_NEAR(result.lower_bound, result.lp_objective / 2.0, 1e-12);
  // The fractional optimum uses the machine for exactly p time units.
  EXPECT_NEAR(result.machine_time[0][0], 4.0, 1e-6);
}

TEST(FlowLp, LowerBoundIsCertifiedAgainstExactOpt) {
  util::Rng rng(0xF10F10);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::pair<Time, Work>> jobs;
    const std::size_t n = 3 + rng.index(4);  // 3..6 jobs
    for (std::size_t j = 0; j < n; ++j) {
      jobs.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.5, 5.0)});
    }
    const Instance instance = single_machine_instance(jobs);
    const auto lp_result = solve_flow_time_lp(instance, {.target_intervals = 48});
    ASSERT_TRUE(lp_result.optimal());
    const auto opt = exact_optimal_flow_single_machine(instance);
    ASSERT_TRUE(opt.has_value());
    EXPECT_LE(lp_result.lower_bound, *opt + 1e-6)
        << "trial " << trial << ": LP/2 must lower-bound OPT";
    EXPECT_GT(lp_result.lower_bound, 0.0);
  }
}

TEST(FlowLp, RefinementNeverLowersTheBound) {
  const Instance instance = single_machine_instance(
      {{0.0, 3.0}, {1.0, 1.0}, {1.5, 4.0}, {6.0, 2.0}});
  double previous = 0.0;
  for (std::size_t target : {8u, 16u, 32u, 64u}) {
    const auto result = solve_flow_time_lp(instance, {.target_intervals = target});
    ASSERT_TRUE(result.optimal()) << "target " << target;
    EXPECT_GE(result.lp_objective, previous - 1e-7) << "target " << target;
    previous = result.lp_objective;
  }
}

TEST(FlowLp, MidpointVariantEstimatesHigherButCertifiesNothing) {
  const Instance instance =
      single_machine_instance({{0.0, 2.0}, {0.5, 3.0}, {4.0, 1.0}});
  const auto certified = solve_flow_time_lp(instance, {.target_intervals = 32});
  FlowLpOptions midpoint;
  midpoint.target_intervals = 32;
  midpoint.midpoint_costs = true;
  const auto estimate = solve_flow_time_lp(instance, midpoint);
  ASSERT_TRUE(certified.optimal());
  ASSERT_TRUE(estimate.optimal());
  EXPECT_GE(estimate.lp_objective, certified.lp_objective - 1e-9);
  EXPECT_EQ(estimate.lower_bound, 0.0);
}

TEST(FlowLp, UnrelatedMachinesPreferTheFastAssignments) {
  // Two machines; job 0 fast on machine 0, job 1 fast on machine 1.
  InstanceBuilder builder(2);
  builder.add_job(0.0, {1.0, 10.0});
  builder.add_job(0.0, {10.0, 1.0});
  const Instance instance = builder.build();

  const auto result = solve_flow_time_lp(instance, {.target_intervals = 32});
  ASSERT_TRUE(result.optimal());
  // The optimum puts (almost) all work on the fast machines.
  EXPECT_GT(result.machine_time[0][0], 0.9);
  EXPECT_GT(result.machine_time[1][1], 0.9);
  EXPECT_LT(result.machine_time[1][0], 0.5);
  EXPECT_LT(result.machine_time[0][1], 0.5);
}

TEST(FlowLp, RestrictedAssignmentRespectsEligibility) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {2.0, kTimeInfinity});  // only machine 0
  builder.add_job(0.0, {kTimeInfinity, 3.0});  // only machine 1
  const Instance instance = builder.build();

  const auto result = solve_flow_time_lp(instance, {.target_intervals = 16});
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.machine_time[1][0], 0.0, 1e-9);
  EXPECT_NEAR(result.machine_time[0][1], 0.0, 1e-9);
  EXPECT_NEAR(result.machine_time[0][0], 2.0, 1e-6);
  EXPECT_NEAR(result.machine_time[1][1], 3.0, 1e-6);
}

TEST(FlowLp, DualsSatisfyThePaperSignConventions) {
  const Instance instance =
      single_machine_instance({{0.0, 2.0}, {1.0, 2.0}, {2.0, 2.0}});
  const auto result = solve_flow_time_lp(instance, {.target_intervals = 24});
  ASSERT_TRUE(result.optimal());
  ASSERT_EQ(result.lambda.size(), 3u);
  for (double lambda : result.lambda) {
    EXPECT_GE(lambda, -1e-9);  // dual of a >= row in a min LP
  }
  for (const auto& machine_beta : result.beta) {
    for (double beta : machine_beta) {
      EXPECT_LE(beta, 1e-9);  // dual of a <= row in a min LP
    }
  }
  // Strong duality against the standard-form rhs: sum_j lambda_j +
  // sum_{i,k} beta_ik * len_k equals the LP optimum (variable bounds are
  // inactive at the optimum here because capacity already binds them).
  double dual_value = 0.0;
  for (double lambda : result.lambda) dual_value += lambda;
  for (std::size_t k = 0; k < result.cells.size(); ++k) {
    dual_value += result.beta[0][k] * result.cells[k].length();
  }
  EXPECT_NEAR(dual_value, result.lp_objective, 1e-6);
}

// On identically-loaded instances, the Theorem 1 scheduler's dual objective
// (a feasible point of the continuous dual) should not wildly exceed the
// discretized LP optimum — with a fine grid the discrete LP approaches the
// continuous one from below, so we allow a small tolerance headroom. This
// catches gross inconsistencies between the two dual computations.
TEST(FlowLp, AlgorithmDualStaysBelowLpOptimumOnFineGrids) {
  workload::WorkloadConfig config;
  config.num_jobs = 8;
  config.num_machines = 2;
  config.load = 0.9;
  config.seed = 99;
  const Instance instance = workload::generate_workload(config);

  const auto lp_result = solve_flow_time_lp(instance, {.target_intervals = 96});
  ASSERT_TRUE(lp_result.optimal());
  const auto run = run_rejection_flow(instance, {.epsilon = 0.3});
  EXPECT_LE(run.dual_objective, lp_result.lp_objective * 1.05 + 1e-6);
}

}  // namespace
}  // namespace osched::lp
